"""E2 — Figure 2: scaling laws for neural language models.

Regenerates the three Kaplan-style series at laptop scale: held-out loss
versus model size P (data fixed), dataset size D (architecture fixed),
and training compute C = 6 P D_seen.  Straight lines on log-log axes —
i.e. power-law fits with positive exponents — are the reproduced shape.

The sweep trains eleven models back to back, so it is restartable: set
``REPRO_CHECKPOINT_DIR=/some/dir`` and each sweep point checkpoints into
its own subdirectory and resumes past already-finished points after a
mid-sweep kill (see ``docs/ARCHITECTURE.md``).
"""

import os

import numpy as np

from _util import banner, bench_main, fmt_table, scale

from repro.data import WordTokenizer, Corpus
from repro.grammar import english_toy_pcfg, sample_treebank, treebank_text
from repro.phenomenology import data_size_sweep, fit_power_law, model_size_sweep

_ARCHS = [(8, 1, 2), (12, 1, 2), (16, 2, 2), (24, 2, 4), (40, 2, 4)]
_TOKEN_COUNTS = [400, 800, 1600, 3200, 6400, 12800]


def build_corpus(num_sentences: int = 2600, seed: int = 7) -> Corpus:
    rng = np.random.default_rng(seed)
    examples = sample_treebank(english_toy_pcfg(), num_sentences, rng,
                               min_len=3, max_len=14)
    text = treebank_text(examples)
    tok = WordTokenizer(text)
    return Corpus.from_ids(np.array(tok.encode(text)), tok.vocab_size,
                           test_fraction=0.1)


def run(steps: int = 250, seed: int = 0):
    corpus = build_corpus()
    ckpt_root = os.environ.get("REPRO_CHECKPOINT_DIR")
    ckpt_dir = os.path.join(ckpt_root, "fig2_scaling") if ckpt_root else None
    model_points = model_size_sweep(corpus, _ARCHS, seq_len=32, steps=steps,
                                    seed=seed, checkpoint_dir=ckpt_dir)
    data_points = data_size_sweep(corpus, _TOKEN_COUNTS,
                                  architecture=(24, 2, 4), seq_len=32,
                                  steps=steps, seed=seed,
                                  checkpoint_dir=ckpt_dir)
    p_fit = fit_power_law([pt.num_params for pt in model_points],
                          [pt.test_loss for pt in model_points])
    d_fit = fit_power_law([pt.num_tokens for pt in data_points],
                          [pt.test_loss for pt in data_points])
    c_fit = fit_power_law([pt.flops for pt in model_points],
                          [pt.test_loss for pt in model_points])
    return {
        "model_points": model_points,
        "data_points": data_points,
        "alpha_P": p_fit.exponent, "r2_P": p_fit.r_squared,
        "alpha_D": d_fit.exponent, "r2_D": d_fit.r_squared,
        "alpha_C": c_fit.exponent, "r2_C": c_fit.r_squared,
    }


def report(result) -> str:
    lines = [banner("Figure 2 — loss vs parameters (D fixed)")]
    lines.append(fmt_table(
        ["params P", "test loss", "flops"],
        [[pt.num_params, pt.test_loss, pt.flops] for pt in result["model_points"]],
    ))
    lines.append(f"power-law fit: L ~ P^(-{result['alpha_P']:.3f})  "
                 f"(log-log R^2 = {result['r2_P']:.3f})")
    lines.append(banner("Figure 2 — loss vs dataset size (P fixed)"))
    lines.append(fmt_table(
        ["tokens D", "test loss"],
        [[pt.num_tokens, pt.test_loss] for pt in result["data_points"]],
    ))
    lines.append(f"power-law fit: L ~ D^(-{result['alpha_D']:.3f})  "
                 f"(log-log R^2 = {result['r2_D']:.3f})")
    lines.append(f"compute series: L ~ C^(-{result['alpha_C']:.3f})  "
                 f"(paper's exponents: 0.076-0.095 on web text)")
    return "\n".join(lines)


def test_fig2_scaling_laws(benchmark):
    result = benchmark.pedantic(run, kwargs={"steps": 250 * scale()},
                                rounds=1, iterations=1)
    print(report(result))
    # Reproduced shape: bigger P and bigger D both reduce held-out loss,
    # following a reasonable power law.
    model_losses = [pt.test_loss for pt in result["model_points"]]
    data_losses = [pt.test_loss for pt in result["data_points"]]
    assert model_losses[-1] < model_losses[0]
    assert data_losses[-1] < data_losses[0]
    assert result["alpha_P"] > 0
    assert result["alpha_D"] > 0
    assert result["r2_P"] > 0.6
    assert result["r2_D"] > 0.6


if __name__ == "__main__":
    raise SystemExit(bench_main("fig2_scaling_laws", lambda: run(steps=250 * scale()), report))
