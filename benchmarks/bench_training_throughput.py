"""E22 — training-step throughput: fused attention kernel vs composed ops.

The training loop (Eqs. 13-16) is the hot path of every experiment in
this repo, and before this bench it was the one path with no measured
trajectory.  Measured here as end-to-end tokens/sec through the real
:class:`repro.train.Trainer` (forward + backward + optimizer step, AdamW)
on the tiny-GPT training config, in three attention modes on identical
seeds and batches:

- ``composed`` — the primitive-op reference graph (``fused=False``);
- ``fused`` — the single-node :func:`repro.autograd.fused_attention`
  kernel with the :func:`~repro.autograd.split3` QKV split (the default);
- ``fused_blocked`` — the same kernel in flash-style streaming-softmax
  mode, which never materialises the full ``(B, H, T, T)`` score array.

Because the fused forward and backward are bit-identical to the composed
reference, the three runs must produce the *same loss trajectory* — the
bench asserts it (exactly for fused, to float round-off for blocked), so
the speedup it reports is for provably equivalent math.  Results are
emitted as a ``BENCH_training.json`` record for regression tracking;
``--trace`` dumps a Chrome trace of the instrumented runs.

A dtype phase rides along in the same record: the fused mode re-runs in
float32 (``TransformerConfig(dtype="float32")``) against the float64
default on identical seeds and batches and reports the tokens/sec ratio
as ``dtype_speedup_f32`` — regression-gated like every ``*speedup*``
metric, so the float32 compute path cannot silently lose its win.  The
float32 trajectory is checked against float64 to loose tolerance only
(single precision legitimately rounds differently); the bit-exactness
claims stay pinned to the float64 runs.

``--smoke`` runs a seconds-scale configuration and asserts fused >=
composed throughput and float32 >= float64 (with slack against timer
noise); the tier-1 suite invokes it so training-path perf regressions
fail loudly.
"""

import argparse
import sys

import numpy as np

from _util import BenchRun, banner, fmt_table, scale

from repro.core import TransformerConfig, TransformerLM
from repro.nn.optim import AdamW
from repro.obs import Observability
from repro.train import Trainer

# Attention-heavy tiny-GPT: long enough sequences that the (B, H, T, T)
# score work the kernel fuses away is a real fraction of the step.
_FULL = dict(vocab_size=64, max_seq_len=128, d_model=64, num_heads=4,
             num_layers=4)
_SMOKE = dict(vocab_size=32, max_seq_len=48, d_model=32, num_heads=4,
              num_layers=2)
_BATCH_FULL, _BATCH_SMOKE = 8, 4
_STEPS_FULL, _STEPS_SMOKE = 16, 4
# Smoke gate: fused must not be slower than composed beyond timer noise
# on a busy core.  The real margin is ~1.3-1.7x; 0.9 only catches actual
# regressions, not scheduler jitter.
_SMOKE_SLACK = 0.9


def _train_once(mode: str, smoke: bool, num_steps: int,
                obs: Observability | None, dtype: str | None = None) -> dict:
    """One full training run in the given attention mode; fresh model/opt."""
    params = dict(_SMOKE if smoke else _FULL)
    params["fused"] = mode != "composed"
    params["attention_block_size"] = (
        params["max_seq_len"] // 4 if mode == "fused_blocked" else None)
    params["dtype"] = dtype
    cfg = TransformerConfig(**params)
    batch = _BATCH_SMOKE if smoke else _BATCH_FULL
    seq = cfg.max_seq_len

    model = TransformerLM(cfg, rng=0)
    model.train()
    optimizer = AdamW(model.parameters(), lr=1e-3)

    def batch_fn(step, rng):
        x = rng.integers(0, cfg.vocab_size, size=(batch, seq))
        y = rng.integers(0, cfg.vocab_size, size=(batch, seq))
        return x, y

    trainer = Trainer(model, optimizer, batch_fn,
                      rng=np.random.default_rng(1), obs=obs)
    history = trainer.run(num_steps)
    return {
        "mode": mode,
        "block_size": params["attention_block_size"],
        "steps": num_steps,
        "tokens": history.total_tokens,
        "seconds": history.wall_time,
        "tokens_per_sec": history.tokens_per_sec,
        "losses": [float(v) for v in history.losses],
    }


def run(smoke: bool = False, obs: Observability | None = None) -> dict:
    """Run all three attention modes and cross-check their trajectories."""
    num_steps = (_STEPS_SMOKE if smoke else _STEPS_FULL) * scale()
    # Warm NumPy/BLAS paths once so the first timed mode isn't penalised.
    _train_once("fused", True, 1, None)

    runs = {mode: _train_once(mode, smoke, num_steps, obs)
            for mode in ("composed", "fused", "fused_blocked")}

    composed_losses = runs["composed"]["losses"]
    trajectory_identical = runs["fused"]["losses"] == composed_losses
    assert trajectory_identical, \
        "fused attention diverged from the composed reference trajectory"
    assert np.allclose(runs["fused_blocked"]["losses"], composed_losses,
                       rtol=1e-9), \
        "blocked attention diverged beyond float round-off"

    composed_tps = runs["composed"]["tokens_per_sec"]
    cfg = dict(_SMOKE if smoke else _FULL)
    return {
        "bench": "training_throughput",
        "smoke": smoke,
        "model": cfg,
        "batch_size": _BATCH_SMOKE if smoke else _BATCH_FULL,
        "steps_per_mode": num_steps,
        "modes": [runs[m] for m in ("composed", "fused", "fused_blocked")],
        "speedup_fused": runs["fused"]["tokens_per_sec"] / composed_tps,
        "speedup_blocked": runs["fused_blocked"]["tokens_per_sec"] / composed_tps,
        "trajectory_identical": trajectory_identical,
        "dtype": _dtype_phase(smoke, num_steps, obs,
                              f64_run=runs["fused"]),
    }


def _dtype_phase(smoke: bool, num_steps: int, obs: Observability | None,
                 f64_run: dict) -> dict:
    """Float32 vs float64 training throughput, fused mode, identical seeds.

    The float64 side reuses the fused run already measured above (it *is*
    the policy default).  The float32 run draws the identical RNG stream
    (initializers sample in float64 and cast), so the two trajectories
    start from the same numbers — they then legitimately diverge at
    single-precision round-off, checked only to loose tolerance here.
    The bit-exactness bar stays with the float64 modes.
    """
    f32 = _train_once("fused", smoke, num_steps, obs, dtype="float32")
    trajectory_close = bool(np.allclose(
        f32["losses"], f64_run["losses"], rtol=1e-2, atol=1e-2))
    assert trajectory_close, \
        "float32 training trajectory left the float64 envelope"
    return {
        "float64": {k: f64_run[k] for k in
                    ("tokens", "seconds", "tokens_per_sec")},
        "float32": {k: f32[k] for k in
                    ("tokens", "seconds", "tokens_per_sec")},
        "final_loss_f64": f64_run["losses"][-1],
        "final_loss_f32": f32["losses"][-1],
        "dtype_speedup_f32": f32["tokens_per_sec"] / f64_run["tokens_per_sec"],
        "trajectory_close": trajectory_close,
    }


def report(result: dict) -> str:
    """Human-readable table for one bench result dict."""
    lines = [banner("Training throughput — fused attention vs composed ops")]
    composed_tps = result["modes"][0]["tokens_per_sec"]
    rows = []
    for entry in result["modes"]:
        rows.append([entry["mode"],
                     entry["block_size"] if entry["block_size"] else "-",
                     entry["steps"], entry["seconds"],
                     entry["tokens_per_sec"],
                     entry["tokens_per_sec"] / composed_tps,
                     entry["losses"][-1]])
    lines.append(fmt_table(
        ["mode", "block", "steps", "seconds", "tokens/sec", "speedup",
         "final loss"], rows))
    m = result["model"]
    lines.append(
        f"B={result['batch_size']} T={m['max_seq_len']} p={m['d_model']} "
        f"H={m['num_heads']} D={m['num_layers']}; identical seeds/batches; "
        f"loss trajectories {'identical' if result['trajectory_identical'] else 'DIVERGED'}; "
        f"fused speedup {result['speedup_fused']:.2f}x"
    )
    dtype = result["dtype"]
    lines.append(banner("Dtype policy — float32 vs float64, fused mode"))
    lines.append(fmt_table(
        ["dtype", "seconds", "tokens/sec", "speedup", "final loss"],
        [["float64", dtype["float64"]["seconds"],
          dtype["float64"]["tokens_per_sec"], 1.0, dtype["final_loss_f64"]],
         ["float32", dtype["float32"]["seconds"],
          dtype["float32"]["tokens_per_sec"], dtype["dtype_speedup_f32"],
          dtype["final_loss_f32"]]]))
    lines.append(
        f"float32 trains {dtype['dtype_speedup_f32']:.2f}x faster; "
        f"trajectories {'within' if dtype['trajectory_close'] else 'OUTSIDE'} "
        f"the float64 envelope")
    return "\n".join(lines)


def test_training_throughput(benchmark):
    """Full-scale gate: the fused kernel must deliver >= 1.5x tokens/sec,
    and the float32 compute path >= 1.5x over the float64 default."""
    result = benchmark.pedantic(run, rounds=1, iterations=1)
    print(report(result))
    assert result["trajectory_identical"]
    assert result["speedup_fused"] >= 1.5
    assert result["dtype"]["trajectory_close"]
    assert result["dtype"]["dtype_speedup_f32"] >= 1.5


def main(argv=None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="fast mode: tiny config, asserts fused >= composed")
    parser.add_argument("--out", default="BENCH_training.json",
                        help="path for the JSON record (default: %(default)s)")
    parser.add_argument("--no-record", action="store_true",
                        help="skip writing the JSON record")
    parser.add_argument("--trace", default=None, metavar="PATH",
                        help="also write a Chrome trace of the training runs")
    args = parser.parse_args(argv)
    obs = Observability.standard()
    out = None if args.no_record else args.out
    with BenchRun("training_throughput", out=out, trace_out=args.trace,
                  obs=obs) as br:
        br.record(run(smoke=args.smoke, obs=obs))
    result = br.result
    print(report(result))
    if out is not None:
        print(f"record written to {out}")
    if args.trace is not None:
        print(f"trace written to {args.trace} (open in chrome://tracing)")
    if args.smoke:
        if result["speedup_fused"] < _SMOKE_SLACK:
            print("SMOKE FAIL: fused attention slower than composed ops",
                  file=sys.stderr)
            return 1
        if result["dtype"]["dtype_speedup_f32"] < _SMOKE_SLACK:
            print("SMOKE FAIL: float32 training slower than float64",
                  file=sys.stderr)
            return 1
        print("SMOKE OK: fused >= composed tokens/sec, "
              f"float32 {result['dtype']['dtype_speedup_f32']:.2f}x vs float64")
    return 0


if __name__ == "__main__":
    sys.exit(main())
