"""E10 — the structural probe: parse-tree distances in embeddings.

Hewitt & Manning's finding, scaled down: a *low-rank* metric probe over a
language model's embeddings reconstructs parse-tree distances.  We fit
the probe in closed form (ridge regression for the full metric, eigen-
truncation for the rank-k version — the convex counterpart of the
original SGD probe) on a PCFG treebank with exact gold trees.

Reproduced shapes:
(a) tree distance is decodable far above the permutation null;
(b) very low rank suffices (rank 1-2 of d=48 — the analog of the paper's
    "rank ~50 of ~1000 for BERT");
(c) training matters at the embedding layer: the trained model's
    embeddings probe much better than an untrained clone's.

Documented deviation: at this toy scale the *contextual* (deeper) layers
probe worse than the embedding layer, and an untrained transformer's
random-feature mixtures are themselves fairly probeable — both known
caveats of the probing methodology (cf. control tasks / random baselines
in the probing literature); at BERT scale the paper's mid-layer result
holds.  EXPERIMENTS.md records the full comparison.
"""

import numpy as np

from _util import banner, bench_main, fmt_table, scale

from repro.autograd import no_grad
from repro.core import TransformerConfig, TransformerLM
from repro.data import WordTokenizer
from repro.grammar import english_toy_pcfg, sample_treebank, treebank_text
from repro.interp import (
    ProbeExample,
    fit_distance_metric,
    metric_rank_projection,
    pooled_distance_spearman,
)
from repro.train import train_lm_on_stream

_RANKS = [1, 2, 4, 8, 48]
_D_MODEL = 48


def build_examples(model, tok, treebank, cache_key: str) -> list[ProbeExample]:
    """Per-sentence (activations at ``cache_key``, gold tree distances)."""
    examples = []
    for entry in treebank:
        ids = np.array(tok.encode(" ".join(entry.tokens)))
        cache = {}
        with no_grad():
            model.forward(ids[None, :], cache=cache)
        examples.append(ProbeExample(embeddings=cache[cache_key][0],
                                     distances=entry.distances))
    return examples


def _linear_distance_baseline(treebank) -> float:
    """Spearman of |i - j| vs tree distance — the surface-feature bar."""
    from scipy import stats

    linear, gold = [], []
    for entry in treebank:
        n = len(entry.tokens)
        iu = np.triu_indices(n, k=1)
        linear.append((iu[1] - iu[0]).astype(float))
        gold.append(entry.distances[iu])
    return float(stats.spearmanr(np.concatenate(linear),
                                 np.concatenate(gold)).statistic)


def run(steps: int = 1200, seed: int = 0):
    rng = np.random.default_rng(seed)
    grammar = english_toy_pcfg()
    train_bank = sample_treebank(grammar, 400, rng, min_len=4, max_len=14)
    probe_bank = sample_treebank(grammar, 120, rng, min_len=5, max_len=14)
    held_out = sample_treebank(grammar, 40, rng, min_len=5, max_len=14)

    text = treebank_text(train_bank)
    tok = WordTokenizer(text)
    ids = np.array(tok.encode(text))
    cfg = TransformerConfig(vocab_size=tok.vocab_size, max_seq_len=16,
                            d_model=_D_MODEL, num_heads=4, num_layers=2)
    model = TransformerLM(cfg, rng=seed)
    train_lm_on_stream(model, ids, num_steps=steps, batch_size=16, seq_len=16,
                       lr=3e-3, seed=seed)
    untrained = TransformerLM(cfg, rng=seed + 1)

    # rank sweep on the trained model's embedding layer
    train_ex = build_examples(model, tok, probe_bank, "embed")
    test_ex = build_examples(model, tok, held_out, "embed")
    metric = fit_distance_metric(train_ex)
    rank_rows = []
    for rank in _RANKS:
        projection = metric_rank_projection(metric, rank)
        rank_rows.append([rank, pooled_distance_spearman(projection, test_ex)])
    null = pooled_distance_spearman(metric_rank_projection(metric, 2),
                                    test_ex, shuffle_gold=True,
                                    rng=np.random.default_rng(seed + 7))

    # layer comparison at rank 2, trained vs untrained
    layer_rows = []
    for label, m in (("trained", model), ("untrained", untrained)):
        for key in ("embed", "block0.out", "block1.out"):
            tr = build_examples(m, tok, probe_bank, key)
            te = build_examples(m, tok, held_out, key)
            proj = metric_rank_projection(fit_distance_metric(tr), 2)
            layer_rows.append([label, key,
                               pooled_distance_spearman(proj, te)])

    return {"rank_rows": rank_rows, "layer_rows": layer_rows, "null": null,
            "linear_baseline": _linear_distance_baseline(held_out)}


def report(result) -> str:
    lines = [banner("Structural probe — pooled Spearman(probed, gold tree "
                    "distance)")]
    lines.append("rank sweep (trained model, embedding layer):")
    lines.append(fmt_table(["probe rank k", "held-out rho"],
                           [[r, f"{v:.3f}"] for r, v in result["rank_rows"]]))
    lines.append(f"permutation null: {result['null']:.3f}   "
                 f"linear-distance |i-j| baseline: "
                 f"{result['linear_baseline']:.3f}")
    lines.append("\nlayer comparison at rank 2:")
    lines.append(fmt_table(["model", "layer", "held-out rho"],
                           [[a, b, f"{v:.3f}"] for a, b, v in
                            result["layer_rows"]]))
    return "\n".join(lines)


def test_structural_probe(benchmark):
    result = benchmark.pedantic(run, kwargs={"steps": 1200 * scale()},
                                rounds=1, iterations=1)
    print(report(result))
    by_rank = dict(result["rank_rows"])
    layers = {(a, b): v for a, b, v in result["layer_rows"]}
    # (a) decodable far above the null
    assert max(by_rank.values()) > 0.5
    assert abs(result["null"]) < 0.15
    # (b) very low rank suffices: rank 1-2 already attains the sweep max
    assert max(by_rank[1], by_rank[2]) > max(by_rank.values()) - 0.05
    assert by_rank[1] > 0.4
    # (c) training reorganises the embedding geometry
    assert layers[("trained", "embed")] > layers[("untrained", "embed")] + 0.1


if __name__ == "__main__":
    raise SystemExit(bench_main("structural_probe", lambda: run(steps=1200 * scale()), report))
