"""E1 — Figure 1: chain-of-thought supervision on multi-step problems.

Figure 1 shows Minerva solving a multi-step word problem by writing out
intermediate steps.  The reproduced finding: at a fixed small model size,
a transformer trained to emit each left-to-right intermediate result
("Q3+4*2:7:=4") solves far more held-out multi-step problems than the
same architecture trained to emit the answer directly ("Q3+4*2=4").
"""

import numpy as np

from _util import banner, bench_main, fmt_table, scale

from repro.core import TransformerConfig, TransformerLM
from repro.data import PROBLEM_ALPHABET, CharTokenizer, math_word_problems
from repro.train import train_lm_on_stream

_NUM_OPS = 3          # three chained operations -> answer needs 3 sequential steps
_SEQ_LEN = 24


def _train_variant(chain_of_thought: bool, steps: int, seed: int = 0):
    rng = np.random.default_rng(seed)
    problems = math_word_problems(rng, 3000, num_ops=_NUM_OPS,
                                  chain_of_thought=chain_of_thought)
    text = "".join(p.text for p in problems)
    tok = CharTokenizer(PROBLEM_ALPHABET)
    ids = np.array(tok.encode(text))
    cfg = TransformerConfig(vocab_size=tok.vocab_size, max_seq_len=_SEQ_LEN,
                            d_model=48, num_heads=4, num_layers=2)
    model = TransformerLM(cfg, rng=seed)
    train_lm_on_stream(model, ids, num_steps=steps, batch_size=16,
                       seq_len=_SEQ_LEN, lr=3e-3, seed=seed)
    return model, tok


def _evaluate(model, tok, chain_of_thought: bool, num_problems: int = 80,
              seed: int = 123) -> float:
    rng = np.random.default_rng(seed)
    problems = math_word_problems(rng, num_problems, num_ops=_NUM_OPS,
                                  chain_of_thought=chain_of_thought)
    newline = tok.vocab.token_to_id("\n")
    correct = 0
    for p in problems:
        prompt = tok.encode(p.prompt)
        out = model.generate(prompt, 14, greedy=True, stop_token=newline)
        generated = tok.decode(out[len(prompt):]).rstrip("\n")
        answer = generated.split("=")[-1] if "=" in generated else generated
        correct += answer.strip() == str(p.answer)
    return correct / num_problems


def run(steps: int = 2500):
    direct_model, tok = _train_variant(chain_of_thought=False, steps=steps)
    cot_model, _ = _train_variant(chain_of_thought=True, steps=steps)
    direct_acc = _evaluate(direct_model, tok, chain_of_thought=False)
    cot_acc = _evaluate(cot_model, tok, chain_of_thought=True)
    return {"direct": direct_acc, "cot": cot_acc, "steps": steps}


def report(result) -> str:
    lines = [banner("Figure 1 — chain-of-thought vs direct answering "
                    f"({_NUM_OPS}-step problems, same architecture)")]
    lines.append(fmt_table(
        ["supervision", "held-out accuracy"],
        [["direct answer", f"{result['direct']:.1%}"],
         ["chain of thought", f"{result['cot']:.1%}"],
         ["digit-guess floor", "10.0%"]],
    ))
    lines.append("paper shape: same architecture, same budget - the chain-trained "
                 "model answers multi-step problems markedly better (Minerva analog).")
    return "\n".join(lines)


def test_fig1_chain_of_thought(benchmark):
    result = benchmark.pedantic(run, kwargs={"steps": 2500 * scale()},
                                rounds=1, iterations=1)
    print(report(result))
    assert result["cot"] > result["direct"] + 0.08
    assert result["cot"] > 0.25


if __name__ == "__main__":
    raise SystemExit(bench_main("fig1_chain_of_thought", lambda: run(steps=2500 * scale()), report))
