"""E14 — Figure 3 & appendix: parsing, precedence, and grammar learning.

Three reproduced results from the appendix:
(a) the worked exercise — parsing ``y+1*x`` under the Figure-3 grammar
    groups ``1*x`` as a constituent, so multiplication takes precedence;
(b) grammar-driven evaluation agrees with ground truth on sampled
    expressions (the "attribute grammar" point);
(c) Inside-Outside EM, started from random rule probabilities, increases
    corpus likelihood monotonically and moves towards the generating
    PCFG (KL to generator shrinks).
"""

import numpy as np

from _util import banner, bench_main, fmt_table, scale

from repro.grammar import (
    arithmetic_cnf,
    arithmetic_pcfg,
    evaluate_tree,
    english_toy_pcfg,
    inside_outside_em,
    parse_expression,
    random_restart_grammar,
    to_cnf,
    viterbi_parse,
)


def run(num_sentences: int = 60, em_iterations: int = 8, seed: int = 0):
    # (a) precedence
    result = parse_expression("y+1*x")
    spans = {(s, e) for _l, s, e in result.tree.spans()}
    precedence_ok = (2, 5) in spans and (0, 3) not in spans
    value = evaluate_tree(result.tree, {"x": 4, "y": 7})

    # (b) agreement with ground truth on sampled expressions
    rng = np.random.default_rng(seed)
    grammar, cnf = arithmetic_pcfg(), arithmetic_cnf()
    env = {"x": 2, "y": 3, "z": 5}
    agree = total = 0
    for _ in range(40):
        tokens = grammar.sample_sentence(rng, max_depth=25)
        parsed = viterbi_parse(cnf, tokens)
        if parsed is None:
            continue
        total += 1
        agree += evaluate_tree(parsed.tree, env) == eval("".join(tokens), {}, env)

    # (c) Inside-Outside learning of the English toy grammar
    generator = to_cnf(english_toy_pcfg())
    sentences = [english_toy_pcfg().sample_sentence(rng, max_depth=25)
                 for _ in range(num_sentences)]
    start = random_restart_grammar(generator, rng)
    em = inside_outside_em(start, sentences, iterations=em_iterations)
    kl_before = generator.kl_divergence_from(start)
    kl_after = generator.kl_divergence_from(em.grammar)

    return {
        "precedence_ok": precedence_ok,
        "parse": result.tree.bracketed(),
        "value": value,
        "eval_agree": agree, "eval_total": total,
        "log_likelihoods": em.log_likelihoods,
        "kl_before": kl_before, "kl_after": kl_after,
    }


def report(result) -> str:
    lines = [banner("Figure 3 — parsing y+1*x (does * take precedence over +?)")]
    lines.append(f"parse: {result['parse']}")
    lines.append(f"with x=4, y=7 the parse evaluates to {result['value']} "
                 f"(precedence-correct answer: 11)")
    lines.append(f"evaluation agreement on sampled expressions: "
                 f"{result['eval_agree']}/{result['eval_total']}")
    lines.append(banner("Inside-Outside EM — learning the toy English PCFG"))
    lines.append(fmt_table(
        ["iteration", "corpus log-likelihood"],
        [[i, f"{ll:.2f}"] for i, ll in enumerate(result["log_likelihoods"])],
    ))
    lines.append(f"KL(generator || estimate): {result['kl_before']:.3f} -> "
                 f"{result['kl_after']:.3f}")
    return "\n".join(lines)


def test_grammar_parsing(benchmark):
    result = benchmark.pedantic(
        run, kwargs={"num_sentences": 60 * scale()}, rounds=1, iterations=1)
    print(report(result))
    assert result["precedence_ok"]
    assert result["value"] == 11  # y + (1 * x), not (y + 1) * x
    assert result["eval_agree"] == result["eval_total"] > 30
    lls = result["log_likelihoods"]
    assert all(b >= a - 1e-6 for a, b in zip(lls, lls[1:]))
    assert result["kl_after"] < result["kl_before"] * 0.8


if __name__ == "__main__":
    raise SystemExit(bench_main("grammar_parsing", lambda: run(num_sentences=60 * scale()), report))
