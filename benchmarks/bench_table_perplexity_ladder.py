"""E11 — the perplexity ladder: statistical vs neural language models.

§5's quantitative claims, reproduced on a shared corpus: N-gram models
"work better than one might think" (each order improves on the last), but
neural sequence models beat them decisively — the paper's footnote 28:
"statistical estimates of perplexity are in the 100's, and the best
current LLMs have perplexity ~20" (a gap, not a tie).  Our scaled-down
gap has the same direction and a comparable ratio.
"""

import numpy as np

from _util import banner, bench_main, fmt_table, scale

from repro.core import TransformerConfig, TransformerLM
from repro.data import Corpus, WordTokenizer, attribute_world_corpus
from repro.grammar import english_toy_pcfg, sample_treebank, treebank_text
from repro.lm import LSTMLM, InterpolatedNGramLM, NGramLM, UnigramLM
from repro.train import train_lm_on_stream


def build_corpus(seed: int = 11) -> Corpus:
    """A mixed corpus: PCFG sentences + attribute-world text."""
    rng = np.random.default_rng(seed)
    bank = sample_treebank(english_toy_pcfg(), 1200, rng, min_len=3, max_len=14)
    text = treebank_text(bank) + " " + attribute_world_corpus(rng, 1200)
    tok = WordTokenizer(text)
    return Corpus.from_ids(np.array(tok.encode(text)), tok.vocab_size,
                           test_fraction=0.1)


def run(steps: int = 350, seed: int = 0):
    corpus = build_corpus()
    v = corpus.vocab_size
    test = corpus.test_ids
    rows = []

    uni = UnigramLM(v).fit(corpus.train_ids)
    rows.append(["unigram", uni.perplexity(test)])
    for order in (2, 3):
        lm = NGramLM(v, order=order, add_k=0.2).fit(corpus.train_ids)
        rows.append([f"{order}-gram (add-k)", lm.perplexity(test)])
    interp = InterpolatedNGramLM(v, order=3).fit(corpus.train_ids)
    rows.append(["3-gram (interpolated)", interp.perplexity(test)])

    lstm = LSTMLM(v, embed_dim=24, hidden_dim=48, rng=seed)
    train_lm_on_stream(lstm, corpus.train_ids, num_steps=steps, batch_size=16,
                       seq_len=24, lr=3e-3, seed=seed)
    rows.append(["LSTM", lstm.perplexity(test[:400])])

    cfg = TransformerConfig(vocab_size=v, max_seq_len=24, d_model=48,
                            num_heads=4, num_layers=2)
    model = TransformerLM(cfg, rng=seed)
    train_lm_on_stream(model, corpus.train_ids, num_steps=steps * 2,
                       batch_size=16, seq_len=24, lr=3e-3, seed=seed)
    rows.append(["transformer (§6)", model.perplexity_on(test, seq_len=24)])

    return {"rows": [[name, round(p, 2)] for name, p in rows],
            "vocab": v, "tokens": corpus.num_train_tokens}


def report(result) -> str:
    lines = [banner("Perplexity ladder — same corpus, every §5 model family")]
    lines.append(fmt_table(["model", "test perplexity"], result["rows"]))
    ppl = dict(result["rows"])
    ratio = ppl["unigram"] / ppl["transformer (§6)"]
    lines.append(f"vocabulary {result['vocab']}, D = {result['tokens']} tokens")
    lines.append(f"statistical-to-neural ratio (unigram / transformer): "
                 f"{ratio:.1f}x   (paper's web-scale footnote: ~100s vs ~20, "
                 f"i.e. ~5-10x)")
    return "\n".join(lines)


def test_perplexity_ladder(benchmark):
    result = benchmark.pedantic(run, kwargs={"steps": 350 * scale()},
                                rounds=1, iterations=1)
    print(report(result))
    ppl = dict(result["rows"])
    assert ppl["2-gram (add-k)"] < ppl["unigram"]
    assert ppl["3-gram (interpolated)"] < ppl["unigram"]
    assert ppl["transformer (§6)"] < ppl["2-gram (add-k)"]
    assert ppl["transformer (§6)"] < ppl["unigram"] / 2
    assert ppl["LSTM"] < ppl["unigram"]


if __name__ == "__main__":
    raise SystemExit(bench_main("table_perplexity_ladder", lambda: run(steps=350 * scale()), report))
