"""E7 — Othello-GPT: an emergent world model, probed and intervened on.

Li et al.'s experiment, scaled to a 6x6 board: (a) a transformer trained
only on move sequences predicts (almost exclusively) legal moves; (b) a
linear probe decodes the board state (empty / mine / theirs per cell)
from its residual stream above the per-cell majority floor; (c) editing
an activation along the probe's tile directions shifts next-move
probability toward the moves that are newly legal on the *edited* board,
while a norm-matched random edit does not.

Verified at these settings (1800 steps, 300 games): legal-move rate
reaches ~100%; probe-direction edits shift ~3x more mass toward the
edited board's newly-legal moves than norm-matched random edits.
Documented deviation: the trained-vs-untrained *probe accuracy* gap is
small (+~3 points) at this budget — an untrained transformer's random
features already decode much of the board (the probing literature's
random-baseline caveat); Li et al. train on millions of games to get
their large separation.  The *causal* intervention asymmetry is the
discriminating world-model evidence at our scale.
"""

import numpy as np

from _util import banner, bench_main, fmt_table, scale

from repro.core import TransformerConfig, TransformerLM
from repro.interp import MultiTargetLinearProbe, forward_with_patch, patch_position
from repro.nn import AdamW
from repro.othello import OthelloBoard, generate_dataset, legal_move_rate

_SIZE = 6
_CELLS = _SIZE * _SIZE


def train_model(num_games: int, steps: int, seed: int = 0):
    rng = np.random.default_rng(seed)
    data = generate_dataset(rng, num_games=num_games, size=_SIZE)
    cfg = TransformerConfig(vocab_size=len(data.vocab),
                            max_seq_len=data.seq_len,
                            d_model=64, num_heads=4, num_layers=2)
    model = TransformerLM(cfg, rng=seed)
    untrained = TransformerLM(cfg, rng=seed + 1)
    opt = AdamW(model.parameters(), lr=3e-3)
    batch_rng = np.random.default_rng(seed + 2)
    for _ in range(steps):
        idx = batch_rng.integers(0, len(data.tokens), size=16)
        x, y = data.lm_batch(idx)
        model.zero_grad()
        model.loss(x, y).backward()
        opt.step()
    return model, untrained, data


def collect_activations(model, data, layer: int, game_indices) -> tuple[np.ndarray, np.ndarray]:
    """(features, board targets) for every position of the given games."""
    feats, targets = [], []
    for i in game_indices:
        length = int(data.lengths[i])
        cache = {}
        from repro.autograd import no_grad
        with no_grad():
            model.forward(data.tokens[i : i + 1, : length + 1], cache=cache)
        acts = cache[f"block{layer}.out"][0]  # (length+1, d)
        for t in range(1, length + 1):
            feats.append(acts[t])
            targets.append(data.board_states[i, t - 1])
    return np.stack(feats), np.stack(targets)


def probe_accuracy(model, data, layer: int, train_games, test_games,
                   epochs: int = 25, seed: int = 0) -> tuple[MultiTargetLinearProbe, float]:
    x_train, y_train = collect_activations(model, data, layer, train_games)
    x_test, y_test = collect_activations(model, data, layer, test_games)
    probe = MultiTargetLinearProbe(x_train.shape[1], _CELLS, 3, rng=seed)
    probe.fit(x_train, y_train, epochs=epochs, lr=1e-2, batch_size=128)
    predictions = probe.predict(x_test)
    return probe, float((predictions == y_test).mean())


def _flipped_board_legal_sets(data, game: int, t: int):
    """Replay to position t; flip one occupied non-centre cell; return
    (cell, original owner class, original legal ids, flipped legal ids)."""
    board = OthelloBoard(_SIZE)
    for token in data.tokens[game, 1 : t + 1].tolist():
        board.play(*data.vocab.id_to_move(token))
    if board.game_over:
        return None
    player = board.to_move
    rel = board.relative_state(player).reshape(-1)
    occupied = [c for c in np.flatnonzero(rel > 0)
                if (c // _SIZE, c % _SIZE) in data.vocab._cell_to_id]
    if not occupied:
        return None
    cell = int(occupied[len(occupied) // 2])
    original_legal = {data.vocab.move_to_id(r, c) for r, c in board.legal_moves()}
    flipped = board.copy()
    flipped.grid[cell // _SIZE, cell % _SIZE] *= -1  # swap ownership
    flipped_legal = {data.vocab.move_to_id(r, c)
                     for r, c in flipped.legal_moves(player)}
    return cell, int(rel[cell]), original_legal, flipped_legal


def intervention_study(model, probe, data, layer: int, games, strength: float,
                       seed: int = 0):
    """Probe-direction vs random-direction patches at matched norm."""
    rng = np.random.default_rng(seed)
    probe_tv, random_tv = [], []
    legality_shift, random_legality_shift = [], []
    for game in games:
        length = int(data.lengths[game])
        if length < 8:
            continue
        t = length // 2
        setup = _flipped_board_legal_sets(data, game, t)
        if setup is None:
            continue
        cell, current_class, original_legal, flipped_legal = setup
        other_class = 2 if current_class == 1 else 1
        direction = (probe.class_direction(cell, other_class)
                     - probe.class_direction(cell, current_class))
        norm = np.linalg.norm(direction)
        if norm == 0:
            continue
        delta = strength * direction / norm
        x = data.tokens[game : game + 1, : t + 1]
        base = forward_with_patch(model, x, layer, lambda a: a)[0, -1]
        patched = forward_with_patch(model, x, layer,
                                     patch_position(t, delta))[0, -1]
        rand = rng.normal(size=delta.shape)
        rand *= strength / np.linalg.norm(rand)
        random_patched = forward_with_patch(model, x, layer,
                                            patch_position(t, rand))[0, -1]

        def probs(logits):
            e = np.exp(logits - logits.max())
            return e / e.sum()

        p0, p1, p2 = probs(base), probs(patched), probs(random_patched)
        probe_tv.append(0.5 * np.abs(p1 - p0).sum())
        random_tv.append(0.5 * np.abs(p2 - p0).sum())
        newly_legal = list(flipped_legal - original_legal)
        if newly_legal:
            legality_shift.append(p1[newly_legal].sum() - p0[newly_legal].sum())
            random_legality_shift.append(p2[newly_legal].sum() - p0[newly_legal].sum())
    return (float(np.mean(probe_tv)), float(np.mean(random_tv)),
            float(np.mean(legality_shift)) if legality_shift else 0.0,
            float(np.mean(random_legality_shift)) if random_legality_shift else 0.0,
            len(probe_tv))


def run(num_games: int = 300, steps: int = 1800, seed: int = 0):
    model, untrained, data = train_model(num_games, steps, seed)
    layer = 0  # middle-ish of a 2-block stack (after block 0)
    eval_rng = np.random.default_rng(seed + 9)

    rate_trained = legal_move_rate(model, data, num_games=40,
                                   positions_per_game=6, rng=eval_rng)
    rate_untrained = legal_move_rate(untrained, data, num_games=40,
                                     positions_per_game=6, rng=eval_rng)

    n = len(data.tokens)
    train_games = range(0, min(100, n - 20))
    test_games = range(n - 20, n)
    probe, acc_trained = probe_accuracy(model, data, layer, train_games, test_games)
    _, acc_untrained = probe_accuracy(untrained, data, layer, train_games,
                                      test_games)
    majority = float(np.mean([np.bincount(col, minlength=3).max() / len(col)
                              for col in collect_activations(model, data, layer,
                                                             test_games)[1].T]))

    probe_tv, random_tv, legality, random_legality, n_cases = \
        intervention_study(model, probe, data, layer, range(min(80, n)),
                           strength=10.0, seed=seed)

    return {
        "rate_trained": rate_trained, "rate_untrained": rate_untrained,
        "acc_trained": acc_trained, "acc_untrained": acc_untrained,
        "majority": majority,
        "probe_tv": probe_tv, "random_tv": random_tv,
        "legality_shift": legality, "random_legality_shift": random_legality,
        "n_interventions": n_cases,
    }


def report(result) -> str:
    lines = [banner("Othello-GPT (6x6) — legal moves, board probes, interventions")]
    lines.append(fmt_table(
        ["measurement", "trained model", "untrained control"],
        [["legal-move rate (argmax)",
          f"{result['rate_trained']:.1%}", f"{result['rate_untrained']:.1%}"],
         ["linear board-state probe acc",
          f"{result['acc_trained']:.1%}", f"{result['acc_untrained']:.1%}"]],
    ))
    lines.append(f"(per-cell majority-class floor: {result['majority']:.1%})")
    lines.append(fmt_table(
        ["intervention effect", "value"],
        [["mass toward newly-legal moves (probe dir)",
          f"{result['legality_shift']:+.4f}"],
         ["mass toward newly-legal moves (random dir)",
          f"{result['random_legality_shift']:+.4f}"],
         ["mean TV shift, probe direction", f"{result['probe_tv']:.3f}"],
         ["mean TV shift, random direction", f"{result['random_tv']:.3f}"],
         ["cases", result["n_interventions"]]],
    ))
    lines.append("note: raw TV is larger for random (off-manifold) edits; the "
                 "*directed* legality shift is the world-model evidence.")
    return "\n".join(lines)


def test_othello_world_model(benchmark):
    result = benchmark.pedantic(
        run, kwargs={"num_games": 300, "steps": 1800 * scale()},
        rounds=1, iterations=1)
    print(report(result))
    assert result["rate_trained"] > result["rate_untrained"] + 0.5
    assert result["rate_trained"] > 0.9
    # board state decodable above the per-cell majority floor, and the
    # trained model at least nudges past the random-feature control
    assert result["acc_trained"] > result["majority"] + 0.05
    assert result["acc_trained"] > result["acc_untrained"]
    # causal world-model check: probe-direction edits push mass toward the
    # edited board's newly-legal moves far more than norm-matched random
    # edits (verified margin ~3x)
    assert result["legality_shift"] > 0.03
    assert result["legality_shift"] > 2 * result["random_legality_shift"]


if __name__ == "__main__":
    raise SystemExit(bench_main("othello_world_model", lambda: run(steps=1800 * scale()), report))
