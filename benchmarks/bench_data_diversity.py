"""E16 — data diversity: diverse tokens are worth more than duplicates.

§4's data-pruning discussion (Sorscher et al.): "sets of data items are
worth more if they are diverse than if they are similar."  Controlled
comparison: corpora of *identical token count* drawn from pools of 5, 50,
and 500 distinct sentences; the same architecture trained the same way on
each; held-out loss on fresh text from the full distribution.  Reproduced
shape: held-out loss falls monotonically with diversity.
"""

import numpy as np

from _util import banner, bench_main, fmt_table, scale

from repro.core import TransformerConfig, TransformerLM
from repro.data import WordTokenizer, attribute_world_corpus, diversity_corpus
from repro.train import train_lm_on_stream

_DISTINCT = [5, 50, 500]
_NUM_SENTENCES = 900


def run(steps: int = 300, seed: int = 0):
    # Shared tokenizer over the full distribution + a diverse held-out set.
    holdout_text = attribute_world_corpus(np.random.default_rng(seed + 777),
                                          num_sentences=250)
    vocab_text = holdout_text + " " + diversity_corpus(
        np.random.default_rng(seed + 778), 200, num_distinct=600)
    tok = WordTokenizer(vocab_text)
    holdout_ids = np.array(tok.encode(holdout_text))

    rows = []
    for distinct in _DISTINCT:
        text = diversity_corpus(np.random.default_rng(seed), _NUM_SENTENCES,
                                num_distinct=distinct)
        ids = np.array(tok.encode(text))
        cfg = TransformerConfig(vocab_size=tok.vocab_size, max_seq_len=24,
                                d_model=32, num_heads=4, num_layers=2)
        model = TransformerLM(cfg, rng=seed)
        history = train_lm_on_stream(model, ids, num_steps=steps,
                                     batch_size=16, seq_len=24, lr=3e-3,
                                     seed=seed)
        rows.append([distinct, len(ids),
                     float(np.mean(history.losses[-10:])),
                     model.cross_entropy_on(holdout_ids, seq_len=24)])
    return {"rows": rows}


def report(result) -> str:
    lines = [banner("Data diversity — equal token count, varying distinct "
                    "sentences")]
    lines.append(fmt_table(
        ["distinct sentences", "train tokens", "final train loss",
         "held-out loss"],
        result["rows"],
    ))
    lines.append("shape: duplicated corpora reach lower TRAIN loss "
                 "(memorisation is easy) but worse HELD-OUT loss; diversity "
                 "wins at fixed token budget.")
    return "\n".join(lines)


def test_data_diversity(benchmark):
    result = benchmark.pedantic(run, kwargs={"steps": 300 * scale()},
                                rounds=1, iterations=1)
    print(report(result))
    rows = result["rows"]
    holdout = {distinct: loss for distinct, _n, _t, loss in rows}
    assert holdout[500] < holdout[50] < holdout[5]
    # token budgets comparable across conditions (within 40%)
    token_counts = [n for _d, n, _t, _h in rows]
    assert max(token_counts) < min(token_counts) * 1.4
    # the duplicated corpus memorises: lowest train loss
    train = {distinct: t for distinct, _n, t, _h in rows}
    assert train[5] < train[500]


if __name__ == "__main__":
    raise SystemExit(bench_main("data_diversity", lambda: run(steps=300 * scale()), report))
