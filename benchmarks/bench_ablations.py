"""Ablations — the §6 design choices, turned off one at a time.

DESIGN.md calls out three ablatable ingredients of the transformer
recipe; each has a paper-backed expectation:

* positional encoding (Eq. 15 / learned / none): without positions the
  model is permutation-invariant and cannot fit sequential structure, so
  its loss is clearly worse; learned and sinusoidal are comparable.
* residual connections: removing them hurts optimisation.
* pre- vs post-layer-norm: both train at this depth (pre-LN's advantage
  is stability at large depth); the ablation documents the comparison.
* local (windowed) attention: the §6-cited fix for the O(L^2) cost.
  Noteworthy measured result: with 2 layers a window of 4 composes to an
  effective receptive field of ~8 positions — enough for these episodes —
  and the locality prior *helps* at this training budget (the sparse
  variant matches or beats full attention, which is exactly why sparse
  attention is viable in practice).
"""

import numpy as np

from _util import banner, bench_main, fmt_table, scale

from repro.benchsuite import SUITE_ALPHABET, CopyTask, ReverseTask, mixture_text
from repro.core import TransformerConfig, TransformerLM
from repro.data import CharTokenizer, Corpus
from repro.train import train_lm_on_stream


def build_corpus(seed: int = 5) -> Corpus:
    """Character-level copy/reverse episodes: order is load-bearing here,
    so the no-positions ablation has something real to lose."""
    rng = np.random.default_rng(seed)
    text = mixture_text([ReverseTask(4), CopyTask(4)], rng,
                        examples_per_task=500, shots=1)
    tok = CharTokenizer(SUITE_ALPHABET)
    return Corpus.from_ids(np.array(tok.encode(text)), tok.vocab_size,
                           test_fraction=0.1)


def _train(corpus: Corpus, steps: int, **overrides) -> float:
    cfg = TransformerConfig(vocab_size=corpus.vocab_size, max_seq_len=24,
                            d_model=32, num_heads=4, num_layers=2, **overrides)
    model = TransformerLM(cfg, rng=0)
    train_lm_on_stream(model, corpus.train_ids, num_steps=steps,
                       batch_size=16, seq_len=24, lr=3e-3, seed=0)
    return model.cross_entropy_on(corpus.test_ids, seq_len=24)


def run(steps: int = 300):
    corpus = build_corpus()
    rows = [
        ["baseline (learned pos, pre-LN, residual)",
         _train(corpus, steps)],
        ["sinusoidal positions (Eq. 15)",
         _train(corpus, steps, positional="sinusoidal")],
        ["NO positions (permutation-invariant)",
         _train(corpus, steps, positional="none")],
        ["post-LN (original Vaswani order)",
         _train(corpus, steps, pre_layernorm=False)],
        ["NO residual connections",
         _train(corpus, steps, use_residual=False)],
        ["local attention, window 4 (sparse; Child et al.)",
         _train(corpus, steps, attention_window=4)],
    ]
    return {"rows": [[name, round(loss, 4)] for name, loss in rows]}


def report(result) -> str:
    lines = [banner("Ablations — held-out loss with each ingredient removed")]
    lines.append(fmt_table(["variant", "held-out loss"], result["rows"]))
    return "\n".join(lines)


def test_ablations(benchmark):
    result = benchmark.pedantic(run, kwargs={"steps": 300 * scale()},
                                rounds=1, iterations=1)
    print(report(result))
    losses = dict(result["rows"])
    base = losses["baseline (learned pos, pre-LN, residual)"]
    # positions are load-bearing: removing them costs clearly
    assert losses["NO positions (permutation-invariant)"] > base + 0.1
    # sinusoidal is a competitive substitute for learned positions
    assert abs(losses["sinusoidal positions (Eq. 15)"] - base) < 0.5
    # residuals help optimisation at this budget
    assert losses["NO residual connections"] > base - 0.05
    # local attention stays competitive: layered windows compose to a
    # receptive field covering the episode (it may even win — locality is
    # a useful prior at this budget)
    assert abs(losses["local attention, window 4 (sparse; Child et al.)"]
               - base) < 0.5
    # all variants remain finite/trainable
    assert all(np.isfinite(v) for v in losses.values())


if __name__ == "__main__":
    raise SystemExit(bench_main("ablations", lambda: run(steps=300 * scale()), report))
