"""E15 — §3's in-context learning: few-shot task performance, no updates.

Train one character-level transformer on a mixture of few-shot episodes
across the task suite, then evaluate on *fresh* task instances with the
weights frozen.  Reproduced shapes: (a) held-out accuracy far above
chance — the model performs the tasks, not just the format; (b) accuracy
improves with the number of in-context examples (shots).
"""

import numpy as np

from _util import banner, bench_main, fmt_table, scale

from repro.benchsuite import (
    SUITE_ALPHABET,
    CopyTask,
    ModularArithmeticTask,
    ReverseTask,
    SuccessorTask,
    evaluate_task,
    leaderboard,
    mixture_text,
    shots_sweep,
)
from repro.core import TransformerConfig, TransformerLM
from repro.data import CharTokenizer
from repro.train import train_lm_on_stream

_TASKS = [CopyTask(length=3), ReverseTask(length=3), SuccessorTask(),
          ModularArithmeticTask(modulus=5)]
_SEQ_LEN = 48


def train_model(steps: int, seed: int = 0):
    rng = np.random.default_rng(seed)
    # episodes with varying shot counts so evaluation shots are in-domain
    text = "".join(
        mixture_text(_TASKS, rng, examples_per_task=300, shots=k)
        for k in (1, 2, 3)
    )
    tok = CharTokenizer(SUITE_ALPHABET)
    ids = np.array(tok.encode(text))
    cfg = TransformerConfig(vocab_size=tok.vocab_size, max_seq_len=_SEQ_LEN,
                            d_model=64, num_heads=4, num_layers=2)
    model = TransformerLM(cfg, rng=seed)
    train_lm_on_stream(model, ids, num_steps=steps, batch_size=16,
                       seq_len=_SEQ_LEN, lr=3e-3, seed=seed)
    return model, tok


def run(steps: int = 2000, seed: int = 0):
    model, tok = train_model(steps, seed)
    rng = np.random.default_rng(seed + 50)
    scores = [evaluate_task(model, tok, task, rng, num_queries=30, shots=3)
              for task in _TASKS]
    sweep = shots_sweep(model, tok, CopyTask(length=3), rng,
                        shot_counts=[1, 2, 3], num_queries=30)
    return {"scores": scores, "sweep": sweep}


def report(result) -> str:
    lines = [banner("In-context learning — frozen weights, fresh instances")]
    lines.append(leaderboard(result["scores"]))
    lines.append("\naccuracy vs number of in-context examples (copy task):")
    lines.append(fmt_table(["shots", "accuracy"],
                           [[s.shots, f"{s.accuracy:.1%}"]
                            for s in result["sweep"]]))
    return "\n".join(lines)


def test_in_context_learning(benchmark):
    result = benchmark.pedantic(run, kwargs={"steps": 2000 * scale()},
                                rounds=1, iterations=1)
    print(report(result))
    accuracies = {s.task_name: s.accuracy for s in result["scores"]}
    # at least one task is essentially solved ...
    assert max(accuracies.values()) > 0.9
    # ... and the 3-character tasks sit orders of magnitude above their
    # ~0.1% exact-match chance level (weights frozen, fresh instances)
    assert accuracies["copy_3"] > 0.2
    assert accuracies["reverse_3"] > 0.2
    assert np.mean(list(accuracies.values())) > 0.4
    sweep = {s.shots: s.accuracy for s in result["sweep"]}
    assert sweep[3] >= sweep[1] - 0.1  # more shots does not hurt


if __name__ == "__main__":
    raise SystemExit(bench_main("in_context_learning", lambda: run(steps=2000 * scale()), report))
