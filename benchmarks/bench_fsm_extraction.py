"""E17 — "realistic RNNs are finite state machines" (§5/§7 [26, 134]).

The constructive version of the complexity-class claim: train an RNN to
recognise Tomita regular languages, cluster its hidden states, read off a
DFA, and measure (a) fidelity — how often the extracted automaton agrees
with the network — and (b) language accuracy against the true grammar.
High-fidelity extraction of a *small* automaton is direct evidence the
network computes with finitely many effective states.
"""

import numpy as np

from _util import banner, bench_main, fmt_table, scale

from repro.formal import (
    RNNClassifier,
    extract_and_evaluate,
    sample_language_dataset,
    tomita,
)

_LANGUAGES = [1, 4, 5, 6]  # graded difficulty; 5/6 need counting mod 2/3


def run(epochs: int = 12, seed: int = 0):
    rows = []
    for index in _LANGUAGES:
        dfa = tomita(index)
        rng = np.random.default_rng(seed + index)
        strings, labels = sample_language_dataset(dfa, rng, 140, max_len=10)
        model = RNNClassifier(2, hidden_dim=16, rng=seed)
        model.fit(strings, labels, epochs=epochs, lr=1e-2, seed=seed)
        rnn_acc = model.accuracy(strings, labels)
        eval_strings, _ = sample_language_dataset(
            dfa, np.random.default_rng(seed + 100 + index), 60, max_len=10)
        result = extract_and_evaluate(model, dfa, strings, eval_strings,
                                      num_clusters=12, seed=seed)
        rows.append([f"Tomita {index}", dfa.minimized().num_states,
                     f"{rnn_acc:.2f}", result.dfa.num_states,
                     f"{result.fidelity:.2f}",
                     f"{result.language_accuracy:.2f}"])
    return {"rows": rows}


def report(result) -> str:
    lines = [banner("RNN -> DFA extraction on the Tomita languages")]
    lines.append(fmt_table(
        ["language", "true DFA states", "RNN train acc",
         "extracted states", "fidelity to RNN", "language acc"],
        result["rows"],
    ))
    lines.append("high fidelity + few states = the trained network is, "
                 "operationally, a finite state machine (§5's claim).")
    lines.append("Tomita 6 (counting mod 3) is the documented hard case: the "
                 "RNN learns it but its circular counter geometry resists "
                 "naive cluster extraction — the motivation for the "
                 "active-learning extraction methods of Weiss et al.")
    return "\n".join(lines)


def test_fsm_extraction(benchmark):
    result = benchmark.pedantic(run, kwargs={"epochs": 12 * scale()},
                                rounds=1, iterations=1)
    print(report(result))
    by_name = {row[0]: row for row in result["rows"]}
    easy = ["Tomita 1", "Tomita 4", "Tomita 5"]
    # the RNNs learn the languages...
    assert np.mean([float(by_name[n][2]) for n in easy]) > 0.9
    # ...and small automata reproduce most of their behaviour
    fidelities = [float(by_name[n][4]) for n in easy]
    assert min(fidelities) > 0.75
    assert max(fidelities) > 0.9
    assert all(int(row[3]) <= 12 for row in result["rows"])


if __name__ == "__main__":
    raise SystemExit(bench_main("fsm_extraction", lambda: run(epochs=12 * scale()), report))
