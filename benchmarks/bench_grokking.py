"""E6 — grokking: memorise first, generalise (much) later.

Power et al.'s curves on modular addition: training accuracy saturates
within a few hundred steps while test accuracy sits near chance, then
jumps to ~100% thousands of steps later.  Reproduced shapes: (a) a large
positive gap between train-saturation and test-jump steps; (b) the
weight-decay ablation — with decay 0 the model memorises identically but
never generalises.

This is the repo's longest single run, so it is fault-tolerant: set
``REPRO_CHECKPOINT_DIR=/some/dir`` to snapshot each sub-run every 500
steps and resume automatically after a kill (bit-identically; see
``docs/ARCHITECTURE.md``).
"""

import os

from _util import banner, bench_main, fmt_table, scale

from repro.phenomenology import run_grokking


def _ckpt(subdir: str) -> dict:
    """Checkpoint kwargs for one sub-run under REPRO_CHECKPOINT_DIR."""
    root = os.environ.get("REPRO_CHECKPOINT_DIR")
    if not root:
        return {}
    return {"checkpoint_dir": os.path.join(root, "grokking", subdir),
            "checkpoint_every": 500, "resume": True}


def run(steps: int = 6000):
    main = run_grokking(steps=steps, eval_every=100, seed=0, **_ckpt("main"))
    ablation = run_grokking(steps=min(steps, 3000), eval_every=100, seed=0,
                            weight_decay=0.0, **_ckpt("ablation"))
    return {"main": main, "ablation": ablation}


def report(result) -> str:
    main, ablation = result["main"], result["ablation"]
    lines = [banner("Grokking — modular addition (mod 13), quadratic MLP, "
                    "full-batch GD + weight decay")]
    sample = list(range(0, len(main.eval_steps), max(len(main.eval_steps) // 12, 1)))
    lines.append(fmt_table(
        ["step", "train acc", "test acc"],
        [[main.eval_steps[i], f"{main.train_acc[i]:.2f}",
          f"{main.test_acc[i]:.2f}"] for i in sample],
    ))
    t_train = main.step_reaching(main.train_acc, 0.99)
    t_test = main.step_reaching(main.test_acc, 0.9)
    lines.append(f"train accuracy >= 99% at step {t_train}")
    lines.append(f"test  accuracy >= 90% at step {t_test}")
    lines.append(f"grok gap: {main.grok_gap()} steps")
    lines.append(
        f"ablation (weight decay = 0): train >= 99% at "
        f"{ablation.step_reaching(ablation.train_acc, 0.99)}, final test "
        f"accuracy {ablation.test_acc[-1]:.2f} (never generalises)"
    )
    return "\n".join(lines)


def test_grokking(benchmark):
    result = benchmark.pedantic(run, kwargs={"steps": 6000 * scale()},
                                rounds=1, iterations=1)
    print(report(result))
    main, ablation = result["main"], result["ablation"]
    gap = main.grok_gap()
    assert gap is not None and gap > 500, "no delayed generalisation"
    assert main.test_acc[-1] > 0.9
    # ablation memorises but does not generalise
    assert ablation.step_reaching(ablation.train_acc, 0.99) is not None
    assert ablation.test_acc[-1] < 0.3


if __name__ == "__main__":
    raise SystemExit(bench_main("grokking", lambda: run(steps=6000 * scale()), report))
