"""E4 — Eq. 4: the joint L(P, D) scaling ansatz.

Train a grid of (architecture, dataset-size) pairs, then fit
``L(P, D) = [(P_c / P)^(alpha_P / alpha_D) + D_c / D]^alpha_D`` and report
the recovered exponents and fit quality.  The reproduced shape: the
ansatz fits the whole grid with one parameter set, and both exponents are
positive (more of either resource helps).
"""

import numpy as np

from _util import banner, bench_main, fmt_table, scale

from repro.phenomenology import SweepPoint, fit_joint_ansatz, train_point

from bench_fig2_scaling_laws import build_corpus

_ARCHS = [(4, 1, 1), (8, 1, 2), (16, 2, 2), (32, 2, 4)]
_TOKENS = [800, 3200, 12800]


def run(steps: int = 220, seed: int = 0):
    corpus = build_corpus()
    points: list[SweepPoint] = []
    for tokens in _TOKENS:
        sub = corpus.subset(tokens)
        for d_model, layers, heads in _ARCHS:
            _m, pt = train_point(sub, d_model, layers, heads, seq_len=32,
                                 steps=steps, seed=seed)
            points.append(pt)
    fit = fit_joint_ansatz([p.num_params for p in points],
                           [p.num_tokens for p in points],
                           [p.test_loss for p in points])
    return {"points": points, "fit": fit}


def report(result) -> str:
    fit = result["fit"]
    lines = [banner("Eq. 4 — joint loss ansatz over a (P, D) grid")]
    lines.append(fmt_table(
        ["params P", "tokens D", "test loss", "ansatz prediction"],
        [[p.num_params, p.num_tokens, p.test_loss,
          float(fit.predict(np.array([p.num_params]), np.array([p.num_tokens]))[0])]
         for p in result["points"]],
    ))
    lines.append(
        f"fit: alpha_P={fit.alpha_p:.3f}  alpha_D={fit.alpha_d:.3f}  "
        f"P_c={fit.p_c:.3g}  D_c={fit.d_c:.3g}  R^2={fit.r_squared:.3f}"
    )
    return "\n".join(lines)


def test_eq4_joint_fit(benchmark):
    result = benchmark.pedantic(run, kwargs={"steps": 220 * scale()},
                                rounds=1, iterations=1)
    print(report(result))
    fit = result["fit"]
    assert fit.alpha_p > 0 and fit.alpha_d > 0
    # At this scale the D-term dominates (alpha_P is tiny), so the fit
    # explains most but not all grid variance.
    assert fit.r_squared > 0.55
    # law-of-large-numbers direction: at fixed P, more data never hurts much
    by_arch: dict[int, list] = {}
    for p in result["points"]:
        by_arch.setdefault(p.num_params, []).append(p)
    for group in by_arch.values():
        group.sort(key=lambda p: p.num_tokens)
        assert group[-1].test_loss <= group[0].test_loss + 0.05


if __name__ == "__main__":
    raise SystemExit(bench_main("eq4_joint_fit", lambda: run(steps=220 * scale()), report))
