"""Throughput regression gate between two benchmark JSON records.

Compares a freshly produced ``BENCH_*.json`` against a committed
baseline and fails (exit 1) when any gated metric regresses by more
than ``--threshold`` (default 20%).  Gated metrics are numeric leaves
matched by key name: throughput-style (``tokens_per_sec``,
``throughput``) and efficiency ratios (``*speedup*``,
``*saving_ratio*``, ``*hit_rate*``, ``*accepted_tokens_per_step*``,
``*acceptance_rate*``) are higher-is-better; KV-memory capacity leaves
(``*bytes_per_request*``, ``*kv_peak_bytes*``) are lower-is-better and
fail when they *grow* past the threshold.  The PR 10 dtype-policy
metrics ride on those same tags: ``dtype_speedup_f32`` and
``kv_bytes_saving_ratio`` gate higher-is-better, so the float32 compute
path cannot silently lose its throughput or memory win.
Metric identity is the JSON path, so the two records must come from the
same bench; the tool refuses to compare different ``bench`` names or a
``--smoke`` record against a full one (override with ``--allow-mixed``
if you really mean it).

Improvements never fail the gate, and only metrics present in *both*
records are compared — except that a throughput metric present in the
baseline but missing from the fresh record is itself a failure (a
silently dropped phase is the oldest way to "fix" a regression).

Committed baselines live in ``benchmarks/baselines/`` (the root
``BENCH_*.json`` outputs are gitignored working artifacts).

Usage::

    python check_regression.py BASELINE FRESH [--threshold 0.2]
    python check_regression.py baselines/serving.json ../BENCH_serving.json
"""

import argparse
import json
import sys

# substrings of leaf key names treated as higher-is-better throughput
THROUGHPUT_TAGS = ("tokens_per_sec", "throughput", "tok_per_s")
# higher-is-better efficiency ratios (PR 8: paged-KV memory saving and
# prefix-cache TTFT win; PR 9: speculative acceptance per verify round)
# — gated exactly like throughput
RATIO_TAGS = ("speedup", "saving_ratio", "hit_rate",
              "accepted_tokens_per_step", "acceptance_rate")
# lower-is-better capacity metrics: fail when they *grow* past threshold
LOWER_BETTER_TAGS = ("bytes_per_request", "kv_peak_bytes")
# top-level subtrees that never carry comparable metrics
SKIP_SUBTREES = ("provenance", "model")


def numeric_leaves(obj, path=()):
    """Yield (path_tuple, value) for every numeric scalar in ``obj``."""
    if isinstance(obj, dict):
        for key, value in obj.items():
            yield from numeric_leaves(value, path + (str(key),))
    elif isinstance(obj, bool) or obj is None:
        return
    elif isinstance(obj, (int, float)):
        yield path, float(obj)
    # list elements have positional, not named, identity: not comparable


def _direction(key: str) -> str | None:
    """``"higher"``/``"lower"`` for gated leaf names, None for ungated."""
    if any(tag in key for tag in THROUGHPUT_TAGS + RATIO_TAGS):
        return "higher"
    if any(tag in key for tag in LOWER_BETTER_TAGS):
        return "lower"
    return None


def gated_metrics(record: dict) -> dict:
    """``{"path/to/metric": (value, direction)}`` for every gated leaf."""
    return {
        "/".join(path): (value, _direction(path[-1]))
        for path, value in numeric_leaves(record)
        if path and path[0] not in SKIP_SUBTREES and _direction(path[-1])
    }


def throughput_metrics(record: dict) -> dict:
    """``{"path/to/metric": value}`` for every throughput-style leaf."""
    return {
        name: value
        for name, (value, direction) in gated_metrics(record).items()
        if direction == "higher"
    }


def compare(baseline: dict, fresh: dict, threshold: float):
    """Returns (rows, failures): per-metric report + gate violations.

    Higher-is-better metrics (throughput, speedups, saving ratios) fail
    on a drop past ``threshold``; lower-is-better metrics (bytes per
    request) fail on *growth* past it.  Either way an improvement never
    fails, and a gated metric that vanished from the fresh record is
    itself a failure.
    """
    base_metrics = gated_metrics(baseline)
    fresh_metrics = gated_metrics(fresh)
    rows, failures = [], []
    for name in sorted(base_metrics):
        base_value, direction = base_metrics[name]
        if name not in fresh_metrics:
            failures.append(f"{name}: present in baseline, missing from "
                            "fresh record")
            continue
        fresh_value, _ = fresh_metrics[name]
        if base_value <= 0:
            rows.append((name, base_value, fresh_value, None))
            continue
        change = fresh_value / base_value - 1.0
        rows.append((name, base_value, fresh_value, change))
        if direction == "higher" and change < -threshold:
            failures.append(
                f"{name}: {base_value:.4g} -> {fresh_value:.4g} "
                f"({change:+.1%}, allowed -{threshold:.0%})")
        elif direction == "lower" and change > threshold:
            failures.append(
                f"{name}: {base_value:.4g} -> {fresh_value:.4g} "
                f"({change:+.1%} growth, allowed +{threshold:.0%})")
    return rows, failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline", help="committed benchmark JSON record")
    parser.add_argument("fresh", help="freshly produced record to gate")
    parser.add_argument("--threshold", type=float, default=0.2,
                        help="max tolerated fractional throughput drop "
                             "(default: %(default)s)")
    parser.add_argument("--allow-mixed", action="store_true",
                        help="compare records even when bench names or "
                             "smoke flags differ")
    args = parser.parse_args(argv)

    with open(args.baseline) as f:
        baseline = json.load(f)
    with open(args.fresh) as f:
        fresh = json.load(f)

    if not args.allow_mixed:
        if baseline.get("bench") != fresh.get("bench"):
            print(f"refusing to compare bench={baseline.get('bench')!r} "
                  f"against bench={fresh.get('bench')!r} "
                  "(--allow-mixed to override)", file=sys.stderr)
            return 2
        if bool(baseline.get("smoke")) != bool(fresh.get("smoke")):
            print("refusing to compare a --smoke record against a full "
                  "record (--allow-mixed to override)", file=sys.stderr)
            return 2

    rows, failures = compare(baseline, fresh, args.threshold)
    if not rows:
        print("no gated metrics found to compare", file=sys.stderr)
        return 2
    width = max(len(name) for name, *_ in rows)
    print(f"{'metric':<{width}}  {'baseline':>12}  {'fresh':>12}  change")
    for name, base_value, fresh_value, change in rows:
        shown = "n/a" if change is None else f"{change:+.1%}"
        print(f"{name:<{width}}  {base_value:>12.4g}  "
              f"{fresh_value:>12.4g}  {shown}")
    if failures:
        for failure in failures:
            print(f"REGRESSION: {failure}", file=sys.stderr)
        return 1
    print(f"OK: no gated metric regressed more than "
          f"{args.threshold:.0%}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
