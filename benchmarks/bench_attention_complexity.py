"""E12 — §6's complexity claims: parallel O(L^2) attention vs serial RNN.

Two claims to reproduce:

1. *Serial depth*: an RNN must perform L sequential state updates for a
   window of length L, while the transformer's computation graph depth is
   independent of L (its layers see all positions at once) — measured
   here exactly, not by timing.
2. *Total work*: the transformer's per-forward cost grows ~quadratically
   in L (every position attends to every earlier position) while the
   RNN's grows ~linearly — measured by wall-clock scaling exponents.
"""

import time

import numpy as np

from _util import banner, bench_main, fmt_table, scale

from repro.autograd import no_grad
from repro.core import TransformerConfig, TransformerLM
from repro.lm import RNNLM
from repro.phenomenology import attention_flops, fit_power_law

_LENGTHS = [32, 64, 128, 256, 512]
_VOCAB = 32


def _median_time(fn, repeats: int = 5) -> float:
    times = []
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        times.append(time.perf_counter() - start)
    return float(np.median(times))


def run(repeats: int = 5):
    cfg = TransformerConfig(vocab_size=_VOCAB, max_seq_len=max(_LENGTHS),
                            d_model=16, num_heads=4, num_layers=2)
    transformer = TransformerLM(cfg, rng=0)
    rnn = RNNLM(_VOCAB, embed_dim=16, hidden_dim=16, rng=0)
    rows = []
    tf_times, rnn_times = [], []
    for length in _LENGTHS:
        x = np.random.default_rng(0).integers(0, _VOCAB, size=(1, length))
        with no_grad():
            tf_t = _median_time(lambda: transformer.forward(x), repeats)
            rnn_t = _median_time(lambda: rnn.forward(x), repeats)
        tf_times.append(tf_t)
        rnn_times.append(rnn_t)
        rows.append([length, tf_t * 1e3, rnn_t * 1e3,
                     2,  # transformer graph depth in blocks — constant
                     rnn.sequential_steps(length),
                     attention_flops(length, 16, 2)])
    tf_fit = fit_power_law(_LENGTHS, tf_times)
    rnn_fit = fit_power_law(_LENGTHS, rnn_times)
    # fit_power_law models decay (L ~ x^-a); times grow, so negate.
    return {"rows": rows, "tf_exponent": -tf_fit.exponent,
            "rnn_exponent": -rnn_fit.exponent}


def report(result) -> str:
    lines = [banner("Attention vs recurrence — cost scaling with window L")]
    lines.append(fmt_table(
        ["L", "transformer ms", "RNN ms", "tf serial depth",
         "RNN serial steps", "attention FLOPs (2DL^2p)"],
        result["rows"],
    ))
    lines.append(f"wall-time scaling: transformer ~ L^{result['tf_exponent']:.2f} "
                 f"(theory: -> 2), RNN ~ L^{result['rnn_exponent']:.2f} (theory: 1)")
    lines.append("serial depth: transformer constant (parallelisable), RNN = L.")
    return "\n".join(lines)


def test_attention_complexity(benchmark):
    result = benchmark.pedantic(run, kwargs={"repeats": 5 * scale()},
                                rounds=1, iterations=1)
    print(report(result))
    rows = result["rows"]
    # serial-depth claim is exact
    assert all(row[3] == 2 for row in rows)
    assert [row[4] for row in rows] == _LENGTHS
    # total-work claim: transformer superlinear, RNN ~linear, and the
    # transformer's growth exponent exceeds the RNN's
    assert result["tf_exponent"] > 1.25
    assert 0.5 < result["rnn_exponent"] < 1.45
    assert result["tf_exponent"] > result["rnn_exponent"] + 0.15
    # attention FLOPs column is exactly quadratic
    assert rows[-1][5] / rows[0][5] == (rows[-1][0] / rows[0][0]) ** 2


if __name__ == "__main__":
    raise SystemExit(bench_main("attention_complexity", lambda: run(), report))
