"""E3 — Table 1: the model zoo (family, parameters, dataset size, quality).

The paper's Table 1 lists model families with parameter counts and
training-set sizes.  We regenerate the same columns for our from-scratch
zoo — unigram, N-grams, FFN LM, RNN, LSTM, and two transformer sizes —
plus the held-out perplexity each achieves on a shared corpus, which is
the quantity the table's growth was in service of.
"""

import numpy as np

from _util import banner, bench_main, fmt_table, scale

from repro.core import TransformerConfig, TransformerLM
from repro.data import Corpus, WordTokenizer
from repro.grammar import english_toy_pcfg, sample_treebank, treebank_text
from repro.lm import FFNLM, LSTMLM, RNNLM, InterpolatedNGramLM, NGramLM, UnigramLM, make_windows
from repro.nn import AdamW
from repro.train import train_lm_on_stream


def build_corpus(seed: int = 3) -> Corpus:
    rng = np.random.default_rng(seed)
    examples = sample_treebank(english_toy_pcfg(), 1500, rng, min_len=3, max_len=14)
    text = treebank_text(examples)
    tok = WordTokenizer(text)
    return Corpus.from_ids(np.array(tok.encode(text)), tok.vocab_size,
                           test_fraction=0.12)


def _train_neural(model, corpus, steps, seq_len=24):
    train_lm_on_stream(model, corpus.train_ids, num_steps=steps,
                       batch_size=16, seq_len=seq_len, lr=3e-3, seed=0)
    return model


def run(steps: int = 250):
    corpus = build_corpus()
    v, d = corpus.vocab_size, corpus.num_train_tokens
    rows = []

    def add(name, params, ppl):
        rows.append([name, params, d, round(ppl, 3)])

    uni = UnigramLM(v).fit(corpus.train_ids)
    add("unigram (Eq. 1)", v, uni.perplexity(corpus.test_ids))

    bi = NGramLM(v, order=2, add_k=0.1).fit(corpus.train_ids)
    add("bigram (Eq. 6)", bi.num_contexts() * 1, bi.perplexity(corpus.test_ids))

    tri = InterpolatedNGramLM(v, order=3).fit(corpus.train_ids)
    add("trigram (interp.)", sum(m.num_contexts() for m in tri._models),
        tri.perplexity(corpus.test_ids))

    ffn = FFNLM(v, window=4, embed_dim=16, hidden_dim=64, rng=0)
    ctx, tgt = make_windows(corpus.train_ids, 4)
    opt = AdamW(ffn.parameters(), lr=3e-3)
    rng = np.random.default_rng(0)
    for _ in range(steps):
        idx = rng.integers(0, len(tgt), size=32)
        ffn.zero_grad()
        ffn.loss(ctx[idx], tgt[idx]).backward()
        opt.step()
    add("FFN LM (Bengio)", ffn.num_parameters(),
        ffn.perplexity(corpus.test_ids[:400]))

    rnn = _train_neural(RNNLM(v, embed_dim=16, hidden_dim=32, rng=0), corpus, steps)
    add("RNN (Eq. 12)", rnn.num_parameters(), rnn.perplexity(corpus.test_ids[:400]))

    lstm = _train_neural(LSTMLM(v, embed_dim=16, hidden_dim=32, rng=0), corpus, steps)
    add("LSTM", lstm.num_parameters(), lstm.perplexity(corpus.test_ids[:400]))

    for label, (dm, layers, heads) in [("transformer-S", (16, 1, 2)),
                                       ("transformer-M", (32, 2, 4))]:
        cfg = TransformerConfig(vocab_size=v, max_seq_len=24, d_model=dm,
                                num_heads=heads, num_layers=layers)
        model = _train_neural(TransformerLM(cfg, rng=0), corpus, steps)
        add(label + " (§6)", model.num_parameters(),
            model.perplexity_on(corpus.test_ids, seq_len=24))

    return {"rows": rows, "vocab": v, "tokens": d}


def report(result) -> str:
    lines = [banner("Table 1 — model zoo: family, parameters, dataset, perplexity")]
    lines.append(fmt_table(["model", "params / contexts", "train tokens D",
                            "test perplexity"], result["rows"]))
    lines.append(f"(vocabulary |W| = {result['vocab']})")
    return "\n".join(lines)


def test_table1_model_zoo(benchmark):
    result = benchmark.pedantic(run, kwargs={"steps": 250 * scale()},
                                rounds=1, iterations=1)
    print(report(result))
    ppl = {row[0].split(" ")[0]: row[3] for row in result["rows"]}
    # The load-bearing orderings from §5:
    assert ppl["bigram"] < ppl["unigram"]
    assert ppl["transformer-M"] < ppl["unigram"]
    best_neural = min(ppl["transformer-M"], ppl["LSTM"], ppl["RNN"], ppl["FFN"])
    assert best_neural < ppl["bigram"] * 1.5


if __name__ == "__main__":
    raise SystemExit(bench_main("table1_model_zoo", lambda: run(steps=250 * scale()), report))
