"""E5 — Eq. 9: word-vector arithmetic (king - man + woman ~ queen).

Build embeddings from corpus co-occurrence statistics (co-occurrence ->
PPMI -> truncated SVD) and score analogy top-1 accuracy as a function of
the embedding dimension.  Reproduced shapes: (a) the analogies work at
all — from counts alone; (b) accuracy rises with dimension and saturates
(the paper: "empirically one needs p >~ 100"; our scaled-down world
saturates at a few dozen dimensions).
"""

import numpy as np

from _util import banner, bench_main, fmt_table, scale

from repro.data import (
    WordTokenizer,
    attribute_world_corpus,
    capital_analogy_questions,
    gender_analogy_questions,
)
from repro.embeddings import (
    cooccurrence_matrix,
    evaluate_analogies,
    pmi_matrix,
    svd_embedding,
)

_DIMS = [2, 5, 10, 20, 40, 80]


def run(num_sentences: int = 6000, seed: int = 0):
    rng = np.random.default_rng(seed)
    text = attribute_world_corpus(rng, num_sentences=num_sentences)
    tok = WordTokenizer(text)
    ids = np.array(tok.encode(text))
    counts = cooccurrence_matrix(ids, tok.vocab_size, window=5)
    ppmi = pmi_matrix(counts)
    rows = []
    for dim in _DIMS:
        embeddings = svd_embedding(ppmi, dim=dim)
        gender = evaluate_analogies(embeddings, tok.vocab,
                                    gender_analogy_questions())
        capital = evaluate_analogies(embeddings, tok.vocab,
                                     capital_analogy_questions())
        rows.append([dim, gender.accuracy, capital.accuracy])
    # raw-count control at the best dimension (PPMI should beat raw counts)
    raw = svd_embedding(counts, dim=_DIMS[-1])
    raw_acc = evaluate_analogies(raw, tok.vocab, gender_analogy_questions()).accuracy
    return {"rows": rows, "raw_acc": raw_acc,
            "gender_total": len(gender_analogy_questions()),
            "capital_total": len(capital_analogy_questions())}


def report(result) -> str:
    lines = [banner("Eq. 9 — analogy accuracy vs embedding dimension")]
    lines.append(fmt_table(
        ["dim p", f"gender ({result['gender_total']} qs)",
         f"capitals ({result['capital_total']} qs)"],
        [[d, f"{g:.1%}", f"{c:.1%}"] for d, g, c in result["rows"]],
    ))
    lines.append(f"raw-count (no PPMI) control at p={_DIMS[-1]}: "
                 f"{result['raw_acc']:.1%} on gender analogies")
    return "\n".join(lines)


def test_eq9_analogies(benchmark):
    result = benchmark.pedantic(run, kwargs={"num_sentences": 6000 * scale()},
                                rounds=1, iterations=1)
    print(report(result))
    rows = result["rows"]
    by_dim = {d: (g, c) for d, g, c in rows}
    # dimension threshold shape: tiny dims fail, larger dims succeed
    assert by_dim[_DIMS[-1]][0] > 0.9
    assert by_dim[_DIMS[-1]][1] > 0.9
    assert by_dim[2][1] < by_dim[_DIMS[-1]][1]
    # accuracy is (weakly) increasing overall
    assert rows[-1][1] >= rows[0][1]


if __name__ == "__main__":
    raise SystemExit(bench_main("eq9_analogies", lambda: run(num_sentences=6000 * scale()), report))
