"""Shared helpers for the experiment benches.

Every bench runs at a "smoke" scale chosen so the whole harness finishes
on one CPU core in minutes.  Set ``REPRO_SCALE=N`` (integer >= 1) to
multiply training budgets for higher-fidelity curves; the qualitative
shapes reported in EXPERIMENTS.md hold at scale 1.
"""

from __future__ import annotations

import os


def scale() -> int:
    value = int(os.environ.get("REPRO_SCALE", "1"))
    return max(value, 1)


def fmt_table(headers: list[str], rows: list[list]) -> str:
    """Plain-text aligned table."""
    str_rows = [[_fmt(c) for c in row] for row in rows]
    widths = [max(len(h), *(len(r[i]) for r in str_rows)) if str_rows else len(h)
              for i, h in enumerate(headers)]
    lines = ["  ".join(h.ljust(w) for h, w in zip(headers, widths))]
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def _fmt(value) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1e4 or abs(value) < 1e-3:
            return f"{value:.3g}"
        return f"{value:.4g}"
    return str(value)


def banner(title: str) -> str:
    line = "=" * len(title)
    return f"\n{line}\n{title}\n{line}"
