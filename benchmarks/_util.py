"""Shared helpers for the experiment benches.

Every bench runs at a "smoke" scale chosen so the whole harness finishes
on one CPU core in minutes.  Set ``REPRO_SCALE=N`` (integer >= 1) to
multiply training budgets for higher-fidelity curves; the qualitative
shapes reported in EXPERIMENTS.md hold at scale 1.

PR 2 adds one instrumented record path shared by every bench:
:class:`BenchRun` is a context manager that times the run under a
:class:`repro.obs.Tracer` span and, on success, writes the bench's
result dict as a ``BENCH_*.json`` record stamped with shared
:func:`provenance` metadata (git sha, ``REPRO_SCALE``, numpy version,
ISO timestamp, config).  :func:`bench_main` wraps that into the uniform
CLI (``--out`` / ``--no-record`` / ``--trace``) each bench's
``__main__`` block delegates to.
"""

from __future__ import annotations

import argparse
import dataclasses
import datetime
import json
import os
import subprocess
import time


def scale() -> int:
    value = int(os.environ.get("REPRO_SCALE", "1"))
    return max(value, 1)


def fmt_table(headers: list[str], rows: list[list]) -> str:
    """Plain-text aligned table."""
    str_rows = [[_fmt(c) for c in row] for row in rows]
    widths = [max(len(h), *(len(r[i]) for r in str_rows)) if str_rows else len(h)
              for i, h in enumerate(headers)]
    lines = ["  ".join(h.ljust(w) for h, w in zip(headers, widths))]
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def _fmt(value) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1e4 or abs(value) < 1e-3:
            return f"{value:.3g}"
        return f"{value:.4g}"
    return str(value)


def banner(title: str) -> str:
    line = "=" * len(title)
    return f"\n{line}\n{title}\n{line}"


# ----------------------------------------------------------------------
# Provenance-stamped BENCH_*.json records
# ----------------------------------------------------------------------
_REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def _git_sha() -> str:
    try:
        out = subprocess.run(["git", "rev-parse", "HEAD"], cwd=_REPO_ROOT,
                             capture_output=True, text=True, timeout=10)
        if out.returncode == 0:
            return out.stdout.strip()
    except OSError:
        pass
    return "unknown"


def provenance(config: dict | None = None) -> dict:
    """Shared metadata stamped into every emitted BENCH record."""
    import platform

    import numpy as np

    from repro.dtypes import default_dtype

    return {
        "git_sha": _git_sha(),
        "repro_scale": scale(),
        "dtype": default_dtype().name,
        "numpy_version": np.__version__,
        "python_version": platform.python_version(),
        "timestamp": datetime.datetime.now(datetime.timezone.utc).isoformat(),
        "config": config or {},
    }


def _json_default(value):
    """Best-effort JSON coercion for bench results (dataclasses, NumPy)."""
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return dataclasses.asdict(value)
    if hasattr(value, "tolist"):          # np.ndarray and np scalars
        return value.tolist()
    if hasattr(value, "item"):
        return value.item()
    if isinstance(value, (set, frozenset)):
        return sorted(value)
    try:
        return float(value)
    except (TypeError, ValueError):
        return str(value)


def write_json(path, record: dict) -> None:
    with open(path, "w") as f:
        json.dump(record, f, indent=2, default=_json_default)
        f.write("\n")


class BenchRun:
    """Context manager: the one instrumented path for BENCH records.

    Usage::

        with BenchRun("my_bench", out="BENCH_my_bench.json") as br:
            result = run()
            br.record(result)

    On clean exit the record — the result dict plus ``provenance`` and
    ``wall_seconds`` — is written to ``out`` (skipped when ``out`` is
    None).  The whole run is timed under a ``bench.<name>`` span on
    ``br.obs.tracer``; benches may pass ``br.obs`` down into
    engines/trainers for finer spans, and ``trace_out`` additionally
    writes the Chrome trace JSON next to the record.
    """

    def __init__(self, name: str, out=None, config: dict | None = None,
                 trace_out=None, obs=None):
        from repro.obs import Observability

        self.name = name
        self.out = out
        self.config = config
        self.trace_out = trace_out
        self.obs = obs if obs is not None else Observability.standard()
        self.result: dict | None = None
        self.wall_seconds = 0.0

    def record(self, result: dict) -> None:
        self.result = result

    def __enter__(self) -> "BenchRun":
        self._span = self.obs.tracer.span(f"bench.{self.name}")
        self._span.__enter__()
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb):
        self.wall_seconds = time.perf_counter() - self._t0
        self._span.__exit__(exc_type, exc, tb)
        if exc_type is not None:
            return False
        record = dict(self.result or {})
        record.setdefault("bench", self.name)
        record["provenance"] = provenance(self.config)
        record["wall_seconds"] = self.wall_seconds
        if self.out is not None:
            write_json(self.out, record)
        if self.trace_out is not None:
            self.obs.tracer.write_chrome(self.trace_out)
        return False


def bench_main(name: str, run_fn, report_fn, argv=None,
               config: dict | None = None) -> int:
    """Uniform bench CLI: run under a :class:`BenchRun`, print the report,
    write the provenance-stamped JSON record.

    ``run_fn()`` produces the result dict (close over scale()-dependent
    kwargs at the call site); ``report_fn(result)`` renders the
    human-readable report.
    """
    parser = argparse.ArgumentParser(description=f"bench: {name}")
    parser.add_argument("--out", default=f"BENCH_{name}.json",
                        help="path for the JSON record (default: %(default)s)")
    parser.add_argument("--no-record", action="store_true",
                        help="skip writing the JSON record")
    parser.add_argument("--trace", default=None, metavar="PATH",
                        help="also write a Chrome trace of the run")
    args = parser.parse_args(argv)
    out = None if args.no_record else args.out
    with BenchRun(name, out=out, config=config, trace_out=args.trace) as br:
        br.record(run_fn())
    print(report_fn(br.result))
    if out is not None:
        print(f"record written to {out}")
    if args.trace is not None:
        print(f"trace written to {args.trace} (open in chrome://tracing)")
    return 0
