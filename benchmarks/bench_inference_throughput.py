"""E20 — decode-path throughput: batched engine vs sequential generate_fast.

The serving claim behind ``repro.infer``: one preallocated-KV
:class:`GenerationEngine` step advances B sequences for roughly the cost
of one, so tokens/sec should scale with batch size while N sequential
``generate_fast`` calls scale with user count.  Measured here as
end-to-end generated-tokens-per-second on the same prompt set, single
stream vs engine at several batch sizes, and emitted as a
``BENCH_inference.json`` record for regression tracking.

The engines run with full :mod:`repro.obs` instrumentation on —
per-step spans, engine metrics, request lifecycle events — both to
report serving latency (time-to-first-token, queue wait, occupancy) per
batch size and to demonstrate the PR 2 acceptance bar: instrumented
decoding is bit-identical to ``generate_fast`` and within a few percent
of its uninstrumented throughput.  ``--trace`` dumps the Chrome trace.

Two PR 8 phases ride along in the same record: ``memory`` runs the
workload on the dense and paged KV backends, asserts bit-identical
outputs, and reports held KV bytes per concurrent request (the paged
pool only pays for pages actually written); ``prefix`` decodes requests
sharing a 48-token system prompt and reports cold-vs-warm TTFT and
prefill steps — warm requests reuse the cached prompt pages and skip
the covered positions.

A PR 9 ``speculative`` phase decodes a highly-predictable greedy copy
workload twice — plain engine vs the same engine with an order-4
n-gram draft (:class:`~repro.lm.LanguageModelDraft`) at k=4 — asserts
the outputs are bit-identical (the speculative acceptance bar), and
reports accepted-tokens-per-step plus the wall-clock and model-step
speedups.  The draft is fit on the baseline's own greedy outputs
(self-distillation): the randomly-initialised target is not predictable
from any external corpus, so this mirrors the deployed setup where the
draft approximates the target, not the data.

A ``dtype`` phase compares the same greedy decode workload on a float32
model (``TransformerConfig(dtype="float32")``) against the float64
default: the KV pool follows the model's parameter dtype, so the phase
reports both the decode tokens/sec ratio (``dtype_speedup_f32``) and the
KV-bytes ratio (``kv_bytes_saving_ratio`` ~= 2.0) — both regression-
gated, so the float32 path cannot silently lose its wins.

``--smoke`` runs a seconds-scale configuration and asserts the batched
engine at full batch is at least as fast as the single stream, the
paged backend saves >=2x KV memory per request, float32 halves KV
bytes, warm requests hit the prefix cache, and speculative decoding
cuts model steps while staying bit-identical; the tier-1 test suite
invokes it so decode-path perf and KV-memory regressions fail loudly.
"""

import argparse
import sys
import time

import numpy as np

from _util import BenchRun, banner, fmt_table, scale

from repro.core import TransformerConfig, TransformerLM
from repro.infer import GenerationEngine, SamplingParams, SpeculativeConfig
from repro.lm import LanguageModelDraft, NGramLM
from repro.obs import Observability

_GREEDY = SamplingParams(greedy=True)

_BATCH_SIZES = [1, 2, 4, 8]
_NUM_PROMPTS = 8
_PROMPT_LEN = 8


def _build(smoke: bool,
           dtype: str | None = None) -> tuple[TransformerLM, list[list[int]], int]:
    cfg = TransformerConfig(
        vocab_size=64,
        max_seq_len=96 if smoke else 160,
        d_model=32 if smoke else 64,
        num_heads=4,
        num_layers=2 if smoke else 4,
        dtype=dtype,
    )
    model = TransformerLM(cfg, rng=0)
    rng = np.random.default_rng(1)
    prompts = [list(rng.integers(0, cfg.vocab_size, size=_PROMPT_LEN))
               for _ in range(_NUM_PROMPTS)]
    max_new = (16 if smoke else 64) * scale()
    max_new = min(max_new, cfg.max_seq_len - _PROMPT_LEN)
    return model, prompts, max_new


def _memory_phase(model, prompts, max_new) -> dict:
    """KV memory per concurrent request: dense buffer vs paged pool.

    Runs the same workload on both backends, asserts the outputs are
    bit-identical (the PR 8 acceptance bar), and reports held KV bytes
    per concurrent request — the dense cache pays ``max_seq_len``
    positions per slot up front, the paged pool only what the sequences
    actually used at peak.
    """
    batch = len(prompts)
    dense = GenerationEngine(model, batch_size=batch, params=_GREEDY,
                             paged=False)
    dense_out = dense.generate(prompts, max_new)
    dense_bytes = dense.cache.nbytes

    paged = GenerationEngine(model, batch_size=batch, params=_GREEDY)
    paged_out = paged.generate(prompts, max_new)
    assert paged_out == dense_out, "paged engine diverged from dense"
    cache = paged.cache
    paged_bytes = cache.peak_pages_used * cache.page_bytes
    return {
        "batch_size": batch,
        "dense_kv_bytes": dense_bytes,
        "paged_kv_peak_bytes": paged_bytes,
        "dense_kv_bytes_per_request": dense_bytes / batch,
        "paged_kv_bytes_per_request": paged_bytes / batch,
        "memory_saving_ratio": dense_bytes / paged_bytes,
        "page_size": cache.page_size,
        "peak_pages_used": cache.peak_pages_used,
        "pool_pages": cache.num_pages,
        "bit_identical_to_dense": True,   # the assert above just proved it
    }


def _prefix_phase(model) -> dict:
    """Cache-hit TTFT: requests sharing a system prompt skip its prefill.

    One cold request pays the full prompt; each warm request reuses the
    cached system-prompt pages and prefills only its unique suffix.
    Decode *steps* per request are reported alongside wall-clock TTFT —
    steps are deterministic, so the speedup gate cannot flake on a busy
    machine.
    """
    rng = np.random.default_rng(2)
    system = list(rng.integers(0, model.config.vocab_size, size=48))
    suffixes = [list(rng.integers(0, model.config.vocab_size, size=4))
                for _ in range(6)]
    max_new = 8
    engine = GenerationEngine(model, batch_size=1, params=_GREEDY)
    ttfts, steps = [], []
    for suffix in suffixes:
        before = engine.total_steps
        engine.submit(system + suffix, max_new)
        result = engine.run()[0]
        steps.append(engine.total_steps - before)
        ttfts.append(result.timing.ttft_s)
        assert result.tokens == model.generate_fast(
            system + suffix, max_new, greedy=True), \
            "prefix-cache hit changed the sampled tokens"
    stats = engine.stats()["kv"]["prefix_cache"]
    warm_ttft = float(np.mean(ttfts[1:]))
    warm_steps = float(np.mean(steps[1:]))
    return {
        "system_prompt_len": len(system),
        "num_requests": len(suffixes),
        "cold_ttft_s": ttfts[0],
        "warm_ttft_mean_s": warm_ttft,
        "ttft_speedup": ttfts[0] / warm_ttft if warm_ttft > 0 else 0.0,
        "cold_prefill_steps": steps[0],
        "warm_prefill_steps_mean": warm_steps,
        "step_speedup": steps[0] / warm_steps if warm_steps else 0.0,
        "prefix_hits": stats["hits"],
        "prefix_hit_rate": stats["hits"] / len(suffixes),
        "hit_tokens": stats["hit_tokens"],
        "warm_matches_reference": True,   # asserted per request above
    }


def _speculative_phase(model, smoke: bool) -> dict:
    """Speculative decoding speedup on a predictable greedy workload.

    The baseline engine decodes a copy-style prompt set (tiled short
    motifs — the kind of low-entropy continuation speculative decoding
    is built for); an order-4 n-gram draft is then fit on the baseline's
    *own* outputs and the same engine re-runs with
    ``SpeculativeConfig(k=4)``.  Outputs must be bit-identical — the
    draft only moves *when* tokens are emitted, never *which*.  Both
    wall-clock tokens/sec and deterministic model-step counts are
    reported; smoke gating uses the step ratio so a busy machine cannot
    flake the tier-1 suite.
    """
    vocab = model.config.vocab_size
    rng = np.random.default_rng(3)
    prompts = []
    for _ in range(4):
        motif = list(rng.integers(0, vocab, size=4))
        prompts.append((motif * 4)[:16])
    max_new = 24 if smoke else 64
    max_new = min(max_new, model.config.max_seq_len - 16 - 1)

    base = GenerationEngine(model, batch_size=1, params=_GREEDY)
    start = time.perf_counter()
    base_out = base.generate(prompts, max_new)
    base_s = time.perf_counter() - start
    base_steps = base.total_steps

    # Self-distilled draft: the n-gram learns the target's own greedy
    # continuations, so its proposals track what the verifier will emit.
    ngram = NGramLM(vocab_size=vocab, order=4, add_k=0.01)
    for seq in base_out:
        ngram.fit(np.asarray(seq, dtype=np.int64))

    spec = GenerationEngine(
        model, batch_size=1, params=_GREEDY,
        speculative=SpeculativeConfig(draft=LanguageModelDraft(ngram), k=4))
    start = time.perf_counter()
    spec_out = spec.generate(prompts, max_new)
    spec_s = time.perf_counter() - start
    assert spec_out == base_out, "speculative decoding changed greedy output"

    stats = spec.stats()["spec"]
    generated = sum(len(seq) - 16 for seq in base_out)
    return {
        "k": stats["k"],
        "draft": stats["draft"],
        "num_prompts": len(prompts),
        "max_new_tokens": max_new,
        "generated_tokens": generated,
        "baseline_seconds": base_s,
        "baseline_tokens_per_sec": generated / base_s,
        "baseline_model_steps": base_steps,
        "spec_seconds": spec_s,
        "spec_tokens_per_sec": generated / spec_s,
        "spec_model_steps": spec.total_steps,
        "spec_speedup": base_s / spec_s,
        "step_speedup": base_steps / spec.total_steps,
        "acceptance_rate": stats["acceptance_rate"],
        "accepted_tokens_per_step": stats["accepted_tokens_per_step"],
        "bit_identical_to_baseline": True,   # the assert above just proved it
    }


def _dtype_phase(model_f64, prompts, max_new, smoke: bool) -> dict:
    """Float32 vs float64 decode: tokens/sec and KV pool bytes.

    Builds a float32 twin of the bench model from the same config and
    seed (initializers draw in float64 and cast, so the parameters are
    the same numbers rounded) and decodes the same prompt set greedily
    on both.  The KV pool follows the model's parameter dtype via
    :func:`repro.infer.kv_value_dtype`, so the bytes ratio is exactly
    the itemsize ratio — 2.0 — while the pool geometry (pages, slots)
    is unchanged.  Greedy outputs are *recorded* as matching or not but
    deliberately not asserted: argmax ties may legitimately break
    differently at single precision.
    """
    model_f32, _, _ = _build(smoke, dtype="float32")
    batch = len(prompts)

    def _decode(model):
        engine = GenerationEngine(model, batch_size=batch, params=_GREEDY)
        start = time.perf_counter()
        out = engine.generate(prompts, max_new)
        seconds = time.perf_counter() - start
        cache = engine.cache
        return out, seconds, cache.peak_pages_used * cache.page_bytes, cache

    out64, s64, bytes64, cache64 = _decode(model_f64)
    out32, s32, bytes32, cache32 = _decode(model_f32)
    generated = sum(len(o) for o in out64) - batch * _PROMPT_LEN
    return {
        "batch_size": batch,
        "generated_tokens": generated,
        "float64": {"seconds": s64, "tokens_per_sec": generated / s64,
                    "kv_peak_bytes": bytes64, "kv_dtype": cache64.dtype.name},
        "float32": {"seconds": s32, "tokens_per_sec": generated / s32,
                    "kv_peak_bytes": bytes32, "kv_dtype": cache32.dtype.name},
        "dtype_speedup_f32": s64 / s32,
        "kv_bytes_saving_ratio": bytes64 / bytes32,
        "greedy_tokens_match": out32 == out64,
    }


def run(smoke: bool = False, obs: Observability | None = None) -> dict:
    model, prompts, max_new = _build(smoke)
    generated = len(prompts) * max_new

    start = time.perf_counter()
    sequential_out = [model.generate_fast(p, max_new, greedy=True) for p in prompts]
    sequential_s = time.perf_counter() - start

    batched = []
    for batch_size in _BATCH_SIZES:
        engine = GenerationEngine(model, batch_size=batch_size, params=_GREEDY,
                                  obs=obs)
        start = time.perf_counter()
        for prompt in prompts:
            engine.submit(prompt, max_new)
        results = engine.run()
        seconds = time.perf_counter() - start
        out = [r.tokens for r in results]
        assert out == sequential_out, "engine diverged from generate_fast"
        timings = [r.timing for r in results]
        batched.append({
            "batch_size": batch_size,
            "seconds": seconds,
            "tokens_per_sec": generated / seconds,
            "model_steps": engine.total_steps,
            "mean_ttft_s": float(np.mean([t.ttft_s for t in timings])),
            "mean_queue_wait_s": float(np.mean([t.queue_wait_s for t in timings])),
            "occupancy": engine.stats()["occupancy"],
        })

    sequential_tps = generated / sequential_s
    full_batch = batched[-1]
    return {
        "bench": "inference_throughput",
        "smoke": smoke,
        "model": model.config.to_dict(),
        "num_prompts": len(prompts),
        "prompt_len": _PROMPT_LEN,
        "max_new_tokens": max_new,
        "generated_tokens": generated,
        "sequential": {"seconds": sequential_s, "tokens_per_sec": sequential_tps},
        "batched": batched,
        "speedup_at_full_batch": full_batch["tokens_per_sec"] / sequential_tps,
        "memory": _memory_phase(model, prompts, max_new),
        "prefix": _prefix_phase(model),
        "speculative": _speculative_phase(model, smoke),
        "dtype": _dtype_phase(model, prompts, max_new, smoke),
    }


def report(result: dict) -> str:
    lines = [banner("Batched inference throughput — engine vs sequential decode")]
    seq = result["sequential"]
    rows = [["sequential x8", 1, seq["seconds"], seq["tokens_per_sec"], 1.0,
             "-", "-"]]
    for entry in result["batched"]:
        rows.append(["engine", entry["batch_size"], entry["seconds"],
                     entry["tokens_per_sec"],
                     entry["tokens_per_sec"] / seq["tokens_per_sec"],
                     entry["mean_ttft_s"] * 1e3, entry["occupancy"]])
    lines.append(fmt_table(
        ["mode", "batch", "seconds", "tokens/sec", "speedup",
         "ttft ms", "occupancy"], rows))
    lines.append(
        f"{result['generated_tokens']} tokens generated per mode "
        f"({result['num_prompts']} prompts x {result['max_new_tokens']} new); "
        f"full-batch speedup {result['speedup_at_full_batch']:.1f}x"
    )
    memory = result["memory"]
    lines.append(banner("Paged KV memory — held bytes per concurrent request"))
    lines.append(fmt_table(
        ["backend", "bytes/request", "total bytes", "pages"],
        [["dense", memory["dense_kv_bytes_per_request"],
          memory["dense_kv_bytes"], "-"],
         ["paged (peak)", memory["paged_kv_bytes_per_request"],
          memory["paged_kv_peak_bytes"],
          f"{memory['peak_pages_used']}/{memory['pool_pages']}"]]))
    lines.append(
        f"paged engine holds {memory['memory_saving_ratio']:.1f}x less KV "
        f"memory at peak, bit-identical outputs")
    prefix = result["prefix"]
    lines.append(banner("Prefix cache — shared system prompt TTFT"))
    lines.append(fmt_table(
        ["request", "prefill steps", "ttft ms"],
        [["cold (1st)", prefix["cold_prefill_steps"],
          prefix["cold_ttft_s"] * 1e3],
         ["warm (mean)", prefix["warm_prefill_steps_mean"],
          prefix["warm_ttft_mean_s"] * 1e3]]))
    lines.append(
        f"{prefix['prefix_hits']}/{prefix['num_requests']} requests hit the "
        f"cache ({prefix['hit_tokens']} tokens reused); "
        f"TTFT speedup {prefix['ttft_speedup']:.1f}x, "
        f"step speedup {prefix['step_speedup']:.1f}x")
    spec = result["speculative"]
    lines.append(banner("Speculative decoding — n-gram draft, k="
                        + str(spec["k"])))
    lines.append(fmt_table(
        ["mode", "seconds", "tokens/sec", "model steps"],
        [["baseline greedy", spec["baseline_seconds"],
          spec["baseline_tokens_per_sec"], spec["baseline_model_steps"]],
         ["speculative", spec["spec_seconds"],
          spec["spec_tokens_per_sec"], spec["spec_model_steps"]]]))
    lines.append(
        f"{spec['accepted_tokens_per_step']:.2f} accepted tokens/step at "
        f"{spec['acceptance_rate']:.0%} acceptance; "
        f"{spec['spec_speedup']:.1f}x tokens/sec, "
        f"{spec['step_speedup']:.1f}x fewer model steps, "
        f"bit-identical outputs")
    dtype = result["dtype"]
    lines.append(banner("Dtype policy — float32 vs float64 decode"))
    lines.append(fmt_table(
        ["dtype", "seconds", "tokens/sec", "peak KV bytes"],
        [["float64", dtype["float64"]["seconds"],
          dtype["float64"]["tokens_per_sec"],
          dtype["float64"]["kv_peak_bytes"]],
         ["float32", dtype["float32"]["seconds"],
          dtype["float32"]["tokens_per_sec"],
          dtype["float32"]["kv_peak_bytes"]]]))
    lines.append(
        f"float32 decodes {dtype['dtype_speedup_f32']:.2f}x faster with "
        f"{dtype['kv_bytes_saving_ratio']:.1f}x lower peak KV bytes; greedy "
        f"tokens {'match' if dtype['greedy_tokens_match'] else 'differ (argmax ties)'}")
    return "\n".join(lines)


def test_inference_throughput(benchmark):
    result = benchmark.pedantic(run, rounds=1, iterations=1)
    print(report(result))
    # Batched decoding must beat the sequential stream decisively at
    # batch 8 over 8 sequential generate_fast calls.  The ratio's
    # denominator (single-stream tokens/sec) wanders +-20% run to run on
    # a busy core while the engine sits steady in its 4.5-6k tok/s band,
    # so the gate is 3.5x rather than the typical ~4-5x.
    assert result["speedup_at_full_batch"] >= 3.5
    # throughput should grow monotonically-ish with batch size
    tps = [entry["tokens_per_sec"] for entry in result["batched"]]
    assert tps[-1] > tps[0]
    # PR 8 acceptance: >=2x lower KV memory per concurrent short request,
    # and prefix hits must cut prefill steps (deterministic, never flaky)
    assert result["memory"]["memory_saving_ratio"] >= 2.0
    assert result["memory"]["bit_identical_to_dense"]
    prefix = result["prefix"]
    assert prefix["prefix_hits"] == prefix["num_requests"] - 1
    assert prefix["warm_prefill_steps_mean"] < prefix["cold_prefill_steps"] / 3
    # PR 9 acceptance: speculative decoding must stay bit-identical and
    # cut model steps decisively (deterministic, never flaky); wall-clock
    # speedup is recorded and regression-gated, not asserted here.
    spec = result["speculative"]
    assert spec["bit_identical_to_baseline"]
    assert spec["step_speedup"] >= 1.5
    assert spec["accepted_tokens_per_step"] >= 1.0
    # Dtype policy acceptance: the float32 KV pool must hold exactly half
    # the bytes of the float64 pool (deterministic — itemsize ratio).
    assert result["dtype"]["kv_bytes_saving_ratio"] == 2.0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="fast mode: tiny model, asserts batched >= sequential")
    parser.add_argument("--out", default="BENCH_inference.json",
                        help="path for the JSON record (default: %(default)s)")
    parser.add_argument("--no-record", action="store_true",
                        help="skip writing the JSON record")
    parser.add_argument("--trace", default=None, metavar="PATH",
                        help="also write a Chrome trace of the engine runs")
    args = parser.parse_args(argv)
    obs = Observability.standard()
    out = None if args.no_record else args.out
    with BenchRun("inference_throughput", out=out, trace_out=args.trace,
                  obs=obs) as br:
        br.record(run(smoke=args.smoke, obs=obs))
    result = br.result
    print(report(result))
    if out is not None:
        print(f"record written to {out}")
    if args.trace is not None:
        print(f"trace written to {args.trace} (open in chrome://tracing)")
    if args.smoke:
        if result["speedup_at_full_batch"] < 1.0:
            print("SMOKE FAIL: batched engine slower than sequential decode",
                  file=sys.stderr)
            return 1
        if result["memory"]["memory_saving_ratio"] < 2.0:
            print("SMOKE FAIL: paged KV saves <2x memory per request",
                  file=sys.stderr)
            return 1
        prefix = result["prefix"]
        if prefix["prefix_hits"] < prefix["num_requests"] - 1:
            print("SMOKE FAIL: warm requests missed the prefix cache",
                  file=sys.stderr)
            return 1
        spec = result["speculative"]
        if spec["step_speedup"] < 1.5:
            print("SMOKE FAIL: speculative decoding saved "
                  f"<1.5x model steps ({spec['step_speedup']:.2f}x)",
                  file=sys.stderr)
            return 1
        if result["dtype"]["kv_bytes_saving_ratio"] != 2.0:
            print("SMOKE FAIL: float32 KV pool is not half the float64 pool",
                  file=sys.stderr)
            return 1
        print("SMOKE OK: batched >= sequential tokens/sec, "
              f"{result['memory']['memory_saving_ratio']:.1f}x KV saving, "
              f"{prefix['step_speedup']:.1f}x prefill-step win on cache hits, "
              f"{spec['step_speedup']:.1f}x speculative step win, "
              f"float32 halves KV bytes")
    return 0


if __name__ == "__main__":
    sys.exit(main())
