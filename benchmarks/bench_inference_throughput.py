"""E20 — decode-path throughput: batched engine vs sequential generate_fast.

The serving claim behind ``repro.infer``: one preallocated-KV
:class:`GenerationEngine` step advances B sequences for roughly the cost
of one, so tokens/sec should scale with batch size while N sequential
``generate_fast`` calls scale with user count.  Measured here as
end-to-end generated-tokens-per-second on the same prompt set, single
stream vs engine at several batch sizes, and emitted as a
``BENCH_inference.json`` record for regression tracking.

``--smoke`` runs a seconds-scale configuration and asserts the batched
engine at full batch is at least as fast as the single stream; the
tier-1 test suite invokes it so decode-path perf regressions fail loudly.
"""

import argparse
import json
import sys
import time

import numpy as np

from _util import banner, fmt_table, scale

from repro.core import TransformerConfig, TransformerLM
from repro.infer import GenerationEngine

_BATCH_SIZES = [1, 2, 4, 8]
_NUM_PROMPTS = 8
_PROMPT_LEN = 8


def _build(smoke: bool) -> tuple[TransformerLM, list[list[int]], int]:
    cfg = TransformerConfig(
        vocab_size=64,
        max_seq_len=96 if smoke else 160,
        d_model=32 if smoke else 64,
        num_heads=4,
        num_layers=2 if smoke else 4,
    )
    model = TransformerLM(cfg, rng=0)
    rng = np.random.default_rng(1)
    prompts = [list(rng.integers(0, cfg.vocab_size, size=_PROMPT_LEN))
               for _ in range(_NUM_PROMPTS)]
    max_new = (16 if smoke else 64) * scale()
    max_new = min(max_new, cfg.max_seq_len - _PROMPT_LEN)
    return model, prompts, max_new


def run(smoke: bool = False) -> dict:
    model, prompts, max_new = _build(smoke)
    generated = len(prompts) * max_new

    start = time.perf_counter()
    sequential_out = [model.generate_fast(p, max_new, greedy=True) for p in prompts]
    sequential_s = time.perf_counter() - start

    batched = []
    for batch_size in _BATCH_SIZES:
        engine = GenerationEngine(model, batch_size=batch_size, greedy=True)
        start = time.perf_counter()
        out = engine.generate(prompts, max_new)
        seconds = time.perf_counter() - start
        assert out == sequential_out, "engine diverged from generate_fast"
        batched.append({
            "batch_size": batch_size,
            "seconds": seconds,
            "tokens_per_sec": generated / seconds,
            "model_steps": engine.total_steps,
        })

    sequential_tps = generated / sequential_s
    full_batch = batched[-1]
    return {
        "bench": "inference_throughput",
        "smoke": smoke,
        "model": model.config.to_dict(),
        "num_prompts": len(prompts),
        "prompt_len": _PROMPT_LEN,
        "max_new_tokens": max_new,
        "generated_tokens": generated,
        "sequential": {"seconds": sequential_s, "tokens_per_sec": sequential_tps},
        "batched": batched,
        "speedup_at_full_batch": full_batch["tokens_per_sec"] / sequential_tps,
    }


def report(result: dict) -> str:
    lines = [banner("Batched inference throughput — engine vs sequential decode")]
    seq = result["sequential"]
    rows = [["sequential x8", 1, seq["seconds"], seq["tokens_per_sec"], 1.0]]
    for entry in result["batched"]:
        rows.append(["engine", entry["batch_size"], entry["seconds"],
                     entry["tokens_per_sec"],
                     entry["tokens_per_sec"] / seq["tokens_per_sec"]])
    lines.append(fmt_table(
        ["mode", "batch", "seconds", "tokens/sec", "speedup"], rows))
    lines.append(
        f"{result['generated_tokens']} tokens generated per mode "
        f"({result['num_prompts']} prompts x {result['max_new_tokens']} new); "
        f"full-batch speedup {result['speedup_at_full_batch']:.1f}x"
    )
    return "\n".join(lines)


def write_record(result: dict, path: str) -> None:
    with open(path, "w") as f:
        json.dump(result, f, indent=2, default=float)
        f.write("\n")


def test_inference_throughput(benchmark):
    result = benchmark.pedantic(run, rounds=1, iterations=1)
    print(report(result))
    # Batched decoding must beat the sequential stream decisively: the
    # acceptance bar is >= 4x tokens/sec at batch 8 over 8 sequential
    # generate_fast calls.
    assert result["speedup_at_full_batch"] >= 4.0
    # throughput should grow monotonically-ish with batch size
    tps = [entry["tokens_per_sec"] for entry in result["batched"]]
    assert tps[-1] > tps[0]


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="fast mode: tiny model, asserts batched >= sequential")
    parser.add_argument("--out", default="BENCH_inference.json",
                        help="path for the JSON record (default: %(default)s)")
    parser.add_argument("--no-record", action="store_true",
                        help="skip writing the JSON record")
    args = parser.parse_args(argv)
    result = run(smoke=args.smoke)
    print(report(result))
    if not args.no_record:
        write_record(result, args.out)
        print(f"record written to {args.out}")
    if args.smoke:
        if result["speedup_at_full_batch"] < 1.0:
            print("SMOKE FAIL: batched engine slower than sequential decode",
                  file=sys.stderr)
            return 1
        print("SMOKE OK: batched >= sequential tokens/sec")
    return 0


if __name__ == "__main__":
    sys.exit(main())
