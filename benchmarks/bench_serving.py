"""E23 — serving under load: the HTTP layer meets synthetic traffic.

The serving claim behind ``repro.serve``: the continuous-batching
engine, fronted by the lock-guarded :class:`~repro.serve.EngineWorker`
and stdlib HTTP server, holds its latency SLOs under concurrent load —
and *sheds* (HTTP 429) rather than stalls when arrivals exceed the
queue-depth cap.  This bench is a closed+open-loop load generator over
a live :class:`~repro.serve.InferenceServer`:

- **bit_identity** — batch-1 greedy decoding through the full HTTP
  round trip must be bit-identical to ``generate_fast``.
- **poisson** — open-loop arrivals (seeded exponential inter-arrival
  times), mixed prompt lengths, generous queue cap: the steady-traffic
  picture.
- **bursty** — synchronized arrival bursts against a small queue cap:
  admission control must shed the overflow with 429 while every
  accepted request still completes.
- **closed_loop** — a fixed pool of always-busy clients: the
  max-throughput picture.
- **prefix** (PR 8) — sequential requests sharing a 48-token system
  prompt: warm requests must hit the paged-KV prefix cache (verified
  via ``/v1/stats``), cut client-measured TTFT, and still return
  bit-identical tokens.

Every phase runs against a fresh engine+server and verifies **zero
lost, zero duplicated, zero corrupted** responses: request ids are
unique, client+server accounting balances (sent == completed + shed),
and every completion matches its greedy ``generate_fast`` reference.
Reported per phase: p50/p99 TTFT (client-measured, first streamed
token), p50/p99 queue wait (server-stamped), tokens/sec, and shed
rate — emitted as a provenance-stamped ``BENCH_serving.json``.

Every run also probes the observability plane on a live server: one
``/metrics`` scrape (validated line by line), a ``/healthz`` verdict,
and a ``/v1/trace`` export for a real request.  ``--slo`` adds a phase
that drives a tight-threshold :class:`~repro.obs.SLOMonitor` through a
breach (thundering herd against a queue cap of 1) and back to recovery,
recording the breach/recovery timeline into the JSON record.
``--overhead`` (E24) runs the Poisson phase twice — bare vs. fully
instrumented — and reports the telemetry tax on p50 TTFT.

``--smoke`` runs a seconds-scale configuration and asserts the
integrity + shedding gates; the tier-1 suite invokes it so serving
regressions fail the normal test run.
"""

import argparse
import re
import sys
import threading
import time

import numpy as np

from _util import BenchRun, banner, fmt_table, scale

from repro.core import TransformerConfig, TransformerLM
from repro.infer import GenerationEngine, SamplingParams
from repro.obs import EventLog, Observability, SLOMonitor, SLOThresholds
from repro.serve import (
    AdmissionPolicy,
    InferenceServer,
    ServeClient,
    ServeClientError,
)


def _build_model(smoke: bool) -> TransformerLM:
    cfg = TransformerConfig(
        vocab_size=64,
        max_seq_len=96 if smoke else 160,
        d_model=32 if smoke else 64,
        num_heads=4,
        num_layers=2 if smoke else 4,
    )
    return TransformerLM(cfg, rng=0)


def _make_workload(rng: np.random.Generator, n: int, vocab: int,
                   max_new_lo: int, max_new_hi: int) -> list[tuple]:
    """Mixed prompt lengths and decode budgets, all ints, all seeded."""
    work = []
    for _ in range(n):
        length = int(rng.integers(2, 13))
        prompt = [int(t) for t in rng.integers(0, vocab, size=length)]
        work.append((prompt, int(rng.integers(max_new_lo, max_new_hi + 1))))
    return work


class _Reference:
    """Greedy generate_fast oracle, memoized per (prompt, max_new)."""

    def __init__(self, model):
        self.model = model
        self._memo = {}

    def __call__(self, prompt: list[int], max_new: int) -> list[int]:
        key = (tuple(prompt), max_new)
        if key not in self._memo:
            self._memo[key] = self.model.generate_fast(prompt, max_new,
                                                       greedy=True)
        return self._memo[key]


def _fire(client: ServeClient, prompt, max_new, sink: list,
          lock: threading.Lock) -> None:
    """One streamed request; records status, client TTFT, and the result."""
    t0 = time.perf_counter()
    record = {"prompt": prompt, "max_new": max_new}
    try:
        ttft = None
        final = None
        for line in client.stream(prompt, max_new):
            if "token" in line and ttft is None:
                ttft = time.perf_counter() - t0
            if line.get("done"):
                final = line
        record.update(status="ok", ttft_s=ttft,
                      latency_s=time.perf_counter() - t0, result=final)
    except ServeClientError as exc:
        status = "shed" if exc.status == 429 else f"http_{exc.status}"
        record.update(status=status, latency_s=time.perf_counter() - t0)
    except Exception as exc:  # lost-request detector, not a crash path
        record.update(status="lost", detail=repr(exc))
    with lock:
        sink.append(record)


def _aggregate(records: list[dict], server_stats: dict, wall_s: float,
               reference: _Reference) -> dict:
    ok = [r for r in records if r["status"] == "ok"]
    shed = [r for r in records if r["status"] == "shed"]
    other = [r for r in records if r["status"] not in ("ok", "shed")]
    ids = [r["result"]["request_id"] for r in ok]
    mismatched = sum(
        r["result"]["tokens"] != reference(r["prompt"], r["max_new"])
        for r in ok)
    srv = server_stats["server"]
    generated = sum(len(r["result"]["completion"]) for r in ok)
    ttfts = [r["ttft_s"] for r in ok if r["ttft_s"] is not None]
    waits = [r["result"]["timing"]["queue_wait_s"] for r in ok]
    pct = lambda xs, q: float(np.percentile(xs, q)) if xs else 0.0
    return {
        "sent": len(records),
        "completed": len(ok),
        "shed": len(shed),
        "other_failures": len(other),
        "shed_rate": len(shed) / len(records) if records else 0.0,
        "lost": srv["accepted"] - srv["completed"],
        "duplicated": len(ids) - len(set(ids)),
        "mismatched": mismatched,
        "accounting_balanced": (len(records) == len(ok) + len(shed)
                                and srv["shed"] == len(shed)),
        "generated_tokens": generated,
        "wall_seconds": wall_s,
        "tokens_per_sec": generated / wall_s if wall_s > 0 else 0.0,
        "ttft_p50_s": pct(ttfts, 50),
        "ttft_p99_s": pct(ttfts, 99),
        "queue_wait_p50_s": pct(waits, 50),
        "queue_wait_p99_s": pct(waits, 99),
        "occupancy": server_stats["occupancy"],
    }


def _run_phase(model, workload, offsets, batch_size: int,
               policy: AdmissionPolicy, obs, closed_loop_workers: int = 0):
    """Serve one phase against a fresh engine+server; aggregate results.

    ``offsets`` are arrival times in seconds from phase start (open
    loop); with ``closed_loop_workers`` > 0 the workload is instead
    split across that many always-busy clients.
    """
    engine = GenerationEngine(model, batch_size=batch_size, params=SamplingParams(greedy=True),
                              obs=obs)
    reference = _Reference(model)
    records: list[dict] = []
    lock = threading.Lock()
    with InferenceServer(engine, policy=policy, obs=obs) as server:
        client = ServeClient(server.host, server.port)
        threads = []
        start = time.perf_counter()
        if closed_loop_workers:
            chunks = [workload[i::closed_loop_workers]
                      for i in range(closed_loop_workers)]

            def drive(chunk):
                for prompt, max_new in chunk:
                    _fire(client, prompt, max_new, records, lock)

            threads = [threading.Thread(target=drive, args=(chunk,))
                       for chunk in chunks if chunk]
            for thread in threads:
                thread.start()
        else:
            for (prompt, max_new), offset in zip(workload, offsets):
                delay = start + offset - time.perf_counter()
                if delay > 0:
                    time.sleep(delay)
                thread = threading.Thread(
                    target=_fire, args=(client, prompt, max_new,
                                        records, lock))
                thread.start()
                threads.append(thread)
        for thread in threads:
            thread.join()
        wall_s = time.perf_counter() - start
        stats = server.stats()
    return _aggregate(records, stats, wall_s, reference)


def _bit_identity(model, obs) -> dict:
    """Batch-1 greedy through HTTP must equal generate_fast bit for bit."""
    engine = GenerationEngine(model, batch_size=1, params=SamplingParams(greedy=True), obs=obs)
    rng = np.random.default_rng(7)
    workload = _make_workload(rng, 4, model.config.vocab_size, 6, 12)
    identical = True
    with InferenceServer(engine, policy=AdmissionPolicy(max_queue_depth=16),
                         obs=obs) as server:
        client = ServeClient(server.host, server.port)
        for prompt, max_new in workload:
            got = client.submit(prompt, max_new)["tokens"]
            if got != model.generate_fast(prompt, max_new, greedy=True):
                identical = False
    return {"requests": len(workload), "identical": identical}


def _prefix_phase(model, obs) -> dict:
    """Cache-hit TTFT over HTTP: requests sharing a system prompt.

    Sequential streamed requests against a batch-1 server, all sharing a
    48-token system prompt with unique short suffixes.  The first (cold)
    request prefills everything; later (warm) requests reuse the cached
    prompt pages, so their client-measured TTFT — submit to first
    streamed token — drops.  ``/v1/stats`` must report the hits, and
    every completion still matches its greedy reference.
    """
    engine = GenerationEngine(model, batch_size=1, params=SamplingParams(greedy=True), obs=obs)
    rng = np.random.default_rng(11)
    vocab = model.config.vocab_size
    system = [int(t) for t in rng.integers(0, vocab, size=48)]
    suffixes = [[int(t) for t in rng.integers(0, vocab, size=3)]
                for _ in range(6)]
    reference = _Reference(model)
    ttfts = []
    identical = True
    with InferenceServer(engine, policy=AdmissionPolicy(max_queue_depth=8),
                         obs=obs) as server:
        client = ServeClient(server.host, server.port)
        for suffix in suffixes:
            prompt = system + suffix
            t0 = time.perf_counter()
            ttft = None
            final = None
            for line in client.stream(prompt, 8):
                if "token" in line and ttft is None:
                    ttft = time.perf_counter() - t0
                if line.get("done"):
                    final = line
            ttfts.append(ttft)
            if final["tokens"] != reference(prompt, 8):
                identical = False
        kv = client.stats()["kv"]
    warm = float(np.mean(ttfts[1:]))
    return {
        "system_prompt_len": len(system),
        "requests": len(suffixes),
        "cold_ttft_s": ttfts[0],
        "warm_ttft_mean_s": warm,
        "ttft_speedup": ttfts[0] / warm if warm > 0 else 0.0,
        "prefix_hits": kv["prefix_cache"]["hits"],
        "prefix_hit_tokens": kv["prefix_cache"]["hit_tokens"],
        "kv_pages_used": kv["pages_used"],
        "identical": identical,
    }


_METRIC_LINE = re.compile(
    r"^[a-zA-Z_:][a-zA-Z0-9_:]*(\{.*\})? (-?[0-9.eE+-]+|[+-]Inf|NaN)$")


def _observability_probe(model, obs) -> dict:
    """Scrape /metrics, /healthz, and /v1/trace on a live server."""
    engine = GenerationEngine(model, batch_size=1, params=SamplingParams(greedy=True), obs=obs)
    with InferenceServer(engine, policy=AdmissionPolicy(max_queue_depth=4),
                         obs=obs) as server:
        client = ServeClient(server.host, server.port)
        client.submit([1, 2, 3], 4)
        health = client.healthz()
        metrics_text = client.metrics()
        trace_events = 0
        tracing = obs is not None and obs.tracer.enabled
        if tracing:
            finished = obs.events.of_type("request_finished")
            trace_id = finished[-1]["trace_id"]
            trace_events = len(client.trace(trace_id)["traceEvents"])
    sample_lines = [line for line in metrics_text.splitlines()
                    if line.strip() and not line.startswith("#")]
    return {
        "healthz_status": health["status"],
        "metrics_sample_lines": len(sample_lines),
        "metrics_parseable": all(_METRIC_LINE.match(line)
                                 for line in sample_lines),
        "trace_export_events": trace_events,
        "tracing_enabled": tracing,
    }


def _slo_phase(model, smoke: bool) -> dict:
    """Drive a tight SLO monitor through breach and back to recovery.

    A thundering herd against a queue cap of 1 sheds most arrivals,
    breaching a ``max_shed_rate`` threshold (health leaves ``ok``);
    sequential clean traffic then pushes the sheds out of the sliding
    window until health recovers.  Returns the event timeline.
    """
    log = EventLog()
    slo = SLOMonitor(SLOThresholds(ttft_p99_s=None, max_shed_rate=0.1,
                                   max_error_rate=None, min_requests=4),
                     window=16, events=log)
    engine = GenerationEngine(model, batch_size=2, params=SamplingParams(greedy=True))
    rng = np.random.default_rng(11)
    herd_n = 8 if smoke else 16
    workload = _make_workload(rng, herd_n, model.config.vocab_size, 4, 8)
    wall0 = time.time()
    records: list[dict] = []
    lock = threading.Lock()
    drain_requests = 0
    with InferenceServer(engine,
                         policy=AdmissionPolicy(max_queue_depth=1,
                                                retry_after_s=0.05,
                                                request_timeout_s=120.0),
                         slo=slo) as server:
        client = ServeClient(server.host, server.port)
        threads = [threading.Thread(target=_fire,
                                    args=(client, prompt, max_new,
                                          records, lock))
                   for prompt, max_new in workload]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        status_after_herd = slo.status
        # drain: clean sequential traffic until the window forgets the herd
        while slo.status != "ok" and drain_requests < 4 * slo.window:
            client.submit([1, 2], 2)
            drain_requests += 1
        final_status = slo.status
    timeline = [{"t_s": r["t"] - wall0, "event": r["event"],
                 "status": r.get("status", "ok"),
                 "signals": r.get("signals", [])}
                for r in log.records
                if r["event"] in ("slo_breach", "slo_recovered")]
    shed = sum(1 for r in records if r["status"] == "shed")
    return {
        "herd_size": herd_n,
        "herd_shed": shed,
        "status_after_herd": status_after_herd,
        "drain_requests": drain_requests,
        "final_status": final_status,
        "breaches": sum(1 for t in timeline if t["event"] == "slo_breach"),
        "recoveries": sum(1 for t in timeline
                          if t["event"] == "slo_recovered"),
        "timeline": timeline,
    }


def _overhead_phase(model, smoke: bool) -> dict:
    """E24: the same open-loop workload bare vs. fully instrumented.

    Single-pair measurements at millisecond TTFT scale are dominated by
    scheduler jitter, so the modes run in alternating repeats and the
    comparison is between per-mode *medians* of the p50 TTFT.
    """
    repeats = 1 if smoke else 5
    n = 16 if smoke else 48
    samples = {"bare": [], "instrumented": []}
    last = {}
    for _ in range(repeats):
        for mode in ("bare", "instrumented"):
            obs = Observability.standard() if mode == "instrumented" \
                else None
            rng = np.random.default_rng(5)
            workload = _make_workload(rng, n, model.config.vocab_size,
                                      4, 12)
            offsets = np.cumsum(rng.exponential(0.02, size=n)).tolist()
            result = _run_phase(
                model, workload, offsets, batch_size=4,
                policy=AdmissionPolicy(max_queue_depth=max(64, n),
                                       request_timeout_s=120.0),
                obs=obs)
            samples[mode].append(result["ttft_p50_s"])
            last[mode] = result
    bare_p50 = float(np.median(samples["bare"]))
    inst_p50 = float(np.median(samples["instrumented"]))
    overhead = ((inst_p50 - bare_p50) / bare_p50) if bare_p50 else 0.0
    return {"bare": last["bare"], "instrumented": last["instrumented"],
            "repeats": repeats,
            "ttft_p50_bare_s": bare_p50,
            "ttft_p50_instrumented_s": inst_p50,
            "ttft_p50_samples": samples,
            "ttft_p50_overhead_frac": overhead}


def run(smoke: bool = False, obs: Observability | None = None,
        slo: bool = False, overhead: bool = False) -> dict:
    model = _build_model(smoke)
    rng = np.random.default_rng(42)
    vocab = model.config.vocab_size
    n = 24 if smoke else 48 * scale()
    burst_n = 12 if smoke else 24
    max_new_hi = 16 if smoke else 32

    phases = {}
    phases["bit_identity"] = _bit_identity(model, obs)

    # Open loop, Poisson arrivals, generous cap: the steady-state picture.
    poisson_work = _make_workload(rng, n, vocab, 4, max_new_hi)
    offsets = np.cumsum(rng.exponential(0.02 if smoke else 0.015, size=n))
    phases["poisson"] = _run_phase(
        model, poisson_work, offsets.tolist(),
        batch_size=4 if smoke else 8,
        policy=AdmissionPolicy(max_queue_depth=max(64, n),
                               request_timeout_s=120.0),
        obs=obs)

    # Bursty arrivals against a tight cap: admission control must shed.
    bursty_work = _make_workload(rng, burst_n, vocab, 8, max_new_hi)
    burst_offsets = [0.0] * burst_n  # one synchronized thundering herd
    phases["bursty"] = _run_phase(
        model, bursty_work, burst_offsets,
        batch_size=2,
        policy=AdmissionPolicy(max_queue_depth=2, retry_after_s=0.25,
                               request_timeout_s=120.0),
        obs=obs)

    # Closed loop: always-busy clients, the max-throughput picture.
    closed_work = _make_workload(rng, n, vocab, 4, max_new_hi)
    phases["closed_loop"] = _run_phase(
        model, closed_work, [],
        batch_size=4 if smoke else 8,
        policy=AdmissionPolicy(max_queue_depth=max(64, n),
                               request_timeout_s=120.0),
        obs=obs, closed_loop_workers=4 if smoke else 8)

    phases["prefix"] = _prefix_phase(model, obs)
    phases["observability"] = _observability_probe(model, obs)
    if slo:
        phases["slo"] = _slo_phase(model, smoke)
    if overhead:
        phases["overhead"] = _overhead_phase(model, smoke)

    load_phases = [phases[k] for k in ("poisson", "bursty", "closed_loop")]
    return {
        "bench": "serving",
        "smoke": smoke,
        "model": model.config.to_dict(),
        "phases": phases,
        "totals": {
            "sent": sum(p["sent"] for p in load_phases),
            "completed": sum(p["completed"] for p in load_phases),
            "shed": sum(p["shed"] for p in load_phases),
            "lost": sum(p["lost"] for p in load_phases),
            "duplicated": sum(p["duplicated"] for p in load_phases),
            "mismatched": sum(p["mismatched"] for p in load_phases),
        },
    }


def report(result: dict) -> str:
    lines = [banner("Serving under load — HTTP + admission control "
                    "over the batched engine")]
    rows = []
    for name in ("poisson", "bursty", "closed_loop"):
        p = result["phases"][name]
        rows.append([name, p["sent"], p["completed"], p["shed"],
                     f"{p['shed_rate']:.0%}",
                     p["ttft_p50_s"] * 1e3, p["ttft_p99_s"] * 1e3,
                     p["queue_wait_p50_s"] * 1e3,
                     p["queue_wait_p99_s"] * 1e3,
                     p["tokens_per_sec"], p["occupancy"]])
    lines.append(fmt_table(
        ["phase", "sent", "ok", "shed", "shed%", "ttft p50 ms",
         "ttft p99 ms", "qwait p50 ms", "qwait p99 ms", "tok/s",
         "occupancy"], rows))
    ident = result["phases"]["bit_identity"]
    totals = result["totals"]
    lines.append(
        f"batch-1 greedy over HTTP bit-identical to generate_fast: "
        f"{ident['identical']} ({ident['requests']} requests); "
        f"lost={totals['lost']} duplicated={totals['duplicated']} "
        f"mismatched={totals['mismatched']} over {totals['sent']} requests")
    prefix = result["phases"]["prefix"]
    lines.append(
        f"prefix caching over HTTP: cold ttft "
        f"{prefix['cold_ttft_s'] * 1e3:.1f}ms vs warm "
        f"{prefix['warm_ttft_mean_s'] * 1e3:.1f}ms "
        f"({prefix['ttft_speedup']:.1f}x), {prefix['prefix_hits']} hits / "
        f"{prefix['prefix_hit_tokens']} tokens reused, "
        f"identical={prefix['identical']}")
    probe = result["phases"]["observability"]
    lines.append(
        f"observability probe: healthz={probe['healthz_status']} "
        f"metrics_lines={probe['metrics_sample_lines']} "
        f"(parseable={probe['metrics_parseable']}) "
        f"trace_export_events={probe['trace_export_events']}")
    if "slo" in result["phases"]:
        phase = result["phases"]["slo"]
        steps = " -> ".join(
            f"{t['event']}@{t['t_s']:.2f}s({t['status']})"
            for t in phase["timeline"])
        lines.append(
            f"slo timeline: herd of {phase['herd_size']} shed "
            f"{phase['herd_shed']}; {steps or 'no transitions'}; "
            f"final={phase['final_status']} after "
            f"{phase['drain_requests']} drain requests")
    if "overhead" in result["phases"]:
        phase = result["phases"]["overhead"]
        lines.append(
            f"telemetry overhead (E24): median-of-{phase['repeats']} "
            f"ttft p50 bare={phase['ttft_p50_bare_s'] * 1e3:.2f}ms "
            f"instrumented={phase['ttft_p50_instrumented_s'] * 1e3:.2f}ms "
            f"({phase['ttft_p50_overhead_frac']:+.1%})")
    return "\n".join(lines)


def _gate(result: dict) -> list[str]:
    """Integrity + shedding assertions shared by smoke mode and tests."""
    failures = []
    if not result["phases"]["bit_identity"]["identical"]:
        failures.append("HTTP batch-1 greedy diverged from generate_fast")
    totals = result["totals"]
    for key in ("lost", "duplicated", "mismatched"):
        if totals[key]:
            failures.append(f"{totals[key]} {key} requests")
    if result["phases"]["bursty"]["shed"] == 0:
        failures.append("bursty phase exceeded the queue cap but shed nothing")
    for name in ("poisson", "bursty", "closed_loop"):
        phase = result["phases"][name]
        if phase["other_failures"]:
            failures.append(f"{name}: {phase['other_failures']} "
                            "non-shed failures")
        if not phase["accounting_balanced"]:
            failures.append(f"{name}: client/server accounting imbalance")
    prefix = result["phases"]["prefix"]
    if not prefix["identical"]:
        failures.append("prefix phase: cache hits changed sampled tokens")
    if prefix["prefix_hits"] < prefix["requests"] - 1:
        failures.append(
            f"prefix phase: only {prefix['prefix_hits']} cache hits for "
            f"{prefix['requests'] - 1} warm requests")
    probe = result["phases"]["observability"]
    if not probe["metrics_parseable"]:
        failures.append("/metrics emitted unparseable sample lines")
    if probe["healthz_status"] not in ("ok", "degraded"):
        failures.append(
            f"/healthz reported {probe['healthz_status']} on a healthy run")
    if probe["tracing_enabled"] and probe["trace_export_events"] == 0:
        failures.append("/v1/trace exported no spans for a real request")
    if "slo" in result["phases"]:
        phase = result["phases"]["slo"]
        if not phase["breaches"]:
            failures.append("slo phase: herd never breached the threshold")
        if phase["final_status"] != "ok":
            failures.append("slo phase: monitor never recovered after drain")
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="fast mode: tiny model + light load, "
                             "asserts integrity and shedding gates")
    parser.add_argument("--out", default="BENCH_serving.json",
                        help="path for the JSON record (default: %(default)s)")
    parser.add_argument("--no-record", action="store_true",
                        help="skip writing the JSON record")
    parser.add_argument("--trace", default=None, metavar="PATH",
                        help="also write a Chrome trace of the run")
    parser.add_argument("--slo", action="store_true",
                        help="add a breach/recovery phase: drive a tight "
                             "SLO monitor through degraded and back, "
                             "recording the timeline")
    parser.add_argument("--overhead", action="store_true",
                        help="add an instrumented-vs-bare comparison of "
                             "the Poisson phase (E24)")
    args = parser.parse_args(argv)
    obs = Observability.standard()
    out = None if args.no_record else args.out
    with BenchRun("serving", out=out, trace_out=args.trace, obs=obs) as br:
        br.record(run(smoke=args.smoke, obs=obs, slo=args.slo,
                      overhead=args.overhead))
    result = br.result
    print(report(result))
    if out is not None:
        print(f"record written to {out}")
    if args.trace is not None:
        print(f"trace written to {args.trace} (open in chrome://tracing)")
    failures = _gate(result)
    if failures:
        for failure in failures:
            print(f"SMOKE FAIL: {failure}", file=sys.stderr)
        return 1
    if args.smoke:
        print("SMOKE OK: zero lost/duplicated/mismatched; bursty load shed "
              f"{result['phases']['bursty']['shed']} requests with 429")
    return 0


if __name__ == "__main__":
    sys.exit(main())
