"""E8 — induction heads: the circuit behind in-context copying.

Olsson et al.'s signature, reproduced on repeated random sequences
[s ; s]: after training, (a) some head's prefix-matching score — its mean
attention from the second occurrence of a token to the position *after*
the first occurrence — is far above the uniform baseline; (b) next-token
accuracy on the (fully predictable) second half approaches 100% while the
(random) first half stays at chance; (c) the per-position loss drops
sharply at the start of the second half.
"""

import numpy as np

from _util import banner, bench_main, fmt_table, scale

from repro.core import TransformerConfig, TransformerLM
from repro.interp import (
    copying_accuracy,
    per_position_loss,
    prefix_matching_scores,
    repeated_sequence_batch,
    top_induction_head,
)
from repro.nn import AdamW

_VOCAB = 24
_HALF = 12


def train_model(steps: int, seed: int = 0):
    cfg = TransformerConfig(vocab_size=_VOCAB, max_seq_len=2 * _HALF,
                            d_model=32, num_heads=4, num_layers=2)
    model = TransformerLM(cfg, rng=seed)
    rng = np.random.default_rng(seed)
    opt = AdamW(model.parameters(), lr=3e-3)
    for _ in range(steps):
        x = repeated_sequence_batch(rng, _VOCAB, _HALF, 8)
        model.zero_grad()
        model.loss(x[:, :-1], x[:, 1:]).backward()
        opt.step()
    return model


def run(steps: int = 400, seed: int = 0):
    model = train_model(steps, seed)
    untrained = TransformerLM(model.config, rng=seed + 1)
    batch = repeated_sequence_batch(np.random.default_rng(99), _VOCAB, _HALF, 32)
    scores = prefix_matching_scores(model, batch)
    base_scores = prefix_matching_scores(untrained, batch)
    layer, head, best = top_induction_head(model, batch)
    first, second = copying_accuracy(model, batch)
    losses = per_position_loss(model, batch)
    return {
        "scores": scores, "base_scores": base_scores,
        "layer": layer, "head": head, "best": best,
        "first_half_acc": first, "second_half_acc": second,
        "losses": losses,
    }


def report(result) -> str:
    lines = [banner("Induction heads — repeated random sequences [s ; s]")]
    scores = result["scores"]
    rows = [[f"layer {l}"] + [f"{scores[l, h]:.2f}" for h in range(scores.shape[1])]
            for l in range(scores.shape[0])]
    lines.append("prefix-matching score per head (trained):")
    lines.append(fmt_table(["", *[f"head {h}" for h in range(scores.shape[1])]], rows))
    lines.append(f"strongest induction head: layer {result['layer']} "
                 f"head {result['head']} score {result['best']:.2f} "
                 f"(untrained max {result['base_scores'].max():.2f}, "
                 f"uniform baseline ~{1 / (2 * _HALF):.2f})")
    lines.append(f"copying accuracy: first half {result['first_half_acc']:.1%} "
                 f"(chance ~{1 / _VOCAB:.1%}), second half "
                 f"{result['second_half_acc']:.1%}")
    losses = result["losses"]
    lines.append(f"mean loss: positions 1-{_HALF - 1}: "
                 f"{losses[:_HALF - 1].mean():.3f}   positions "
                 f"{_HALF + 1}-{2 * _HALF - 1}: {losses[_HALF:].mean():.3f}")
    return "\n".join(lines)


def test_induction_heads(benchmark):
    result = benchmark.pedantic(run, kwargs={"steps": 400 * scale()},
                                rounds=1, iterations=1)
    print(report(result))
    assert result["best"] > 0.5, "no strong prefix-matching head emerged"
    assert result["best"] > result["base_scores"].max() + 0.2
    assert result["second_half_acc"] > 0.8
    assert result["first_half_acc"] < 0.4
    losses = result["losses"]
    assert losses[_HALF:].mean() < losses[: _HALF - 1].mean() / 3


if __name__ == "__main__":
    raise SystemExit(bench_main("induction_heads", lambda: run(steps=400 * scale()), report))
