"""E13 — Eq. 8: Boltzmann sampling and the temperature knob.

Reproduced shapes on a trained model's next-token distribution:
(a) sample entropy increases monotonically with temperature T;
(b) the T -> 0 limit reproduces greedy argmax decoding;
(c) at T = 1 the empirical sample frequencies match the model's softmax
    distribution (chi-squared-style check);
(d) large T approaches the uniform distribution (entropy -> log |W|).
"""

import numpy as np

from _util import banner, bench_main, fmt_table, scale

from repro.core import TransformerConfig, TransformerLM, logits_to_probs, sample_token
from repro.data import WordTokenizer
from repro.grammar import english_toy_pcfg, sample_treebank, treebank_text
from repro.train import distribution_entropy, train_lm_on_stream

_TEMPERATURES = [0.1, 0.3, 1.0, 3.0, 10.0]


def train_model(steps: int, seed: int = 0):
    rng = np.random.default_rng(seed)
    bank = sample_treebank(english_toy_pcfg(), 600, rng, min_len=3, max_len=12)
    text = treebank_text(bank)
    tok = WordTokenizer(text)
    ids = np.array(tok.encode(text))
    cfg = TransformerConfig(vocab_size=tok.vocab_size, max_seq_len=16,
                            d_model=32, num_heads=4, num_layers=2)
    model = TransformerLM(cfg, rng=seed)
    train_lm_on_stream(model, ids, num_steps=steps, batch_size=16, seq_len=16,
                       lr=3e-3, seed=seed)
    return model, tok


def run(steps: int = 300, samples: int = 3000, seed: int = 0):
    model, tok = train_model(steps, seed)
    context = np.array(tok.encode("the big dog"))
    logits = model.next_token_logprobs(context)  # log-probs work as logits
    rng = np.random.default_rng(seed + 1)
    rows = []
    for temperature in _TEMPERATURES:
        draws = np.array([sample_token(logits, rng, temperature=temperature)
                          for _ in range(samples)])
        counts = np.bincount(draws, minlength=len(logits)) / samples
        rows.append([temperature, distribution_entropy(counts + 1e-12),
                     float(counts.max())])
    greedy = sample_token(logits, greedy=True)
    cold = [sample_token(logits, rng, temperature=1e-3) for _ in range(50)]
    # chi-squared-ish agreement at T = 1
    t1 = np.array([sample_token(logits, rng, temperature=1.0)
                   for _ in range(samples)])
    empirical = np.bincount(t1, minlength=len(logits)) / samples
    target = logits_to_probs(logits, temperature=1.0)
    l1_gap = float(np.abs(empirical - target).sum())
    return {"rows": rows, "greedy": greedy, "cold": cold, "l1_gap": l1_gap,
            "vocab": len(logits), "target_entropy": distribution_entropy(target)}


def report(result) -> str:
    lines = [banner('Eq. 8 — sampling "the big dog [?]" at varying temperature')]
    lines.append(fmt_table(
        ["temperature T", "sample entropy (nats)", "max token freq"],
        [[t, f"{h:.3f}", f"{m:.2f}"] for t, h, m in result["rows"]],
    ))
    lines.append(f"model distribution entropy at T=1: "
                 f"{result['target_entropy']:.3f}; uniform bound log|W| = "
                 f"{np.log(result['vocab']):.3f}")
    lines.append(f"T -> 0 samples all equal greedy token {result['greedy']}: "
                 f"{all(c == result['greedy'] for c in result['cold'])}")
    lines.append(f"L1(empirical @T=1, model softmax) = {result['l1_gap']:.3f}")
    return "\n".join(lines)


def test_temperature_sampling(benchmark):
    result = benchmark.pedantic(
        run, kwargs={"steps": 300 * scale(), "samples": 3000 * scale()},
        rounds=1, iterations=1)
    print(report(result))
    entropies = [h for _t, h, _m in result["rows"]]
    assert entropies == sorted(entropies), "entropy not monotone in T"
    assert all(c == result["greedy"] for c in result["cold"])
    assert result["l1_gap"] < 0.1
    # T = 10 is near uniform
    assert entropies[-1] > 0.9 * np.log(result["vocab"])
    # T = 0.1 is near deterministic
    assert entropies[0] < 0.5


if __name__ == "__main__":
    raise SystemExit(bench_main("temperature_sampling", lambda: run(steps=300 * scale()), report))
