"""E9 — in-context learning of linear regression (Garg et al.).

A transformer trained on sequences of (x, y) pairs from *fresh* linear
tasks learns to regress in context: its prediction error falls as more
examples appear in the prompt, tracking the explicit-algorithm baselines
(OLS / ridge / k-step gradient descent) that Akyürek et al. propose as
candidate computational models (§7).
"""

import numpy as np

from _util import banner, bench_main, fmt_table, scale

from repro.phenomenology import (
    gradient_descent_profile,
    make_icl_batch,
    ols_profile,
    ridge_profile,
    train_icl_transformer,
    transformer_mse_profile,
    zero_profile,
)

_DIM = 3
_POINTS = 8


def run(steps: int = 1500, seed: int = 0):
    model = train_icl_transformer(dim=_DIM, num_points=_POINTS, steps=steps,
                                  batch_size=32, d_model=48, num_layers=3,
                                  num_heads=4, lr=2e-3, seed=seed)
    batch = make_icl_batch(np.random.default_rng(seed + 99), 256, _POINTS, _DIM)
    return {
        "transformer": transformer_mse_profile(model, batch),
        "zero": zero_profile(batch.xs, batch.ys),
        "ols": ols_profile(batch.xs, batch.ys),
        "ridge": ridge_profile(batch.xs, batch.ys, lam=0.1),
        "gd5": gradient_descent_profile(batch.xs, batch.ys, steps=5, lr=0.1),
    }


def report(result) -> str:
    lines = [banner(f"In-context linear regression (d={_DIM}): MSE vs "
                    "#in-context examples")]
    headers = ["#examples seen", *map(str, range(_POINTS))]
    rows = [[name, *[f"{v:.2f}" for v in profile]]
            for name, profile in result.items()]
    lines.append(fmt_table(["predictor", *headers[1:]], rows))
    lines.append("shape: transformer error falls with context and tracks the "
                 "ridge/OLS curves; the zero-predictor floor is flat at ~d.")
    return "\n".join(lines)


def test_icl_regression(benchmark):
    result = benchmark.pedantic(run, kwargs={"steps": 1500 * scale()},
                                rounds=1, iterations=1)
    print(report(result))
    tf, zero, ridge = result["transformer"], result["zero"], result["ridge"]
    # error decreases with more in-context examples
    assert tf[-2] < tf[0] * 0.5
    # far better than not learning in context at all
    assert tf[-2] < zero[-2] * 0.3
    # within striking distance of the explicit-algorithm baselines late on
    assert tf[4:].mean() < ridge[4:].mean() + 1.0
    # no in-context information at position 0: everyone is at the floor
    assert abs(tf[0] - zero[0]) < 1.5


if __name__ == "__main__":
    raise SystemExit(bench_main("icl_regression", lambda: run(steps=1500 * scale()), report))
