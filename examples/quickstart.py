"""Quickstart: train a small GPT-style transformer and sample from it.

Builds a word-level corpus from the built-in English-like PCFG, trains
the §6 transformer with the Eq. 3 objective, reports held-out perplexity
against an N-gram baseline, and generates text at a few temperatures.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.core import TransformerConfig, TransformerLM
from repro.data import Corpus, WordTokenizer
from repro.grammar import english_toy_pcfg, sample_treebank, treebank_text
from repro.lm import NGramLM
from repro.train import train_lm_on_stream


def main() -> None:
    # 1. A corpus with known structure: sentences sampled from a PCFG.
    rng = np.random.default_rng(0)
    treebank = sample_treebank(english_toy_pcfg(), 800, rng,
                               min_len=3, max_len=14)
    text = treebank_text(treebank)
    print(f"corpus: {len(text.split())} words, e.g. "
          f"{' '.join(treebank[0].tokens)!r}")

    # 2. Tokenize and split.
    tok = WordTokenizer(text)
    corpus = Corpus.from_ids(np.array(tok.encode(text)), tok.vocab_size,
                             test_fraction=0.1)
    print(f"vocabulary |W| = {tok.vocab_size}, "
          f"D = {corpus.num_train_tokens} training tokens")

    # 3. The transformer recipe (§6), small enough for a laptop CPU.
    config = TransformerConfig(vocab_size=tok.vocab_size, max_seq_len=24,
                               d_model=32, num_heads=4, num_layers=2)
    model = TransformerLM(config, rng=0)
    print(f"model: P = {model.num_parameters()} parameters")

    # 4. Train with AdamW on Eq. 3 (cross-entropy next-word prediction).
    history = train_lm_on_stream(model, corpus.train_ids, num_steps=400,
                                 batch_size=16, seq_len=24, lr=3e-3)
    print(f"training loss: {history.losses[0]:.2f} -> {history.final_loss:.2f} "
          f"in {history.wall_time:.1f}s")

    # 5. Evaluate: perplexity (exp of Eq. 3) against a bigram baseline.
    bigram = NGramLM(tok.vocab_size, order=2, add_k=0.2).fit(corpus.train_ids)
    print(f"held-out perplexity: transformer "
          f"{model.perplexity_on(corpus.test_ids, seq_len=24):.2f}  "
          f"vs bigram {bigram.perplexity(corpus.test_ids):.2f}")

    # 6. Generate (Eq. 8 sampling) at a few temperatures.
    prompt = tok.encode("the small dog")
    for temperature in (0.5, 1.0):
        out = model.generate(prompt, 12, rng=np.random.default_rng(1),
                             temperature=temperature)
        print(f"T={temperature}: {tok.decode(out)}")
    greedy = model.generate(prompt, 12, greedy=True)
    print(f"greedy: {tok.decode(greedy)}")


if __name__ == "__main__":
    main()
