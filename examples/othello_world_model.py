"""Othello-GPT in miniature (§7): train, probe, intervene.

Trains a small transformer on random legal 6x6 Othello games (move
sequences only — the model never sees a board), then shows that:
  1. its argmax predictions are almost always *legal* moves;
  2. a linear probe decodes the board state from its activations;
  3. editing activations along the probe's directions changes the
     model's move predictions (a causal world-model check).

Run:  python examples/othello_world_model.py   (about a minute on CPU)
"""

import numpy as np

from repro.core import TransformerConfig, TransformerLM
from repro.interp import MultiTargetLinearProbe, forward_with_patch, patch_position
from repro.nn import AdamW
from repro.othello import generate_dataset, legal_move_rate

SIZE = 6


def main() -> None:
    rng = np.random.default_rng(0)
    data = generate_dataset(rng, num_games=150, size=SIZE)
    print(f"dataset: {len(data.tokens)} random games, "
          f"vocab {len(data.vocab)} move tokens")

    config = TransformerConfig(vocab_size=len(data.vocab),
                               max_seq_len=data.seq_len,
                               d_model=48, num_heads=4, num_layers=2)
    model = TransformerLM(config, rng=0)
    print(f"before training: legal-move rate "
          f"{legal_move_rate(model, data, num_games=30):.0%}")

    optimizer = AdamW(model.parameters(), lr=3e-3)
    batch_rng = np.random.default_rng(1)
    for step in range(400):
        idx = batch_rng.integers(0, len(data.tokens), size=8)
        x, y = data.lm_batch(idx)
        model.zero_grad()
        loss = model.loss(x, y)
        loss.backward()
        optimizer.step()
    print(f"after 400 steps:  legal-move rate "
          f"{legal_move_rate(model, data, num_games=30):.0%} "
          f"(loss {float(loss.data):.2f})")

    # Probe the residual stream for the board state (empty/mine/theirs).
    from repro.autograd import no_grad

    feats, targets = [], []
    for i in range(100):
        length = int(data.lengths[i])
        cache = {}
        with no_grad():
            model.forward(data.tokens[i : i + 1, : length + 1], cache=cache)
        for t in range(1, length + 1):
            feats.append(cache["block0.out"][0, t])
            targets.append(data.board_states[i, t - 1])
    feats, targets = np.stack(feats), np.stack(targets)
    split = int(len(feats) * 0.85)
    probe = MultiTargetLinearProbe(48, SIZE * SIZE, 3, rng=0)
    probe.fit(feats[:split], targets[:split], epochs=10, lr=1e-2, batch_size=128)
    accuracy = (probe.predict(feats[split:]) == targets[split:]).mean()
    print(f"linear board-state probe accuracy: {accuracy:.0%} "
          f"(3 classes x {SIZE * SIZE} cells)")

    # Causal check: push one cell's representation toward the other colour
    # and watch the next-move distribution move.
    game, t = 0, int(data.lengths[0]) // 2
    state = data.board_states[game, t - 1]
    occupied = np.flatnonzero(state > 0)
    cell = int(occupied[len(occupied) // 2])
    current = int(state[cell])
    other = 2 if current == 1 else 1
    direction = probe.class_direction(cell, other) - probe.class_direction(cell, current)
    delta = 6.0 * direction / np.linalg.norm(direction)
    x = data.tokens[game : game + 1, : t + 1]
    base = forward_with_patch(model, x, 0, lambda a: a)[0, -1]
    patched = forward_with_patch(model, x, 0, patch_position(t, delta))[0, -1]

    def probs(logits):
        e = np.exp(logits - logits.max())
        return e / e.sum()

    shift = 0.5 * np.abs(probs(patched) - probs(base)).sum()
    print(f"intervention at cell {divmod(cell, SIZE)} "
          f"(class {current} -> {other}): next-move distribution moved by "
          f"TV = {shift:.3f}")
    print(f"argmax move before: {data.vocab.notation(int(np.argmax(base)))}, "
          f"after: {data.vocab.notation(int(np.argmax(patched)))}")


if __name__ == "__main__":
    main()
