"""Word-vector arithmetic from raw co-occurrence counts (§5, Eq. 9).

Builds the full distributional pipeline — corpus -> co-occurrence matrix
-> PPMI -> truncated SVD — and demonstrates king - man + woman ~ queen
plus nearest-neighbour queries, entirely from counted statistics.

Run:  python examples/word_analogies.py
"""

import numpy as np

from repro.data import (
    WordTokenizer,
    attribute_world_corpus,
    capital_analogy_questions,
    gender_analogy_questions,
)
from repro.embeddings import (
    analogy_query,
    cooccurrence_matrix,
    evaluate_analogies,
    nearest_words,
    pmi_matrix,
    svd_embedding,
)


def main() -> None:
    rng = np.random.default_rng(0)
    text = attribute_world_corpus(rng, num_sentences=6000)
    tok = WordTokenizer(text)
    ids = np.array(tok.encode(text))
    print(f"corpus of {len(ids)} tokens, vocabulary {tok.vocab_size}")

    counts = cooccurrence_matrix(ids, tok.vocab_size, window=5)
    embeddings = svd_embedding(pmi_matrix(counts), dim=40)
    print("embeddings: PPMI + rank-40 SVD of the co-occurrence matrix\n")

    # The Eq. 9 flagship example.
    query = analogy_query(embeddings, tok.vocab, "king", "man", "woman")
    top = nearest_words(embeddings, tok.vocab, query, k=3,
                        exclude=("king", "man", "woman"))
    print("king - man + woman ~ ?")
    for word, similarity in top:
        print(f"   {word:<10} cosine {similarity:.3f}")

    # Nearest neighbours show the concept geometry.
    for word in ("queen", "paris"):
        vec = embeddings[tok.vocab.token_to_id(word)]
        neighbours = nearest_words(embeddings, tok.vocab, vec, k=4,
                                   exclude=(word,))
        names = ", ".join(w for w, _s in neighbours)
        print(f"nearest to {word!r}: {names}")

    # Full evaluation across both analogy families.
    for name, questions in (("gender", gender_analogy_questions()),
                            ("capitals", capital_analogy_questions())):
        report = evaluate_analogies(embeddings, tok.vocab, questions)
        print(f"{name} analogies: {report.correct}/{report.total} "
              f"({report.accuracy:.0%})")
        for a, b, c, expected, got in report.failures[:3]:
            print(f"   miss: {a} - {b} + {c} -> {got} (wanted {expected})")


if __name__ == "__main__":
    main()
