"""Batched serving demo: one GenerationEngine, many prompts.

Trains the quickstart-sized transformer on PCFG text, then serves a
pool of prompts through ``repro.infer.GenerationEngine`` — continuous
batching over a preallocated KV cache — and compares wall-clock against
sequential ``generate_fast`` calls on the same prompts.

Run:  PYTHONPATH=src python examples/batch_generation.py
"""

import time

import numpy as np

from repro.core import TransformerConfig, TransformerLM
from repro.data import Corpus, WordTokenizer
from repro.grammar import english_toy_pcfg, sample_treebank, treebank_text
from repro.infer import GenerationEngine, SamplingParams
from repro.train import train_lm_on_stream


def main() -> None:
    # 1. Train a small model (same recipe as examples/quickstart.py).
    rng = np.random.default_rng(0)
    treebank = sample_treebank(english_toy_pcfg(), 800, rng,
                               min_len=3, max_len=14)
    text = treebank_text(treebank)
    tok = WordTokenizer(text)
    corpus = Corpus.from_ids(np.array(tok.encode(text)), tok.vocab_size,
                             test_fraction=0.1)
    config = TransformerConfig(vocab_size=tok.vocab_size, max_seq_len=32,
                               d_model=32, num_heads=4, num_layers=2)
    model = TransformerLM(config, rng=0)
    history = train_lm_on_stream(model, corpus.train_ids, num_steps=400,
                                 batch_size=16, seq_len=24, lr=3e-3)
    print(f"trained: loss {history.losses[0]:.2f} -> {history.final_loss:.2f}")

    # 2. A queue of user prompts — more prompts than engine slots, so
    #    finished sequences hand their cache slot to waiting prompts.
    prompt_texts = [
        "the small dog", "a cat", "the bird sees", "every dog",
        "the cat chases", "a small bird", "the dog sees a", "every cat",
        "a dog runs", "the small cat", "a bird", "every small dog",
    ]
    prompts = [tok.encode(p) for p in prompt_texts]
    max_new = 12

    # 3. Sequential baseline: one generate_fast call per user.
    start = time.perf_counter()
    sequential = [model.generate_fast(p, max_new, greedy=True) for p in prompts]
    seq_s = time.perf_counter() - start

    # 4. Batched: 4 slots serving 12 prompts via continuous batching.
    engine = GenerationEngine(model, batch_size=4, params=SamplingParams(greedy=True))
    start = time.perf_counter()
    batched = engine.generate(prompts, max_new)
    batch_s = time.perf_counter() - start

    assert batched == sequential, "engine must reproduce generate_fast exactly"
    tokens = len(prompts) * max_new
    print(f"\n{len(prompts)} prompts x {max_new} new tokens, 4 engine slots")
    print(f"sequential: {seq_s:.3f}s  ({tokens / seq_s:7.0f} tok/s)")
    print(f"batched:    {batch_s:.3f}s  ({tokens / batch_s:7.0f} tok/s)  "
          f"-> {seq_s / batch_s:.1f}x")

    print("\ncompletions (identical for both paths):")
    for text_prompt, out, prompt in zip(prompt_texts, batched, prompts):
        completion = tok.decode(out[len(prompt):])
        print(f"  {text_prompt!r:20s} -> {completion}")

    # 5. Stochastic serving: one shared RNG, per-row draws, reproducible.
    engine = GenerationEngine(model, batch_size=4,
                              rng=np.random.default_rng(7),
                              params=SamplingParams(temperature=0.8))
    sampled = engine.generate(prompts[:4], max_new)
    print("\nsampled at T=0.8:")
    for text_prompt, out, prompt in zip(prompt_texts, sampled, prompts):
        print(f"  {text_prompt!r:20s} -> {tok.decode(out[len(prompt):])}")


if __name__ == "__main__":
    main()
