"""The appendix's grammar machinery, end to end.

Parses the worked example ``y+1*x`` with CYK under the Figure-3
arithmetic grammar (checking that multiplication takes precedence),
evaluates expressions through their parse trees, and learns a PCFG's rule
probabilities from raw strings with Inside-Outside EM.

Run:  python examples/grammar_playground.py
"""

import numpy as np

from repro.grammar import (
    arithmetic_cnf,
    arithmetic_pcfg,
    english_toy_pcfg,
    evaluate_expression,
    inside_logprob,
    inside_outside_em,
    parse_expression,
    random_restart_grammar,
    to_cnf,
)


def main() -> None:
    # --- the Figure-3 exercise -------------------------------------
    result = parse_expression("y+1*x")
    print("parse of y+1*x:")
    print(result.tree.pretty())
    env = {"x": 4, "y": 7}
    value = evaluate_expression("y+1*x", env)
    print(f"\nwith x=4, y=7: parse evaluates to {value} "
          f"(precedence-correct: 7 + (1*4) = 11)")
    print(f"compare x*(y+1) = {evaluate_expression('x*(y+1)', env)}\n")

    # --- string probabilities under the PCFG -----------------------
    cnf = arithmetic_cnf()
    for expr in ("5", "2+3", "2+3*4"):
        lp = inside_logprob(cnf, list(expr))
        print(f"P({expr!r}) = exp({lp:.2f})")
    grammar = arithmetic_pcfg()
    rng = np.random.default_rng(0)
    samples = [" ".join(grammar.sample_sentence(rng, max_depth=20))
               for _ in range(3)]
    print(f"samples from the grammar: {samples}\n")

    # --- Inside-Outside: learn probabilities from raw strings ------
    english = english_toy_pcfg()
    generator = to_cnf(english)
    sentences = [english.sample_sentence(rng, max_depth=25) for _ in range(60)]
    start = random_restart_grammar(generator, rng)
    em = inside_outside_em(start, sentences, iterations=6)
    print("Inside-Outside EM on 60 sentences (random initial probabilities):")
    for i, ll in enumerate(em.log_likelihoods):
        print(f"   iteration {i}: corpus log-likelihood {ll:.1f}")
    print(f"KL(generator || start)    = "
          f"{generator.kl_divergence_from(start):.3f}")
    print(f"KL(generator || learned)  = "
          f"{generator.kl_divergence_from(em.grammar):.3f}")


if __name__ == "__main__":
    main()
