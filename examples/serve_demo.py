"""Serving demo: the trained model behind a live HTTP API.

Trains the quickstart-sized transformer on PCFG text, puts it behind
``repro.serve.InferenceServer`` — a background decode-loop thread over
the continuous-batching engine, with admission control — then plays
three clients against it: a blocking submit, a chunked token stream,
and a thundering herd that trips the queue-depth cap into 429 shedding.

The server speaks plain HTTP/JSON, so while this script runs you could
equally talk to it with curl::

    curl -s localhost:<port>/healthz
    curl -s -X POST localhost:<port>/v1/submit \
         -d '{"prompt": [3, 7], "max_new_tokens": 12}'
    curl -sN -X POST localhost:<port>/v1/submit \
         -d '{"prompt": [3, 7], "max_new_tokens": 12, "stream": true}'
    curl -s localhost:<port>/v1/stats

Run:  PYTHONPATH=src python examples/serve_demo.py
"""

import threading

import numpy as np

from repro.core import TransformerConfig, TransformerLM
from repro.data import Corpus, WordTokenizer
from repro.grammar import english_toy_pcfg, sample_treebank, treebank_text
from repro.infer import GenerationEngine, SamplingParams
from repro.serve import (
    AdmissionPolicy,
    InferenceServer,
    ServeClient,
    ServeClientError,
)
from repro.train import train_lm_on_stream


def main() -> None:
    # 1. Train a small model (same recipe as examples/quickstart.py).
    rng = np.random.default_rng(0)
    treebank = sample_treebank(english_toy_pcfg(), 800, rng,
                               min_len=3, max_len=14)
    text = treebank_text(treebank)
    tok = WordTokenizer(text)
    corpus = Corpus.from_ids(np.array(tok.encode(text)), tok.vocab_size,
                             test_fraction=0.1)
    config = TransformerConfig(vocab_size=tok.vocab_size, max_seq_len=32,
                               d_model=32, num_heads=4, num_layers=2)
    model = TransformerLM(config, rng=0)
    history = train_lm_on_stream(model, corpus.train_ids, num_steps=400,
                                 batch_size=16, seq_len=24, lr=3e-3)
    print(f"trained: loss {history.losses[0]:.2f} -> {history.final_loss:.2f}")

    # 2. Serve it: 4 engine slots, at most 8 requests waiting, 30s budget
    #    per request.  port=0 binds an ephemeral port.
    engine = GenerationEngine(model, batch_size=4, params=SamplingParams(greedy=True))
    policy = AdmissionPolicy(max_queue_depth=8, request_timeout_s=30.0,
                             retry_after_s=0.5)
    with InferenceServer(engine, policy=policy) as server:
        print(f"\nserving on {server.url}  (try: curl -s {server.url}/healthz)")
        client = ServeClient(server.host, server.port)

        # 3. Blocking submit: POST /v1/submit, JSON in, JSON out.
        prompt = tok.encode("the small dog")
        body = client.submit(prompt, max_new_tokens=12)
        print(f"\nblocking submit -> {tok.decode(body['completion'])!r}")
        print(f"  finish={body['finish_reason']} "
              f"ttft={body['timing']['ttft_s'] * 1e3:.1f}ms "
              f"tok/s={body['timing']['tokens_per_sec']:.0f}")

        # 4. Streaming: tokens arrive as NDJSON lines over chunked HTTP.
        print("\nstreaming submit -> ", end="", flush=True)
        for record in client.stream(tok.encode("a cat"), 12):
            if "token" in record:
                print(tok.decode([record["token"]]), end=" ", flush=True)
            elif record.get("done"):
                print(f"[{record['finish_reason']}]")

        # 5. A thundering herd: 24 simultaneous clients against 4 slots
        #    and a queue cap of 8 — admission control sheds the rest.
        outcomes = []
        lock = threading.Lock()

        def one_request(user: int) -> None:
            try:
                result = client.submit(tok.encode("every bird"), 10)
                note = ("ok", result["timing"]["queue_wait_s"])
            except ServeClientError as exc:
                note = ("shed" if exc.status == 429 else f"http {exc.status}",
                        None)
            with lock:
                outcomes.append(note)

        threads = [threading.Thread(target=one_request, args=(user,))
                   for user in range(24)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        served = [wait for status, wait in outcomes if status == "ok"]
        shed = sum(status == "shed" for status, _ in outcomes)
        print(f"\nburst of 24: served {len(served)}, shed {shed} with 429 "
              f"(queue cap 8)", end="")
        print(f"; max queue wait {max(served) * 1e3:.0f}ms" if served else "")

        # 6. GET /v1/stats — the serving picture after the storm.
        stats = client.stats()
        print(f"stats: occupancy {stats['occupancy']:.2f}, "
              f"accepted {stats['server']['accepted']}, "
              f"shed {stats['server']['shed']}, "
              f"completed {stats['server']['completed']}")


if __name__ == "__main__":
    main()
