"""In-context learning on the mini BIG-bench (§3-§4).

Trains one character-level transformer on a mixture of few-shot episodes
(copy, reverse, successor, modular addition), then evaluates it on fresh
instances with frozen weights and prints a leaderboard — the §4
benchmarking workflow in miniature.

Run:  python examples/fewshot_tasks.py   (about a minute on CPU)
"""

import numpy as np

from repro.benchsuite import (
    SUITE_ALPHABET,
    CopyTask,
    ModularArithmeticTask,
    ReverseTask,
    SuccessorTask,
    evaluate_suite,
    few_shot_prompt,
    leaderboard,
    mixture_text,
)
from repro.core import TransformerConfig, TransformerLM
from repro.data import CharTokenizer
from repro.train import train_lm_on_stream

TASKS = [CopyTask(length=3), ReverseTask(length=3), SuccessorTask(),
         ModularArithmeticTask(modulus=5)]


def main() -> None:
    rng = np.random.default_rng(0)
    text = "".join(mixture_text(TASKS, rng, examples_per_task=300, shots=k)
                   for k in (1, 2, 3))
    tok = CharTokenizer(SUITE_ALPHABET)
    ids = np.array(tok.encode(text))
    print(f"training mixture: {len(ids)} characters across "
          f"{len(TASKS)} tasks")

    config = TransformerConfig(vocab_size=tok.vocab_size, max_seq_len=48,
                               d_model=64, num_heads=4, num_layers=2)
    model = TransformerLM(config, rng=0)
    history = train_lm_on_stream(model, ids, num_steps=900, batch_size=16,
                                 seq_len=48, lr=3e-3)
    print(f"trained {model.num_parameters()} params, "
          f"final loss {history.final_loss:.3f}\n")

    # Show one full prompt -> completion episode.
    demo_task = ReverseTask(length=3)
    episode = demo_task.generate(np.random.default_rng(42), 4)
    prompt = few_shot_prompt(episode[:3], episode[3])
    prompt_ids = tok.encode(prompt)
    out = model.generate(prompt_ids, 6, greedy=True,
                         stop_token=tok.vocab.token_to_id(";"))
    print(f"prompt:     {prompt!r}")
    print(f"completion: {tok.decode(out[len(prompt_ids):])!r} "
          f"(expected {episode[3].output_text!r})\n")

    scores = evaluate_suite(model, tok, TASKS, np.random.default_rng(9),
                            num_queries=30, shots=3)
    print(leaderboard(scores))


if __name__ == "__main__":
    main()
