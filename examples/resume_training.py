"""Fault-tolerant training: checkpoint a run, kill it, resume bit-exactly.

Demonstrates the full recovery story end to end on a tiny GPT:

1. a reference run trains 120 steps uninterrupted;
2. a second, identical run checkpoints every 20 steps and is killed at
   step 60 by an injected :class:`~repro.train.faults.SimulatedCrash`;
3. the latest snapshot is then *corrupted* the way a torn write would,
   so the resume falls back to the previous valid one via the manifest
   checksums;
4. the resumed run finishes and its losses match the reference run
   bit-for-bit from the fallback point onward.

Run:  python examples/resume_training.py
"""

import tempfile
from pathlib import Path

import numpy as np

from repro.core import TransformerConfig, TransformerLM
from repro.data import Corpus, WordTokenizer
from repro.data.corpus import sample_batch
from repro.grammar import english_toy_pcfg, sample_treebank, treebank_text
from repro.nn import AdamW, WarmupCosine
from repro.train import Trainer, latest_checkpoint, list_checkpoints
from repro.train.faults import SimulatedCrash, corrupt_file, crash_at

STEPS = 120
CHECKPOINT_EVERY = 20


def build_corpus() -> Corpus:
    rng = np.random.default_rng(0)
    text = treebank_text(sample_treebank(english_toy_pcfg(), 400, rng,
                                         min_len=3, max_len=14))
    tok = WordTokenizer(text)
    return Corpus.from_ids(np.array(tok.encode(text)), tok.vocab_size,
                           test_fraction=0.1)


def make_trainer(corpus: Corpus) -> Trainer:
    """Model + AdamW + cosine schedule + trainer-owned batch RNG."""
    config = TransformerConfig(vocab_size=corpus.vocab_size, max_seq_len=16,
                               d_model=16, num_heads=2, num_layers=1)
    model = TransformerLM(config, rng=0)
    optimizer = AdamW(model.parameters(), lr=3e-3, weight_decay=0.01)
    schedule = WarmupCosine(peak_lr=3e-3, warmup_steps=10, total_steps=STEPS)
    # The batch RNG is owned by the Trainer so that its state lives in
    # every checkpoint — that is what makes the resume bit-exact.
    return Trainer(
        model, optimizer,
        batch_fn=lambda step, rng: sample_batch(corpus.train_ids, 8, 16, rng),
        schedule=schedule, clip_norm=1.0, rng=np.random.default_rng(0),
    )


def main() -> None:
    corpus = build_corpus()
    ckdir = Path(tempfile.mkdtemp(prefix="repro-ckpt-"))

    # 1. Reference: the run that never dies.
    reference = make_trainer(corpus).run(STEPS)
    print(f"reference run: {STEPS} steps, "
          f"final loss {reference.final_loss:.6f}")

    # 2. The same run, checkpointed, killed at step 60.
    crashing = make_trainer(corpus)
    crashing.batch_fn = crash_at(crashing.batch_fn, 60)
    try:
        crashing.run(STEPS, checkpoint_every=CHECKPOINT_EVERY,
                     checkpoint_dir=ckdir)
    except SimulatedCrash as crash:
        print(f"killed: {crash}")
    print(f"snapshots on disk: {[c.step for c in list_checkpoints(ckdir)]}")

    # 3. Corrupt the newest snapshot — a torn write at the worst moment.
    newest = latest_checkpoint(ckdir, verify=False)
    corrupt_file(newest.path)
    survivor = latest_checkpoint(ckdir)  # checksum-verified
    print(f"corrupted step-{newest.step} snapshot; "
          f"newest valid is step {survivor.step}")

    # 4. Resume. The loader skips the corrupt file via the manifest
    #    checksums and restores model/optimizer/RNG/history from the
    #    previous snapshot.
    resumed = make_trainer(corpus).run(
        STEPS, checkpoint_every=CHECKPOINT_EVERY, checkpoint_dir=ckdir,
        resume_from=ckdir)

    identical = reference.losses[survivor.step:] == resumed.losses[survivor.step:]
    print(f"resumed from step {survivor.step}: "
          f"final loss {resumed.final_loss:.6f}")
    print(f"losses bit-identical to the uninterrupted run: {identical}")
    assert identical and reference.final_loss == resumed.final_loss


if __name__ == "__main__":
    main()
