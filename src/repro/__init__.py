"""repro: a from-scratch reproduction of the LLM tutorial's full stack.

Subpackages
-----------
- ``repro.autograd``      reverse-mode autodiff over NumPy
- ``repro.dtypes``        process-wide compute dtype policy (float32/float64)
- ``repro.nn``            layers, initializers, optimizers, LR schedules
- ``repro.data``          vocabularies, tokenizers, batching, synthetic corpora
- ``repro.lm``            §5 simpler LMs (unigram, N-gram, FFN, RNN, LSTM)
- ``repro.core``          §6 transformer LLM (attention, blocks, sampling)
- ``repro.infer``         batched serving: preallocated KV cache + engine
- ``repro.serve``         HTTP/streaming API + admission control over the engine
- ``repro.obs``           telemetry: metrics, tracing, event log, profiler
- ``repro.train``         training loops, metrics, checkpoints
- ``repro.embeddings``    §5 co-occurrence / PPMI / SVD / analogies
- ``repro.grammar``       appendix CFG/PCFG/CYK/Inside-Outside stack
- ``repro.othello``       §7 Othello world-model substrate
- ``repro.interp``        §7 probes, interventions, induction heads
- ``repro.phenomenology`` §3-4 scaling laws, compute, grokking, ICL
- ``repro.benchsuite``    §4 mini BIG-bench task suite + harness

Quick start::

    import numpy as np
    from repro.core import TransformerConfig, TransformerLM
    from repro.data import CharTokenizer, Corpus
    from repro.train import train_lm_on_stream

    text = "hello world " * 200
    tok = CharTokenizer(text)
    corpus = Corpus.from_ids(tok.encode(text), tok.vocab_size)
    model = TransformerLM(TransformerConfig(vocab_size=tok.vocab_size,
                                            max_seq_len=32), rng=0)
    train_lm_on_stream(model, corpus.train_ids, num_steps=200)
    print(tok.decode(model.generate(tok.encode("hello"), 20, greedy=True)))
"""

from . import (
    autograd,
    benchsuite,
    core,
    data,
    embeddings,
    formal,
    grammar,
    infer,
    interp,
    lm,
    nn,
    obs,
    othello,
    phenomenology,
    serve,
    train,
)
from .autograd import Tensor, no_grad
from .core import TransformerConfig, TransformerLM, TransformerRegressor
from .dtypes import default_dtype, dtype_scope, resolve_dtype, set_default_dtype
from .data import BPETokenizer, CharTokenizer, Corpus, Vocabulary, WordTokenizer
from .infer import GenerationEngine, KVCache
from .lm import FFNLM, LSTMLM, RNNLM, InterpolatedNGramLM, LanguageModel, NGramLM, UnigramLM
from .obs import Observability
from .train import Trainer, train_lm_on_stream

__version__ = "0.1.0"

__all__ = [
    "autograd",
    "nn",
    "data",
    "lm",
    "core",
    "infer",
    "serve",
    "obs",
    "train",
    "embeddings",
    "formal",
    "grammar",
    "othello",
    "interp",
    "phenomenology",
    "benchsuite",
    "Tensor",
    "no_grad",
    "default_dtype",
    "set_default_dtype",
    "dtype_scope",
    "resolve_dtype",
    "TransformerConfig",
    "TransformerLM",
    "TransformerRegressor",
    "GenerationEngine",
    "KVCache",
    "Observability",
    "Vocabulary",
    "CharTokenizer",
    "WordTokenizer",
    "BPETokenizer",
    "Corpus",
    "LanguageModel",
    "UnigramLM",
    "NGramLM",
    "InterpolatedNGramLM",
    "FFNLM",
    "RNNLM",
    "LSTMLM",
    "Trainer",
    "train_lm_on_stream",
    "__version__",
]
