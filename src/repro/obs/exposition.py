"""Prometheus text exposition of a :class:`MetricsRegistry`.

Turns the registry's counters/gauges/histograms into the Prometheus
text exposition format (version 0.0.4) that any Prometheus-compatible
scraper accepts, with nothing beyond the standard library.  The serving
layer mounts the result at ``GET /metrics``, which makes a live
``InferenceServer`` scrapeable while it runs — the missing half of the
PR 2 telemetry story, where metrics only left the process as a
post-hoc JSON snapshot.

Mapping rules:

- Metric names are sanitized to ``[a-zA-Z_:][a-zA-Z0-9_:]*`` (the
  registry's dotted names become underscores: ``engine.steps`` →
  ``engine_steps``).
- :class:`~repro.obs.metrics.Counter` series gain the conventional
  ``_total`` suffix and ``TYPE counter``.
- :class:`~repro.obs.metrics.Gauge` series are emitted as-is with
  ``TYPE gauge``.
- :class:`~repro.obs.metrics.Histogram` series become full histogram
  families: cumulative ``_bucket{le="..."}`` lines over
  :data:`DEFAULT_BUCKETS` (estimated from the deterministic decimated
  sample, pinned so ``le="+Inf"`` equals the exact count), plus exact
  ``_sum`` and ``_count`` lines.
- ``labels`` are attached to every sample line, with label values
  escaped per the spec (backslash, double quote, newline).
"""

from __future__ import annotations

import math
import re

_NAME_OK = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_NAME_BAD_CHARS = re.compile(r"[^a-zA-Z0-9_:]")

# Prometheus' client-library default latency buckets (seconds).
DEFAULT_BUCKETS = (0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5,
                   1.0, 2.5, 5.0, 10.0)


def sanitize_name(name: str) -> str:
    """Metric name mangled into the Prometheus-legal character set."""
    name = _NAME_BAD_CHARS.sub("_", name)
    if not name or not _NAME_OK.match(name):
        name = "_" + name
    return name


def escape_label_value(value: str) -> str:
    """Label value with backslash, double-quote, and newline escaped."""
    return (str(value).replace("\\", "\\\\").replace('"', '\\"')
            .replace("\n", "\\n"))


def escape_help(text: str) -> str:
    """HELP text with backslash and newline escaped (quotes are legal)."""
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def format_value(value: float) -> str:
    """A sample value in exposition syntax (+Inf/-Inf/NaN spelled out)."""
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if math.isnan(value):
        return "NaN"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _label_str(labels: dict | None) -> str:
    if not labels:
        return ""
    inner = ",".join(f'{sanitize_name(k)}="{escape_label_value(v)}"'
                     for k, v in labels.items())
    return "{" + inner + "}"


def _merge(labels: dict | None, extra: dict) -> dict:
    merged = dict(labels or {})
    merged.update(extra)
    return merged


def to_prometheus(registry, labels: dict | None = None,
                  buckets=DEFAULT_BUCKETS, help_texts: dict | None = None) -> str:
    """The registry rendered as Prometheus text exposition format.

    Parameters
    ----------
    registry:
        A :class:`~repro.obs.metrics.MetricsRegistry` (or the null
        registry, which renders as an empty exposition).
    labels:
        Constant labels stamped on every sample line (e.g.
        ``{"job": "repro-serve"}``); values are escaped per the spec.
    buckets:
        Upper bounds (seconds) for histogram ``_bucket`` lines; the
        ``+Inf`` bucket is always appended.
    help_texts:
        Optional ``{registry_name: help string}`` map rendered as
        ``# HELP`` lines.

    Returns the full exposition body, terminated by a newline.
    """
    from .metrics import Counter, Gauge, Histogram

    lines: list[str] = []
    for name in registry.names():
        metric = registry.get(name)
        base = sanitize_name(name)
        help_text = (help_texts or {}).get(name)
        if isinstance(metric, Counter):
            out = base if base.endswith("_total") else base + "_total"
            if help_text:
                lines.append(f"# HELP {out} {escape_help(help_text)}")
            lines.append(f"# TYPE {out} counter")
            lines.append(f"{out}{_label_str(labels)} "
                         f"{format_value(metric.value)}")
        elif isinstance(metric, Gauge):
            if help_text:
                lines.append(f"# HELP {base} {escape_help(help_text)}")
            lines.append(f"# TYPE {base} gauge")
            lines.append(f"{base}{_label_str(labels)} "
                         f"{format_value(metric.value)}")
        elif isinstance(metric, Histogram):
            if help_text:
                lines.append(f"# HELP {base} {escape_help(help_text)}")
            lines.append(f"# TYPE {base} histogram")
            bounds = list(buckets)
            for bound, cumulative in zip(bounds,
                                         metric.bucket_counts(bounds)):
                bucket_labels = _merge(labels, {"le": format_value(bound)})
                lines.append(f"{base}_bucket{_label_str(bucket_labels)} "
                             f"{cumulative}")
            inf_labels = _merge(labels, {"le": "+Inf"})
            lines.append(f"{base}_bucket{_label_str(inf_labels)} "
                         f"{metric.count}")
            lines.append(f"{base}_sum{_label_str(labels)} "
                         f"{format_value(metric.total)}")
            lines.append(f"{base}_count{_label_str(labels)} {metric.count}")
    return "\n".join(lines) + "\n" if lines else "\n"


CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"
