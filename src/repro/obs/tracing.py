"""Nested wall-clock spans with Chrome trace-event export.

A :class:`Tracer` records ``with tracer.span("train.forward"):`` blocks
as completed spans over ``time.perf_counter``.  Spans nest: each span
remembers its depth and parent at entry, so the recorded list is a
flattened tree per thread.  :meth:`Tracer.to_chrome` converts the record
into the Chrome trace-event JSON format (``ph: "X"`` complete events,
microsecond timestamps) that loads directly into ``chrome://tracing`` or
https://ui.perfetto.dev — open the file there to see exactly where a
training or serving run spent its time.

Disabled tracers (``Tracer(enabled=False)``, or the shared
:data:`NULL_TRACER`) hand out one reusable no-op context manager, so
instrumented hot paths cost a dict lookup and nothing else when tracing
is off.
"""

from __future__ import annotations

import json
import os
import threading
import time


class _NullSpan:
    """Reusable no-op context manager for disabled tracers."""

    __slots__ = ()

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        return False


_NULL_SPAN = _NullSpan()


class _Span:
    """One live ``with`` block; records itself on the tracer at exit."""

    __slots__ = ("tracer", "name", "args", "start", "depth", "parent", "tid")

    def __init__(self, tracer: "Tracer", name: str, args: dict):
        self.tracer = tracer
        self.name = name
        self.args = args

    def __enter__(self):
        stack = self.tracer._stack_for_thread()
        self.depth = len(stack)
        self.parent = stack[-1].name if stack else None
        self.tid = threading.get_ident()
        stack.append(self)
        self.start = self.tracer.clock()
        return self

    def __exit__(self, exc_type, exc, tb):
        end = self.tracer.clock()
        stack = self.tracer._stack_for_thread()
        if stack and stack[-1] is self:
            stack.pop()
        self.tracer._record(self, end)
        return False


class Tracer:
    """Collects nested spans and instant events for one process.

    Parameters
    ----------
    enabled:
        When False every :meth:`span` returns a shared no-op context
        manager and nothing is recorded.
    clock:
        Monotonic time source (seconds); ``time.perf_counter`` by default.
    """

    def __init__(self, enabled: bool = True, clock=time.perf_counter):
        self.enabled = enabled
        self.clock = clock
        self.spans: list[dict] = []       # completed spans, completion order
        self.instants: list[dict] = []
        self._stacks: dict[int, list[_Span]] = {}
        self._pid = os.getpid()

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def span(self, name: str, **args):
        """Context manager timing one named block; spans nest freely."""
        if not self.enabled:
            return _NULL_SPAN
        return _Span(self, name, args)

    def instant(self, name: str, **args) -> None:
        """Zero-duration marker (rendered as an arrow in trace viewers)."""
        if not self.enabled:
            return
        self.instants.append({
            "name": name,
            "ts": self.clock(),
            "tid": threading.get_ident(),
            "args": args,
        })

    def _stack_for_thread(self) -> list:
        tid = threading.get_ident()
        stack = self._stacks.get(tid)
        if stack is None:
            stack = self._stacks[tid] = []
        return stack

    def _record(self, span: _Span, end: float) -> None:
        self.spans.append({
            "name": span.name,
            "start": span.start,
            "end": end,
            "depth": span.depth,
            "parent": span.parent,
            "tid": span.tid,
            "args": span.args,
        })

    def reset(self) -> None:
        self.spans.clear()
        self.instants.clear()
        self._stacks.clear()

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------
    def to_chrome(self) -> dict:
        """The trace as a Chrome trace-event JSON object.

        Complete ("X") events carry microsecond ``ts``/``dur`` on the
        shared ``perf_counter`` timeline; viewers only use differences,
        so the arbitrary epoch is irrelevant.
        """
        events = []
        for rec in self.spans:
            # dur from the truncated endpoints (not the float difference)
            # so nesting survives integer conversion: a child's [ts, ts+dur]
            # stays inside its parent's.
            ts = int(rec["start"] * 1e6)
            events.append({
                "name": rec["name"],
                "cat": "repro",
                "ph": "X",
                "ts": ts,
                "dur": max(int(rec["end"] * 1e6) - ts, 1),
                "pid": self._pid,
                "tid": rec["tid"],
                "args": rec["args"],
            })
        for rec in self.instants:
            events.append({
                "name": rec["name"],
                "cat": "repro",
                "ph": "i",
                "ts": int(rec["ts"] * 1e6),
                "s": "t",
                "pid": self._pid,
                "tid": rec["tid"],
                "args": rec["args"],
            })
        events.sort(key=lambda e: e["ts"])
        return {"traceEvents": events, "displayTimeUnit": "ms"}

    def write_chrome(self, path) -> None:
        """Write the Chrome trace JSON to ``path``."""
        with open(path, "w") as f:
            json.dump(self.to_chrome(), f, indent=1, default=float)
            f.write("\n")

    def total_seconds(self, name: str) -> float:
        """Summed duration of every completed span called ``name``."""
        return sum(rec["end"] - rec["start"]
                   for rec in self.spans if rec["name"] == name)


NULL_TRACER = Tracer(enabled=False)
