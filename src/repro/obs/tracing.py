"""Nested wall-clock spans with Chrome trace-event export.

A :class:`Tracer` records ``with tracer.span("train.forward"):`` blocks
as completed spans over ``time.perf_counter``.  Spans nest: each span
remembers its depth and parent at entry, so the recorded list is a
flattened tree per thread.  :meth:`Tracer.to_chrome` converts the record
into the Chrome trace-event JSON format (``ph: "X"`` complete events,
microsecond timestamps) that loads directly into ``chrome://tracing`` or
https://ui.perfetto.dev — open the file there to see exactly where a
training or serving run spent its time.

Request-scoped tracing (PR 7) adds :class:`TraceContext` — a W3C
``traceparent``-style (trace id, span id) pair that crosses thread and
process boundaries where the implicit per-thread span stack cannot.
The serving layer mints one context per HTTP request (honoring an
incoming ``traceparent`` header), opens its root span with
``tracer.span(name, ctx=request_ctx)`` on the handler thread, and hands
the context to the decode-loop thread, which attaches queue-wait /
prefill / decode spans under the same trace with
:meth:`Tracer.record_span`.  :meth:`Tracer.trace_slice` then exports one
request's spans as a self-contained Chrome trace.

Disabled tracers (``Tracer(enabled=False)``, or the shared
:data:`NULL_TRACER`) hand out one reusable no-op context manager, so
instrumented hot paths cost a dict lookup and nothing else when tracing
is off.  Trace ids come from ``os.urandom`` — never from a seeded NumPy
generator — so tracing cannot perturb seeded experiments.
"""

from __future__ import annotations

import itertools
import json
import os
import re
import threading
import time
from dataclasses import dataclass

_TRACEPARENT_RE = re.compile(
    r"^([0-9a-f]{2})-([0-9a-f]{32})-([0-9a-f]{16})-([0-9a-f]{2})$")


@dataclass(frozen=True)
class TraceContext:
    """W3C ``traceparent``-style identity of one span in one trace.

    ``trace_id`` (32 hex chars) names the end-to-end request; ``span_id``
    (16 hex chars) names this span within it; ``parent_id`` is the span
    that caused it (None at the root).  Contexts are immutable values —
    safe to share across threads — and are generated from ``os.urandom``,
    so minting them never touches seeded RNG streams.
    """

    trace_id: str
    span_id: str
    parent_id: str | None = None

    @classmethod
    def new(cls) -> "TraceContext":
        """Fresh root context: new trace id, new span id, no parent."""
        return cls(trace_id=os.urandom(16).hex(),
                   span_id=os.urandom(8).hex())

    @classmethod
    def from_traceparent(cls, header: str | None) -> "TraceContext | None":
        """Parse a W3C ``traceparent`` header; None if absent/malformed.

        Accepts ``00-<32 hex trace-id>-<16 hex parent-id>-<2 hex flags>``
        and rejects the all-zero ids the spec reserves as invalid.
        """
        if not header:
            return None
        match = _TRACEPARENT_RE.match(header.strip().lower())
        if match is None:
            return None
        _, trace_id, span_id, _ = match.groups()
        if set(trace_id) == {"0"} or set(span_id) == {"0"}:
            return None
        return cls(trace_id=trace_id, span_id=span_id)

    def child(self) -> "TraceContext":
        """New context in the same trace, parented at this span."""
        return TraceContext(trace_id=self.trace_id,
                            span_id=os.urandom(8).hex(),
                            parent_id=self.span_id)

    def to_traceparent(self) -> str:
        """Serialize as a W3C ``traceparent`` header value (sampled)."""
        return f"00-{self.trace_id}-{self.span_id}-01"


class _NullSpan:
    """Reusable no-op context manager for disabled tracers."""

    __slots__ = ()

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        return False


_NULL_SPAN = _NullSpan()


class _Span:
    """One live ``with`` block; records itself on the tracer at exit."""

    __slots__ = ("tracer", "name", "args", "start", "depth", "parent", "tid",
                 "ctx")

    def __init__(self, tracer: "Tracer", name: str, args: dict,
                 ctx: TraceContext | None = None):
        self.tracer = tracer
        self.name = name
        self.args = args
        self.ctx = ctx

    def __enter__(self):
        stack = self.tracer._stack_for_thread()
        self.depth = len(stack)
        self.parent = stack[-1].name if stack else None
        if self.ctx is None:
            # Inherit the enclosing span's trace (same thread); a span
            # with no traced ancestor stays outside any trace.
            enclosing = stack[-1].ctx if stack else None
            if enclosing is not None:
                self.ctx = TraceContext(trace_id=enclosing.trace_id,
                                        span_id=self.tracer._next_span_id(),
                                        parent_id=enclosing.span_id)
        self.tid = threading.get_ident()
        stack.append(self)
        self.start = self.tracer.clock()
        return self

    def __exit__(self, exc_type, exc, tb):
        end = self.tracer.clock()
        stack = self.tracer._stack_for_thread()
        if stack and stack[-1] is self:
            stack.pop()
        self.tracer._record(self, end)
        return False


class Tracer:
    """Collects nested spans and instant events for one process.

    Parameters
    ----------
    enabled:
        When False every :meth:`span` returns a shared no-op context
        manager and nothing is recorded.
    clock:
        Monotonic time source (seconds); ``time.perf_counter`` by default.
    """

    def __init__(self, enabled: bool = True, clock=time.perf_counter):
        self.enabled = enabled
        self.clock = clock
        self.spans: list[dict] = []       # completed spans, completion order
        self.instants: list[dict] = []
        self._stacks: dict[int, list[_Span]] = {}
        self._pid = os.getpid()
        self._span_ids = itertools.count(1)
        # Optional completed-span sink (the flight recorder); called with
        # each recorded span dict after it lands on ``spans``.
        self.on_record = None

    def _next_span_id(self) -> str:
        # next() on one shared count is atomic under the GIL, so ids are
        # unique across the handler and decode threads without a lock.
        return f"{next(self._span_ids):016x}"

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def span(self, name: str, ctx: TraceContext | None = None, **args):
        """Context manager timing one named block; spans nest freely.

        ``ctx`` pins the span's trace identity explicitly (the serving
        layer's per-request root span); without it the span inherits the
        enclosing span's trace on the same thread, if any.
        """
        if not self.enabled:
            return _NULL_SPAN
        return _Span(self, name, args, ctx=ctx)

    def record_span(self, name: str, start: float, end: float,
                    parent: TraceContext | None = None,
                    **args) -> TraceContext | None:
        """Record a completed span retrospectively from saved timestamps.

        This is the cross-thread reparenting path: the decode loop knows
        when a request was submitted/admitted/first-sampled long after
        the fact and on a different thread than the request's root span,
        so it records those phases by timestamp and parents them under
        ``parent`` (the request's :class:`TraceContext`) rather than the
        local span stack.  Returns the recorded span's context (None
        when the tracer is disabled).
        """
        if not self.enabled:
            return None
        ctx = None
        if parent is not None:
            ctx = TraceContext(trace_id=parent.trace_id,
                               span_id=self._next_span_id(),
                               parent_id=parent.span_id)
        record = {
            "name": name,
            "start": start,
            "end": end,
            "depth": 0,
            "parent": None,
            "tid": threading.get_ident(),
            "args": args,
            "trace_id": ctx.trace_id if ctx else None,
            "span_id": ctx.span_id if ctx else None,
            "parent_id": ctx.parent_id if ctx else None,
        }
        self.spans.append(record)
        if self.on_record is not None:
            self.on_record(record)
        return ctx

    def instant(self, name: str, **args) -> None:
        """Zero-duration marker (rendered as an arrow in trace viewers)."""
        if not self.enabled:
            return
        self.instants.append({
            "name": name,
            "ts": self.clock(),
            "tid": threading.get_ident(),
            "args": args,
        })

    def _stack_for_thread(self) -> list:
        tid = threading.get_ident()
        stack = self._stacks.get(tid)
        if stack is None:
            stack = self._stacks[tid] = []
        return stack

    def _record(self, span: _Span, end: float) -> None:
        ctx = span.ctx
        record = {
            "name": span.name,
            "start": span.start,
            "end": end,
            "depth": span.depth,
            "parent": span.parent,
            "tid": span.tid,
            "args": span.args,
            "trace_id": ctx.trace_id if ctx else None,
            "span_id": ctx.span_id if ctx else None,
            "parent_id": ctx.parent_id if ctx else None,
        }
        self.spans.append(record)
        if self.on_record is not None:
            self.on_record(record)

    def reset(self) -> None:
        self.spans.clear()
        self.instants.clear()
        self._stacks.clear()

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------
    def to_chrome(self) -> dict:
        """The trace as a Chrome trace-event JSON object.

        Complete ("X") events carry microsecond ``ts``/``dur`` on the
        shared ``perf_counter`` timeline; viewers only use differences,
        so the arbitrary epoch is irrelevant.
        """
        return self._chrome_from(self.spans, self.instants)

    def _span_event(self, rec: dict) -> dict:
        # dur from the truncated endpoints (not the float difference)
        # so nesting survives integer conversion: a child's [ts, ts+dur]
        # stays inside its parent's.
        ts = int(rec["start"] * 1e6)
        args = rec["args"]
        if rec.get("trace_id") is not None:
            args = dict(args, trace_id=rec["trace_id"],
                        span_id=rec["span_id"], parent_id=rec["parent_id"])
        return {
            "name": rec["name"],
            "cat": "repro",
            "ph": "X",
            "ts": ts,
            "dur": max(int(rec["end"] * 1e6) - ts, 1),
            "pid": self._pid,
            "tid": rec["tid"],
            "args": args,
        }

    def _chrome_from(self, spans: list, instants: list) -> dict:
        events = [self._span_event(rec) for rec in spans]
        for rec in instants:
            events.append({
                "name": rec["name"],
                "cat": "repro",
                "ph": "i",
                "ts": int(rec["ts"] * 1e6),
                "s": "t",
                "pid": self._pid,
                "tid": rec["tid"],
                "args": rec["args"],
            })
        events.sort(key=lambda e: e["ts"])
        return {"traceEvents": events, "displayTimeUnit": "ms"}

    def trace_slice(self, trace_id: str) -> dict:
        """One trace's spans as a self-contained Chrome trace object.

        Filters the completed-span record to ``trace_id`` (spans from
        any thread — the handler's root plus the decode loop's phases)
        and returns ``{"traceEvents": [...], "trace_id": ...}``.  The
        serving layer exposes this as ``GET /v1/trace?id=<trace_id>``.
        """
        spans = [rec for rec in list(self.spans)
                 if rec.get("trace_id") == trace_id]
        chrome = self._chrome_from(spans, [])
        chrome["trace_id"] = trace_id
        return chrome

    def write_chrome(self, path) -> None:
        """Write the Chrome trace JSON to ``path``."""
        with open(path, "w") as f:
            json.dump(self.to_chrome(), f, indent=1, default=float)
            f.write("\n")

    def total_seconds(self, name: str) -> float:
        """Summed duration of every completed span called ``name``."""
        return sum(rec["end"] - rec["start"]
                   for rec in self.spans if rec["name"] == name)


NULL_TRACER = Tracer(enabled=False)
