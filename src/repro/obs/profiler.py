"""Opt-in per-module forward/backward profiler with memory accounting.

``Profiler().profile(model)`` answers "where did the time go" for a
NumPy model built from :class:`repro.nn.Module`:

- **Forward time** — every submodule's ``forward`` is wrapped (instance
  attribute shadowing the class method) with a ``perf_counter`` timer.
  Both inclusive time and self time (inclusive minus wrapped children)
  are kept, attributed by the module's dotted name from
  :meth:`Module.named_modules`.
- **Backward time** — while the profiler is attached,
  ``Tensor._make`` tags every graph-recording tensor created inside a
  module's forward with that module's name, and ``Tensor._pass_down``
  (the per-node step of the backward walk) is timed and charged to the
  tagged owner.  Backward work from nodes created outside any profiled
  module (e.g. the loss epilogue) lands in ``unattributed_backward_s``.
- **Memory** — ``array.nbytes`` of every array materialised during a
  module's forward is summed per module (activations and intermediates),
  alongside exact parameter byte counts taken at attach time.

The hooks only exist between ``__enter__`` and ``__exit__``; detached
models and tensors run the stock code paths, so the profiler is strictly
opt-in and free when unused.  Timing instrumentation never touches RNG
or numerics — profiled runs produce bit-identical results.
"""

from __future__ import annotations

from dataclasses import dataclass
from time import perf_counter

from ..autograd.tensor import Tensor


@dataclass
class ModuleStats:
    """Accumulated cost of one named module across profiled calls."""

    calls: int = 0
    forward_s: float = 0.0       # inclusive of wrapped children
    self_s: float = 0.0          # exclusive: forward_s minus child forward_s
    backward_s: float = 0.0      # autograd-node time charged to this module
    activation_bytes: int = 0    # arrays materialised during forward
    param_count: int = 0         # learnable scalars (inclusive of children)
    param_bytes: int = 0


class Profiler:
    """Attachable profiler; use as ``with profiler.profile(model): ...``.

    One profiler holds one accumulated view; re-attaching (including to
    a different model) keeps accumulating into the same stats, and
    :meth:`reset` clears them.  Not thread-safe and at most one profiler
    may be attached at a time — the attach patches
    ``Tensor._make``/``Tensor._pass_down`` process-wide.
    """

    _attached_profiler: "Profiler | None" = None

    def __init__(self):
        self.stats: dict[str, ModuleStats] = {}
        self.unattributed_backward_s = 0.0
        self._stack: list[str] = []
        self._child_acc: list[float] = []
        self._owner: dict[int, str] = {}      # id(tensor) -> module name
        self._keepalive: list = []            # pins ids until the next step
        self._wrapped: list = []              # modules with a shadowed forward

    # ------------------------------------------------------------------
    # Attach / detach
    # ------------------------------------------------------------------
    def profile(self, model, name: str = "model"):
        """Context manager instrumenting ``model`` for its duration."""
        return _ProfileContext(self, model, name)

    def _attach(self, model, name: str) -> None:
        if Profiler._attached_profiler is not None:
            raise RuntimeError("another Profiler is already attached")
        Profiler._attached_profiler = self
        for mod_name, module in model.named_modules():
            if any(m is module for m in self._wrapped):
                continue  # shared submodule reached twice: wrap once
            label = f"{name}.{mod_name}" if mod_name else name
            stats = self._stats_for(label)
            stats.param_count = module.num_parameters()
            stats.param_bytes = sum(p.data.nbytes for p in module.parameters())
            module.forward = self._wrap_forward(label, module.forward)
            self._wrapped.append(module)
        self._patch_tensor_ops()

    def _detach(self) -> None:
        for module in self._wrapped:
            vars(module).pop("forward", None)  # re-expose the class method
        self._wrapped.clear()
        self._unpatch_tensor_ops()
        self._stack.clear()
        self._child_acc.clear()
        self._owner.clear()
        self._keepalive.clear()
        Profiler._attached_profiler = None

    # ------------------------------------------------------------------
    # Forward hook
    # ------------------------------------------------------------------
    def _stats_for(self, label: str) -> ModuleStats:
        stats = self.stats.get(label)
        if stats is None:
            stats = self.stats[label] = ModuleStats()
        return stats

    def _wrap_forward(self, label: str, orig):
        def profiled_forward(*args, **kwargs):
            if not self._stack:
                # New top-level forward: the previous step's graph is
                # done with backward, so drop its tensor ownership map.
                self._owner.clear()
                self._keepalive.clear()
            self._stack.append(label)
            self._child_acc.append(0.0)
            start = perf_counter()
            try:
                return orig(*args, **kwargs)
            finally:
                elapsed = perf_counter() - start
                self._stack.pop()
                child_time = self._child_acc.pop()
                stats = self._stats_for(label)
                stats.calls += 1
                stats.forward_s += elapsed
                stats.self_s += elapsed - child_time
                if self._child_acc:
                    self._child_acc[-1] += elapsed

        return profiled_forward

    # ------------------------------------------------------------------
    # Autograd-tape hooks
    # ------------------------------------------------------------------
    def _patch_tensor_ops(self) -> None:
        self._orig_make = Tensor._make
        self._orig_pass_down = Tensor._pass_down
        orig_make, orig_pass_down = self._orig_make, self._orig_pass_down
        profiler = self

        def tracked_make(data, parents, backward):
            out = orig_make(data, parents, backward)
            stack = profiler._stack
            if stack:
                label = stack[-1]
                profiler._stats_for(label).activation_bytes += \
                    getattr(out.data, "nbytes", 0)
                if out._backward is not None:
                    profiler._owner[id(out)] = label
                    profiler._keepalive.append(out)
            return out

        def timed_pass_down(tensor, *args, **kwargs):
            start = perf_counter()
            orig_pass_down(tensor, *args, **kwargs)
            elapsed = perf_counter() - start
            label = profiler._owner.get(id(tensor))
            if label is None:
                profiler.unattributed_backward_s += elapsed
            else:
                profiler._stats_for(label).backward_s += elapsed

        Tensor._make = staticmethod(tracked_make)
        Tensor._pass_down = timed_pass_down

    def _unpatch_tensor_ops(self) -> None:
        Tensor._make = staticmethod(self._orig_make)
        Tensor._pass_down = self._orig_pass_down

    # ------------------------------------------------------------------
    # Results
    # ------------------------------------------------------------------
    def reset(self) -> None:
        self.stats.clear()
        self.unattributed_backward_s = 0.0

    def summary(self) -> dict[str, dict]:
        """JSON-ready per-module stats plus the unattributed remainder."""
        out = {
            label: {
                "calls": s.calls,
                "forward_s": s.forward_s,
                "self_s": s.self_s,
                "backward_s": s.backward_s,
                "activation_bytes": s.activation_bytes,
                "param_count": s.param_count,
                "param_bytes": s.param_bytes,
            }
            for label, s in self.stats.items()
        }
        out["<unattributed backward>"] = {"backward_s": self.unattributed_backward_s}
        return out

    def report(self) -> str:
        """Aligned text table, one row per module in discovery order."""
        headers = ["module", "calls", "fwd s", "self s", "bwd s",
                   "act MB", "params"]
        rows = []
        for label, s in self.stats.items():
            rows.append([
                label, str(s.calls), f"{s.forward_s:.4f}", f"{s.self_s:.4f}",
                f"{s.backward_s:.4f}", f"{s.activation_bytes / 1e6:.2f}",
                str(s.param_count),
            ])
        rows.append(["<unattributed backward>", "", "", "",
                     f"{self.unattributed_backward_s:.4f}", "", ""])
        widths = [max(len(h), *(len(r[i]) for r in rows))
                  for i, h in enumerate(headers)]
        lines = ["  ".join(h.ljust(w) for h, w in zip(headers, widths)),
                 "  ".join("-" * w for w in widths)]
        for row in rows:
            lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
        return "\n".join(lines)


class _ProfileContext:
    __slots__ = ("profiler", "model", "name")

    def __init__(self, profiler: Profiler, model, name: str):
        self.profiler = profiler
        self.model = model
        self.name = name

    def __enter__(self) -> Profiler:
        self.profiler._attach(self.model, self.name)
        return self.profiler

    def __exit__(self, exc_type, exc, tb):
        self.profiler._detach()
        return False


def parameter_bytes(model) -> int:
    """Exact bytes held by a model's learnable parameters."""
    return sum(p.data.nbytes for p in model.parameters())
