"""Sliding-window SLO evaluation over recent serving observations.

Health that answers "is the process alive?" is nearly useless for a
serving system — the interesting question is "is it *meeting its
objectives*?".  :class:`SLOMonitor` holds a deterministic ring of the
most recent request observations (TTFT, shed/error outcomes, queue
depth at admission time) and evaluates them against declared
:class:`SLOThresholds`:

- **p99 TTFT** over the window vs. ``ttft_p99_s``
- **shed rate** (fraction of arrivals refused with 429) vs.
  ``max_shed_rate``
- **error rate** (timeouts/cancellations/failures) vs.
  ``max_error_rate``
- **queue depth** (latest observed) vs. ``max_queue_depth``

The verdict is three-state: ``ok`` (no signal breached), ``degraded``
(exactly one breached), ``failing`` (two or more).  Transitions emit
``slo_breach`` / ``slo_recovered`` events naming the breached signals —
the hook point for autoscaling or routing policy (ROADMAP item 4), and
what drives the serving layer's ``GET /healthz`` payload.

Everything is deterministic and RNG-free: a fixed-capacity
``deque`` ring, exact arithmetic over it, no sampling.  A monitor with
an empty window reports ``ok`` (no evidence of trouble is not
trouble).  All entry points are lock-guarded for multi-threaded serve
use.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from collections import deque

from .events import NULL_EVENTS

STATUS_OK = "ok"
STATUS_DEGRADED = "degraded"
STATUS_FAILING = "failing"


@dataclass(frozen=True)
class SLOThresholds:
    """Declared objectives; ``None`` disables the corresponding signal.

    Parameters
    ----------
    ttft_p99_s:
        Ceiling on the window's p99 time-to-first-token, seconds.
    max_shed_rate:
        Ceiling on the fraction of window arrivals shed with 429.
    max_error_rate:
        Ceiling on the fraction of window requests that ended in
        timeout/cancellation/failure.
    max_queue_depth:
        Ceiling on the most recently observed engine queue depth.
    min_requests:
        Rate signals (shed/error/ttft) only activate once the window
        holds at least this many observations, so one unlucky first
        request cannot flap health.
    """

    ttft_p99_s: float | None = 2.0
    max_shed_rate: float | None = 0.5
    max_error_rate: float | None = 0.25
    max_queue_depth: int | None = None
    min_requests: int = 5


class SLOMonitor:
    """Ring-buffered serving observations + three-state SLO verdict.

    Parameters
    ----------
    thresholds:
        The declared objectives (defaults are deliberately loose).
    window:
        Ring capacity: how many recent request observations the rate
        and percentile signals are computed over.
    events:
        Optional :class:`~repro.obs.events.EventLog`; status transitions
        emit ``slo_breach``/``slo_recovered`` records onto it.
    """

    def __init__(self, thresholds: SLOThresholds | None = None,
                 window: int = 256, events=None):
        if window < 1:
            raise ValueError("window must be >= 1")
        self.thresholds = thresholds if thresholds is not None \
            else SLOThresholds()
        self.window = window
        self._events = events if events is not None else NULL_EVENTS
        self._ring: deque = deque(maxlen=window)
        self._queue_depth = 0
        self._status = STATUS_OK
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    # Observation (any thread)
    # ------------------------------------------------------------------
    def observe_request(self, ttft_s: float | None = None,
                        shed: bool = False, error: bool = False) -> None:
        """Record one request outcome into the ring.

        Completed requests pass their ``ttft_s``; shed arrivals pass
        ``shed=True``; timeouts/cancellations/failures pass
        ``error=True``.  Each call re-evaluates the verdict so breach /
        recovery events fire as soon as the window crosses a threshold,
        without waiting for a health poll.
        """
        with self._lock:
            self._ring.append((ttft_s, bool(shed), bool(error)))
            self._evaluate_locked()

    def observe_queue_depth(self, depth: int) -> None:
        """Record the engine's current queue depth (latest value wins)."""
        with self._lock:
            self._queue_depth = int(depth)
            self._evaluate_locked()

    # ------------------------------------------------------------------
    # Verdict
    # ------------------------------------------------------------------
    @staticmethod
    def _p99(values: list[float]) -> float:
        ordered = sorted(values)
        pos = 0.99 * (len(ordered) - 1)
        lo = int(pos)
        hi = min(lo + 1, len(ordered) - 1)
        frac = pos - lo
        return ordered[lo] * (1.0 - frac) + ordered[hi] * frac

    def _signals_locked(self) -> dict:
        t = self.thresholds
        n = len(self._ring)
        ttfts = [ttft for ttft, _, _ in self._ring if ttft is not None]
        sheds = sum(1 for _, shed, _ in self._ring if shed)
        errors = sum(1 for _, _, error in self._ring if error)
        enough = n >= t.min_requests
        signals = {}

        def signal(name, value, threshold, active):
            signals[name] = {
                "value": value,
                "threshold": threshold,
                "breached": bool(active and threshold is not None
                                 and value is not None
                                 and value > threshold),
            }

        signal("ttft_p99_s", self._p99(ttfts) if ttfts else None,
               t.ttft_p99_s, enough and bool(ttfts))
        signal("shed_rate", sheds / n if n else 0.0,
               t.max_shed_rate, enough)
        signal("error_rate", errors / n if n else 0.0,
               t.max_error_rate, enough)
        signal("queue_depth", self._queue_depth, t.max_queue_depth, True)
        return signals

    def _evaluate_locked(self) -> dict:
        signals = self._signals_locked()
        breached = sorted(name for name, s in signals.items()
                          if s["breached"])
        if not breached:
            status = STATUS_OK
        elif len(breached) == 1:
            status = STATUS_DEGRADED
        else:
            status = STATUS_FAILING
        previous, self._status = self._status, status
        if status != previous:
            if status == STATUS_OK:
                self._events.emit("slo_recovered", previous=previous)
            else:
                self._events.emit("slo_breach", status=status,
                                  previous=previous, signals=breached)
        return {
            "status": status,
            "breached": breached,
            "signals": signals,
            "window_size": len(self._ring),
            "window_capacity": self.window,
        }

    def evaluate(self) -> dict:
        """Current verdict: status, breached signal names, per-signal detail.

        The returned dict is JSON-ready — it is exactly what
        ``GET /healthz`` serves.
        """
        with self._lock:
            return self._evaluate_locked()

    @property
    def status(self) -> str:
        """Shortcut for ``evaluate()["status"]``."""
        return self.evaluate()["status"]
