"""Crash flight recorder: a bounded blackbox of recent telemetry.

When a serving process dies, the post-mortem question is always "what
was it doing in the last few seconds?" — and the full event log or
trace may be huge, unwritten, or lost with the process.
:class:`FlightRecorder` keeps a fixed-size ring of the most recent
events and completed spans (attached as an
:meth:`~repro.obs.events.EventLog.add_sink` sink and the tracer's
``on_record`` hook), and dumps them as one ``flightrecord.json`` when
something goes wrong:

- the serving decode loop crashes (including faults injected through
  the :func:`repro.train.faults.failpoint` named ``"serve.step"``),
- an uncaught exception reaches :func:`sys.excepthook` after
  :meth:`FlightRecorder.install`,
- the process exits after a recorded crash (``atexit`` backstop, in
  case the crash path itself could not finish the dump).

The ring is two ``deque(maxlen=...)`` — O(1) per record, bounded
memory, no RNG — and recording is lock-guarded for multi-threaded
serve use.  A recorder only sees what the attached telemetry emits, so
with telemetry disabled it costs nothing and records nothing.
"""

from __future__ import annotations

import atexit
import json
import sys
import threading
import time
from collections import deque


class FlightRecorder:
    """Ring buffer of recent events + spans, dumped on crash.

    Parameters
    ----------
    path:
        Where :meth:`dump` writes the blackbox (default
        ``flightrecord.json`` in the working directory).
    capacity:
        Ring size for events and for spans, each.
    clock:
        Wall-clock source for the dump timestamp.
    """

    def __init__(self, path="flightrecord.json", capacity: int = 512,
                 clock=time.time):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.path = path
        self.capacity = capacity
        self.clock = clock
        self._events: deque = deque(maxlen=capacity)
        self._spans: deque = deque(maxlen=capacity)
        self._lock = threading.Lock()
        self._installed = False
        self._crashed = False
        self.dumps = 0

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    def attach(self, obs) -> "FlightRecorder":
        """Subscribe to an :class:`~repro.obs.Observability` bundle.

        Events flow in through an event-log sink; completed spans
        through the tracer's ``on_record`` hook (chained if another
        hook is already installed).
        """
        obs.events.add_sink(self.record_event)
        previous = obs.tracer.on_record

        def hook(record, _previous=previous):
            if _previous is not None:
                _previous(record)
            self.record_span(record)

        obs.tracer.on_record = hook
        return self

    def install(self) -> "FlightRecorder":
        """Arm process-level crash hooks (idempotent).

        Chains :func:`sys.excepthook` so an uncaught exception dumps the
        blackbox before the interpreter dies, and registers an
        ``atexit`` backstop that dumps at exit if a crash was recorded
        but the dump never landed (e.g. the crash handler itself was
        interrupted).
        """
        if self._installed:
            return self
        self._installed = True
        previous_hook = sys.excepthook

        def excepthook(exc_type, exc, tb):
            self.record_crash(exc, dump=True)
            previous_hook(exc_type, exc, tb)

        sys.excepthook = excepthook
        atexit.register(self._atexit_dump)
        return self

    def _atexit_dump(self) -> None:
        with self._lock:
            crashed_without_dump = self._crashed and self.dumps == 0
        if crashed_without_dump:
            self.dump(reason="atexit_after_crash")

    # ------------------------------------------------------------------
    # Recording (sink side)
    # ------------------------------------------------------------------
    def record_event(self, record: dict) -> None:
        """Ring-buffer one event-log record."""
        with self._lock:
            self._events.append(record)

    def record_span(self, record: dict) -> None:
        """Ring-buffer one completed span record."""
        with self._lock:
            self._spans.append(record)

    def record_crash(self, exc: BaseException, dump: bool = True,
                     **context) -> str | None:
        """Note a crash (with its exception) and, by default, dump.

        Returns the dump path when a dump was written.
        """
        with self._lock:
            self._crashed = True
            self._events.append({
                "event": "crash", "t": self.clock(),
                "error": repr(exc), **context,
            })
        if dump:
            return self.dump(reason="crash", error=repr(exc), **context)
        return None

    # ------------------------------------------------------------------
    # Dumping
    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """JSON-ready view of the ring contents (newest last)."""
        with self._lock:
            return {
                "captured_at": self.clock(),
                "capacity": self.capacity,
                "events": list(self._events),
                "spans": list(self._spans),
            }

    def dump(self, reason: str = "manual", **context) -> str:
        """Write the blackbox to :attr:`path`; returns the path written."""
        record = self.snapshot()
        record["reason"] = reason
        record.update(context)
        with open(self.path, "w") as f:
            json.dump(record, f, indent=1, default=str)
            f.write("\n")
        with self._lock:
            self.dumps += 1
        return str(self.path)
