"""Telemetry for training, inference, and benches — the "measure first" layer.

The paper's phenomenology is entirely quantitative (loss curves, the
``C ~ 6PD`` compute accounting of §3/§6, tokens/sec); this package is
how the repo actually measures those quantities at runtime, with zero
dependencies beyond the standard library:

- :mod:`repro.obs.metrics` — process-wide counters/gauges/histograms
  with a JSON-ready :meth:`~metrics.MetricsRegistry.snapshot`.
- :mod:`repro.obs.tracing` — nested ``perf_counter`` spans exported as
  Chrome trace-event JSON (open in ``chrome://tracing`` / Perfetto).
- :mod:`repro.obs.events` — structured JSONL event log (one dict per
  train step / generation request).
- :mod:`repro.obs.profiler` — opt-in per-module forward/backward timing
  and array-``nbytes`` memory accounting, hooked into
  :class:`repro.nn.Module` and the autograd tape.
- :mod:`repro.obs.exposition` — Prometheus text exposition of the
  metrics registry (``GET /metrics`` on the serving layer).
- :mod:`repro.obs.slo` — sliding-window SLO evaluation (p99 TTFT, shed
  rate, error rate, queue depth) with a three-state
  ``ok|degraded|failing`` verdict and breach/recovery events.
- :mod:`repro.obs.flight` — crash flight recorder: a bounded ring of
  recent events + spans dumped as ``flightrecord.json`` when a serving
  process dies.

Request-scoped tracing crosses threads via
:class:`~repro.obs.tracing.TraceContext` (W3C ``traceparent``-style
ids): the serving layer mints one per HTTP request and the engine's
decode thread parents queue-wait/prefill/decode spans under it.

Everything is off by default.  Instrumented layers (:class:`Trainer`,
:class:`GenerationEngine`, the bench harness) accept an
:class:`Observability` bundle; passing ``None`` routes every hook to
shared null objects whose cost is a few no-op calls per *step* — noise
against a single matmul — and instrumentation never touches RNG streams,
so instrumented runs are bit-identical to bare ones.

Quick start::

    from repro.obs import Observability

    obs = Observability.standard()
    history = train_lm_on_stream(model, ids, num_steps=200, obs=obs)
    obs.tracer.write_chrome("trace.json")   # -> chrome://tracing
    print(obs.metrics.snapshot()["train.steps"])
"""

from __future__ import annotations

import json
import os

from .events import NULL_EVENTS, EventLog
from .exposition import to_prometheus
from .flight import FlightRecorder
from .metrics import (
    NULL_METRICS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullMetrics,
    default_registry,
)
from .profiler import ModuleStats, Profiler, parameter_bytes
from .slo import SLOMonitor, SLOThresholds
from .tracing import NULL_TRACER, TraceContext, Tracer


class Observability:
    """Bundle of tracer + metrics + event log threaded through the stack.

    Any component may be omitted; omitted components are replaced by the
    shared null objects, so instrumented code calls them unconditionally.
    """

    __slots__ = ("tracer", "metrics", "events")

    def __init__(self, tracer: Tracer | None = None,
                 metrics: MetricsRegistry | None = None,
                 events: EventLog | None = None):
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.metrics = metrics if metrics is not None else NULL_METRICS
        self.events = events if events is not None else NULL_EVENTS

    @classmethod
    def standard(cls, events_path=None, shared_metrics: bool = False) -> "Observability":
        """Everything on: fresh tracer + registry + in-memory event log.

        ``shared_metrics=True`` uses the process-wide default registry
        instead of a fresh one; ``events_path`` streams the event log to
        disk as JSONL in addition to keeping it in memory.
        """
        return cls(
            tracer=Tracer(),
            metrics=default_registry() if shared_metrics else MetricsRegistry(),
            events=EventLog(path=events_path),
        )

    @property
    def enabled(self) -> bool:
        return (self.tracer.enabled or self.events.enabled
                or not isinstance(self.metrics, NullMetrics))

    def write_artifacts(self, directory) -> dict[str, str]:
        """Dump trace.json / metrics.json / events.jsonl into ``directory``.

        Returns the paths written (only for enabled components).
        """
        os.makedirs(directory, exist_ok=True)
        paths: dict[str, str] = {}
        if self.tracer.enabled:
            paths["trace"] = os.path.join(directory, "trace.json")
            self.tracer.write_chrome(paths["trace"])
        if not isinstance(self.metrics, NullMetrics):
            paths["metrics"] = os.path.join(directory, "metrics.json")
            with open(paths["metrics"], "w") as f:
                json.dump(self.metrics.snapshot(), f, indent=2, default=float)
                f.write("\n")
        if self.events.enabled:
            paths["events"] = os.path.join(directory, "events.jsonl")
            self.events.write(paths["events"])
        return paths


NULL_OBS = Observability()

__all__ = [
    "Observability",
    "NULL_OBS",
    "Tracer",
    "TraceContext",
    "NULL_TRACER",
    "to_prometheus",
    "SLOMonitor",
    "SLOThresholds",
    "FlightRecorder",
    "MetricsRegistry",
    "NullMetrics",
    "NULL_METRICS",
    "Counter",
    "Gauge",
    "Histogram",
    "default_registry",
    "EventLog",
    "NULL_EVENTS",
    "Profiler",
    "ModuleStats",
    "parameter_bytes",
]
