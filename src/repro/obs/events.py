"""Structured JSONL event log.

Where :mod:`repro.obs.metrics` aggregates and :mod:`repro.obs.tracing`
times, the event log keeps the raw facts: one dict per occurrence
(train step, request submitted, request finished), each stamped with
wall-clock time.  Records accumulate in memory and — when constructed
with a path — stream to disk as JSON Lines, one object per line, so a
crashed run still leaves a readable log behind.

The serving layer emits from many handler threads at once, so
:meth:`EventLog.emit` is re-entrant-safe: a lock serializes record
append + file write, and each record hits the file as a single
``write`` call (never ``json.dump`` + a separate newline write, which
two threads can interleave into half-lines).  ``fsync=True`` flushes
and fsyncs after every emit for crash-safe logs at the cost of one
syscall pair per record.  Sinks registered with :meth:`add_sink` (the
flight recorder) see every record as it is emitted.
"""

from __future__ import annotations

import json
import os
import threading
import time


class EventLog:
    """Append-only structured log.

    Parameters
    ----------
    path:
        Optional file path; when given, every record is also written
        through to it immediately as one JSON line.
    enabled:
        When False :meth:`emit` is a no-op (the shared
        :data:`NULL_EVENTS` instance is the usual way to get this).
    clock:
        Wall-clock source for the ``t`` field; ``time.time`` by default.
    fsync:
        When True (and ``path`` is given) every emit is flushed and
        fsynced, so a SIGKILL loses at most the record being written.
    """

    def __init__(self, path=None, enabled: bool = True, clock=time.time,
                 fsync: bool = False):
        self.enabled = enabled
        self.clock = clock
        self.path = path
        self.fsync = fsync
        self.records: list[dict] = []
        self._fh = None
        # RLock: a sink may itself consult the log without deadlocking.
        self._lock = threading.RLock()
        self._sinks: list = []

    def add_sink(self, sink) -> None:
        """Register ``sink(record)`` to observe every emitted record."""
        self._sinks.append(sink)

    def emit(self, event: str, **fields) -> dict | None:
        """Record one event; returns the stored record (None when disabled).

        Safe to call from multiple threads: the in-memory append and the
        file write happen under one lock, and the JSON line is written
        with a single ``write`` call so concurrent emitters can never
        interleave partial lines.
        """
        if not self.enabled:
            return None
        record = {"event": event, "t": self.clock(), **fields}
        with self._lock:
            self.records.append(record)
            if self.path is not None:
                if self._fh is None:
                    self._fh = open(self.path, "a")
                self._fh.write(json.dumps(record, default=float) + "\n")
                if self.fsync:
                    self._fh.flush()
                    os.fsync(self._fh.fileno())
            for sink in self._sinks:
                sink(record)
        return record

    def __len__(self) -> int:
        return len(self.records)

    def of_type(self, event: str) -> list[dict]:
        return [r for r in self.records if r["event"] == event]

    def to_jsonl(self) -> str:
        with self._lock:
            records = list(self.records)
        return "".join(json.dumps(r, default=float) + "\n" for r in records)

    def write(self, path) -> None:
        """Dump every in-memory record to ``path`` as JSON Lines."""
        with open(path, "w") as f:
            f.write(self.to_jsonl())

    def flush(self) -> None:
        """Flush the streaming file handle (no-op without a path)."""
        with self._lock:
            if self._fh is not None:
                self._fh.flush()

    def close(self) -> None:
        """Flush and close the streaming file handle, releasing it."""
        with self._lock:
            if self._fh is not None:
                self._fh.close()
                self._fh = None

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        self.close()
        return False


NULL_EVENTS = EventLog(enabled=False)
