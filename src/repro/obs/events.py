"""Structured JSONL event log.

Where :mod:`repro.obs.metrics` aggregates and :mod:`repro.obs.tracing`
times, the event log keeps the raw facts: one dict per occurrence
(train step, request submitted, request finished), each stamped with
wall-clock time.  Records accumulate in memory and — when constructed
with a path — stream to disk as JSON Lines, one object per line, so a
crashed run still leaves a readable log behind.
"""

from __future__ import annotations

import json
import time


class EventLog:
    """Append-only structured log.

    Parameters
    ----------
    path:
        Optional file path; when given, every record is also written
        through to it immediately as one JSON line.
    enabled:
        When False :meth:`emit` is a no-op (the shared
        :data:`NULL_EVENTS` instance is the usual way to get this).
    clock:
        Wall-clock source for the ``t`` field; ``time.time`` by default.
    """

    def __init__(self, path=None, enabled: bool = True, clock=time.time):
        self.enabled = enabled
        self.clock = clock
        self.path = path
        self.records: list[dict] = []
        self._fh = None

    def emit(self, event: str, **fields) -> dict | None:
        """Record one event; returns the stored record (None when disabled)."""
        if not self.enabled:
            return None
        record = {"event": event, "t": self.clock(), **fields}
        self.records.append(record)
        if self.path is not None:
            if self._fh is None:
                self._fh = open(self.path, "a")
            json.dump(record, self._fh, default=float)
            self._fh.write("\n")
        return record

    def __len__(self) -> int:
        return len(self.records)

    def of_type(self, event: str) -> list[dict]:
        return [r for r in self.records if r["event"] == event]

    def to_jsonl(self) -> str:
        return "".join(json.dumps(r, default=float) + "\n" for r in self.records)

    def write(self, path) -> None:
        """Dump every in-memory record to ``path`` as JSON Lines."""
        with open(path, "w") as f:
            f.write(self.to_jsonl())

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        self.close()
        return False


NULL_EVENTS = EventLog(enabled=False)
