"""Process-wide metrics: counters, gauges, and histograms.

The registry is the numerical half of the telemetry layer: cheap
monotonic counters (steps, tokens), point-in-time gauges (loss, queue
depth), and histograms with exact count/mean/min/max plus approximate
percentiles.  Everything is plain Python — no background threads, no
locks (the whole library is single-threaded NumPy), no dependencies —
and :meth:`MetricsRegistry.snapshot` exports one JSON-ready dict.

Instrumented code paths accept a registry or the :data:`NULL_METRICS`
sink; the null sink hands out no-op instruments so hot loops never
branch on "is telemetry on?".
"""

from __future__ import annotations


class Counter:
    """Monotonically increasing count (events, tokens, steps)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only increase; use a Gauge")
        self.value += amount

    def snapshot(self) -> dict:
        return {"type": "counter", "value": self.value}


class Gauge:
    """Last-written point-in-time value (loss, occupancy, queue depth)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount

    def snapshot(self) -> dict:
        return {"type": "gauge", "value": self.value}


class Histogram:
    """Distribution of observed values (step latencies, request sizes).

    Count/total/min/max are exact.  Percentiles come from a bounded
    sample: once ``max_samples`` values are stored, every other stored
    sample is dropped and only every ``stride``-th future observation is
    kept — deterministic (no RNG draw, so instrumented code cannot
    perturb seeded experiments) and memory-bounded.
    """

    __slots__ = ("name", "count", "total", "min", "max",
                 "_samples", "_stride", "_skip", "_max_samples")

    def __init__(self, name: str, max_samples: int = 4096):
        if max_samples < 2:
            raise ValueError("max_samples must be >= 2")
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")
        self._samples: list[float] = []
        self._stride = 1
        self._skip = 0
        self._max_samples = max_samples

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        if self._skip:
            self._skip -= 1
            return
        self._samples.append(value)
        self._skip = self._stride - 1
        if len(self._samples) >= self._max_samples:
            self._samples = self._samples[::2]
            self._stride *= 2

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, q: float) -> float:
        """Linear-interpolated percentile of the stored sample, q in [0, 1]."""
        if not 0.0 <= q <= 1.0:
            raise ValueError("q must be in [0, 1]")
        if not self._samples:
            return 0.0
        ordered = sorted(self._samples)
        pos = q * (len(ordered) - 1)
        lo = int(pos)
        hi = min(lo + 1, len(ordered) - 1)
        frac = pos - lo
        return ordered[lo] * (1.0 - frac) + ordered[hi] * frac

    def bucket_counts(self, bounds: list[float]) -> list[int]:
        """Cumulative counts at each upper bound (Prometheus ``le`` style).

        Exact counts per bucket are not kept — only the decimated sample
        — so each bucket's cumulative count is estimated from the
        sample's empirical CDF scaled to the true total.  The estimate
        is deterministic, monotone non-decreasing, and pinned so that a
        final ``+Inf`` bucket equals :attr:`count` exactly, which is
        what the text exposition format requires.
        """
        if not self.count:
            return [0] * len(bounds)
        ordered = sorted(self._samples)
        counts = []
        for bound in bounds:
            covered = sum(1 for v in ordered if v <= bound)
            counts.append(round(self.count * covered / len(ordered)))
        return counts

    def snapshot(self) -> dict:
        if not self.count:
            return {"type": "histogram", "count": 0}
        return {
            "type": "histogram",
            "count": self.count,
            "total": self.total,
            "mean": self.mean,
            "min": self.min,
            "max": self.max,
            "p50": self.percentile(0.50),
            "p95": self.percentile(0.95),
            "p99": self.percentile(0.99),
        }


class MetricsRegistry:
    """Named get-or-create store of metric instruments.

    ``counter("train.steps")`` returns the same :class:`Counter` on every
    call, so independently instrumented layers share series by name.
    """

    def __init__(self):
        self._metrics: dict[str, Counter | Gauge | Histogram] = {}

    def _get(self, name: str, cls):
        metric = self._metrics.get(name)
        if metric is None:
            metric = self._metrics[name] = cls(name)
        elif not isinstance(metric, cls):
            raise TypeError(
                f"metric {name!r} already registered as "
                f"{type(metric).__name__}, not {cls.__name__}"
            )
        return metric

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge)

    def histogram(self, name: str) -> Histogram:
        return self._get(name, Histogram)

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def get(self, name: str):
        """The registered instrument for ``name``, or None."""
        return self._metrics.get(name)

    def names(self) -> list[str]:
        return sorted(self._metrics)

    def snapshot(self) -> dict[str, dict]:
        """One JSON-ready dict of every registered series."""
        return {name: self._metrics[name].snapshot() for name in sorted(self._metrics)}

    def reset(self) -> None:
        self._metrics.clear()


class _NullInstrument:
    """No-op stand-in for Counter/Gauge/Histogram on disabled paths."""

    __slots__ = ()

    def inc(self, amount: float = 1.0) -> None:
        pass

    def dec(self, amount: float = 1.0) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass


class NullMetrics:
    """Registry lookalike whose instruments discard every update."""

    _instrument = _NullInstrument()

    def counter(self, name: str) -> _NullInstrument:
        return self._instrument

    def gauge(self, name: str) -> _NullInstrument:
        return self._instrument

    def histogram(self, name: str) -> _NullInstrument:
        return self._instrument

    def __contains__(self, name: str) -> bool:
        return False

    def get(self, name: str) -> None:
        return None

    def names(self) -> list[str]:
        return []

    def snapshot(self) -> dict:
        return {}

    def reset(self) -> None:
        pass


NULL_METRICS = NullMetrics()

_DEFAULT = MetricsRegistry()


def default_registry() -> MetricsRegistry:
    """The process-wide registry shared by callers that pass none of their own."""
    return _DEFAULT
