"""Process-wide compute dtype policy for the NumPy stack.

Every hot path in the repo — autograd tensors, the fused attention
kernels, parameter initialization, and both KV-cache backends — is
memory-bandwidth-bound, so the array dtype is a direct ~2x lever on
throughput and KV bytes.  This module is the single source of truth for
which floating dtype those paths allocate in.

Resolution order (first match wins):

1. an explicit ``dtype=`` argument at the call site
   (``Tensor(x, dtype=...)``, ``KVCache(..., dtype=...)``);
2. the per-model knob ``TransformerConfig(dtype="float32")``, applied
   as a :func:`dtype_scope` around model construction — parameters keep
   that dtype for the model's lifetime, so forwards, gradients, and KV
   pools follow it naturally;
3. the innermost active :func:`dtype_scope` context manager;
4. the process-global default set by :func:`set_default_dtype`
   (``float64`` unless overridden — the seed behaviour).

Only ``float32`` and ``float64`` are supported compute dtypes.  Paths
that are *pinned* to float64 regardless of policy: finite-difference
gradchecks (``autograd/gradcheck.py``), token sampling
(``core/sampling.py`` — keeps RNG consumption and tie-breaks
dtype-independent), and the float64-accumulation of softmax sums and
normalizers inside reductions (see :func:`f64_sum`).  Index and
bookkeeping arrays (KV lengths, block tables, free lists) stay int64
regardless of the policy.  See ``docs/DTYPE.md`` for the full story.
"""

from contextlib import contextmanager

import numpy as np

__all__ = [
    "SUPPORTED_DTYPES",
    "default_dtype",
    "dtype_scope",
    "f64_sum",
    "resolve_dtype",
    "set_default_dtype",
]

#: The compute dtypes the policy accepts, in preference order.
SUPPORTED_DTYPES = (np.dtype(np.float32), np.dtype(np.float64))

_DEFAULT_DTYPE = np.dtype(np.float64)


def _validate(dtype) -> np.dtype:
    """Normalize ``dtype`` to a ``np.dtype`` and reject unsupported ones."""
    try:
        dt = np.dtype(dtype)
    except TypeError as error:
        raise ValueError(f"unsupported compute dtype {dtype!r}") from error
    if dt not in SUPPORTED_DTYPES:
        names = ", ".join(d.name for d in SUPPORTED_DTYPES)
        raise ValueError(
            f"unsupported compute dtype {dt.name!r}; expected one of: {names}")
    return dt


def default_dtype() -> np.dtype:
    """The currently active default compute dtype.

    This is what new parameters, KV pools, and policy-following arrays
    are allocated as when no explicit override is given.  It reflects
    the innermost :func:`dtype_scope` if one is active, otherwise the
    process-global default.
    """
    return _DEFAULT_DTYPE


def set_default_dtype(dtype) -> np.dtype:
    """Set the process-global default compute dtype; returns the old one.

    Accepts anything ``np.dtype`` does (``"float32"``, ``np.float32``,
    a ``np.dtype`` instance).  Raises ``ValueError`` for anything other
    than float32/float64.  Prefer :func:`dtype_scope` for bounded
    overrides — this mutates global state for the rest of the process.
    """
    global _DEFAULT_DTYPE
    previous = _DEFAULT_DTYPE
    _DEFAULT_DTYPE = _validate(dtype)
    return previous


@contextmanager
def dtype_scope(dtype):
    """Context manager: temporarily make ``dtype`` the default.

    ``dtype_scope(None)`` is a no-op (keeps the current policy), which
    lets callers thread an optional per-model knob without branching::

        with dtype_scope(config.dtype):   # config.dtype may be None
            model = build(...)

    Scopes nest; the previous default is restored on exit even if the
    body raises.  The policy is process-global, not thread-local — set
    scopes up at construction time, not concurrently with serving.
    """
    global _DEFAULT_DTYPE
    if dtype is None:
        yield _DEFAULT_DTYPE
        return
    previous = _DEFAULT_DTYPE
    _DEFAULT_DTYPE = _validate(dtype)
    try:
        yield _DEFAULT_DTYPE
    finally:
        _DEFAULT_DTYPE = previous


def resolve_dtype(dtype=None) -> np.dtype:
    """Resolve an optional explicit ``dtype`` against the active policy.

    ``None`` means "follow the policy" and returns
    :func:`default_dtype`; anything else is validated and returned.
    This is the helper call sites use to implement resolution step 1
    (explicit argument) falling back to steps 3-4 (scope / global).
    """
    if dtype is None:
        return _DEFAULT_DTYPE
    return _validate(dtype)


def f64_sum(a: np.ndarray, axis=None, keepdims: bool = False) -> np.ndarray:
    """Sum ``a`` with a float64 accumulator, returned in ``a``'s dtype.

    Softmax denominators and attention normalizers sum many small
    positive terms; accumulating them in float32 loses enough precision
    to perturb sampling tie-breaks and blocked-kernel equivalence.  This
    helper keeps the *accumulation* in float64 even when activations are
    float32, then casts the (well-conditioned) result back.  For float64
    input it compiles to the exact same pairwise summation as a plain
    ``a.sum(...)`` — bit-identical to the seed code path.
    """
    if a.dtype == np.float64:
        return a.sum(axis=axis, keepdims=keepdims)
    return a.sum(axis=axis, keepdims=keepdims, dtype=np.float64).astype(a.dtype)
