"""In-context learning of linear regression (§4, §7; Garg et al.).

The "learning how to learn" task: each sequence interleaves points
(x_1, y_1, ..., x_k, y_k) of a *fresh* linear task y = w . x, and the
transformer must predict each y_i from the preceding pairs — with no
weight updates.  Comparing its error profile against explicit algorithms
(OLS, ridge, k-step gradient descent) is the §7 computational-model
methodology of Akyürek et al.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..autograd import Tensor
from ..core import TransformerConfig, TransformerRegressor
from ..nn import Adam


# ---------------------------------------------------------------------------
# Task encoding
# ---------------------------------------------------------------------------
# Sequence layout (length 2k): [x_1, y_1, x_2, y_2, ...].  An x-token is
# [x, 0]; a y-token is [0...0, y].  The model predicts y_i at each
# x-token position (it has seen exactly i-1 complete pairs there).


def encode_sequences(xs: np.ndarray, ys: np.ndarray) -> np.ndarray:
    """(B, k, d) points + (B, k) labels -> (B, 2k, d+1) token array."""
    b, k, d = xs.shape
    tokens = np.zeros((b, 2 * k, d + 1))
    tokens[:, 0::2, :d] = xs
    tokens[:, 1::2, d] = ys
    return tokens


def sample_tasks(
    rng: np.random.Generator, batch: int, num_points: int, dim: int,
    noise_std: float = 0.0,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Fresh tasks w ~ N(0, I); xs ~ N(0, I); ys = xs . w + noise."""
    w = rng.normal(size=(batch, dim))
    xs = rng.normal(size=(batch, num_points, dim))
    ys = np.einsum("bkd,bd->bk", xs, w)
    if noise_std > 0:
        ys = ys + rng.normal(scale=noise_std, size=ys.shape)
    return xs, ys, w


@dataclass
class ICLBatch:
    """One batch of in-context regression episodes, token-encoded."""

    tokens: np.ndarray   # (B, 2k, d+1)
    targets: np.ndarray  # (B, k) the y values
    xs: np.ndarray
    ys: np.ndarray


def make_icl_batch(rng: np.random.Generator, batch: int, num_points: int,
                   dim: int, noise_std: float = 0.0) -> ICLBatch:
    """Sample fresh linear-regression tasks and encode them as sequences."""
    xs, ys, _w = sample_tasks(rng, batch, num_points, dim, noise_std)
    return ICLBatch(tokens=encode_sequences(xs, ys), targets=ys, xs=xs, ys=ys)


# ---------------------------------------------------------------------------
# Transformer training / evaluation
# ---------------------------------------------------------------------------


def icl_loss(model: TransformerRegressor, batch: ICLBatch) -> Tensor:
    """Mean squared error of predictions at every x-token position."""
    preds = model.forward(batch.tokens)          # (B, 2k)
    x_positions = np.arange(0, batch.tokens.shape[1], 2)
    diff = preds[:, x_positions] - Tensor(batch.targets)
    return diff.square().mean()


def train_icl_transformer(
    dim: int = 3,
    num_points: int = 10,
    steps: int = 400,
    batch_size: int = 32,
    d_model: int = 32,
    num_layers: int = 2,
    num_heads: int = 4,
    lr: float = 1e-3,
    noise_std: float = 0.0,
    seed: int = 0,
) -> TransformerRegressor:
    """Train a regressor on a stream of fresh linear tasks."""
    rng = np.random.default_rng(seed)
    config = TransformerConfig(
        vocab_size=2,  # unused by the regressor; must be positive
        max_seq_len=2 * num_points, d_model=d_model,
        num_heads=num_heads, num_layers=num_layers,
    )
    model = TransformerRegressor(dim + 1, config, rng=seed)
    optimizer = Adam(model.parameters(), lr=lr)
    for _ in range(steps):
        batch = make_icl_batch(rng, batch_size, num_points, dim, noise_std)
        model.zero_grad()
        loss = icl_loss(model, batch)
        loss.backward()
        optimizer.step()
    return model


def transformer_mse_profile(model: TransformerRegressor, batch: ICLBatch) -> np.ndarray:
    """MSE at each x position: error after seeing 0, 1, ..., k-1 examples."""
    preds = model.predict(batch.tokens)
    x_positions = np.arange(0, batch.tokens.shape[1], 2)
    errors = (preds[:, x_positions] - batch.targets) ** 2
    return errors.mean(axis=0)


# ---------------------------------------------------------------------------
# Explicit-algorithm baselines (the candidate computational models)
# ---------------------------------------------------------------------------


def _prefix_predict(xs: np.ndarray, ys: np.ndarray, fit_fn) -> np.ndarray:
    """Apply ``fit_fn(X_prefix, y_prefix, x_query) -> y_hat`` at each index."""
    b, k, _d = xs.shape
    preds = np.zeros((b, k))
    for i in range(b):
        for j in range(k):
            preds[i, j] = fit_fn(xs[i, :j], ys[i, :j], xs[i, j])
    return preds


def ols_profile(xs: np.ndarray, ys: np.ndarray) -> np.ndarray:
    """Least-squares-on-prefix MSE profile (minimum-norm for j < d)."""

    def fit(x_prev, y_prev, x_query):
        if len(x_prev) == 0:
            return 0.0
        w, *_ = np.linalg.lstsq(x_prev, y_prev, rcond=None)
        return float(x_query @ w)

    preds = _prefix_predict(xs, ys, fit)
    return ((preds - ys) ** 2).mean(axis=0)


def ridge_profile(xs: np.ndarray, ys: np.ndarray, lam: float = 0.1) -> np.ndarray:
    """Ridge regression on each prefix; the Bayes predictor under noise."""
    d = xs.shape[-1]

    def fit(x_prev, y_prev, x_query):
        if len(x_prev) == 0:
            return 0.0
        a = x_prev.T @ x_prev + lam * np.eye(d)
        w = np.linalg.solve(a, x_prev.T @ y_prev)
        return float(x_query @ w)

    preds = _prefix_predict(xs, ys, fit)
    return ((preds - ys) ** 2).mean(axis=0)


def gradient_descent_profile(xs: np.ndarray, ys: np.ndarray,
                             steps: int = 5, lr: float = 0.1) -> np.ndarray:
    """k-step full-batch GD from w = 0 on each prefix (Akyürek et al. CM)."""
    d = xs.shape[-1]

    def fit(x_prev, y_prev, x_query):
        if len(x_prev) == 0:
            return 0.0
        w = np.zeros(d)
        for _ in range(steps):
            grad = x_prev.T @ (x_prev @ w - y_prev) / len(x_prev)
            w -= lr * grad
        return float(x_query @ w)

    preds = _prefix_predict(xs, ys, fit)
    return ((preds - ys) ** 2).mean(axis=0)


def zero_profile(xs: np.ndarray, ys: np.ndarray) -> np.ndarray:
    """Always predict 0 — the no-learning floor (E[y^2] = d for unit tasks)."""
    return (ys**2).mean(axis=0)
