"""Phenomenology toolkit (§3-§4): scaling, compute, grokking, ICL."""

from .compute import (
    attention_flops,
    compute_optimal_tokens,
    inference_flops,
    training_flops,
    transformer_param_estimate,
)
from .grokking import GrokkingResult, modular_addition_dataset, run_grokking
from .icl import (
    ICLBatch,
    encode_sequences,
    gradient_descent_profile,
    icl_loss,
    make_icl_batch,
    ols_profile,
    ridge_profile,
    sample_tasks,
    train_icl_transformer,
    transformer_mse_profile,
    zero_profile,
)
from .scaling import (
    JointFit,
    PowerLawFit,
    SweepPoint,
    data_size_sweep,
    fit_joint_ansatz,
    fit_power_law,
    model_size_sweep,
    train_point,
)

__all__ = [
    "transformer_param_estimate",
    "training_flops",
    "inference_flops",
    "attention_flops",
    "compute_optimal_tokens",
    "PowerLawFit",
    "JointFit",
    "SweepPoint",
    "fit_power_law",
    "fit_joint_ansatz",
    "train_point",
    "model_size_sweep",
    "data_size_sweep",
    "GrokkingResult",
    "modular_addition_dataset",
    "run_grokking",
    "ICLBatch",
    "encode_sequences",
    "sample_tasks",
    "make_icl_batch",
    "icl_loss",
    "train_icl_transformer",
    "transformer_mse_profile",
    "ols_profile",
    "ridge_profile",
    "gradient_descent_profile",
    "zero_profile",
]
