"""Parameter and FLOP accounting (§3/§6).

Two rules of thumb from the paper and the scaling-law literature:
the §6 parameter count ``P ~ 12 D p^2`` (D blocks of width p), and the
training cost ``C ~ 6 P D_tokens`` FLOPs (forward 2PD + backward 4PD).
Exact per-module counts are available via ``Module.num_parameters``.
"""

from __future__ import annotations

from ..core.config import TransformerConfig


def transformer_param_estimate(config: TransformerConfig,
                               include_embeddings: bool = True) -> int:
    """The 12 * blocks * p^2 estimate (optionally plus embedding tables)."""
    blocks = 12 * config.num_layers * config.d_model**2
    if not include_embeddings:
        return blocks
    embed = config.vocab_size * config.d_model  # token table
    unembed = config.vocab_size * config.d_model  # LM head
    positions = config.max_seq_len * config.d_model if config.positional == "learned" else 0
    return blocks + embed + unembed + positions


def training_flops(num_params: int, num_tokens: int) -> float:
    """C ~ 6 P D: the standard compute estimate for one pass over D tokens."""
    if num_params < 0 or num_tokens < 0:
        raise ValueError("counts must be non-negative")
    return 6.0 * num_params * num_tokens


def inference_flops(num_params: int, num_tokens: int) -> float:
    """~2 P per generated/scored token (forward pass only)."""
    if num_params < 0 or num_tokens < 0:
        raise ValueError("counts must be non-negative")
    return 2.0 * num_params * num_tokens


def attention_flops(seq_len: int, d_model: int, num_layers: int) -> float:
    """The O(L^2) attention term the paper flags as the window bottleneck.

    Per layer: scores (L^2 d) + weighted sum (L^2 d), ignoring constants.
    """
    return float(2 * num_layers * seq_len**2 * d_model)


def compute_optimal_tokens(flop_budget: float, num_params: int) -> float:
    """Tokens trainable within a budget at 6PD cost (Chinchilla-style)."""
    if num_params <= 0:
        raise ValueError("num_params must be positive")
    return flop_budget / (6.0 * num_params)
