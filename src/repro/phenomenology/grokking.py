"""Grokking (§4): memorise first, generalise much later.

Power et al.'s observation on small algorithmic datasets: training
accuracy saturates quickly while *test* accuracy stays at chance for many
more steps, then jumps — "hidden progress".  The recipe here follows
Gromov's analytically solvable setting: a two-layer network with quadratic
activation on modular addition, full-batch gradient descent on a
mean-squared-error loss, with small weight decay.  Weight decay is the
load-bearing ingredient — the ablation with ``weight_decay=0`` memorises
identically but never generalises.

Verified defaults (modulus 13, 60% train split, width 128, lr 3.0,
weight decay 1e-3): train accuracy hits 100% within ~200 steps, test
accuracy jumps past 90% around step 2500-4000 depending on seed.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field, fields

import numpy as np

from ..autograd import Tensor, no_grad
from ..nn import MLP, SGD


def modular_addition_dataset(
    modulus: int, train_fraction: float, rng: np.random.Generator
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """All (a, b) -> (a + b) mod p pairs, one-hot encoded, split randomly.

    Returns (x_train, y_train, x_test, y_test); inputs are 2p-dim one-hot
    concatenations of a and b, labels are integers in [0, p).
    """
    if modulus < 3:
        raise ValueError("modulus must be >= 3")
    if not 0.0 < train_fraction < 1.0:
        raise ValueError("train_fraction must be in (0, 1)")
    pairs = np.array([(a, b) for a in range(modulus) for b in range(modulus)])
    labels = (pairs[:, 0] + pairs[:, 1]) % modulus
    features = np.zeros((len(pairs), 2 * modulus))
    features[np.arange(len(pairs)), pairs[:, 0]] = 1.0
    features[np.arange(len(pairs)), modulus + pairs[:, 1]] = 1.0
    order = rng.permutation(len(pairs))
    cut = int(len(pairs) * train_fraction)
    train_idx, test_idx = order[:cut], order[cut:]
    return (features[train_idx], labels[train_idx],
            features[test_idx], labels[test_idx])


@dataclass
class GrokkingResult:
    """Accuracy/loss curves sampled every ``eval_every`` steps."""

    eval_steps: list[int] = field(default_factory=list)
    train_acc: list[float] = field(default_factory=list)
    test_acc: list[float] = field(default_factory=list)
    train_loss: list[float] = field(default_factory=list)
    test_loss: list[float] = field(default_factory=list)

    def step_reaching(self, series: list[float], threshold: float) -> int | None:
        """First recorded step at which ``series`` >= threshold."""
        for step, value in zip(self.eval_steps, series):
            if value >= threshold:
                return step
        return None

    def grok_gap(self, train_threshold: float = 0.99,
                 test_threshold: float = 0.9) -> int | None:
        """Steps between train-accuracy saturation and test-accuracy jump.

        The grokking signature is a large positive gap; None if either
        threshold is never reached.
        """
        t_train = self.step_reaching(self.train_acc, train_threshold)
        t_test = self.step_reaching(self.test_acc, test_threshold)
        if t_train is None or t_test is None:
            return None
        return t_test - t_train

    def state_dict(self) -> dict:
        """JSON-able snapshot of the recorded curves (for checkpoints)."""
        return asdict(self)

    @classmethod
    def from_state_dict(cls, state: dict) -> "GrokkingResult":
        """Rebuild a result saved by :meth:`state_dict` (extra keys ignored)."""
        known = {f.name for f in fields(cls)}
        return cls(**{k: v for k, v in state.items() if k in known})


def _mse_loss(model: MLP, features: np.ndarray, onehot: np.ndarray) -> Tensor:
    pred = model(Tensor(features))
    return (pred - Tensor(onehot)).square().sum(axis=1).mean() * 0.5


def _accuracy(model: MLP, features: np.ndarray, labels: np.ndarray) -> float:
    with no_grad():
        logits = model(Tensor(features)).data
    return float((np.argmax(logits, axis=-1) == labels).mean())


def run_grokking(
    modulus: int = 13,
    train_fraction: float = 0.6,
    width: int = 128,
    steps: int = 8000,
    lr: float = 3.0,
    weight_decay: float = 1e-3,
    eval_every: int = 100,
    seed: int = 0,
    activation: str = "square",
    checkpoint_every: int = 0,
    checkpoint_dir=None,
    resume: bool = False,
) -> GrokkingResult:
    """Full-batch GD with MSE on modular addition, recording both accuracies.

    Set ``weight_decay=0.0`` for the ablation: the model still memorises
    the training set but test accuracy stays at chance.

    This is the repo's longest single run (thousands of steps), so it is
    restartable: with ``checkpoint_dir`` / ``checkpoint_every`` set the
    model, SGD state, and in-progress curves are snapshotted via
    :mod:`repro.train.checkpoint`, and ``resume=True`` continues a
    killed run from the newest valid snapshot — bit-identically, since
    training is full-batch (the RNG only shapes the deterministic
    seed-derived dataset split and init, both replayed before loading).
    """
    rng = np.random.default_rng(seed)
    x_train, y_train, x_test, y_test = modular_addition_dataset(
        modulus, train_fraction, rng
    )
    onehot_train = np.eye(modulus)[y_train]
    onehot_test = np.eye(modulus)[y_test]
    model = MLP([2 * modulus, width, modulus], rng, activation=activation, bias=False)
    optimizer = SGD(model.parameters(), lr=lr, weight_decay=weight_decay)
    result = GrokkingResult()
    start_step = 0
    checkpointing = checkpoint_dir is not None and checkpoint_every > 0
    if resume and checkpoint_dir is not None:
        from ..train.checkpoint import latest_checkpoint, load_training_checkpoint

        if latest_checkpoint(checkpoint_dir) is not None:
            state = load_training_checkpoint(checkpoint_dir, model, optimizer)
            start_step = state.step
            if state.extra and "grokking" in state.extra:
                result = GrokkingResult.from_state_dict(state.extra["grokking"])
    for step in range(start_step, steps):
        model.zero_grad()
        loss = _mse_loss(model, x_train, onehot_train)
        loss.backward()
        optimizer.step()
        if step % eval_every == 0 or step == steps - 1:
            result.eval_steps.append(step)
            result.train_acc.append(_accuracy(model, x_train, y_train))
            result.test_acc.append(_accuracy(model, x_test, y_test))
            result.train_loss.append(float(loss.data))
            with no_grad():
                result.test_loss.append(
                    float(_mse_loss(model, x_test, onehot_test).data)
                )
        if checkpointing and ((step + 1) % checkpoint_every == 0
                              or step == steps - 1):
            from ..train.checkpoint import save_training_checkpoint

            save_training_checkpoint(
                checkpoint_dir, step + 1, model, optimizer,
                extra={"grokking": result.state_dict()}, keep_last=3)
    return result
