"""Scaling laws (§3-§4): sweeps over model/data size and power-law fits.

Regenerates the Figure-2 series — test loss versus parameters, tokens, and
compute — at laptop scale, and fits both simple power laws and the joint
Eq. 4 ansatz ``L(P, D) = [(P_c / P)^(alpha_P / alpha_D) + D_c / D]^alpha_D``.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Sequence

import numpy as np
from scipy import optimize

from ..core import TransformerConfig, TransformerLM
from ..data.corpus import Corpus
from ..train.trainer import train_lm_on_stream
from .compute import training_flops


# ---------------------------------------------------------------------------
# Fits
# ---------------------------------------------------------------------------


@dataclass
class PowerLawFit:
    """L ~ coefficient * x^(-exponent) (+ floor), with log-space R^2."""

    exponent: float
    coefficient: float
    floor: float
    r_squared: float

    def predict(self, x: np.ndarray) -> np.ndarray:
        return self.floor + self.coefficient * np.asarray(x, dtype=np.float64) ** (
            -self.exponent
        )


def fit_power_law(x: Sequence[float], loss: Sequence[float],
                  fit_floor: bool = False) -> PowerLawFit:
    """Least-squares power-law fit.

    Without a floor this is linear regression in log-log space (the
    straight lines of Figure 2); with ``fit_floor=True`` an irreducible
    loss term is fit by ``scipy.optimize.curve_fit``.
    """
    x = np.asarray(x, dtype=np.float64)
    y = np.asarray(loss, dtype=np.float64)
    if x.shape != y.shape or x.size < 2:
        raise ValueError("need matching x/loss arrays with >= 2 points")
    if np.any(x <= 0) or np.any(y <= 0):
        raise ValueError("power-law fit requires positive values")

    if not fit_floor:
        slope, intercept = np.polyfit(np.log(x), np.log(y), deg=1)
        predicted = slope * np.log(x) + intercept
        ss_res = float(((np.log(y) - predicted) ** 2).sum())
        ss_tot = float(((np.log(y) - np.log(y).mean()) ** 2).sum())
        r2 = 1.0 - ss_res / ss_tot if ss_tot > 0 else 1.0
        return PowerLawFit(exponent=-slope, coefficient=float(np.exp(intercept)),
                           floor=0.0, r_squared=r2)

    def model(x_, c, alpha, floor):
        return floor + c * x_ ** (-alpha)

    p0 = (y.max() * x.min() ** 0.1, 0.1, max(y.min() * 0.5, 1e-6))
    params, _cov = optimize.curve_fit(model, x, y, p0=p0, maxfev=20000,
                                      bounds=([1e-12, 0.0, 0.0], [np.inf] * 3))
    predicted = model(x, *params)
    ss_res = float(((y - predicted) ** 2).sum())
    ss_tot = float(((y - y.mean()) ** 2).sum())
    r2 = 1.0 - ss_res / ss_tot if ss_tot > 0 else 1.0
    return PowerLawFit(exponent=float(params[1]), coefficient=float(params[0]),
                       floor=float(params[2]), r_squared=r2)


@dataclass
class JointFit:
    """Parameters of the Eq. 4 ansatz plus fit quality."""

    alpha_p: float
    alpha_d: float
    p_c: float
    d_c: float
    r_squared: float

    def predict(self, params: np.ndarray, tokens: np.ndarray) -> np.ndarray:
        params = np.asarray(params, dtype=np.float64)
        tokens = np.asarray(tokens, dtype=np.float64)
        inner = (self.p_c / params) ** (self.alpha_p / self.alpha_d) + self.d_c / tokens
        return inner**self.alpha_d


def fit_joint_ansatz(params: Sequence[float], tokens: Sequence[float],
                     loss: Sequence[float]) -> JointFit:
    """Fit Eq. 4 to an irregular grid of (P, D, L) observations."""
    p = np.asarray(params, dtype=np.float64)
    d = np.asarray(tokens, dtype=np.float64)
    y = np.asarray(loss, dtype=np.float64)
    if not (p.shape == d.shape == y.shape) or p.size < 4:
        raise ValueError("need >= 4 matching (P, D, L) observations")

    def model(pd, log_pc, log_dc, alpha_p, alpha_d):
        pp, dd = pd
        inner = (np.exp(log_pc) / pp) ** (alpha_p / alpha_d) + np.exp(log_dc) / dd
        return inner**alpha_d

    p0 = (np.log(np.median(p)), np.log(np.median(d)), 0.3, 0.3)
    fitted, _cov = optimize.curve_fit(
        model, (p, d), y, p0=p0, maxfev=50000,
        bounds=([-50, -50, 1e-3, 1e-3], [50, 50, 5.0, 5.0]),
    )
    predicted = model((p, d), *fitted)
    ss_res = float(((y - predicted) ** 2).sum())
    ss_tot = float(((y - y.mean()) ** 2).sum())
    r2 = 1.0 - ss_res / ss_tot if ss_tot > 0 else 1.0
    return JointFit(alpha_p=float(fitted[2]), alpha_d=float(fitted[3]),
                    p_c=float(np.exp(fitted[0])), d_c=float(np.exp(fitted[1])),
                    r_squared=r2)


# ---------------------------------------------------------------------------
# Sweeps
# ---------------------------------------------------------------------------


@dataclass
class SweepPoint:
    """One trained model in a scaling sweep."""

    num_params: int
    num_tokens: int
    steps: int
    flops: float
    train_loss: float
    test_loss: float
    d_model: int
    num_layers: int


def train_point(
    corpus: Corpus,
    d_model: int,
    num_layers: int,
    num_heads: int,
    seq_len: int,
    steps: int,
    batch_size: int = 16,
    lr: float = 3e-3,
    seed: int = 0,
    checkpoint_dir=None,
    checkpoint_every: int = 0,
) -> tuple[TransformerLM, SweepPoint]:
    """Train one transformer on ``corpus`` and evaluate held-out loss.

    With ``checkpoint_dir`` set the run writes resumable snapshots (and
    resumes from them if present), making a multi-point sweep
    restartable after a mid-sweep kill — each point gets its own
    subdirectory keyed on architecture and data size, so a re-run skips
    straight past every point whose training already finished.
    """
    config = TransformerConfig(
        vocab_size=corpus.vocab_size, max_seq_len=seq_len,
        d_model=d_model, num_heads=num_heads, num_layers=num_layers,
    )
    model = TransformerLM(config, rng=seed)
    ckpt_kwargs = {}
    if checkpoint_dir is not None:
        point_dir = (Path(checkpoint_dir) /
                     f"p{d_model}x{num_layers}h{num_heads}"
                     f"-d{corpus.num_train_tokens}-s{seed}")
        ckpt_kwargs = dict(
            checkpoint_dir=point_dir,
            checkpoint_every=checkpoint_every or max(steps // 4, 1),
            resume=True,
        )
    history = train_lm_on_stream(
        model, corpus.train_ids, num_steps=steps,
        batch_size=batch_size, seq_len=seq_len, lr=lr, seed=seed,
        **ckpt_kwargs,
    )
    test_loss = model.cross_entropy_on(corpus.test_ids, seq_len=seq_len)
    tokens_seen = min(steps * batch_size * seq_len, corpus.num_train_tokens * 50)
    point = SweepPoint(
        num_params=model.num_parameters(),
        num_tokens=corpus.num_train_tokens,
        steps=steps,
        flops=training_flops(model.num_parameters(), tokens_seen),
        train_loss=float(np.mean(history.losses[-10:])),
        test_loss=test_loss,
        d_model=d_model,
        num_layers=num_layers,
    )
    return model, point


def model_size_sweep(
    corpus: Corpus,
    architectures: Sequence[tuple[int, int, int]],
    seq_len: int = 32,
    steps: int = 300,
    batch_size: int = 16,
    lr: float = 3e-3,
    seed: int = 0,
    checkpoint_dir=None,
) -> list[SweepPoint]:
    """Vary P at fixed D: train each (d_model, layers, heads) architecture.

    ``checkpoint_dir`` makes the whole ladder restartable; see
    :func:`train_point`.
    """
    return [
        train_point(corpus, d_model, layers, heads, seq_len, steps,
                    batch_size=batch_size, lr=lr, seed=seed,
                    checkpoint_dir=checkpoint_dir)[1]
        for d_model, layers, heads in architectures
    ]


def data_size_sweep(
    corpus: Corpus,
    token_counts: Sequence[int],
    architecture: tuple[int, int, int] = (32, 2, 4),
    seq_len: int = 32,
    steps: int = 300,
    batch_size: int = 16,
    lr: float = 3e-3,
    seed: int = 0,
    checkpoint_dir=None,
) -> list[SweepPoint]:
    """Vary D at fixed P: train the same architecture on corpus prefixes.

    ``checkpoint_dir`` makes the whole ladder restartable; see
    :func:`train_point`.
    """
    d_model, layers, heads = architecture
    points = []
    for count in token_counts:
        sub = corpus.subset(count)
        _model, point = train_point(sub, d_model, layers, heads, seq_len, steps,
                                    batch_size=batch_size, lr=lr, seed=seed,
                                    checkpoint_dir=checkpoint_dir)
        points.append(point)
    return points
