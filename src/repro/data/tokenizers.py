"""Tokenizers: character, word, and byte-pair-encoding (BPE).

The paper (§5) motivates tokenization with "supersymmetrization" breaking
into "super" + "symmetr(y)" + "ization": meaningful sub-word pieces that
recur across many words.  :class:`BPETokenizer` learns exactly such pieces
by greedily merging the most frequent adjacent symbol pair, the algorithm
used (at much larger scale) by the GPT series.
"""

from __future__ import annotations

import re
from collections import Counter
from typing import Iterable, Sequence

from .vocab import Vocabulary


class Tokenizer:
    """Common interface: text -> tokens -> ids and back."""

    vocab: Vocabulary

    def tokenize(self, text: str) -> list[str]:
        raise NotImplementedError

    def detokenize(self, tokens: Sequence[str]) -> str:
        raise NotImplementedError

    def encode(self, text: str) -> list[int]:
        return self.vocab.encode(self.tokenize(text))

    def decode(self, ids: Iterable[int]) -> str:
        return self.detokenize(self.vocab.decode(ids))

    @property
    def vocab_size(self) -> int:
        return len(self.vocab)


class CharTokenizer(Tokenizer):
    """One token per character; the smallest possible token inventory."""

    def __init__(self, text_or_alphabet: Iterable[str], unk_token: str | None = None):
        alphabet = sorted(set(text_or_alphabet))
        specials = [unk_token] if unk_token else []
        self.vocab = Vocabulary(specials + [c for c in alphabet if c not in specials],
                                unk_token=unk_token)

    def tokenize(self, text: str) -> list[str]:
        return list(text)

    def detokenize(self, tokens: Sequence[str]) -> str:
        return "".join(tokens)


_WORD_RE = re.compile(r"\w+|[^\w\s]")


class WordTokenizer(Tokenizer):
    """Whitespace/punctuation word tokenizer (the naive |W| = words case)."""

    def __init__(
        self,
        corpus_text: str,
        min_count: int = 1,
        max_size: int | None = None,
        unk_token: str = "<unk>",
        lowercase: bool = True,
    ):
        self.lowercase = lowercase
        tokens = self._split(corpus_text)
        self.vocab = Vocabulary.from_corpus(
            tokens, min_count=min_count, max_size=max_size, unk_token=unk_token
        )

    def _split(self, text: str) -> list[str]:
        if self.lowercase:
            text = text.lower()
        return _WORD_RE.findall(text)

    def tokenize(self, text: str) -> list[str]:
        return self._split(text)

    def detokenize(self, tokens: Sequence[str]) -> str:
        return " ".join(tokens)


_END_OF_WORD = "</w>"


class BPETokenizer(Tokenizer):
    """Byte-pair encoding learned from a training text.

    Words are first split on whitespace; each word becomes a sequence of
    characters plus an end-of-word marker.  Training repeatedly merges the
    most frequent adjacent pair into a new symbol; encoding replays the
    merges in learned order.
    """

    def __init__(self, corpus_text: str, num_merges: int, lowercase: bool = True,
                 unk_token: str = "<unk>"):
        if num_merges < 0:
            raise ValueError("num_merges must be non-negative")
        self.lowercase = lowercase
        self.num_merges = num_merges
        if lowercase:
            corpus_text = corpus_text.lower()
        word_counts = Counter(corpus_text.split())
        if not word_counts:
            raise ValueError("cannot train BPE on empty text")

        # Represent each distinct word as a tuple of current symbols.
        words: dict[tuple[str, ...], int] = {
            tuple(word) + (_END_OF_WORD,): count for word, count in word_counts.items()
        }
        merges: list[tuple[str, str]] = []
        for _ in range(num_merges):
            pair_counts: Counter[tuple[str, str]] = Counter()
            for symbols, count in words.items():
                for a, b in zip(symbols, symbols[1:]):
                    pair_counts[(a, b)] += count
            if not pair_counts:
                break
            # Deterministic tie-break: highest count, then lexicographic.
            best = max(pair_counts, key=lambda p: (pair_counts[p], p[0], p[1]))
            if pair_counts[best] < 2:
                break
            merges.append(best)
            words = {self._merge_word(w, best): c for w, c in words.items()}

        self.merges = merges
        self._merge_ranks = {pair: i for i, pair in enumerate(merges)}
        symbols: set[str] = set()
        for symbols_tuple in words:
            symbols.update(symbols_tuple)
        # Always include single characters so unseen words stay encodable.
        symbols.update(set(corpus_text) - {" ", "\n", "\t"})
        symbols.add(_END_OF_WORD)
        self.vocab = Vocabulary([unk_token] + sorted(symbols), unk_token=unk_token)

    @staticmethod
    def _merge_word(symbols: tuple[str, ...], pair: tuple[str, str]) -> tuple[str, ...]:
        merged: list[str] = []
        i = 0
        while i < len(symbols):
            if i + 1 < len(symbols) and (symbols[i], symbols[i + 1]) == pair:
                merged.append(symbols[i] + symbols[i + 1])
                i += 2
            else:
                merged.append(symbols[i])
                i += 1
        return tuple(merged)

    def _encode_word(self, word: str) -> list[str]:
        symbols = tuple(word) + (_END_OF_WORD,)
        while len(symbols) > 1:
            pairs = [(symbols[i], symbols[i + 1]) for i in range(len(symbols) - 1)]
            ranked = [(self._merge_ranks[p], p) for p in pairs if p in self._merge_ranks]
            if not ranked:
                break
            _, best = min(ranked)
            symbols = self._merge_word(symbols, best)
        return list(symbols)

    def tokenize(self, text: str) -> list[str]:
        if self.lowercase:
            text = text.lower()
        tokens: list[str] = []
        for word in text.split():
            tokens.extend(self._encode_word(word))
        return tokens

    def detokenize(self, tokens: Sequence[str]) -> str:
        text = "".join(tokens)
        return text.replace(_END_OF_WORD, " ").strip()
