"""Synthetic corpora with known structure.

The paper argues (§4) that phenomenology is "better studied in simpler
tasks using synthetic data".  These generators stand in for web-scale text:

* :func:`attribute_world_corpus` — a templated world whose co-occurrence
  statistics *provably* satisfy the ratio identity (Eq. 10) behind the
  king - man + woman = queen analogy (Eq. 9).
* :func:`math_word_problems` — multi-step arithmetic questions rendered
  with or without chain-of-thought steps (the Figure-1 / Minerva setting).
* :func:`diversity_corpus` — corpora of equal token count but varying
  sentence diversity, for the data-pruning/diversity claim (E16).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

# ---------------------------------------------------------------------------
# Attribute world (for word-embedding analogies, Eqs. 9-10)
# ---------------------------------------------------------------------------

#: (concept, male word, female word) triples; each concept also gets its own
#: context vocabulary below.
GENDER_TRIPLES: list[tuple[str, str, str]] = [
    ("royal", "king", "queen"),
    ("noble", "lord", "lady"),
    ("child", "boy", "girl"),
    ("parent", "father", "mother"),
    ("sibling", "brother", "sister"),
    ("heir", "prince", "princess"),
    ("performer", "actor", "actress"),
    ("person", "man", "woman"),
    ("relative", "uncle", "aunt"),
    ("server", "waiter", "waitress"),
]

_CONCEPT_CONTEXT: dict[str, list[str]] = {
    "royal": ["throne", "crown", "palace", "ruled"],
    "noble": ["manor", "estate", "title", "bowed"],
    "child": ["played", "school", "toys", "small"],
    "parent": ["home", "cared", "raised", "family"],
    "sibling": ["shared", "twin", "argued", "together"],
    "heir": ["young", "court", "trained", "succeed"],
    "performer": ["stage", "theater", "applause", "acted"],
    "person": ["walked", "street", "spoke", "ordinary"],
    "relative": ["visited", "holiday", "gift", "distant"],
    "server": ["tray", "table", "served", "kitchen"],
}

_GENDER_CONTEXT: dict[str, list[str]] = {
    "male": ["he", "him", "his", "himself"],
    "female": ["she", "her", "hers", "herself"],
}

#: (region id, country, capital) triples for the second analogy family.
CAPITAL_TRIPLES: list[tuple[str, str, str]] = [
    ("gaul", "france", "paris"),
    ("italia", "italy", "rome"),
    ("iberia", "spain", "madrid"),
    ("hellas", "greece", "athens"),
    ("nippon", "japan", "tokyo"),
    ("misr", "egypt", "cairo"),
]

_COUNTRY_CONTEXT = ["nation", "borders", "countryside", "province"]
_CITY_CONTEXT = ["streets", "downtown", "buildings", "plaza"]


def attribute_world_corpus(rng: np.random.Generator, num_sentences: int = 4000) -> str:
    """Generate text whose co-occurrence statistics support Eq. 9 analogies.

    Each sentence surrounds a target word with context drawn from (a) its
    concept's vocabulary and (b) its attribute's vocabulary (gender, or
    region for country/capital pairs).  The resulting co-occurrence column
    of a word is approximately concept-vector + attribute-vector, which is
    exactly the additive structure word-vector arithmetic exploits.
    """
    sentences: list[str] = []
    for _ in range(num_sentences):
        if rng.random() < 0.7:
            concept, male, female = GENDER_TRIPLES[rng.integers(len(GENDER_TRIPLES))]
            gender = "male" if rng.random() < 0.5 else "female"
            word = male if gender == "male" else female
            ctx_a = rng.choice(_CONCEPT_CONTEXT[concept], size=2, replace=False)
            ctx_b = rng.choice(_GENDER_CONTEXT[gender], size=2, replace=False)
            sentences.append(
                f"the {word} {ctx_a[0]} near the {ctx_a[1]} and {ctx_b[0]} "
                f"kept {ctx_b[1]} calm"
            )
        else:
            region, country, capital = CAPITAL_TRIPLES[rng.integers(len(CAPITAL_TRIPLES))]
            is_city = rng.random() < 0.5
            word = capital if is_city else country
            kind_ctx = _CITY_CONTEXT if is_city else _COUNTRY_CONTEXT
            ctx = rng.choice(kind_ctx, size=2, replace=False)
            sentences.append(
                f"in {word} the {ctx[0]} of {region} meet the {ctx[1]} quietly"
            )
    return " . ".join(sentences) + " ."


def gender_analogy_questions() -> list[tuple[str, str, str, str]]:
    """All (a, b, c, d) with a - b + c ~ d, e.g. king - man + woman = queen.

    Quadruples pair distinct concepts that share the gender axis.
    """
    questions = []
    for concept_i, male_i, female_i in GENDER_TRIPLES:
        for concept_j, male_j, female_j in GENDER_TRIPLES:
            if concept_i == concept_j:
                continue
            # male_i - male_j + female_j ~ female_i
            questions.append((male_i, male_j, female_j, female_i))
    return questions


def capital_analogy_questions() -> list[tuple[str, str, str, str]]:
    """(paris, france, italy, rome)-style quadruples."""
    questions = []
    for _, country_i, capital_i in CAPITAL_TRIPLES:
        for _, country_j, capital_j in CAPITAL_TRIPLES:
            if country_i == country_j:
                continue
            questions.append((capital_i, country_i, country_j, capital_j))
    return questions


# ---------------------------------------------------------------------------
# Multi-step arithmetic word problems (Figure 1 / chain-of-thought, E1)
# ---------------------------------------------------------------------------


def solve_left_to_right(operands: list[int], ops: list[str], modulus: int = 10) -> list[int]:
    """Evaluate ``a op b op c ...`` strictly left to right, mod ``modulus``.

    Returns the list of intermediate results (one per op), the last of
    which is the final answer.
    """
    if len(operands) != len(ops) + 1:
        raise ValueError("need exactly one more operand than ops")
    acc = operands[0]
    steps: list[int] = []
    for op, operand in zip(ops, operands[1:]):
        if op == "+":
            acc = (acc + operand) % modulus
        elif op == "*":
            acc = (acc * operand) % modulus
        else:
            raise ValueError(f"unsupported op {op!r}")
        steps.append(acc)
    return steps


@dataclass(frozen=True)
class WordProblem:
    """One rendered problem: the prompt the model sees and the full target."""

    prompt: str   # up to and including the cue character (':' or '=')
    completion: str  # what the model should generate, ending with '\n'
    answer: int

    @property
    def text(self) -> str:
        return self.prompt + self.completion


def render_problem(operands: list[int], ops: list[str], chain_of_thought: bool,
                   modulus: int = 10) -> WordProblem:
    """Render one problem.

    Direct format:  ``Q3+4*2=4\\n``  (prompt ends at '=')
    CoT format:     ``Q3+4*2:7:4=4\\n``  (prompt ends at ':'; the model must
    emit each left-to-right intermediate, then '=' and the answer.)
    """
    expr = str(operands[0]) + "".join(f"{op}{x}" for op, x in zip(ops, operands[1:]))
    steps = solve_left_to_right(operands, ops, modulus)
    answer = steps[-1]
    if chain_of_thought:
        chain = "".join(f"{s}:" for s in steps[:-1])
        return WordProblem(prompt=f"Q{expr}:", completion=f"{chain}={answer}\n"
                           if steps[:-1] else f"={answer}\n", answer=answer)
    return WordProblem(prompt=f"Q{expr}=", completion=f"{answer}\n", answer=answer)


def math_word_problems(
    rng: np.random.Generator,
    count: int,
    num_ops: int = 2,
    chain_of_thought: bool = False,
    modulus: int = 10,
) -> list[WordProblem]:
    """Sample ``count`` distinct-ish multi-step problems."""
    problems = []
    for _ in range(count):
        operands = [int(d) for d in rng.integers(0, modulus, size=num_ops + 1)]
        ops = [("+", "*")[b] for b in rng.integers(0, 2, size=num_ops)]
        problems.append(render_problem(operands, ops, chain_of_thought, modulus))
    return problems


PROBLEM_ALPHABET = "Q0123456789+*:=\n"


# ---------------------------------------------------------------------------
# Diversity-controlled corpora (data pruning / diversity, E16)
# ---------------------------------------------------------------------------


def diversity_corpus(
    rng: np.random.Generator, num_sentences: int, num_distinct: int
) -> str:
    """A corpus of ``num_sentences`` drawn from only ``num_distinct`` types.

    Smaller ``num_distinct`` means a more duplicated, less diverse corpus of
    the *same* token count — the controlled comparison behind the claim
    that "sets of data items are worth more if they are diverse".
    """
    if num_distinct < 1:
        raise ValueError("need at least one distinct sentence")
    pool_rng = np.random.default_rng(12345)  # fixed pool shared across calls
    pool = attribute_world_corpus(pool_rng, num_sentences=max(num_distinct, 1))
    pool_sentences = [s.strip(" .") for s in pool.split(" . ") if s.strip(" .")]
    pool_sentences = pool_sentences[:num_distinct]
    picks = rng.integers(0, len(pool_sentences), size=num_sentences)
    return " . ".join(pool_sentences[i] for i in picks) + " ."
