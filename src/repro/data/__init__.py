"""Text data substrate: vocabularies, tokenizers, batching, synthetic corpora."""

from .corpus import (
    Corpus,
    iterate_batches,
    sample_batch,
    sequential_batches,
    train_test_split,
)
from .synthetic import (
    CAPITAL_TRIPLES,
    GENDER_TRIPLES,
    PROBLEM_ALPHABET,
    WordProblem,
    attribute_world_corpus,
    capital_analogy_questions,
    diversity_corpus,
    gender_analogy_questions,
    math_word_problems,
    render_problem,
    solve_left_to_right,
)
from .tokenizers import BPETokenizer, CharTokenizer, Tokenizer, WordTokenizer
from .vocab import Vocabulary

__all__ = [
    "Vocabulary",
    "Tokenizer",
    "CharTokenizer",
    "WordTokenizer",
    "BPETokenizer",
    "Corpus",
    "train_test_split",
    "sample_batch",
    "iterate_batches",
    "sequential_batches",
    "attribute_world_corpus",
    "gender_analogy_questions",
    "capital_analogy_questions",
    "GENDER_TRIPLES",
    "CAPITAL_TRIPLES",
    "math_word_problems",
    "render_problem",
    "solve_left_to_right",
    "WordProblem",
    "PROBLEM_ALPHABET",
    "diversity_corpus",
]
