"""Vocabulary: the bidirectional map between tokens and integer ids.

This is the set W of the paper's §5; ``len(vocab)`` is |W|, and encoding a
string of words gives the index sequence every model in this library
consumes.
"""

from __future__ import annotations

from collections import Counter
from typing import Iterable, Sequence


class Vocabulary:
    """Immutable token <-> id mapping with optional special tokens."""

    def __init__(self, tokens: Sequence[str], unk_token: str | None = None):
        seen: dict[str, int] = {}
        for tok in tokens:
            if tok in seen:
                raise ValueError(f"duplicate token {tok!r}")
            seen[tok] = len(seen)
        self._token_to_id = seen
        self._id_to_token = list(tokens)
        self.unk_token = unk_token
        if unk_token is not None and unk_token not in seen:
            raise ValueError(f"unk token {unk_token!r} not in vocabulary")

    # ------------------------------------------------------------------
    @classmethod
    def from_corpus(
        cls,
        tokens: Iterable[str],
        min_count: int = 1,
        max_size: int | None = None,
        specials: Sequence[str] = (),
        unk_token: str | None = None,
    ) -> "Vocabulary":
        """Build a vocabulary from a token stream, most frequent first."""
        counts = Counter(tokens)
        items = [(tok, c) for tok, c in counts.items() if c >= min_count]
        items.sort(key=lambda kv: (-kv[1], kv[0]))
        ordered = list(specials)
        if unk_token is not None and unk_token not in ordered:
            ordered.append(unk_token)
        present = set(ordered)
        for tok, _count in items:
            if max_size is not None and len(ordered) >= max_size:
                break
            if tok in present:
                continue
            ordered.append(tok)
            present.add(tok)
        return cls(ordered, unk_token=unk_token)

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._id_to_token)

    def __contains__(self, token: str) -> bool:
        return token in self._token_to_id

    def __iter__(self):
        return iter(self._id_to_token)

    @property
    def tokens(self) -> list[str]:
        return list(self._id_to_token)

    def token_to_id(self, token: str) -> int:
        if token in self._token_to_id:
            return self._token_to_id[token]
        if self.unk_token is not None:
            return self._token_to_id[self.unk_token]
        raise KeyError(f"token {token!r} not in vocabulary and no unk token set")

    def id_to_token(self, idx: int) -> str:
        return self._id_to_token[idx]

    def encode(self, tokens: Iterable[str]) -> list[int]:
        return [self.token_to_id(t) for t in tokens]

    def decode(self, ids: Iterable[int]) -> list[str]:
        return [self._id_to_token[int(i)] for i in ids]
