"""Token-stream utilities: splits and (B, T) next-word-prediction batches.

Training an autoregressive model (Eq. 3) needs pairs ``(x, y)`` where
``y`` is ``x`` shifted one position left.  :func:`sample_batches` draws
random windows from a contiguous id stream, which is how LLM training
consumes a corpus.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence

import numpy as np


def train_test_split(ids: Sequence[int], test_fraction: float = 0.1) -> tuple[np.ndarray, np.ndarray]:
    """Split a contiguous token stream into train/held-out pieces.

    The held-out piece is the *tail* of the stream (held-out text, per the
    paper's footnote 17), not a random shuffle — shuffling tokens would
    destroy the sequential structure the model must generalise to.
    """
    ids = np.asarray(ids, dtype=np.int64)
    if not 0.0 < test_fraction < 1.0:
        raise ValueError("test_fraction must be in (0, 1)")
    cut = int(len(ids) * (1.0 - test_fraction))
    if cut < 2 or len(ids) - cut < 2:
        raise ValueError("corpus too small to split")
    return ids[:cut], ids[cut:]


def sample_batch(
    ids: np.ndarray, batch_size: int, seq_len: int, rng: np.random.Generator
) -> tuple[np.ndarray, np.ndarray]:
    """Draw ``batch_size`` random windows; returns (x, y) of shape (B, T)."""
    ids = np.asarray(ids, dtype=np.int64)
    if len(ids) < seq_len + 1:
        raise ValueError(f"corpus of {len(ids)} tokens too short for seq_len={seq_len}")
    starts = rng.integers(0, len(ids) - seq_len, size=batch_size)
    x = np.stack([ids[s : s + seq_len] for s in starts])
    y = np.stack([ids[s + 1 : s + seq_len + 1] for s in starts])
    return x, y


def iterate_batches(
    ids: np.ndarray,
    batch_size: int,
    seq_len: int,
    num_batches: int,
    rng: np.random.Generator,
) -> Iterator[tuple[np.ndarray, np.ndarray]]:
    """Yield ``num_batches`` random (x, y) batches."""
    for _ in range(num_batches):
        yield sample_batch(ids, batch_size, seq_len, rng)


def sequential_batches(
    ids: np.ndarray, batch_size: int, seq_len: int
) -> Iterator[tuple[np.ndarray, np.ndarray]]:
    """Deterministic full-coverage batches for evaluation.

    Splits the stream into non-overlapping windows of ``seq_len + 1`` and
    groups them ``batch_size`` at a time; a final ragged group is yielded
    smaller rather than dropped.
    """
    ids = np.asarray(ids, dtype=np.int64)
    n_windows = (len(ids) - 1) // seq_len
    windows = [
        (ids[i * seq_len : i * seq_len + seq_len],
         ids[i * seq_len + 1 : i * seq_len + seq_len + 1])
        for i in range(n_windows)
    ]
    for i in range(0, len(windows), batch_size):
        group = windows[i : i + batch_size]
        yield np.stack([g[0] for g in group]), np.stack([g[1] for g in group])


@dataclass
class Corpus:
    """A tokenized corpus bundled with its vocabulary-facing metadata."""

    train_ids: np.ndarray
    test_ids: np.ndarray
    vocab_size: int

    @classmethod
    def from_ids(cls, ids: Sequence[int], vocab_size: int, test_fraction: float = 0.1) -> "Corpus":
        train, test = train_test_split(ids, test_fraction)
        return cls(train_ids=train, test_ids=test, vocab_size=vocab_size)

    @property
    def num_train_tokens(self) -> int:
        """The paper's dataset size D, in tokens."""
        return int(len(self.train_ids))

    def subset(self, num_tokens: int) -> "Corpus":
        """Restrict the training stream to its first ``num_tokens`` tokens.

        Used by scaling-law sweeps (E2/E4) to vary D at fixed content.
        """
        if num_tokens < 2:
            raise ValueError("need at least 2 tokens")
        return Corpus(
            train_ids=self.train_ids[: min(num_tokens, len(self.train_ids))],
            test_ids=self.test_ids,
            vocab_size=self.vocab_size,
        )
