"""A small generic training loop with history recording.

Works with any model exposing ``loss(x, y) -> Tensor`` plus the
:class:`~repro.nn.Module` parameter API.  The recorded history (loss per
step, periodic evaluations) is what the phenomenology experiments — loss
curves, grokking, scaling sweeps — consume.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from ..nn import Module, Optimizer, Schedule, clip_grad_norm


@dataclass
class History:
    """Per-step training record plus periodic evaluation snapshots."""

    steps: list[int] = field(default_factory=list)
    losses: list[float] = field(default_factory=list)
    lrs: list[float] = field(default_factory=list)
    eval_steps: list[int] = field(default_factory=list)
    eval_values: list[dict[str, float]] = field(default_factory=list)
    wall_time: float = 0.0

    @property
    def final_loss(self) -> float:
        if not self.losses:
            raise ValueError("no steps recorded")
        return self.losses[-1]

    def smoothed_losses(self, window: int = 10) -> np.ndarray:
        """Trailing-mean loss curve (plateaus-and-drops viewing aid, §4)."""
        losses = np.asarray(self.losses)
        if window <= 1 or len(losses) < window:
            return losses
        kernel = np.ones(window) / window
        return np.convolve(losses, kernel, mode="valid")

    def eval_series(self, key: str) -> tuple[list[int], list[float]]:
        """Extract one named metric across evaluation snapshots."""
        return self.eval_steps, [snap[key] for snap in self.eval_values]


class Trainer:
    """Drives gradient-descent training (Eq. 16) for a fixed step budget.

    Parameters
    ----------
    model:
        Any Module with a ``loss(x, y)`` method returning a scalar Tensor.
    optimizer:
        An :class:`~repro.nn.Optimizer` over the model's parameters.
    batch_fn:
        ``batch_fn(step) -> (x, y)`` supplies each training batch.
    schedule:
        Optional learning-rate schedule applied before every step.
    clip_norm:
        Optional global gradient-norm clip.
    eval_fn:
        Optional ``eval_fn(model, step) -> dict[str, float]`` run every
        ``eval_every`` steps (and at the final step).
    """

    def __init__(
        self,
        model: Module,
        optimizer: Optimizer,
        batch_fn: Callable[[int], tuple[np.ndarray, np.ndarray]],
        schedule: Schedule | None = None,
        clip_norm: float | None = None,
        eval_fn: Callable[[Module, int], dict[str, float]] | None = None,
        eval_every: int = 0,
    ):
        self.model = model
        self.optimizer = optimizer
        self.batch_fn = batch_fn
        self.schedule = schedule
        self.clip_norm = clip_norm
        self.eval_fn = eval_fn
        self.eval_every = eval_every

    def run(self, num_steps: int) -> History:
        if num_steps < 1:
            raise ValueError("num_steps must be positive")
        history = History()
        start = time.perf_counter()
        self.model.train()
        for step in range(num_steps):
            if self.schedule is not None:
                self.schedule.apply(self.optimizer, step)
            x, y = self.batch_fn(step)
            self.model.zero_grad()
            loss = self.model.loss(x, y)
            loss.backward()
            if self.clip_norm is not None:
                clip_grad_norm(self.optimizer.parameters, self.clip_norm)
            self.optimizer.step()

            history.steps.append(step)
            history.losses.append(float(loss.data))
            history.lrs.append(self.optimizer.lr)
            is_eval_step = self.eval_every and (step + 1) % self.eval_every == 0
            if self.eval_fn is not None and (is_eval_step or step == num_steps - 1):
                history.eval_steps.append(step)
                history.eval_values.append(self.eval_fn(self.model, step))
                self.model.train()
        history.wall_time = time.perf_counter() - start
        return history


def train_lm_on_stream(
    model,
    train_ids: np.ndarray,
    num_steps: int,
    batch_size: int = 16,
    seq_len: int = 32,
    lr: float = 3e-3,
    seed: int = 0,
    weight_decay: float = 0.01,
    clip_norm: float | None = 1.0,
    eval_fn: Callable | None = None,
    eval_every: int = 0,
) -> History:
    """Convenience wrapper: AdamW + random-window batches from a stream."""
    from ..data.corpus import sample_batch
    from ..nn import AdamW

    rng = np.random.default_rng(seed)
    optimizer = AdamW(model.parameters(), lr=lr, weight_decay=weight_decay)
    trainer = Trainer(
        model,
        optimizer,
        batch_fn=lambda step: sample_batch(train_ids, batch_size, seq_len, rng),
        clip_norm=clip_norm,
        eval_fn=eval_fn,
        eval_every=eval_every,
    )
    return trainer.run(num_steps)
