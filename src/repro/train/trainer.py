"""A small generic training loop with history recording.

Works with any model exposing ``loss(x, y) -> Tensor`` plus the
:class:`~repro.nn.Module` parameter API.  The recorded history (loss per
step, periodic evaluations) is what the phenomenology experiments — loss
curves, grokking, scaling sweeps — consume.

The loop is instrumented through :mod:`repro.obs`: pass an
:class:`~repro.obs.Observability` bundle to get nested spans per step
(batch/forward/backward/optimizer, exportable as a Chrome trace),
``train.*`` metrics series, and one structured ``train_step`` event per
step carrying loss, learning rate, gradient norm, tokens/sec, and
achieved FLOPs/sec (via the §3/§6 ``C ~ 6PD`` accounting in
:func:`repro.phenomenology.compute.training_flops`).  With ``obs=None``
(the default) every hook is a shared no-op and the loop behaves — and
costs — exactly as before.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from ..nn import Module, Optimizer, Schedule, clip_grad_norm
from ..obs import NULL_OBS, Observability
from ..phenomenology.compute import training_flops


@dataclass
class History:
    """Per-step training record plus periodic evaluation snapshots."""

    steps: list[int] = field(default_factory=list)
    losses: list[float] = field(default_factory=list)
    lrs: list[float] = field(default_factory=list)
    eval_steps: list[int] = field(default_factory=list)
    eval_values: list[dict[str, float]] = field(default_factory=list)
    wall_time: float = 0.0
    # Per-step telemetry (PR 2).  step_seconds/step_tokens are always
    # recorded; grad_norms only when the norm is computed (clip_norm set,
    # or observability enabled) — then it is aligned with ``steps``.
    grad_norms: list[float] = field(default_factory=list)
    step_seconds: list[float] = field(default_factory=list)
    step_tokens: list[int] = field(default_factory=list)

    @property
    def final_loss(self) -> float:
        if not self.losses:
            raise ValueError("no steps recorded")
        return self.losses[-1]

    @property
    def total_tokens(self) -> int:
        return sum(self.step_tokens)

    @property
    def tokens_per_sec(self) -> float:
        """End-to-end training throughput over the whole run."""
        return self.total_tokens / self.wall_time if self.wall_time > 0 else 0.0

    def smoothed_losses(self, window: int = 10) -> np.ndarray:
        """Trailing-mean loss curve (plateaus-and-drops viewing aid, §4)."""
        losses = np.asarray(self.losses)
        if window <= 1 or len(losses) < window:
            return losses
        kernel = np.ones(window) / window
        return np.convolve(losses, kernel, mode="valid")

    def eval_series(self, key: str) -> tuple[list[int], list[float]]:
        """Extract one named metric across evaluation snapshots.

        Snapshots that do not contain ``key`` are skipped (an eval_fn is
        free to report different metrics at different cadences), so the
        returned steps/values stay aligned with each other.
        """
        steps, values = [], []
        for step, snap in zip(self.eval_steps, self.eval_values):
            if key in snap:
                steps.append(step)
                values.append(snap[key])
        return steps, values


class Trainer:
    """Drives gradient-descent training (Eq. 16) for a fixed step budget.

    Parameters
    ----------
    model:
        Any Module with a ``loss(x, y)`` method returning a scalar Tensor.
    optimizer:
        An :class:`~repro.nn.Optimizer` over the model's parameters.
    batch_fn:
        ``batch_fn(step) -> (x, y)`` supplies each training batch.
    schedule:
        Optional learning-rate schedule applied before every step.
    clip_norm:
        Optional global gradient-norm clip.
    eval_fn:
        Optional ``eval_fn(model, step) -> dict[str, float]`` run every
        ``eval_every`` steps (and at the final step).
    obs:
        Optional :class:`~repro.obs.Observability` bundle; when given,
        the run emits spans, ``train.*`` metrics, and per-step events.
    """

    def __init__(
        self,
        model: Module,
        optimizer: Optimizer,
        batch_fn: Callable[[int], tuple[np.ndarray, np.ndarray]],
        schedule: Schedule | None = None,
        clip_norm: float | None = None,
        eval_fn: Callable[[Module, int], dict[str, float]] | None = None,
        eval_every: int = 0,
        obs: Observability | None = None,
    ):
        self.model = model
        self.optimizer = optimizer
        self.batch_fn = batch_fn
        self.schedule = schedule
        self.clip_norm = clip_norm
        self.eval_fn = eval_fn
        self.eval_every = eval_every
        self.obs = obs

    def run(self, num_steps: int) -> History:
        if num_steps < 1:
            raise ValueError("num_steps must be positive")
        obs = self.obs if self.obs is not None else NULL_OBS
        tracer, events, metrics = obs.tracer, obs.events, obs.metrics
        c_steps = metrics.counter("train.steps")
        c_tokens = metrics.counter("train.tokens")
        h_step = metrics.histogram("train.step_seconds")
        g_loss = metrics.gauge("train.loss")
        g_norm = metrics.gauge("train.grad_norm")
        # Gradient norms are only worth an extra parameter sweep when
        # clipping needs them anyway or telemetry is on.
        want_norm = self.clip_norm is not None or obs.enabled
        max_norm = self.clip_norm if self.clip_norm is not None else float("inf")
        num_params = (self.model.num_parameters()
                      if hasattr(self.model, "num_parameters") else 0)

        history = History()
        start = time.perf_counter()
        self.model.train()
        with tracer.span("train.run", steps=num_steps, params=num_params):
            for step in range(num_steps):
                step_start = time.perf_counter()
                with tracer.span("train.step", step=step):
                    if self.schedule is not None:
                        self.schedule.apply(self.optimizer, step)
                    with tracer.span("train.batch"):
                        x, y = self.batch_fn(step)
                    self.model.zero_grad()
                    with tracer.span("train.forward"):
                        loss = self.model.loss(x, y)
                    with tracer.span("train.backward"):
                        loss.backward()
                    grad_norm = None
                    if want_norm:
                        grad_norm = clip_grad_norm(self.optimizer.parameters, max_norm)
                    with tracer.span("train.optimizer"):
                        self.optimizer.step()
                step_seconds = time.perf_counter() - step_start

                loss_value = float(loss.data)
                tokens = int(np.asarray(y).size)
                history.steps.append(step)
                history.losses.append(loss_value)
                history.lrs.append(self.optimizer.lr)
                history.step_seconds.append(step_seconds)
                history.step_tokens.append(tokens)
                if grad_norm is not None:
                    history.grad_norms.append(grad_norm)
                    g_norm.set(grad_norm)

                c_steps.inc()
                c_tokens.inc(tokens)
                h_step.observe(step_seconds)
                g_loss.set(loss_value)
                tokens_per_sec = tokens / step_seconds if step_seconds > 0 else 0.0
                events.emit(
                    "train_step",
                    step=step,
                    loss=loss_value,
                    lr=self.optimizer.lr,
                    grad_norm=grad_norm,
                    tokens=tokens,
                    seconds=step_seconds,
                    tokens_per_sec=tokens_per_sec,
                    flops_per_sec=(training_flops(num_params, tokens) / step_seconds
                                   if num_params and step_seconds > 0 else None),
                )

                is_eval_step = self.eval_every and (step + 1) % self.eval_every == 0
                if self.eval_fn is not None and (is_eval_step or step == num_steps - 1):
                    with tracer.span("train.eval", step=step):
                        snapshot = self.eval_fn(self.model, step)
                    history.eval_steps.append(step)
                    history.eval_values.append(snapshot)
                    events.emit("train_eval", step=step, **snapshot)
                    self.model.train()
        history.wall_time = time.perf_counter() - start
        return history


def train_lm_on_stream(
    model,
    train_ids: np.ndarray,
    num_steps: int,
    batch_size: int = 16,
    seq_len: int = 32,
    lr: float = 3e-3,
    seed: int = 0,
    weight_decay: float = 0.01,
    clip_norm: float | None = 1.0,
    eval_fn: Callable | None = None,
    eval_every: int = 0,
    obs: Observability | None = None,
) -> History:
    """Convenience wrapper: AdamW + random-window batches from a stream."""
    from ..data.corpus import sample_batch
    from ..nn import AdamW

    rng = np.random.default_rng(seed)
    optimizer = AdamW(model.parameters(), lr=lr, weight_decay=weight_decay)
    trainer = Trainer(
        model,
        optimizer,
        batch_fn=lambda step: sample_batch(train_ids, batch_size, seq_len, rng),
        clip_norm=clip_norm,
        eval_fn=eval_fn,
        eval_every=eval_every,
        obs=obs,
    )
    return trainer.run(num_steps)
