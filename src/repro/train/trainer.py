"""A small generic training loop with history recording.

Works with any model exposing ``loss(x, y) -> Tensor`` plus the
:class:`~repro.nn.Module` parameter API.  The recorded history (loss per
step, periodic evaluations) is what the phenomenology experiments — loss
curves, grokking, scaling sweeps — consume.

The loop is instrumented through :mod:`repro.obs`: pass an
:class:`~repro.obs.Observability` bundle to get nested spans per step
(batch/forward/backward/optimizer, exportable as a Chrome trace),
``train.*`` metrics series, and one structured ``train_step`` event per
step carrying loss, learning rate, gradient norm, tokens/sec, and
achieved FLOPs/sec (via the §3/§6 ``C ~ 6PD`` accounting in
:func:`repro.phenomenology.compute.training_flops`).  With ``obs=None``
(the default) every hook is a shared no-op and the loop behaves — and
costs — exactly as before.

Fault tolerance (PR 3): :meth:`Trainer.run` takes ``checkpoint_every``
/ ``checkpoint_dir`` to write full-state snapshots on step boundaries
and ``resume_from`` to continue a killed run from the newest valid
snapshot.  A resumed run is *bit-identical* to an uninterrupted one
provided the batch RNG is owned by the trainer (the ``rng`` parameter,
threaded into ``batch_fn(step, rng)``) so its bit-generator state lives
inside the checkpoint — see :mod:`repro.train.checkpoint` for the
format and :mod:`repro.train.faults` for how the recovery paths are
tested.
"""

from __future__ import annotations

import time
from dataclasses import asdict, dataclass, field, fields
from pathlib import Path
from typing import Callable

import numpy as np

from ..nn import Module, Optimizer, Schedule, clip_grad_norm
from ..obs import NULL_OBS, Observability
from ..phenomenology.compute import training_flops
from .checkpoint import latest_checkpoint, load_training_checkpoint, save_training_checkpoint


@dataclass
class History:
    """Per-step training record plus periodic evaluation snapshots."""

    steps: list[int] = field(default_factory=list)
    losses: list[float] = field(default_factory=list)
    lrs: list[float] = field(default_factory=list)
    eval_steps: list[int] = field(default_factory=list)
    eval_values: list[dict[str, float]] = field(default_factory=list)
    wall_time: float = 0.0
    # Per-step telemetry (PR 2).  step_seconds/step_tokens are always
    # recorded; grad_norms only when the norm is computed (clip_norm set,
    # or observability enabled) — then it is aligned with ``steps``.
    grad_norms: list[float] = field(default_factory=list)
    step_seconds: list[float] = field(default_factory=list)
    step_tokens: list[int] = field(default_factory=list)

    @property
    def final_loss(self) -> float:
        """Loss of the last recorded step (raises when empty)."""
        if not self.losses:
            raise ValueError("no steps recorded")
        return self.losses[-1]

    @property
    def total_tokens(self) -> int:
        """Tokens consumed across all recorded steps (the paper's D)."""
        return sum(self.step_tokens)

    @property
    def tokens_per_sec(self) -> float:
        """End-to-end training throughput over the whole run."""
        return self.total_tokens / self.wall_time if self.wall_time > 0 else 0.0

    def smoothed_losses(self, window: int = 10) -> np.ndarray:
        """Trailing-mean loss curve (plateaus-and-drops viewing aid, §4)."""
        losses = np.asarray(self.losses)
        if window <= 1 or len(losses) < window:
            return losses
        kernel = np.ones(window) / window
        return np.convolve(losses, kernel, mode="valid")

    def state_dict(self) -> dict:
        """JSON-able snapshot of every recorded series (for checkpoints)."""
        return asdict(self)

    @classmethod
    def from_state_dict(cls, state: dict) -> "History":
        """Rebuild a :class:`History` saved by :meth:`state_dict`.

        Unknown keys are ignored so old checkpoints stay loadable after
        new telemetry fields are added to the dataclass.
        """
        known = {f.name for f in fields(cls)}
        return cls(**{k: v for k, v in state.items() if k in known})

    def eval_series(self, key: str) -> tuple[list[int], list[float]]:
        """Extract one named metric across evaluation snapshots.

        Snapshots that do not contain ``key`` are skipped (an eval_fn is
        free to report different metrics at different cadences), so the
        returned steps/values stay aligned with each other.
        """
        steps, values = [], []
        for step, snap in zip(self.eval_steps, self.eval_values):
            if key in snap:
                steps.append(step)
                values.append(snap[key])
        return steps, values


class Trainer:
    """Drives gradient-descent training (Eq. 16) for a fixed step budget.

    Parameters
    ----------
    model:
        Any Module with a ``loss(x, y)`` method returning a scalar Tensor.
    optimizer:
        An :class:`~repro.nn.Optimizer` over the model's parameters.
    batch_fn:
        ``batch_fn(step) -> (x, y)`` supplies each training batch.  When
        the trainer owns an ``rng`` the convention becomes
        ``batch_fn(step, rng) -> (x, y)`` — drawing batch randomness
        from the trainer-owned stream is what makes checkpointed runs
        resumable bit-exactly.
    schedule:
        Optional learning-rate schedule applied before every step.
    clip_norm:
        Optional global gradient-norm clip.
    eval_fn:
        Optional ``eval_fn(model, step) -> dict[str, float]`` run every
        ``eval_every`` steps (and at the final step).
    rng:
        Optional ``np.random.Generator`` owned by the trainer and passed
        to ``batch_fn``; its bit-generator state is saved in every
        checkpoint and restored on resume.
    obs:
        Optional :class:`~repro.obs.Observability` bundle; when given,
        the run emits spans, ``train.*`` metrics, and per-step events
        (including ``checkpoint_saved`` / ``checkpoint_resumed`` and the
        ``train.checkpoint_seconds`` histogram when checkpointing).
    """

    def __init__(
        self,
        model: Module,
        optimizer: Optimizer,
        batch_fn: Callable[..., tuple[np.ndarray, np.ndarray]],
        schedule: Schedule | None = None,
        clip_norm: float | None = None,
        eval_fn: Callable[[Module, int], dict[str, float]] | None = None,
        eval_every: int = 0,
        rng: np.random.Generator | None = None,
        obs: Observability | None = None,
    ):
        self.model = model
        self.optimizer = optimizer
        self.batch_fn = batch_fn
        self.schedule = schedule
        self.clip_norm = clip_norm
        self.eval_fn = eval_fn
        self.eval_every = eval_every
        self.rng = rng
        self.obs = obs

    def _next_batch(self, step: int) -> tuple[np.ndarray, np.ndarray]:
        """Call ``batch_fn`` with the trainer-owned RNG when there is one."""
        if self.rng is not None:
            return self.batch_fn(step, self.rng)
        return self.batch_fn(step)

    def run(
        self,
        num_steps: int,
        *,
        checkpoint_every: int = 0,
        checkpoint_dir: str | Path | None = None,
        keep_last: int = 3,
        resume_from: str | Path | None = None,
    ) -> History:
        """Train for ``num_steps`` total steps, optionally checkpointed.

        With ``checkpoint_dir`` set and ``checkpoint_every > 0``, a
        full-state snapshot is written after every ``checkpoint_every``-th
        step and after the final one, keeping the newest ``keep_last``
        (see :func:`repro.train.checkpoint.save_training_checkpoint`).

        ``resume_from`` (a checkpoint directory or snapshot path)
        restores model/optimizer/RNG/history state and continues from
        the saved step toward the same ``num_steps`` total; the resumed
        trajectory is bit-identical to an uninterrupted run.  If the
        checkpoint already covers ``num_steps`` the restored history is
        returned unchanged.
        """
        if num_steps < 1:
            raise ValueError("num_steps must be positive")
        obs = self.obs if self.obs is not None else NULL_OBS
        tracer, events, metrics = obs.tracer, obs.events, obs.metrics
        c_steps = metrics.counter("train.steps")
        c_tokens = metrics.counter("train.tokens")
        h_step = metrics.histogram("train.step_seconds")
        g_loss = metrics.gauge("train.loss")
        g_norm = metrics.gauge("train.grad_norm")
        # Gradient norms are only worth an extra parameter sweep when
        # clipping needs them anyway or telemetry is on.
        want_norm = self.clip_norm is not None or obs.enabled
        max_norm = self.clip_norm if self.clip_norm is not None else float("inf")
        num_params = (self.model.num_parameters()
                      if hasattr(self.model, "num_parameters") else 0)
        checkpointing = checkpoint_dir is not None and checkpoint_every > 0

        history = History()
        start_step = 0
        prior_wall = 0.0
        if resume_from is not None:
            state = load_training_checkpoint(
                resume_from, self.model, self.optimizer,
                rng=self.rng, schedule=self.schedule, obs=obs)
            start_step = state.step
            if state.history is not None:
                history = History.from_state_dict(state.history)
                prior_wall = history.wall_time
            if start_step >= num_steps:
                return history

        start = time.perf_counter()

        def maybe_checkpoint(step: int) -> None:
            # ``step`` completed steps done => snapshot labelled ``step``
            # (= the next step to run on resume).
            if not checkpointing:
                return
            if step % checkpoint_every != 0 and step != num_steps:
                return
            history.wall_time = prior_wall + (time.perf_counter() - start)
            save_training_checkpoint(
                checkpoint_dir, step, self.model, self.optimizer,
                rng=self.rng, schedule=self.schedule, history=history,
                keep_last=keep_last, obs=obs)

        self.model.train()
        with tracer.span("train.run", steps=num_steps, params=num_params):
            for step in range(start_step, num_steps):
                step_start = time.perf_counter()
                with tracer.span("train.step", step=step):
                    if self.schedule is not None:
                        self.schedule.apply(self.optimizer, step)
                    with tracer.span("train.batch"):
                        x, y = self._next_batch(step)
                    self.model.zero_grad()
                    with tracer.span("train.forward"):
                        loss = self.model.loss(x, y)
                    with tracer.span("train.backward"):
                        loss.backward()
                    grad_norm = None
                    if want_norm:
                        grad_norm = clip_grad_norm(self.optimizer.parameters, max_norm)
                    with tracer.span("train.optimizer"):
                        self.optimizer.step()
                step_seconds = time.perf_counter() - step_start

                loss_value = float(loss.data)
                tokens = int(np.asarray(y).size)
                history.steps.append(step)
                history.losses.append(loss_value)
                history.lrs.append(self.optimizer.lr)
                history.step_seconds.append(step_seconds)
                history.step_tokens.append(tokens)
                if grad_norm is not None:
                    history.grad_norms.append(grad_norm)
                    g_norm.set(grad_norm)

                c_steps.inc()
                c_tokens.inc(tokens)
                h_step.observe(step_seconds)
                g_loss.set(loss_value)
                tokens_per_sec = tokens / step_seconds if step_seconds > 0 else 0.0
                events.emit(
                    "train_step",
                    step=step,
                    loss=loss_value,
                    lr=self.optimizer.lr,
                    grad_norm=grad_norm,
                    tokens=tokens,
                    seconds=step_seconds,
                    tokens_per_sec=tokens_per_sec,
                    flops_per_sec=(training_flops(num_params, tokens) / step_seconds
                                   if num_params and step_seconds > 0 else None),
                )

                is_eval_step = self.eval_every and (step + 1) % self.eval_every == 0
                if self.eval_fn is not None and (is_eval_step or step == num_steps - 1):
                    with tracer.span("train.eval", step=step):
                        snapshot = self.eval_fn(self.model, step)
                    history.eval_steps.append(step)
                    history.eval_values.append(snapshot)
                    events.emit("train_eval", step=step, **snapshot)
                    self.model.train()

                maybe_checkpoint(step + 1)
        history.wall_time = prior_wall + (time.perf_counter() - start)
        return history


def train_lm_on_stream(
    model,
    train_ids: np.ndarray,
    num_steps: int,
    batch_size: int = 16,
    seq_len: int = 32,
    lr: float = 3e-3,
    seed: int = 0,
    weight_decay: float = 0.01,
    clip_norm: float | None = 1.0,
    eval_fn: Callable | None = None,
    eval_every: int = 0,
    obs: Observability | None = None,
    checkpoint_every: int = 0,
    checkpoint_dir: str | Path | None = None,
    keep_last: int = 3,
    resume: bool = False,
) -> History:
    """Convenience wrapper: AdamW + random-window batches from a stream.

    The batch RNG is owned by the :class:`Trainer` (not closed over), so
    with ``checkpoint_dir`` / ``checkpoint_every`` set the run writes
    resumable full-state snapshots; ``resume=True`` continues from the
    newest valid snapshot in ``checkpoint_dir`` when one exists (and
    starts from scratch otherwise), reproducing the uninterrupted
    trajectory bit-for-bit.
    """
    from ..data.corpus import sample_batch
    from ..nn import AdamW

    optimizer = AdamW(model.parameters(), lr=lr, weight_decay=weight_decay)
    trainer = Trainer(
        model,
        optimizer,
        batch_fn=lambda step, rng: sample_batch(train_ids, batch_size, seq_len, rng),
        clip_norm=clip_norm,
        eval_fn=eval_fn,
        eval_every=eval_every,
        rng=np.random.default_rng(seed),
        obs=obs,
    )
    resume_from = None
    if resume and checkpoint_dir is not None:
        if latest_checkpoint(checkpoint_dir) is not None:
            resume_from = checkpoint_dir
    return trainer.run(num_steps, checkpoint_every=checkpoint_every,
                       checkpoint_dir=checkpoint_dir, keep_last=keep_last,
                       resume_from=resume_from)
