"""Evaluation metrics: Eq. 3 cross-entropy/perplexity, accuracy, ROUGE.

ROUGE is the "text comparison metric" §4 mentions for scoring freeform
generations against references; exact-match and accuracy cover the
multiple-choice / single-answer cases.
"""

from __future__ import annotations

from collections import Counter
from typing import Sequence

import numpy as np


def cross_entropy_of(lm, ids: np.ndarray) -> float:
    """Eq. 3 for any LanguageModel, preferring its batched path if present."""
    if hasattr(lm, "cross_entropy_on"):
        return float(lm.cross_entropy_on(np.asarray(ids)))
    return float(lm.cross_entropy(np.asarray(ids)))


def perplexity_of(lm, ids: np.ndarray) -> float:
    """exp(Eq. 3); the paper's headline LM quality number."""
    return float(np.exp(cross_entropy_of(lm, ids)))


def accuracy(predictions: Sequence, targets: Sequence) -> float:
    """Fraction of positions where prediction equals target."""
    predictions, targets = list(predictions), list(targets)
    if len(predictions) != len(targets):
        raise ValueError("length mismatch")
    if not targets:
        raise ValueError("empty inputs")
    return sum(p == t for p, t in zip(predictions, targets)) / len(targets)


def exact_match(candidate: str, reference: str) -> bool:
    """Whitespace-normalised string equality."""
    return " ".join(candidate.split()) == " ".join(reference.split())


def _ngrams(tokens: Sequence[str], n: int) -> Counter:
    return Counter(tuple(tokens[i : i + n]) for i in range(len(tokens) - n + 1))


def rouge_n(candidate: Sequence[str], reference: Sequence[str], n: int = 1) -> float:
    """ROUGE-N recall: clipped n-gram overlap / reference n-gram count."""
    if n < 1:
        raise ValueError("n must be >= 1")
    ref_counts = _ngrams(reference, n)
    if not ref_counts:
        return 0.0
    cand_counts = _ngrams(candidate, n)
    overlap = sum(min(count, cand_counts.get(gram, 0)) for gram, count in ref_counts.items())
    return overlap / sum(ref_counts.values())


def _lcs_length(a: Sequence[str], b: Sequence[str]) -> int:
    """Classic O(len(a) * len(b)) longest-common-subsequence DP."""
    if not a or not b:
        return 0
    prev = [0] * (len(b) + 1)
    for x in a:
        current = [0]
        for j, y in enumerate(b, start=1):
            if x == y:
                current.append(prev[j - 1] + 1)
            else:
                current.append(max(prev[j], current[-1]))
        prev = current
    return prev[-1]


def rouge_l(candidate: Sequence[str], reference: Sequence[str]) -> float:
    """ROUGE-L F1 based on longest common subsequence."""
    lcs = _lcs_length(list(candidate), list(reference))
    if lcs == 0:
        return 0.0
    precision = lcs / len(candidate)
    recall = lcs / len(reference)
    return 2 * precision * recall / (precision + recall)


def distribution_entropy(probs: np.ndarray) -> float:
    """Shannon entropy in nats of a probability vector.

    The sum-to-one check is tolerance-scaled to the input dtype: a
    float32 softmax legitimately sums to 1 only within ~1e-6 per
    element, so lower-precision inputs get a proportionally looser gate.
    """
    raw = np.asarray(probs)
    atol = 1e-6 if raw.dtype.itemsize >= 8 else 1e-4
    probs = raw.astype(np.float64)
    if not np.isclose(probs.sum(), 1.0, rtol=0.0, atol=atol):
        raise ValueError("probabilities must sum to 1")
    nonzero = probs[probs > 0]
    return float(-(nonzero * np.log(nonzero)).sum())
