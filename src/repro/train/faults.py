"""Fault injection for testing the checkpoint/resume recovery paths.

A fault-tolerance subsystem that has never seen a fault is a hypothesis,
not a feature.  This module supplies the three failure modes a training
job actually meets in production, so the recovery paths in
:mod:`repro.train.checkpoint` are exercised by tests rather than assumed:

- **Process death mid-run** — :class:`SimulatedCrash` raised from a
  :func:`crash_at`-wrapped ``batch_fn`` kills a
  :class:`~repro.train.Trainer` run at an exact step, the moral
  equivalent of a SIGKILL between two optimizer updates.
- **Transient IO errors** — :func:`inject` arms a named *failpoint*
  (e.g. ``"checkpoint.write"``) that the checkpoint IO layer consults
  via :func:`failpoint`; the next N passes through it raise, after
  which writes succeed again.  This is how the retry-with-backoff path
  is tested.
- **Corruption at rest** — :func:`truncate_file` and
  :func:`corrupt_file` damage an already-written snapshot the way a
  torn write or bad disk would, so the manifest-checksum fallback to
  the previous valid snapshot can be verified.

Failpoints are deliberately process-global and off by default: with no
fault armed, :func:`failpoint` is a dict lookup returning immediately,
cheap enough to leave in production IO paths (the "failpoint" idiom from
etcd/TiKV).  Tests arm them via the :func:`inject` context manager,
which always disarms on exit.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from pathlib import Path


class SimulatedCrash(RuntimeError):
    """Raised by injected faults standing in for an abrupt process death."""


class _Fault:
    """One armed failpoint: raises ``exc_factory()`` for ``times`` hits.

    The first ``skip`` passes succeed untouched — that is how a test
    lets early checkpoints land and kills a *later* one.
    """

    __slots__ = ("exc_factory", "times", "skip", "hits", "passes")

    def __init__(self, exc_factory, times: int, skip: int = 0):
        self.exc_factory = exc_factory
        self.times = times
        self.skip = skip
        self.hits = 0
        self.passes = 0

    def fire(self) -> None:
        self.passes += 1
        if self.passes <= self.skip:
            return
        if self.times >= 0 and self.hits >= self.times:
            return
        self.hits += 1
        raise self.exc_factory()


_ACTIVE: dict[str, _Fault] = {}


def failpoint(name: str) -> None:
    """Production-side hook: raise if a fault is armed for ``name``.

    Checkpoint IO calls this at its named choke points
    (``"checkpoint.write"``, ``"checkpoint.replace"``,
    ``"checkpoint.manifest"``).  With nothing armed — the normal case —
    this is a single dict lookup.
    """
    fault = _ACTIVE.get(name)
    if fault is not None:
        fault.fire()


@contextmanager
def inject(name: str, exc_factory=None, times: int = 1, skip: int = 0):
    """Arm a failpoint for the duration of a ``with`` block.

    Parameters
    ----------
    name:
        Failpoint name as used by the production code.
    exc_factory:
        Zero-arg callable producing the exception to raise; defaults to
        a transient-looking ``OSError``.
    times:
        How many passes through the failpoint should fail before it
        starts succeeding again; ``-1`` means fail forever (a hard,
        non-transient fault).
    skip:
        Let the first ``skip`` passes succeed before failing — e.g.
        ``skip=2, times=-1`` lets two checkpoints land, then kills
        every later write, which is how "die partway through a long
        run" is simulated for loops without an injectable batch_fn.

    Yields the armed :class:`_Fault` so tests can assert on ``hits``.
    """
    if exc_factory is None:
        exc_factory = lambda: OSError(f"injected fault at {name}")  # noqa: E731
    fault = _Fault(exc_factory, times, skip=skip)
    previous = _ACTIVE.get(name)
    _ACTIVE[name] = fault
    try:
        yield fault
    finally:
        if previous is None:
            _ACTIVE.pop(name, None)
        else:
            _ACTIVE[name] = previous


def clear() -> None:
    """Disarm every failpoint (test-teardown safety net)."""
    _ACTIVE.clear()


def crash_at(batch_fn, step: int):
    """Wrap ``batch_fn`` so the run dies with :class:`SimulatedCrash` at ``step``.

    The crash fires when the trainer asks for the batch of global step
    ``step`` — i.e. after ``step`` optimizer updates have completed and
    any on-boundary checkpoint has been written, exactly where a real
    mid-run kill lands.  The wrapper forwards positional arguments
    unchanged, so it works for both ``batch_fn(step)`` and
    ``batch_fn(step, rng)`` calling conventions.
    """
    def wrapped(s, *args):
        if s == step:
            raise SimulatedCrash(f"injected crash at step {s}")
        return batch_fn(s, *args)

    return wrapped


def truncate_file(path: str | Path, keep_bytes: int | None = None) -> None:
    """Truncate ``path`` in place, as a torn write would leave it.

    By default keeps the first half of the file; pass ``keep_bytes`` for
    an exact cut (0 leaves an empty file).
    """
    path = Path(path)
    size = path.stat().st_size
    if keep_bytes is None:
        keep_bytes = size // 2
    with open(path, "r+b") as f:
        f.truncate(keep_bytes)


def corrupt_file(path: str | Path, offset: int | None = None,
                 nbytes: int = 8) -> None:
    """Flip ``nbytes`` bytes of ``path`` in place (silent bit-rot).

    The file keeps its size — this is the corruption that only a
    checksum can catch, unlike truncation which the zip reader notices
    on its own.  ``offset`` defaults to the middle of the file.
    """
    path = Path(path)
    size = path.stat().st_size
    if size == 0:
        raise ValueError(f"cannot corrupt empty file {path}")
    if offset is None:
        offset = size // 2
    offset = min(offset, size - 1)
    nbytes = min(nbytes, size - offset)
    with open(path, "r+b") as f:
        f.seek(offset)
        original = f.read(nbytes)
        f.seek(offset)
        f.write(bytes(b ^ 0xFF for b in original))
        f.flush()
        os.fsync(f.fileno())
