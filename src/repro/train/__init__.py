"""Training loops, evaluation metrics, and checkpointing."""

from .checkpoint import load_checkpoint, save_checkpoint
from .metrics import (
    accuracy,
    cross_entropy_of,
    distribution_entropy,
    exact_match,
    perplexity_of,
    rouge_l,
    rouge_n,
)
from .trainer import History, Trainer, train_lm_on_stream

__all__ = [
    "Trainer",
    "History",
    "train_lm_on_stream",
    "accuracy",
    "exact_match",
    "rouge_n",
    "rouge_l",
    "cross_entropy_of",
    "perplexity_of",
    "distribution_entropy",
    "save_checkpoint",
    "load_checkpoint",
]
