"""Training loops, evaluation metrics, and fault-tolerant checkpointing.

Three layers: :mod:`~repro.train.trainer` drives gradient descent
(Eq. 16) and records :class:`History`; :mod:`~repro.train.checkpoint`
makes long runs restartable with crash-safe full-state snapshots
(model + optimizer moments + schedule fingerprint + batch-RNG state,
atomic writes, checksum manifests, rotation); and
:mod:`~repro.train.faults` injects the crashes, torn writes, and IO
errors that prove the recovery paths actually work.  The evaluation
metrics of §5 (accuracy, ROUGE, perplexity) live in
:mod:`~repro.train.metrics`.
"""

from . import faults
from .checkpoint import (
    CheckpointError,
    CheckpointInfo,
    ResumeState,
    latest_checkpoint,
    list_checkpoints,
    load_checkpoint,
    load_training_checkpoint,
    save_checkpoint,
    save_training_checkpoint,
    verify_checkpoint,
)
from .metrics import (
    accuracy,
    cross_entropy_of,
    distribution_entropy,
    exact_match,
    perplexity_of,
    rouge_l,
    rouge_n,
)
from .trainer import History, Trainer, train_lm_on_stream

__all__ = [
    "Trainer",
    "History",
    "train_lm_on_stream",
    "accuracy",
    "exact_match",
    "rouge_n",
    "rouge_l",
    "cross_entropy_of",
    "perplexity_of",
    "distribution_entropy",
    "save_checkpoint",
    "load_checkpoint",
    "save_training_checkpoint",
    "load_training_checkpoint",
    "latest_checkpoint",
    "list_checkpoints",
    "verify_checkpoint",
    "CheckpointError",
    "CheckpointInfo",
    "ResumeState",
    "faults",
]
