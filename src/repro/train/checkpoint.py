"""Checkpointing: model state dicts saved as .npz archives."""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from ..nn import Module

_CONFIG_KEY = "__config_json__"


def save_checkpoint(path: str | Path, model: Module, config: dict | None = None) -> Path:
    """Save a model's parameters (and optional JSON-able config) to .npz."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    arrays = dict(model.state_dict())
    if config is not None:
        arrays[_CONFIG_KEY] = np.frombuffer(
            json.dumps(config).encode("utf-8"), dtype=np.uint8
        )
    np.savez(path, **arrays)
    return path if path.suffix == ".npz" else path.with_suffix(path.suffix + ".npz")


def load_checkpoint(path: str | Path, model: Module) -> dict | None:
    """Load parameters into ``model``; returns the stored config, if any."""
    with np.load(Path(path)) as archive:
        arrays = {name: archive[name] for name in archive.files}
    config = None
    if _CONFIG_KEY in arrays:
        raw = arrays.pop(_CONFIG_KEY)
        config = json.loads(raw.tobytes().decode("utf-8"))
    model.load_state_dict(arrays)
    return config
