"""Crash-safe full-state training checkpoints with verified resume.

The paper's long-horizon experiments — grokking (§4) runs for thousands
of full-batch steps, the scaling-law sweeps (§6) train a ladder of
models back to back — are exactly the jobs that die halfway in practice.
This module makes them restartable *bit-exactly*: a run checkpointed and
killed at step N, then resumed, produces the same losses, gradient
norms, and final parameters as the run that never died.

Format specification (version 1)
--------------------------------
A snapshot is a pair of files in the checkpoint directory::

    ckpt-00000030.npz               # payload: arrays + embedded meta JSON
    ckpt-00000030.npz.manifest.json # commit marker + integrity record

The ``.npz`` archive holds, by key prefix:

``model/<param>``
    One entry per :meth:`repro.nn.Module.state_dict` parameter.
``optim/<buffer>`` / ``optim/<buffer>/<i>``
    Optimizer ndarray state (Adam moments, SGD velocities), one entry
    per buffer; per-parameter buffer lists are indexed ``/0000``,
    ``/0001``, … in ``optimizer.parameters`` order.
``__meta_json__``
    A uint8 array holding one UTF-8 JSON object with every non-array
    piece of state: ``format_version``, ``step`` (the next step to
    run), optimizer scalars (learning rate, betas, step count),
    ``schedule`` (class + hyper-parameters, validated on resume),
    ``rng_state`` (the NumPy bit-generator state of the batch-sampling
    stream), ``history`` (the in-progress
    :class:`~repro.train.History`), ``config``, and ``extra`` (an
    arbitrary JSON payload for custom loops, e.g. grokking curves).

The sidecar manifest is written *after* the archive and is the commit
point: a snapshot without a readable manifest is treated as never
written.  It records ``format_version``, ``kind``, ``step``, the
archive filename, the writer's git sha and wall-clock time, and — per
archive entry — shape, dtype, and a CRC-32 of the raw array bytes.
:func:`load_training_checkpoint` re-hashes every entry before touching
model state and falls back to the previous snapshot when verification
fails, so a torn write or silent bit-rot in the newest file costs one
checkpoint interval, not the run.

Durability: both files are written to a temp name in the target
directory, flushed, ``fsync``'d, then ``os.replace``'d into place, and
the directory entry itself is fsync'd — a crash at any instant leaves
either the old snapshot set or the new one, never a half-written file
under a valid name.  Transient ``OSError`` during a write is retried
with exponential backoff (``retries``/``backoff``); the failpoints
consulted via :func:`repro.train.faults.failpoint` let tests inject
those errors deterministically.

Quick start::

    >>> import numpy as np, tempfile
    >>> from repro.nn import MLP, SGD
    >>> from repro.train.checkpoint import (
    ...     save_training_checkpoint, load_training_checkpoint,
    ...     latest_checkpoint)
    >>> model = MLP([2, 4, 2], np.random.default_rng(1))
    >>> opt = SGD(model.parameters(), lr=0.1, momentum=0.9)
    >>> rng = np.random.default_rng(7)     # batch-sampling stream
    >>> ckdir = tempfile.mkdtemp()
    >>> path = save_training_checkpoint(ckdir, step=30, model=model,
    ...                                 optimizer=opt, rng=rng)
    >>> latest_checkpoint(ckdir).step
    30
    >>> state = load_training_checkpoint(ckdir, model=model, optimizer=opt,
    ...                                  rng=rng)
    >>> state.step
    30
"""

from __future__ import annotations

import datetime
import json
import os
import re
import subprocess
import time
import zlib
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from ..nn import Module
from ..obs import NULL_OBS
from .faults import failpoint

_CONFIG_KEY = "__config_json__"
_META_KEY = "__meta_json__"
MANIFEST_SUFFIX = ".manifest.json"
FORMAT_VERSION = 1

_CKPT_RE = re.compile(r"^ckpt-(\d{8})\.npz$")


class CheckpointError(RuntimeError):
    """A snapshot could not be written, found, verified, or loaded."""


def _check_param_dtypes(state: dict, model, path) -> None:
    """Refuse to load a snapshot whose array dtypes differ from the model's.

    The manifest records each array's ``dtype.str``, so a float64 snapshot
    loaded into a float32 model (or vice versa) is detectable — and under
    the dtype policy it is a configuration error, not something to paper
    over with a silent cast: the cast would destroy the bit-exactness the
    CRC manifest exists to guarantee.  Strict loads call this before any
    parameter is mutated; non-strict loads keep the forgiving cast in
    :meth:`repro.nn.Module.load_state_dict`.
    """
    own = dict(model.named_parameters())
    mismatched = [
        f"{name}: checkpoint {np.asarray(value).dtype.name} "
        f"vs model {own[name].data.dtype.name}"
        for name, value in sorted(state.items())
        if name in own and np.asarray(value).dtype != own[name].data.dtype
    ]
    if mismatched:
        raise CheckpointError(
            f"{path}: parameter dtype mismatch on strict load — rebuild the "
            f"model with the matching TransformerConfig(dtype=...) or load "
            f"with strict=False to cast: " + "; ".join(mismatched))


@dataclass(frozen=True)
class CheckpointInfo:
    """One on-disk snapshot: step index, archive path, manifest path."""

    step: int
    path: Path
    manifest_path: Path


@dataclass
class ResumeState:
    """Everything :func:`load_training_checkpoint` restored or returned.

    ``step`` is the next step to run; ``history`` and ``extra`` are the
    raw JSON payloads saved by the training loop (the
    :class:`~repro.train.Trainer` rebuilds its ``History`` from the
    former).  ``manifest`` is the verified manifest dict of the snapshot
    actually used — its ``git_sha`` tells you which code wrote it.
    """

    step: int
    path: Path
    manifest: dict
    config: dict | None = None
    history: dict | None = None
    extra: dict | None = None


# ---------------------------------------------------------------------------
# Low-level crash-safe IO
# ---------------------------------------------------------------------------


def _fsync_dir(directory: Path) -> None:
    """Flush the directory entry so a rename survives power loss."""
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:  # platforms without directory fds
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


def _atomic_write(path: Path, write_payload, fail_name: str) -> None:
    """Write ``path`` via temp file + flush + fsync + ``os.replace``.

    ``write_payload(fileobj)`` produces the bytes; ``fail_name`` is the
    :func:`~repro.train.faults.failpoint` consulted before the write and
    before the final rename.  On any failure the temp file is removed,
    so aborted attempts never masquerade as snapshots.
    """
    tmp = path.with_name(path.name + ".tmp")
    try:
        failpoint(fail_name)
        with open(tmp, "wb") as f:
            write_payload(f)
            f.flush()
            os.fsync(f.fileno())
        failpoint("checkpoint.replace")
        os.replace(tmp, path)
    except BaseException:
        try:
            tmp.unlink()
        except OSError:
            pass
        raise
    _fsync_dir(path.parent)


def _retrying(fn, retries: int, backoff: float, sleep, obs, what: str):
    """Run ``fn`` retrying transient ``OSError`` with exponential backoff."""
    attempt = 0
    while True:
        try:
            return fn()
        except OSError as error:
            attempt += 1
            if attempt > retries:
                raise
            delay = backoff * (2 ** (attempt - 1))
            obs.events.emit("checkpoint_retry", what=what, attempt=attempt,
                            delay=delay, error=str(error))
            sleep(delay)


def _git_sha() -> str:
    """Best-effort git sha of the writing code, for provenance."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=os.path.dirname(os.path.abspath(__file__)),
            capture_output=True, text=True, timeout=10,
        )
        if out.returncode == 0:
            return out.stdout.strip()
    except OSError:
        pass
    return "unknown"


def _array_record(array: np.ndarray) -> dict:
    """Manifest integrity record for one array: crc32 + shape + dtype."""
    data = np.ascontiguousarray(array)
    return {
        "crc32": zlib.crc32(data.tobytes()),
        "shape": list(data.shape),
        "dtype": data.dtype.str,
    }


def _build_manifest(kind: str, step: int | None, npz_path: Path,
                    arrays: dict[str, np.ndarray]) -> dict:
    return {
        "format_version": FORMAT_VERSION,
        "kind": kind,
        "step": step,
        "file": npz_path.name,
        "git_sha": _git_sha(),
        "created_at": datetime.datetime.now(datetime.timezone.utc).isoformat(),
        "arrays": {name: _array_record(arr) for name, arr in arrays.items()},
    }


def _write_snapshot(npz_path: Path, arrays: dict[str, np.ndarray],
                    kind: str, step: int | None) -> dict:
    """Write archive then manifest (the commit marker); returns the manifest."""
    _atomic_write(npz_path, lambda f: np.savez(f, **arrays), "checkpoint.write")
    manifest = _build_manifest(kind, step, npz_path, arrays)
    payload = json.dumps(manifest, indent=2, default=float).encode("utf-8")
    _atomic_write(manifest_path_for(npz_path), lambda f: f.write(payload),
                  "checkpoint.manifest")
    return manifest


def manifest_path_for(npz_path: str | Path) -> Path:
    """Sidecar manifest path for an archive: ``<file>.manifest.json``."""
    npz_path = Path(npz_path)
    return npz_path.with_name(npz_path.name + MANIFEST_SUFFIX)


def verify_checkpoint(npz_path: str | Path) -> dict:
    """Check a snapshot against its manifest; return the manifest dict.

    Raises :class:`CheckpointError` if the manifest is missing or
    unreadable, the archive is unreadable (truncated zip), the entry
    sets differ, or any per-array CRC-32/shape/dtype does not match.
    """
    npz_path = Path(npz_path)
    manifest_path = manifest_path_for(npz_path)
    try:
        manifest = json.loads(manifest_path.read_text())
    except (OSError, ValueError) as error:
        raise CheckpointError(
            f"unreadable manifest {manifest_path}: {error}") from error
    expected = manifest.get("arrays")
    if not isinstance(expected, dict):
        raise CheckpointError(f"manifest {manifest_path} has no array records")
    try:
        with np.load(npz_path) as archive:
            names = set(archive.files)
            if names != set(expected):
                raise CheckpointError(
                    f"{npz_path}: archive entries {sorted(names)} != "
                    f"manifest entries {sorted(expected)}")
            for name, record in expected.items():
                actual = _array_record(archive[name])
                if actual != record:
                    raise CheckpointError(
                        f"{npz_path}: checksum mismatch on {name!r} "
                        f"(expected {record}, got {actual})")
    except CheckpointError:
        raise
    except Exception as error:  # truncated/corrupt zip raises many types
        raise CheckpointError(f"unreadable archive {npz_path}: {error}") from error
    return manifest


# ---------------------------------------------------------------------------
# Directory layout: listing, latest, rotation
# ---------------------------------------------------------------------------


def list_checkpoints(directory: str | Path) -> list[CheckpointInfo]:
    """All ``ckpt-NNNNNNNN.npz`` snapshots in ``directory``, oldest first.

    Purely name-based — no integrity check; pair with
    :func:`verify_checkpoint` or use :func:`latest_checkpoint` /
    :func:`load_training_checkpoint`, which verify before trusting.
    """
    directory = Path(directory)
    if not directory.is_dir():
        return []
    found = []
    for entry in directory.iterdir():
        match = _CKPT_RE.match(entry.name)
        if match:
            found.append(CheckpointInfo(int(match.group(1)), entry,
                                        manifest_path_for(entry)))
    return sorted(found, key=lambda info: info.step)


def latest_checkpoint(directory: str | Path,
                      verify: bool = True) -> CheckpointInfo | None:
    """Newest snapshot in ``directory`` (newest *valid* one by default).

    With ``verify=True`` corrupt or uncommitted snapshots are skipped,
    so the answer is the one a resume would actually use; ``None`` when
    nothing usable exists.
    """
    for info in reversed(list_checkpoints(directory)):
        if not verify:
            return info
        try:
            verify_checkpoint(info.path)
            return info
        except CheckpointError:
            continue
    return None


def _rotate(directory: Path, keep_last: int, obs) -> None:
    """Delete snapshots beyond the newest ``keep_last`` (archive + manifest)."""
    snapshots = list_checkpoints(directory)
    for info in snapshots[:-keep_last] if keep_last > 0 else []:
        for stale in (info.path, info.manifest_path):
            try:
                stale.unlink()
            except OSError:
                pass
        obs.events.emit("checkpoint_rotated", step=info.step,
                        path=str(info.path))


# ---------------------------------------------------------------------------
# Optimizer state <-> flat array packing
# ---------------------------------------------------------------------------


def _pack_optimizer(state: dict) -> tuple[dict[str, np.ndarray], dict]:
    """Split an optimizer state dict into npz arrays and JSON scalars."""
    arrays: dict[str, np.ndarray] = {}
    scalars: dict = {}
    for key, value in state.items():
        if isinstance(value, np.ndarray):
            arrays[f"optim/{key}"] = value
            scalars[key] = {"__array__": True}
        elif (isinstance(value, (list, tuple)) and value
              and all(isinstance(v, np.ndarray) for v in value)):
            for i, buf in enumerate(value):
                arrays[f"optim/{key}/{i:04d}"] = buf
            scalars[key] = {"__buffers__": len(value)}
        else:
            scalars[key] = value
    return arrays, scalars


def _unpack_optimizer(scalars: dict, arrays: dict[str, np.ndarray]) -> dict:
    """Inverse of :func:`_pack_optimizer`."""
    state: dict = {}
    for key, value in scalars.items():
        if isinstance(value, dict) and value.get("__array__"):
            state[key] = arrays[f"optim/{key}"]
        elif isinstance(value, dict) and "__buffers__" in value:
            state[key] = [arrays[f"optim/{key}/{i:04d}"]
                          for i in range(value["__buffers__"])]
        else:
            state[key] = value
    return state


# ---------------------------------------------------------------------------
# Full training-state snapshots
# ---------------------------------------------------------------------------


def save_training_checkpoint(
    directory: str | Path,
    step: int,
    model: Module,
    optimizer=None,
    *,
    rng: np.random.Generator | None = None,
    schedule=None,
    history=None,
    config: dict | None = None,
    extra: dict | None = None,
    keep_last: int | None = None,
    retries: int = 2,
    backoff: float = 0.05,
    sleep=time.sleep,
    obs=None,
) -> Path:
    """Write one full-state snapshot ``ckpt-<step>.npz`` (+ manifest).

    ``step`` is the index of the *next* step to run — checkpoint after
    completing step 29 (0-indexed) with ``step=30``.  Covers model
    parameters, optimizer buffers and scalars, the schedule's
    hyper-parameter fingerprint, the batch-RNG bit-generator state, the
    in-progress ``history`` (a dict or anything with ``state_dict()``),
    an optional JSON-able ``config`` and ``extra`` payload.

    Writes are atomic and fsync'd; transient ``OSError`` is retried
    ``retries`` times with exponential ``backoff`` (base seconds,
    doubling).  With ``keep_last=N`` older snapshots are pruned after a
    successful write, so a directory never holds more than N.  Pass an
    :class:`repro.obs.Observability` bundle as ``obs`` for a
    ``checkpoint.save`` span, the ``train.checkpoint_seconds``
    histogram, and ``checkpoint_saved`` / ``checkpoint_retry`` /
    ``checkpoint_rotated`` events.
    """
    obs = obs if obs is not None else NULL_OBS
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    npz_path = directory / f"ckpt-{step:08d}.npz"

    arrays = {f"model/{name}": value
              for name, value in model.state_dict().items()}
    meta: dict = {"format_version": FORMAT_VERSION, "step": int(step),
                  "optimizer": None, "schedule": None, "rng_state": None,
                  "history": None, "config": config, "extra": extra}
    if optimizer is not None:
        optim_arrays, optim_scalars = _pack_optimizer(optimizer.state_dict())
        arrays.update(optim_arrays)
        meta["optimizer"] = optim_scalars
    if schedule is not None:
        meta["schedule"] = schedule.state_dict()
    if rng is not None:
        meta["rng_state"] = rng.bit_generator.state
    if history is not None:
        meta["history"] = (history.state_dict()
                           if hasattr(history, "state_dict") else dict(history))
    arrays[_META_KEY] = np.frombuffer(
        json.dumps(meta, default=float).encode("utf-8"), dtype=np.uint8)

    start = time.perf_counter()
    with obs.tracer.span("checkpoint.save", step=step):
        _retrying(lambda: _write_snapshot(npz_path, arrays, "train_state", step),
                  retries, backoff, sleep, obs, what=str(npz_path))
        if keep_last is not None:
            _rotate(directory, keep_last, obs)
    seconds = time.perf_counter() - start
    obs.metrics.histogram("train.checkpoint_seconds").observe(seconds)
    obs.events.emit("checkpoint_saved", step=step, path=str(npz_path),
                    bytes=npz_path.stat().st_size, seconds=seconds)
    return npz_path


def _resolve_candidates(source: str | Path) -> list[CheckpointInfo]:
    """Snapshots to try, newest first: a whole directory or one file."""
    source = Path(source)
    if source.is_dir():
        return list(reversed(list_checkpoints(source)))
    name = source.name
    if name.endswith(MANIFEST_SUFFIX):
        source = source.with_name(name[: -len(MANIFEST_SUFFIX)])
    match = _CKPT_RE.match(source.name)
    step = int(match.group(1)) if match else -1
    return [CheckpointInfo(step, source, manifest_path_for(source))]


def load_training_checkpoint(
    source: str | Path,
    model: Module | None = None,
    optimizer=None,
    *,
    rng: np.random.Generator | None = None,
    schedule=None,
    strict: bool = True,
    obs=None,
) -> ResumeState:
    """Restore training state from ``source``; returns a :class:`ResumeState`.

    ``source`` is a checkpoint directory (the newest *verified* snapshot
    wins; corrupt ones are skipped with a ``checkpoint_fallback`` event,
    which is how a truncated latest file falls back to the previous
    snapshot) or a path to one ``.npz`` / manifest file (no fallback).

    Every array is CRC-checked against the manifest *before* any state
    is mutated.  ``model`` / ``optimizer`` / ``rng`` are restored in
    place when given; ``schedule`` is not mutated (schedules are pure
    functions of step) but its hyper-parameters are validated against
    the snapshot — with ``strict=True`` a mismatch, a missing
    model/optimizer section, or an RNG bit-generator of a different
    kind raises :class:`CheckpointError` / ``ValueError`` rather than
    resuming a run that could not reproduce the original trajectory.
    """
    obs = obs if obs is not None else NULL_OBS
    candidates = _resolve_candidates(source)
    if not candidates:
        raise CheckpointError(f"no checkpoints found in {source}")

    failures: list[str] = []
    chosen = arrays = manifest = None
    for info in candidates:
        try:
            manifest = verify_checkpoint(info.path)
            with np.load(info.path) as archive:
                arrays = {name: archive[name] for name in archive.files}
            chosen = info
            break
        except CheckpointError as error:
            failures.append(str(error))
            obs.events.emit("checkpoint_fallback", path=str(info.path),
                            error=str(error))
    if chosen is None:
        raise CheckpointError(
            "no valid checkpoint in {}: {}".format(source, "; ".join(failures)))

    if _META_KEY not in arrays:
        raise CheckpointError(
            f"{chosen.path} is not a full training checkpoint "
            f"(no {_META_KEY}; use load_checkpoint for model-only files)")
    meta = json.loads(arrays.pop(_META_KEY).tobytes().decode("utf-8"))
    if meta.get("format_version") != FORMAT_VERSION:
        raise CheckpointError(
            f"{chosen.path}: unsupported format version "
            f"{meta.get('format_version')!r} (this reader supports "
            f"{FORMAT_VERSION})")

    model_state = {name[len("model/"):]: value for name, value in arrays.items()
                   if name.startswith("model/")}
    if model is not None:
        if strict:
            _check_param_dtypes(model_state, model, chosen.path)
        model.load_state_dict(model_state, strict=strict)
    if optimizer is not None:
        if meta["optimizer"] is None:
            if strict:
                raise CheckpointError(
                    f"{chosen.path} carries no optimizer state")
        else:
            optimizer.load_state_dict(
                _unpack_optimizer(meta["optimizer"], arrays), strict=strict)
    if schedule is not None and meta["schedule"] is not None and strict:
        schedule.validate_state(meta["schedule"])
    if rng is not None and meta["rng_state"] is not None:
        saved = meta["rng_state"]
        if saved.get("bit_generator") != type(rng.bit_generator).__name__:
            raise CheckpointError(
                f"RNG mismatch: checkpoint has {saved.get('bit_generator')!r}, "
                f"current generator is {type(rng.bit_generator).__name__!r}")
        rng.bit_generator.state = saved

    obs.events.emit("checkpoint_resumed", step=meta["step"],
                    path=str(chosen.path))
    return ResumeState(step=meta["step"], path=chosen.path, manifest=manifest,
                       config=meta.get("config"), history=meta.get("history"),
                       extra=meta.get("extra"))


# ---------------------------------------------------------------------------
# Model-only checkpoints (the original lightweight API, now crash-safe)
# ---------------------------------------------------------------------------


def _npz_path(path: str | Path) -> Path:
    """The one naming rule: append ``.npz`` unless already present.

    This mirrors ``np.savez``'s historical filename behaviour, but here
    the same computed path is used for the atomic write *and* the return
    value, so the two can never disagree (the pre-fix code derived the
    return path with a different ``with_suffix`` rule).
    """
    text = str(path)
    return Path(text if text.endswith(".npz") else text + ".npz")


def save_checkpoint(path: str | Path, model: Module,
                    config: dict | None = None, *, retries: int = 0,
                    backoff: float = 0.05, sleep=time.sleep) -> Path:
    """Save model parameters (and optional JSON-able config) to ``.npz``.

    The archive is written atomically with a sidecar integrity manifest
    (see the module docstring); the returned path is exactly the path
    written.  For full training state — optimizer moments, RNG, history —
    use :func:`save_training_checkpoint` instead.

    >>> import numpy as np, tempfile, os
    >>> from repro.nn import MLP
    >>> from repro.train.checkpoint import save_checkpoint
    >>> target = os.path.join(tempfile.mkdtemp(), "model.ckpt")
    >>> saved = save_checkpoint(target, MLP([2, 3], np.random.default_rng(0)))
    >>> saved.name, saved.exists()
    ('model.ckpt.npz', True)
    """
    target = _npz_path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    arrays = dict(model.state_dict())
    if config is not None:
        arrays[_CONFIG_KEY] = np.frombuffer(
            json.dumps(config).encode("utf-8"), dtype=np.uint8
        )
    _retrying(lambda: _write_snapshot(target, arrays, "model", None),
              retries, backoff, sleep, NULL_OBS, what=str(target))
    return target


def load_checkpoint(path: str | Path, model: Module, *, strict: bool = True,
                    verify: bool = True) -> dict | None:
    """Load parameters into ``model``; returns the stored config, if any.

    When the sidecar manifest exists the archive's checksums are
    verified *before* any parameter is touched (``verify=False`` skips
    this; manifest-less archives from older writers load as before).
    ``strict`` is forwarded to :meth:`repro.nn.Module.load_state_dict`:
    by default a key-set mismatch raises instead of silently loading the
    intersection.
    """
    target = _npz_path(path)
    if not target.exists() and Path(path).exists():
        target = Path(path)
    if verify and manifest_path_for(target).exists():
        verify_checkpoint(target)
    with np.load(target) as archive:
        arrays = {name: archive[name] for name in archive.files}
    config = None
    if _CONFIG_KEY in arrays:
        raw = arrays.pop(_CONFIG_KEY)
        config = json.loads(raw.tobytes().decode("utf-8"))
    if strict:
        _check_param_dtypes(arrays, model, target)
    model.load_state_dict(arrays, strict=strict)
    return config
