"""Learning-rate schedules (the "varying the learning rate" of §3).

Schedules are pure functions of the global step index, so they carry no
mutable training state: resuming a checkpointed run at step N and calling
``apply(optimizer, N)`` reproduces exactly the learning rate an
uninterrupted run would have used.  What *can* silently break a resume is
constructing the schedule with different hyper-parameters (a different
``total_steps``, say), so every schedule exposes :meth:`state_dict` — a
JSON-able record of its class and constructor arguments — which
:mod:`repro.train.checkpoint` stores in each snapshot and validates on
load via :meth:`Schedule.validate_state`.
"""

from __future__ import annotations

import math


class Schedule:
    """Maps a step index to a learning rate; call ``apply`` each step."""

    def lr_at(self, step: int) -> float:
        """Learning rate to use for global step ``step`` (0-indexed)."""
        raise NotImplementedError

    def apply(self, optimizer, step: int) -> float:
        """Set ``optimizer.lr`` for ``step`` and return the value used."""
        lr = self.lr_at(step)
        optimizer.lr = lr
        return lr

    def state_dict(self) -> dict:
        """Class name plus constructor hyper-parameters (JSON-able).

        Used by the checkpoint layer to detect a schedule swap between
        the run that saved a snapshot and the run resuming from it.
        """
        params = {k: v for k, v in vars(self).items() if not k.startswith("_")}
        return {"kind": type(self).__name__, **params}

    def validate_state(self, state: dict) -> None:
        """Raise ``ValueError`` unless ``state`` matches this schedule.

        A resumed run with a different schedule cannot reproduce the
        uninterrupted trajectory, so mismatches in class or any
        hyper-parameter are rejected loudly rather than warned about.
        """
        own = self.state_dict()
        if dict(state) != own:
            raise ValueError(
                f"schedule mismatch on resume: checkpoint has {state!r}, "
                f"current schedule is {own!r}"
            )


class Constant(Schedule):
    """Fixed learning rate at every step."""

    def __init__(self, lr: float):
        self.lr = lr

    def lr_at(self, step: int) -> float:
        """Return the fixed rate regardless of ``step``."""
        return self.lr


class WarmupCosine(Schedule):
    """Linear warmup to ``peak_lr`` then cosine decay to ``final_lr``."""

    def __init__(self, peak_lr: float, warmup_steps: int, total_steps: int,
                 final_lr: float = 0.0):
        if total_steps <= warmup_steps:
            raise ValueError("total_steps must exceed warmup_steps")
        self.peak_lr = peak_lr
        self.warmup_steps = warmup_steps
        self.total_steps = total_steps
        self.final_lr = final_lr

    def lr_at(self, step: int) -> float:
        """Warmup ramp before ``warmup_steps``, cosine half-wave after."""
        if step < self.warmup_steps:
            return self.peak_lr * (step + 1) / self.warmup_steps
        progress = (step - self.warmup_steps) / (self.total_steps - self.warmup_steps)
        progress = min(max(progress, 0.0), 1.0)
        cosine = 0.5 * (1.0 + math.cos(math.pi * progress))
        return self.final_lr + (self.peak_lr - self.final_lr) * cosine


class WarmupLinear(Schedule):
    """Linear warmup then linear decay to zero."""

    def __init__(self, peak_lr: float, warmup_steps: int, total_steps: int):
        if total_steps <= warmup_steps:
            raise ValueError("total_steps must exceed warmup_steps")
        self.peak_lr = peak_lr
        self.warmup_steps = warmup_steps
        self.total_steps = total_steps

    def lr_at(self, step: int) -> float:
        """Warmup ramp, then a straight line down to zero at ``total_steps``."""
        if step < self.warmup_steps:
            return self.peak_lr * (step + 1) / self.warmup_steps
        remaining = (self.total_steps - step) / (self.total_steps - self.warmup_steps)
        return self.peak_lr * max(remaining, 0.0)


class StepDecay(Schedule):
    """Multiply the base LR by ``gamma`` every ``step_size`` steps."""

    def __init__(self, base_lr: float, step_size: int, gamma: float = 0.5):
        if step_size <= 0:
            raise ValueError("step_size must be positive")
        self.base_lr = base_lr
        self.step_size = step_size
        self.gamma = gamma

    def lr_at(self, step: int) -> float:
        """Piecewise-constant decay: ``base_lr * gamma ** (step // size)``."""
        return self.base_lr * self.gamma ** (step // self.step_size)
