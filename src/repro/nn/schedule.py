"""Learning-rate schedules (the "varying the learning rate" of §3)."""

from __future__ import annotations

import math


class Schedule:
    """Maps a step index to a learning rate; call ``apply`` each step."""

    def lr_at(self, step: int) -> float:
        raise NotImplementedError

    def apply(self, optimizer, step: int) -> float:
        lr = self.lr_at(step)
        optimizer.lr = lr
        return lr


class Constant(Schedule):
    def __init__(self, lr: float):
        self.lr = lr

    def lr_at(self, step: int) -> float:
        return self.lr


class WarmupCosine(Schedule):
    """Linear warmup to ``peak_lr`` then cosine decay to ``final_lr``."""

    def __init__(self, peak_lr: float, warmup_steps: int, total_steps: int,
                 final_lr: float = 0.0):
        if total_steps <= warmup_steps:
            raise ValueError("total_steps must exceed warmup_steps")
        self.peak_lr = peak_lr
        self.warmup_steps = warmup_steps
        self.total_steps = total_steps
        self.final_lr = final_lr

    def lr_at(self, step: int) -> float:
        if step < self.warmup_steps:
            return self.peak_lr * (step + 1) / self.warmup_steps
        progress = (step - self.warmup_steps) / (self.total_steps - self.warmup_steps)
        progress = min(max(progress, 0.0), 1.0)
        cosine = 0.5 * (1.0 + math.cos(math.pi * progress))
        return self.final_lr + (self.peak_lr - self.final_lr) * cosine


class WarmupLinear(Schedule):
    """Linear warmup then linear decay to zero."""

    def __init__(self, peak_lr: float, warmup_steps: int, total_steps: int):
        if total_steps <= warmup_steps:
            raise ValueError("total_steps must exceed warmup_steps")
        self.peak_lr = peak_lr
        self.warmup_steps = warmup_steps
        self.total_steps = total_steps

    def lr_at(self, step: int) -> float:
        if step < self.warmup_steps:
            return self.peak_lr * (step + 1) / self.warmup_steps
        remaining = (self.total_steps - step) / (self.total_steps - self.warmup_steps)
        return self.peak_lr * max(remaining, 0.0)


class StepDecay(Schedule):
    """Multiply the base LR by ``gamma`` every ``step_size`` steps."""

    def __init__(self, base_lr: float, step_size: int, gamma: float = 0.5):
        if step_size <= 0:
            raise ValueError("step_size must be positive")
        self.base_lr = base_lr
        self.step_size = step_size
        self.gamma = gamma

    def lr_at(self, step: int) -> float:
        return self.base_lr * self.gamma ** (step // self.step_size)
