"""Core neural-network layers built on the autograd engine.

These are the ingredients the paper's recipe (§5-§6) composes: linear maps
(the W_i of Eq. 11), embeddings (the map iota of Eq. 7), layer norm, and a
generic MLP/FFN (Eq. 11 itself: alternating linear maps and pointwise
nonlinearities).
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from ..autograd import Tensor, dropout as dropout_fn, gelu, layer_norm
from . import init
from .module import Module

Activation = Callable[[Tensor], Tensor]

_ACTIVATIONS: dict[str, Activation] = {
    "relu": lambda x: x.relu(),
    "tanh": lambda x: x.tanh(),
    "gelu": gelu,
    "sigmoid": lambda x: x.sigmoid(),
    "identity": lambda x: x,
    "square": lambda x: x.square(),
}


def get_activation(name: str) -> Activation:
    """Look up an activation by name; raises ``KeyError`` if unknown."""
    try:
        return _ACTIVATIONS[name]
    except KeyError:
        raise KeyError(
            f"unknown activation {name!r}; available: {sorted(_ACTIVATIONS)}"
        ) from None


class Linear(Module):
    """Affine map ``y = x W + b`` with var(W_ij) = 1/fan_in init (§6)."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        rng: np.random.Generator,
        bias: bool = True,
        init_scale: float = 1.0,
    ):
        super().__init__()
        self.in_features = in_features
        self.out_features = out_features
        weight = init.scaled_normal(rng, (in_features, out_features)) * init_scale
        self.weight = Tensor(weight, requires_grad=True)
        self.bias = Tensor(init.zeros(out_features), requires_grad=True) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        out = x @ self.weight
        if self.bias is not None:
            out = out + self.bias
        return out


class Embedding(Module):
    """Token-id -> vector lookup table (the word embedding map, Eq. 7)."""

    def __init__(self, num_embeddings: int, dim: int, rng: np.random.Generator):
        super().__init__()
        self.num_embeddings = num_embeddings
        self.dim = dim
        self.weight = Tensor(init.normal(rng, 0.02, (num_embeddings, dim)),
                             requires_grad=True)

    def forward(self, ids: np.ndarray) -> Tensor:
        ids = np.asarray(ids, dtype=np.intp)
        if ids.size and (ids.min() < 0 or ids.max() >= self.num_embeddings):
            raise IndexError(
                f"token id out of range [0, {self.num_embeddings}): "
                f"min={ids.min()}, max={ids.max()}"
            )
        return self.weight[ids]


class LayerNorm(Module):
    """Layer normalisation over the final feature axis."""

    def __init__(self, dim: int, eps: float = 1e-5):
        super().__init__()
        self.dim = dim
        self.eps = eps
        self.weight = Tensor(init.ones(dim), requires_grad=True)
        self.bias = Tensor(init.zeros(dim), requires_grad=True)

    def forward(self, x: Tensor) -> Tensor:
        return layer_norm(x, self.weight, self.bias, eps=self.eps)


class Dropout(Module):
    """Inverted dropout; active only in training mode."""

    def __init__(self, p: float, rng: np.random.Generator):
        super().__init__()
        self.p = p
        self._rng = rng

    def forward(self, x: Tensor) -> Tensor:
        return dropout_fn(x, self.p, self._rng, training=self.training)


class Sequential(Module):
    """Apply submodules in order."""

    def __init__(self, *layers: Module):
        super().__init__()
        self.layers = list(layers)

    def forward(self, x):
        for layer in self.layers:
            x = layer(x)
        return x

    def __iter__(self):
        return iter(self.layers)

    def __len__(self):
        return len(self.layers)


class MLP(Module):
    """A fully connected feed-forward network (the paper's FFN, Eq. 11).

    ``sizes`` lists the layer widths, e.g. ``[in, hidden, out]``.  The
    nonlinearity is applied between consecutive linear maps but not after
    the final one, matching Eq. 11's ``W_d o theta o ... o theta o W_0``.
    """

    def __init__(
        self,
        sizes: Sequence[int],
        rng: np.random.Generator,
        activation: str = "relu",
        bias: bool = True,
    ):
        super().__init__()
        if len(sizes) < 2:
            raise ValueError("MLP needs at least an input and an output size")
        self.sizes = list(sizes)
        self.activation_name = activation
        self._activation = get_activation(activation)
        self.linears = [
            Linear(a, b, rng, bias=bias) for a, b in zip(sizes[:-1], sizes[1:])
        ]

    def forward(self, x: Tensor) -> Tensor:
        for i, linear in enumerate(self.linears):
            x = linear(x)
            if i < len(self.linears) - 1:
                x = self._activation(x)
        return x
