"""Parameter initializers.

The paper (§6) notes that parameters are drawn from a normal distribution
"with mean zero and variance chosen so that the linear maps have expected
norm independent of the hyperparameters ... typically var(W_ij) ~ 1/p".
:func:`scaled_normal` implements exactly that; Xavier/He variants are
provided for the FFN/RNN models.

Every initializer draws in float64 — so seeded draws consume the RNG
stream identically under any policy — and casts the result to the active
:func:`repro.dtypes.default_dtype` (a no-op under the float64 default).
Parameters therefore carry the dtype of the policy active at model
construction time.
"""

from __future__ import annotations

import numpy as np

from ..dtypes import default_dtype


def scaled_normal(
    rng: np.random.Generator, shape: tuple[int, ...], fan_in: int | None = None
) -> np.ndarray:
    """N(0, 1/fan_in) initialisation (the paper's var(W_ij) ~ 1/p rule)."""
    if fan_in is None:
        fan_in = shape[0] if len(shape) >= 1 else 1
    std = 1.0 / np.sqrt(max(fan_in, 1))
    return np.asarray(rng.normal(0.0, std, size=shape), dtype=default_dtype())


def xavier_uniform(rng: np.random.Generator, shape: tuple[int, ...]) -> np.ndarray:
    """Glorot uniform initialisation for (fan_in, fan_out) matrices."""
    fan_in, fan_out = shape[0], shape[-1]
    bound = np.sqrt(6.0 / (fan_in + fan_out))
    return np.asarray(rng.uniform(-bound, bound, size=shape),
                      dtype=default_dtype())


def he_normal(rng: np.random.Generator, shape: tuple[int, ...]) -> np.ndarray:
    """He/Kaiming normal initialisation, suited to ReLU networks."""
    fan_in = shape[0]
    draw = rng.normal(0.0, np.sqrt(2.0 / max(fan_in, 1)), size=shape)
    return np.asarray(draw, dtype=default_dtype())


def normal(rng: np.random.Generator, std: float, shape: tuple[int, ...]) -> np.ndarray:
    """N(0, std^2) initialisation (embedding tables, GPT-style 0.02 std)."""
    return np.asarray(rng.normal(0.0, std, size=shape), dtype=default_dtype())


def zeros(shape: tuple[int, ...] | int) -> np.ndarray:
    """All-zero initialisation (biases, LayerNorm shifts)."""
    return np.zeros(shape, dtype=default_dtype())


def ones(shape: tuple[int, ...] | int) -> np.ndarray:
    """All-one initialisation (LayerNorm gains)."""
    return np.ones(shape, dtype=default_dtype())
