"""Neural-network building blocks: layers, initializers, optimizers, schedules."""

from . import init
from .layers import (
    MLP,
    Dropout,
    Embedding,
    LayerNorm,
    Linear,
    Sequential,
    get_activation,
)
from .module import Module
from .optim import SGD, Adam, AdamW, Optimizer, clip_grad_norm
from .schedule import Constant, Schedule, StepDecay, WarmupCosine, WarmupLinear

__all__ = [
    "Module",
    "Linear",
    "Embedding",
    "LayerNorm",
    "Dropout",
    "Sequential",
    "MLP",
    "get_activation",
    "init",
    "Optimizer",
    "SGD",
    "Adam",
    "AdamW",
    "clip_grad_norm",
    "Schedule",
    "Constant",
    "WarmupCosine",
    "WarmupLinear",
    "StepDecay",
]
