"""Module base class: parameter registration, state dicts, train/eval mode."""

from __future__ import annotations

from typing import Iterator

import numpy as np

from ..autograd import Tensor


class Module:
    """Base class for all neural-network components.

    Parameters are any :class:`Tensor` attributes with
    ``requires_grad=True``; submodules are any :class:`Module` attributes
    (including those inside plain lists/tuples).  Both are discovered by
    attribute scan, so subclasses just assign them in ``__init__``.
    """

    def __init__(self) -> None:
        self.training = True

    # ------------------------------------------------------------------
    # Parameter / submodule discovery
    # ------------------------------------------------------------------
    def named_parameters(self, prefix: str = "") -> Iterator[tuple[str, Tensor]]:
        """Yield ``(dotted_name, tensor)`` for every trainable parameter."""
        for name, value in vars(self).items():
            full = f"{prefix}{name}"
            if isinstance(value, Tensor) and value.requires_grad:
                yield full, value
            elif isinstance(value, Module):
                yield from value.named_parameters(prefix=f"{full}.")
            elif isinstance(value, (list, tuple)):
                for i, item in enumerate(value):
                    if isinstance(item, Module):
                        yield from item.named_parameters(prefix=f"{full}.{i}.")
                    elif isinstance(item, Tensor) and item.requires_grad:
                        yield f"{full}.{i}", item

    def parameters(self) -> list[Tensor]:
        """All trainable parameter tensors, in ``named_parameters`` order."""
        return [p for _, p in self.named_parameters()]

    def num_parameters(self) -> int:
        """Total learnable scalar count (the paper's P)."""
        return sum(p.size for p in self.parameters())

    def param_dtype(self) -> np.dtype:
        """The compute dtype of this module's parameters.

        Returns the first parameter's dtype (parameters share one dtype —
        they are all cast to the policy active at construction), or the
        current policy default for a parameterless module.  The KV-cache
        backends use this to size their pools to match the model.
        """
        for _, p in self.named_parameters():
            return p.data.dtype
        from ..dtypes import default_dtype
        return default_dtype()

    def modules(self) -> Iterator["Module"]:
        """Yield this module and every (transitively) nested submodule."""
        yield self
        for value in vars(self).values():
            if isinstance(value, Module):
                yield from value.modules()
            elif isinstance(value, (list, tuple)):
                for item in value:
                    if isinstance(item, Module):
                        yield from item.modules()

    def named_modules(self, prefix: str = "") -> Iterator[tuple[str, "Module"]]:
        """Yield ``(dotted_name, module)`` pairs, root first with name ``prefix``.

        Names follow the same convention as :meth:`named_parameters`
        (``blocks.0.attn``); the profiler in :mod:`repro.obs` keys its
        per-module accounting on them.
        """
        yield prefix, self
        for name, value in vars(self).items():
            full = f"{prefix}.{name}" if prefix else name
            if isinstance(value, Module):
                yield from value.named_modules(full)
            elif isinstance(value, (list, tuple)):
                for i, item in enumerate(value):
                    if isinstance(item, Module):
                        yield from item.named_modules(f"{full}.{i}")

    # ------------------------------------------------------------------
    # Training state
    # ------------------------------------------------------------------
    def zero_grad(self) -> None:
        """Reset gradients of all parameters before the next backward."""
        for p in self.parameters():
            p.zero_grad()

    def train(self) -> "Module":
        """Switch this module tree to training mode (dropout active)."""
        for m in self.modules():
            m.training = True
        return self

    def eval(self) -> "Module":
        """Switch this module tree to inference mode (dropout off)."""
        for m in self.modules():
            m.training = False
        return self

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def state_dict(self) -> dict[str, np.ndarray]:
        """Dotted-name -> parameter-array snapshot (copies, not views)."""
        return {name: p.data.copy() for name, p in self.named_parameters()}

    def load_state_dict(self, state: dict[str, np.ndarray],
                        strict: bool = True) -> None:
        """Copy ``state`` arrays into this module's parameters in place.

        Strict by default: any difference between the checkpoint's key
        set and this module's parameter names raises ``KeyError`` naming
        the sorted symmetric difference — silently dropping keys is how
        a resumed run ends up training a half-initialised model.  Pass
        ``strict=False`` to load only the intersection (useful for
        warm-starting a different architecture from a partial match);
        shape mismatches raise ``ValueError`` in either mode.

        Arrays are cast to each destination parameter's own dtype (the
        in-place copy cannot change it), so a float32 model stays float32
        no matter what precision the snapshot holds.  The checkpoint
        layer (:mod:`repro.train.checkpoint`) separately *refuses*
        mismatched dtypes on strict loads — by the time arrays get here
        they are either matching or deliberately cast.
        """
        own = dict(self.named_parameters())
        missing = set(own) - set(state)
        unexpected = set(state) - set(own)
        if strict and (missing or unexpected):
            raise KeyError(
                f"state dict mismatch: missing={sorted(missing)} "
                f"unexpected={sorted(unexpected)}"
            )
        for name, p in own.items():
            if name not in state:
                continue
            value = np.asarray(state[name], dtype=p.data.dtype)
            if value.shape != p.data.shape:
                raise ValueError(
                    f"shape mismatch for {name}: {value.shape} vs {p.data.shape}"
                )
            p.data[...] = value

    # Subclasses implement forward(); __call__ delegates.
    def forward(self, *args, **kwargs):
        """Compute the module's output; subclasses must override."""
        raise NotImplementedError

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)
