"""First-order optimizers implementing the paper's Eq. 16 and refinements.

Eq. 16 is plain SGD: ``theta <- theta - eta * dL/dtheta``.  Adam/AdamW are
the "many enhancements described in the literature" that every real LLM
training run uses; AdamW's decoupled weight decay is the ingredient the
grokking experiment (E6, §4) depends on.

Every optimizer carries a ``state_dict()`` / ``load_state_dict()`` pair
covering its internal buffers — SGD momentum velocities, Adam first/second
moments and the bias-correction step count — so a training run can be
checkpointed and resumed *bit-identically* (see
:mod:`repro.train.checkpoint`).  Restoring the moments matters: Adam's
update at step t depends on the full exponential-average history, so a
resume that reinitialised them to zero would diverge from the
uninterrupted trajectory on the very first step.
"""

from __future__ import annotations

import numpy as np

from ..autograd import Tensor


def clip_grad_norm(parameters: list[Tensor], max_norm: float) -> float:
    """Scale gradients in place so their global L2 norm is <= ``max_norm``.

    Returns the pre-clipping norm (useful for logging).
    """
    total = 0.0
    grads = [p.grad for p in parameters if p.grad is not None]
    for g in grads:
        total += float((g * g).sum())
    norm = float(np.sqrt(total))
    if norm > max_norm and norm > 0:
        scale = max_norm / norm
        for g in grads:
            g *= scale
    return norm


class Optimizer:
    """Base optimizer: holds parameters and a mutable learning rate."""

    def __init__(self, parameters: list[Tensor], lr: float):
        if not parameters:
            raise ValueError("optimizer received no parameters")
        self.parameters = list(parameters)
        self.lr = float(lr)

    def zero_grad(self) -> None:
        """Reset the gradient buffer of every managed parameter."""
        for p in self.parameters:
            p.zero_grad()

    def step(self) -> None:
        """Apply one update to every parameter with a gradient."""
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        """Full optimizer state: JSON-able scalars plus ndarray buffers.

        The returned dict always carries ``kind`` (the class name, used
        as a sanity check on load) and ``lr``; subclasses add their
        hyper-parameters and per-parameter buffer lists (aligned with
        ``self.parameters`` order).  Arrays are copies — mutating the
        snapshot never mutates live optimizer state.
        """
        return {"kind": type(self).__name__, "lr": self.lr}

    def load_state_dict(self, state: dict, strict: bool = True) -> None:
        """Restore state produced by :meth:`state_dict`.

        With ``strict=True`` (default) a ``kind`` mismatch raises
        ``ValueError`` — resuming an AdamW run with plain SGD would
        silently change the trajectory, which is exactly the failure
        checkpointing exists to prevent.
        """
        kind = state.get("kind")
        if strict and kind is not None and kind != type(self).__name__:
            raise ValueError(
                f"optimizer kind mismatch: checkpoint has {kind!r}, "
                f"loading into {type(self).__name__!r}"
            )
        self.lr = float(state["lr"])

    def _load_buffers(self, name: str, target: list[np.ndarray],
                      source: list[np.ndarray]) -> None:
        """Copy checkpointed buffer arrays into live ones, shape-checked."""
        if len(source) != len(target):
            raise ValueError(
                f"{name}: checkpoint has {len(source)} buffers, "
                f"optimizer has {len(target)} parameters"
            )
        for i, (dst, src) in enumerate(zip(target, source)):
            src = np.asarray(src)
            if src.shape != dst.shape:
                raise ValueError(
                    f"{name}[{i}]: shape mismatch {src.shape} vs {dst.shape}"
                )
            dst[...] = src


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum (Eq. 16)."""

    def __init__(
        self,
        parameters: list[Tensor],
        lr: float,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
    ):
        super().__init__(parameters, lr)
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity = [np.zeros_like(p.data) for p in self.parameters]

    def state_dict(self) -> dict:
        """Hyper-parameters plus one velocity buffer per parameter."""
        state = super().state_dict()
        state.update(
            momentum=self.momentum,
            weight_decay=self.weight_decay,
            velocity=[v.copy() for v in self._velocity],
        )
        return state

    def load_state_dict(self, state: dict, strict: bool = True) -> None:
        """Restore lr/momentum/weight_decay and the velocity buffers."""
        super().load_state_dict(state, strict=strict)
        self.momentum = float(state["momentum"])
        self.weight_decay = float(state["weight_decay"])
        self._load_buffers("velocity", self._velocity, state["velocity"])

    def step(self) -> None:
        """Eq. 16 update with optional momentum and (coupled) weight decay."""
        for p, v in zip(self.parameters, self._velocity):
            if p.grad is None:
                continue
            g = p.grad
            if self.weight_decay:
                g = g + self.weight_decay * p.data
            if self.momentum:
                v *= self.momentum
                v += g
                g = v
            p.data -= self.lr * g


class Adam(Optimizer):
    """Adam with the standard bias correction (L2 decay coupled into grad)."""

    def __init__(
        self,
        parameters: list[Tensor],
        lr: float = 1e-3,
        betas: tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ):
        super().__init__(parameters, lr)
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._step_count = 0
        self._m = [np.zeros_like(p.data) for p in self.parameters]
        self._v = [np.zeros_like(p.data) for p in self.parameters]

    def state_dict(self) -> dict:
        """Hyper-parameters, bias-correction step count, and both moments."""
        state = super().state_dict()
        state.update(
            betas=(self.beta1, self.beta2),
            eps=self.eps,
            weight_decay=self.weight_decay,
            step_count=self._step_count,
            m=[m.copy() for m in self._m],
            v=[v.copy() for v in self._v],
        )
        return state

    def load_state_dict(self, state: dict, strict: bool = True) -> None:
        """Restore hyper-parameters, step count, and moment buffers."""
        super().load_state_dict(state, strict=strict)
        self.beta1, self.beta2 = (float(b) for b in state["betas"])
        self.eps = float(state["eps"])
        self.weight_decay = float(state["weight_decay"])
        self._step_count = int(state["step_count"])
        self._load_buffers("m", self._m, state["m"])
        self._load_buffers("v", self._v, state["v"])

    def _update(self, decoupled: bool) -> None:
        self._step_count += 1
        t = self._step_count
        bc1 = 1.0 - self.beta1**t
        bc2 = 1.0 - self.beta2**t
        for p, m, v in zip(self.parameters, self._m, self._v):
            if p.grad is None:
                continue
            g = p.grad
            if self.weight_decay and not decoupled:
                g = g + self.weight_decay * p.data
            m *= self.beta1
            m += (1 - self.beta1) * g
            v *= self.beta2
            v += (1 - self.beta2) * g * g
            update = (m / bc1) / (np.sqrt(v / bc2) + self.eps)
            if self.weight_decay and decoupled:
                update = update + self.weight_decay * p.data
            p.data -= self.lr * update

    def step(self) -> None:
        """Adam update with L2 decay coupled into the gradient."""
        self._update(decoupled=False)


class AdamW(Adam):
    """Adam with decoupled weight decay (Loshchilov & Hutter)."""

    def step(self) -> None:
        """Adam update with weight decay applied directly to parameters."""
        self._update(decoupled=True)
