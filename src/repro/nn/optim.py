"""First-order optimizers implementing the paper's Eq. 16 and refinements.

Eq. 16 is plain SGD: ``theta <- theta - eta * dL/dtheta``.  Adam/AdamW are
the "many enhancements described in the literature" that every real LLM
training run uses; AdamW's decoupled weight decay is the ingredient the
grokking experiment (E6) depends on.
"""

from __future__ import annotations

import numpy as np

from ..autograd import Tensor


def clip_grad_norm(parameters: list[Tensor], max_norm: float) -> float:
    """Scale gradients in place so their global L2 norm is <= ``max_norm``.

    Returns the pre-clipping norm (useful for logging).
    """
    total = 0.0
    grads = [p.grad for p in parameters if p.grad is not None]
    for g in grads:
        total += float((g * g).sum())
    norm = float(np.sqrt(total))
    if norm > max_norm and norm > 0:
        scale = max_norm / norm
        for g in grads:
            g *= scale
    return norm


class Optimizer:
    """Base optimizer: holds parameters and a mutable learning rate."""

    def __init__(self, parameters: list[Tensor], lr: float):
        if not parameters:
            raise ValueError("optimizer received no parameters")
        self.parameters = list(parameters)
        self.lr = float(lr)

    def zero_grad(self) -> None:
        for p in self.parameters:
            p.zero_grad()

    def step(self) -> None:
        raise NotImplementedError


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum (Eq. 16)."""

    def __init__(
        self,
        parameters: list[Tensor],
        lr: float,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
    ):
        super().__init__(parameters, lr)
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        for p, v in zip(self.parameters, self._velocity):
            if p.grad is None:
                continue
            g = p.grad
            if self.weight_decay:
                g = g + self.weight_decay * p.data
            if self.momentum:
                v *= self.momentum
                v += g
                g = v
            p.data -= self.lr * g


class Adam(Optimizer):
    """Adam with the standard bias correction (L2 decay coupled into grad)."""

    def __init__(
        self,
        parameters: list[Tensor],
        lr: float = 1e-3,
        betas: tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ):
        super().__init__(parameters, lr)
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._step_count = 0
        self._m = [np.zeros_like(p.data) for p in self.parameters]
        self._v = [np.zeros_like(p.data) for p in self.parameters]

    def _update(self, decoupled: bool) -> None:
        self._step_count += 1
        t = self._step_count
        bc1 = 1.0 - self.beta1**t
        bc2 = 1.0 - self.beta2**t
        for p, m, v in zip(self.parameters, self._m, self._v):
            if p.grad is None:
                continue
            g = p.grad
            if self.weight_decay and not decoupled:
                g = g + self.weight_decay * p.data
            m *= self.beta1
            m += (1 - self.beta1) * g
            v *= self.beta2
            v += (1 - self.beta2) * g * g
            update = (m / bc1) / (np.sqrt(v / bc2) + self.eps)
            if self.weight_decay and decoupled:
                update = update + self.weight_decay * p.data
            p.data -= self.lr * update

    def step(self) -> None:
        self._update(decoupled=False)


class AdamW(Adam):
    """Adam with decoupled weight decay (Loshchilov & Hutter)."""

    def step(self) -> None:
        self._update(decoupled=True)
