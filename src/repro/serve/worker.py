"""Single-consumer decode loop: the thread that owns the engine.

:class:`~repro.infer.GenerationEngine` is single-threaded by design —
its RNG stream, KV cache, and slot bookkeeping all assume one caller.
:class:`EngineWorker` preserves that invariant under concurrent clients
by making the engine single-*consumer*: exactly one background thread
calls ``step()``, and every other entry point (``submit``, ``cancel``,
``stats``) takes the same lock before touching the engine.  Because the
decode thread holds the lock only per step, submitters interleave
between steps; because nothing else ever steps, the RNG consumption
order — and therefore bit-identical decoding — is exactly what a
single-threaded caller would produce.

The flow per request:

1. ``submit()`` (any thread) — admission check against the
   :class:`~repro.serve.admission.AdmissionPolicy`, then
   ``engine.submit()`` under the lock, returning a
   :class:`RequestHandle` the caller can stream from or block on.
2. the decode loop — ``step()`` under the lock; sampled tokens are
   pushed to each request's handle via the engine's ``on_token`` hook,
   finished results are routed by id.
3. timeouts — before each step the loop cancels requests past their
   deadline (queued or active), reclaiming the slot; the handle
   finishes with ``timed_out=True``.

Everything observable goes through :mod:`repro.obs`: ``serve.*``
counters/gauges and ``request_shed`` / ``request_timeout`` events on
top of the engine's own lifecycle telemetry.
"""

from __future__ import annotations

import queue
import threading
import time

from ..infer.engine import GenerationResult
from ..obs import NULL_OBS, Observability, SLOMonitor
from ..train.faults import failpoint
from .admission import AdmissionPolicy, RejectError, ShedError

_DONE = object()


class RequestHandle:
    """Caller-side view of one accepted request.

    Tokens stream into an internal queue as the decode loop samples
    them; :meth:`tokens` yields them live, :meth:`wait` blocks for the
    final :class:`~repro.infer.GenerationResult`.  ``timed_out`` is set
    when the worker cancelled the request at its deadline.
    """

    def __init__(self, request_id: int, prompt_len: int,
                 deadline: float | None):
        self.request_id = request_id
        self.prompt_len = prompt_len
        self.deadline = deadline          # time.monotonic() seconds, or None
        self.params = None                # resolved SamplingParams (worker)
        self.timed_out = False
        self.result: GenerationResult | None = None
        self._stream: queue.Queue = queue.Queue()
        self._done = threading.Event()

    # -- worker side ---------------------------------------------------
    def _push(self, token: int) -> None:
        self._stream.put(token)

    def _finish(self, result: GenerationResult) -> None:
        self.result = result
        self._stream.put(_DONE)
        self._done.set()

    # -- client side ---------------------------------------------------
    def tokens(self):
        """Yield sampled tokens as they land; returns when the request
        finishes (stop token included, matching ``generate_fast``)."""
        while True:
            item = self._stream.get()
            if item is _DONE:
                return
            yield item

    def wait(self, timeout: float | None = None) -> GenerationResult:
        """Block until the request finishes; returns its result."""
        if not self._done.wait(timeout):
            raise TimeoutError(
                f"request {self.request_id} still running after {timeout}s")
        return self.result

    @property
    def done(self) -> bool:
        return self._done.is_set()


class EngineWorker:
    """Lock-guarded serving façade over a :class:`GenerationEngine`.

    The worker takes ownership of the engine: it installs itself as the
    ``on_token`` hook and is the only caller of ``step()``/``drain()``.
    Construct, :meth:`start`, submit from any number of threads, and
    :meth:`close` when done (pending requests are cancelled).
    """

    def __init__(self, engine, policy: AdmissionPolicy | None = None,
                 obs: Observability | None = None,
                 idle_wait_s: float = 0.02,
                 slo: SLOMonitor | None = None,
                 flight=None):
        self.engine = engine
        self.policy = policy if policy is not None else AdmissionPolicy()
        engine.on_token = self._on_token
        self._idle_wait_s = idle_wait_s
        self._lock = threading.Lock()
        self._wake = threading.Condition(self._lock)
        self._handles: dict[int, RequestHandle] = {}
        self._closed = False
        self.crashed = False
        self._thread = threading.Thread(
            target=self._loop, name="repro-serve-decode", daemon=True)
        bundle = obs if obs is not None else NULL_OBS
        self._events = bundle.events
        self._metrics = bundle.metrics
        # The SLO monitor is always real (it is deterministic and RNG-
        # free), so /healthz gives a three-state verdict even without an
        # Observability bundle; breach events go wherever events go.
        self.slo = slo if slo is not None \
            else SLOMonitor(events=bundle.events)
        # Optional FlightRecorder: dumped when the decode loop crashes.
        self.flight = flight
        metrics = bundle.metrics
        self._c_accepted = metrics.counter("serve.accepted")
        self._c_shed = metrics.counter("serve.shed")
        self._c_rejected = metrics.counter("serve.rejected")
        self._c_timeouts = metrics.counter("serve.timeouts")
        self._c_completed = metrics.counter("serve.completed")
        self._g_inflight = metrics.gauge("serve.inflight")
        # Plain-int mirrors of the counters so stats() works with NULL_OBS.
        self._n_accepted = 0
        self._n_shed = 0
        self._n_rejected = 0
        self._n_timeouts = 0
        self._n_completed = 0

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "EngineWorker":
        """Start the decode-loop thread (idempotent via Thread rules)."""
        self._thread.start()
        return self

    def close(self) -> None:
        """Stop the loop; cancel and finish every pending request."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            for request_id in list(self._handles):
                self.engine.cancel(request_id)
            self._dispatch_locked()
            self._wake.notify_all()
        self._thread.join(timeout=10.0)

    def __enter__(self) -> "EngineWorker":
        return self.start()

    def __exit__(self, exc_type, exc, tb):
        self.close()
        return False

    # ------------------------------------------------------------------
    # Submit path (any thread)
    # ------------------------------------------------------------------
    def submit(self, prompt, max_new_tokens: int,
               stop_token=..., trace_ctx=None,
               params=None) -> RequestHandle:
        """Admission-checked submit; returns a :class:`RequestHandle`.

        Raises :class:`~repro.serve.admission.ShedError` at the queue
        cap and :class:`~repro.serve.admission.RejectError` for invalid
        or over-budget requests.  ``trace_ctx`` (the request's
        :class:`~repro.obs.TraceContext`, minted by the HTTP layer) is
        forwarded to the engine so decode-thread spans land under it;
        ``params`` (a :class:`~repro.infer.SamplingParams`) overrides
        the engine-wide sampling defaults for this request.
        """
        with self._lock:
            if self._closed:
                raise RejectError("server is shutting down", status=503)
            free_slots = self.engine.batch_size - self.engine.num_active
            try:
                self.policy.check(self.engine.num_queued, free_slots,
                                  max_new_tokens)
            except RejectError:
                self._c_rejected.inc()
                self._n_rejected += 1
                raise
            except ShedError:
                self._c_shed.inc()
                self._n_shed += 1
                self._events.emit("request_shed",
                                  queue_depth=self.engine.num_queued,
                                  max_new_tokens=max_new_tokens)
                self.slo.observe_request(shed=True)
                raise
            try:
                request_id = self.engine.submit(prompt, max_new_tokens,
                                                stop_token,
                                                trace_ctx=trace_ctx,
                                                params=params)
            except ValueError as exc:
                self._c_rejected.inc()
                self._n_rejected += 1
                # PromptLimitError carries a structured ``limits`` dict
                # and SamplingParamsError a ``params`` dict; forwarding
                # them (under the matching body key) keeps the 400 body
                # identical on the blocking and streaming paths (both
                # land here).
                sp = getattr(exc, "params", None)
                if sp is not None:
                    raise RejectError(str(exc), payload=sp,
                                      payload_key="params") from exc
                raise RejectError(
                    str(exc),
                    payload=getattr(exc, "limits", None)) from exc
            self.slo.observe_queue_depth(self.engine.num_queued)
            deadline = None
            if self.policy.request_timeout_s is not None:
                deadline = time.monotonic() + self.policy.request_timeout_s
            handle = RequestHandle(request_id, len(list(prompt)), deadline)
            handle.params = self.engine.resolve_params(params, stop_token)
            self._handles[request_id] = handle
            self._c_accepted.inc()
            self._n_accepted += 1
            self._g_inflight.set(len(self._handles))
            # max_new_tokens == 0 completes inline inside engine.submit();
            # route it immediately so wait() never blocks on the loop.
            self._dispatch_locked()
            self._wake.notify()
        return handle

    def cancel(self, request_id: int) -> bool:
        """Cancel one request by id; True if it was still in flight."""
        with self._lock:
            cancelled = self.engine.cancel(request_id) is not None
            if cancelled:
                self._dispatch_locked()
            return cancelled

    # ------------------------------------------------------------------
    # Decode loop (worker thread only)
    # ------------------------------------------------------------------
    def _loop(self) -> None:
        try:
            while True:
                with self._lock:
                    if self._closed:
                        return
                    if not self.engine.has_work:
                        # Bounded wait: also wakes to re-check deadlines of
                        # nothing (no work => no deadlines) and closure.
                        self._wake.wait(timeout=self._idle_wait_s)
                        if self._closed:
                            return
                    if self.engine.has_work:
                        self._expire_locked(time.monotonic())
                        # Named failpoint: tests (and chaos drills) inject
                        # a crash here to prove the flight-recorder path.
                        failpoint("serve.step")
                        self.engine.step()
                        self._dispatch_locked()
        except BaseException as exc:  # decode loop must never die silently
            self._crash(exc)

    def _crash(self, exc: BaseException) -> None:
        """Decode-loop crash path: finish handles, dump the blackbox.

        Cancels every in-flight request (their handles finish with
        ``finish_reason="cancelled"`` so blocked clients unblock instead
        of hanging forever), emits a ``server_crash`` event, and — when a
        :class:`~repro.obs.FlightRecorder` is attached — dumps
        ``flightrecord.json`` with the last N events/spans, the injected
        or real exception included.
        """
        with self._lock:
            self.crashed = True
            self._closed = True
            self._events.emit("server_crash", error=repr(exc))
            try:
                for request_id in list(self._handles):
                    self.engine.cancel(request_id)
                self._dispatch_locked()
            except BaseException:
                # The engine may be arbitrarily broken mid-step; handles
                # that could not be finished are abandoned, the dump
                # below is what matters now.
                pass
        if self.flight is not None:
            self.flight.record_crash(exc, dump=True)

    def _on_token(self, request_id: int, token: int) -> None:
        # Called by the engine inside step(); the worker already holds
        # the lock, so plain dict access is safe.
        handle = self._handles.get(request_id)
        if handle is not None:
            handle._push(token)

    def _expire_locked(self, now: float) -> None:
        expired = [h for h in self._handles.values()
                   if h.deadline is not None and now >= h.deadline]
        for handle in expired:
            handle.timed_out = True
            self.engine.cancel(handle.request_id)
            self._c_timeouts.inc()
            self._n_timeouts += 1
            self._events.emit("request_timeout",
                              request_id=handle.request_id,
                              timeout_s=self.policy.request_timeout_s)
        if expired:
            self._dispatch_locked()

    def _dispatch_locked(self) -> None:
        dispatched = False
        for result in self.engine.drain():
            handle = self._handles.pop(result.request_id, None)
            if handle is not None:
                handle._finish(result)
                self._c_completed.inc()
                self._n_completed += 1
                dispatched = True
                if result.finish_reason == "cancelled":
                    self.slo.observe_request(error=True)
                else:
                    ttft = (result.timing.ttft_s
                            if result.timing is not None else None)
                    self.slo.observe_request(ttft_s=ttft)
        self._g_inflight.set(len(self._handles))
        if dispatched:
            self.slo.observe_queue_depth(self.engine.num_queued)

    # ------------------------------------------------------------------
    # Observation (any thread)
    # ------------------------------------------------------------------
    def stats(self) -> dict:
        """JSON-ready snapshot: engine state, server accounting, SLO, metrics.

        Top-level keys: the engine's own ``stats()`` fields (batch size,
        occupancy, queue depth, ...), plus ``server`` (accepted / shed /
        rejected / timeouts / completed / inflight / crashed + the
        admission policy), ``slo`` (the monitor's current
        :meth:`~repro.obs.SLOMonitor.evaluate` verdict), and ``metrics``
        (the full metrics-registry snapshot; ``{}`` without an
        Observability bundle).
        """
        with self._lock:
            snapshot = self.engine.stats()
            snapshot["server"] = {
                "accepted": self._n_accepted,
                "shed": self._n_shed,
                "rejected": self._n_rejected,
                "timeouts": self._n_timeouts,
                "completed": self._n_completed,
                "inflight": len(self._handles),
                "crashed": self.crashed,
                "policy": self.policy.to_dict(),
            }
        # Outside the worker lock: the SLO monitor and registry have
        # their own synchronization and never touch the engine.
        snapshot["slo"] = self.slo.evaluate()
        snapshot["metrics"] = self._metrics.snapshot()
        return snapshot

    def health(self) -> dict:
        """Three-state health verdict for ``GET /healthz``.

        The SLO monitor's ``ok|degraded|failing`` evaluation, forced to
        ``failing`` once the decode loop has crashed (a crashed server
        may still answer HTTP but can no longer decode).
        """
        verdict = self.slo.evaluate()
        if self.crashed:
            verdict["status"] = "failing"
            verdict["crashed"] = True
        return verdict
