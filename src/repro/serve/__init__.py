"""Serving layer: HTTP/streaming API + admission control over the engine.

``repro.infer`` gives the repo a continuous-batching
:class:`~repro.infer.GenerationEngine`; this package is what finally
puts it behind traffic — the ROADMAP's "millions of users" story — with
nothing beyond the standard library:

- :mod:`repro.serve.admission` — :class:`AdmissionPolicy` (queue-depth
  cap → HTTP 429 shedding, per-request token budgets, wall-clock
  timeouts) and the :class:`ShedError`/:class:`RejectError` it raises.
- :mod:`repro.serve.worker` — :class:`EngineWorker`, the single decode
  -loop thread that owns the engine, plus the lock-guarded submit path
  that makes concurrent clients safe without perturbing the engine's
  bit-identical RNG stream; per-request :class:`RequestHandle` for
  streaming tokens or blocking on the result.
- :mod:`repro.serve.server` — :class:`InferenceServer`, a threaded
  stdlib HTTP front end: ``POST /v1/submit`` (blocking or chunked
  NDJSON token streaming, with W3C ``traceparent`` propagation into
  per-request queue/prefill/decode spans), ``GET /v1/stats``,
  ``GET /healthz`` (three-state SLO verdict), ``GET /metrics``
  (Prometheus text exposition), and ``GET /v1/trace?id=...`` (one
  request's Chrome-trace slice).
- :mod:`repro.serve.client` — :class:`ServeClient`, the matching
  ``http.client`` consumer used by the load bench and tests.

The observability side — :class:`~repro.obs.SLOMonitor` behind
``/healthz``, the optional :class:`~repro.obs.FlightRecorder` crash
blackbox, trace-context plumbing — is documented in
``docs/ARCHITECTURE.md`` ("The observability plane").

Quick start::

    from repro.infer import GenerationEngine
    from repro.serve import AdmissionPolicy, InferenceServer, ServeClient

    engine = GenerationEngine(model, batch_size=8, greedy=True)
    policy = AdmissionPolicy(max_queue_depth=32, request_timeout_s=30.0)
    with InferenceServer(engine, policy=policy) as server:
        client = ServeClient(server.host, server.port)
        print(client.submit([1, 2, 3], max_new_tokens=16)["completion"])
"""

from .admission import AdmissionPolicy, RejectError, ServeError, ShedError
from .client import ServeClient, ServeClientError
from .server import InferenceServer, result_to_json
from .worker import EngineWorker, RequestHandle

__all__ = [
    "AdmissionPolicy",
    "ServeError",
    "ShedError",
    "RejectError",
    "EngineWorker",
    "RequestHandle",
    "InferenceServer",
    "result_to_json",
    "ServeClient",
    "ServeClientError",
]
