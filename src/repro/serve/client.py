"""Minimal stdlib HTTP client for :class:`~repro.serve.InferenceServer`.

``http.client`` only — the same zero-dependency rule as the server.
Used by the load bench and the test suite, and small enough to read as
wire-format documentation: one connection per call, JSON bodies, and
line-by-line reads of the ``application/x-ndjson`` streaming responses
(``http.client`` un-chunks transparently).

:class:`ServeClientError` carries the HTTP status and decoded body for
every non-2xx response, so callers can branch on ``status == 429``
(shed) vs ``504`` (timed out) vs ``400`` (rejected).
"""

from __future__ import annotations

import http.client
import json


class ServeClientError(Exception):
    """Non-2xx response; carries ``status`` and the decoded JSON body."""

    def __init__(self, status: int, body: dict, headers: dict):
        detail = body.get("detail", body.get("error", ""))
        super().__init__(f"HTTP {status}: {detail}")
        self.status = status
        self.body = body
        self.headers = headers


class ServeClient:
    """Blocking client for the serving API (submit / stream / stats)."""

    def __init__(self, host: str, port: int, timeout: float = 120.0):
        self.host = host
        self.port = port
        self.timeout = timeout

    # ------------------------------------------------------------------
    # Plumbing
    # ------------------------------------------------------------------
    def _connect(self) -> http.client.HTTPConnection:
        return http.client.HTTPConnection(self.host, self.port,
                                          timeout=self.timeout)

    def _request(self, method: str, path: str,
                 body: dict | None = None) -> dict:
        conn = self._connect()
        try:
            payload = None if body is None else json.dumps(body).encode()
            headers = {} if payload is None else \
                {"Content-Type": "application/json"}
            conn.request(method, path, body=payload, headers=headers)
            response = conn.getresponse()
            decoded = json.loads(response.read().decode() or "{}")
            if response.status >= 300:
                raise ServeClientError(response.status, decoded,
                                       dict(response.getheaders()))
            return decoded
        finally:
            conn.close()

    @staticmethod
    def _submit_body(prompt, max_new_tokens: int, stop_token,
                     stream: bool, sampling=None) -> dict:
        body = {"prompt": [int(t) for t in prompt],
                "max_new_tokens": int(max_new_tokens)}
        if stop_token is not ...:
            body["stop_token"] = stop_token
        if stream:
            body["stream"] = True
        if sampling is not None:
            # Accept either a plain dict or a SamplingParams-like object.
            body["sampling"] = (sampling.to_dict()
                                if hasattr(sampling, "to_dict")
                                else dict(sampling))
        return body

    # ------------------------------------------------------------------
    # API
    # ------------------------------------------------------------------
    def healthz(self) -> dict:
        """``GET /healthz`` — the three-state SLO verdict.

        Raises :class:`ServeClientError` with ``status == 503`` when the
        server reports ``failing``; the decoded verdict is still on the
        exception's ``body``.
        """
        return self._request("GET", "/healthz")

    def metrics(self) -> str:
        """``GET /metrics`` — raw Prometheus text exposition."""
        conn = self._connect()
        try:
            conn.request("GET", "/metrics")
            response = conn.getresponse()
            text = response.read().decode()
            if response.status >= 300:
                raise ServeClientError(response.status, {},
                                       dict(response.getheaders()))
            return text
        finally:
            conn.close()

    def trace(self, trace_id: str) -> dict:
        """``GET /v1/trace?id=...`` — one request's Chrome-trace slice."""
        return self._request("GET", f"/v1/trace?id={trace_id}")

    def stats(self) -> dict:
        """``GET /v1/stats``."""
        return self._request("GET", "/v1/stats")

    def submit(self, prompt, max_new_tokens: int, stop_token=...,
               sampling=None) -> dict:
        """Blocking ``POST /v1/submit``; returns the finished result.

        ``sampling`` (a dict or :class:`~repro.infer.SamplingParams`)
        becomes the request's ``"sampling"`` object; the resolved params
        are echoed back in the result.  Raises :class:`ServeClientError`
        on shed (429), rejection (4xx), or timeout (504 — the body still
        carries the partial result).
        """
        return self._request(
            "POST", "/v1/submit",
            self._submit_body(prompt, max_new_tokens, stop_token, False,
                              sampling))

    def stream(self, prompt, max_new_tokens: int, stop_token=...,
               sampling=None):
        """Streaming ``POST /v1/submit``: yields one decoded record per
        NDJSON line — ``{"request_id", "sampling"?}``, then ``{"token"}``
        per sampled token, then the final ``{"done": true, ...}`` result
        record."""
        conn = self._connect()
        try:
            body = self._submit_body(prompt, max_new_tokens, stop_token, True,
                                     sampling)
            conn.request("POST", "/v1/submit", body=json.dumps(body).encode(),
                         headers={"Content-Type": "application/json"})
            response = conn.getresponse()
            if response.status != 200:
                decoded = json.loads(response.read().decode() or "{}")
                raise ServeClientError(response.status, decoded,
                                       dict(response.getheaders()))
            while True:
                line = response.readline()
                if not line:
                    return
                yield json.loads(line.decode())
        finally:
            conn.close()
