"""Admission control: decide at the door, shed instead of stalling.

A serving system that accepts every request degrades for everyone at
once — queues grow without bound, tail latency explodes, and clients
time out holding slots.  The production answer (and the one the
inference-serving literature in PAPERS.md prescribes) is to bound the
work the system will hold and refuse the rest *fast*:

- **queue-depth cap** — at most ``max_queue_depth`` requests may wait
  for a cache slot; beyond that new arrivals are shed with HTTP 429 and
  a ``Retry-After`` hint rather than queued into a latency cliff.
- **per-request token budget** — ``max_tokens_per_request`` bounds how
  much decode work one request can claim; over-budget asks are rejected
  with HTTP 400 (a client error, not load).
- **wall-clock timeout** — ``request_timeout_s`` bounds how long an
  accepted request may live (queued *or* decoding) before the worker
  cancels it and reclaims its slot.

The policy itself is a pure value object: :meth:`AdmissionPolicy.check`
raises :class:`ShedError`/:class:`RejectError`, and the worker/HTTP
layers translate those into status codes.
"""

from __future__ import annotations

from dataclasses import dataclass


class ServeError(Exception):
    """Base class for admission failures; carries the HTTP status."""

    status = 500
    #: Optional structured payload merged into the error body (e.g. the
    #: ``limits`` dict of a :class:`~repro.infer.PromptLimitError` or the
    #: ``params`` dict of a
    #: :class:`~repro.infer.SamplingParamsError`), so clients can
    #: machine-read *which* bound was exceeded instead of parsing the
    #: detail string.  ``payload_key`` names the body field it lands
    #: under.
    payload: dict | None = None
    payload_key: str = "limits"

    def to_json(self) -> dict:
        """JSON error body for the HTTP layer."""
        body = {"error": type(self).__name__, "detail": str(self)}
        if self.payload:
            body[self.payload_key] = dict(self.payload)
        return body


class ShedError(ServeError):
    """Load shed (HTTP 429): the wait queue is at its depth cap.

    Shedding is a *load* signal, not a client error — the request was
    well-formed, the server just refuses to queue it into a latency
    cliff.  ``retry_after_s`` becomes the ``Retry-After`` header.
    """

    status = 429

    def __init__(self, message: str, retry_after_s: float = 1.0):
        super().__init__(message)
        self.retry_after_s = retry_after_s


class RejectError(ServeError):
    """Invalid or over-budget request (HTTP 4xx, default 400)."""

    def __init__(self, message: str, status: int = 400,
                 payload: dict | None = None,
                 payload_key: str = "limits"):
        super().__init__(message)
        self.status = status
        self.payload = payload
        self.payload_key = payload_key


@dataclass(frozen=True)
class AdmissionPolicy:
    """Serving knobs checked on every submit, before the engine is touched.

    Parameters
    ----------
    max_queue_depth:
        Maximum requests allowed to *wait* for a slot.  A request that
        will be admitted straight into a free slot never counts against
        the cap, so ``0`` means "serve while slots are free, shed the
        moment anyone would have to wait".
    max_tokens_per_request:
        Per-request decode budget; ``None`` leaves the model window as
        the only bound.  Over-budget requests are rejected with 400.
    request_timeout_s:
        Wall-clock lifetime of an accepted request (queue wait included).
        Expired requests are cancelled by the decode loop and their slot
        reclaimed; ``None`` disables timeouts.
    retry_after_s:
        Backoff hint attached to shed responses.
    """

    max_queue_depth: int = 64
    max_tokens_per_request: int | None = None
    request_timeout_s: float | None = None
    retry_after_s: float = 1.0

    def __post_init__(self):
        if self.max_queue_depth < 0:
            raise ValueError("max_queue_depth must be >= 0")
        if (self.max_tokens_per_request is not None
                and self.max_tokens_per_request < 0):
            raise ValueError("max_tokens_per_request must be >= 0")
        if self.request_timeout_s is not None and self.request_timeout_s <= 0:
            raise ValueError("request_timeout_s must be > 0")

    def check(self, queue_depth: int, free_slots: int,
              max_new_tokens: int) -> None:
        """Raise :class:`ShedError`/:class:`RejectError` if the request
        may not be admitted.

        ``queue_depth - free_slots`` is the number of queued requests
        that will actually wait once the engine next admits; only those
        count against ``max_queue_depth``.
        """
        if (self.max_tokens_per_request is not None
                and max_new_tokens > self.max_tokens_per_request):
            raise RejectError(
                f"max_new_tokens={max_new_tokens} exceeds the per-request "
                f"budget of {self.max_tokens_per_request}")
        waiting = max(queue_depth - max(free_slots, 0), 0)
        if waiting >= self.max_queue_depth and free_slots <= queue_depth:
            raise ShedError(
                f"{waiting} requests waiting at cap {self.max_queue_depth} "
                f"({free_slots} free slots)",
                retry_after_s=self.retry_after_s)

    def to_dict(self) -> dict:
        """JSON-ready view of the knobs (surfaced in ``/v1/stats``)."""
        return {
            "max_queue_depth": self.max_queue_depth,
            "max_tokens_per_request": self.max_tokens_per_request,
            "request_timeout_s": self.request_timeout_s,
            "retry_after_s": self.retry_after_s,
        }
