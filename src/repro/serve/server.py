"""Zero-dependency HTTP/streaming front end for the generation engine.

Threading model: a :class:`http.server.ThreadingHTTPServer` spawns one
handler thread per connection; every handler funnels into the shared
:class:`~repro.serve.worker.EngineWorker`, whose lock-guarded submit
path and single decode-loop thread keep the engine — and its RNG
stream — exactly as a single-threaded caller would drive it.  The HTTP
threads only ever block on their own request's
:class:`~repro.serve.worker.RequestHandle`, never on the engine.

Endpoints:

- ``POST /v1/submit`` — body ``{"prompt": [ids...], "max_new_tokens": N,
  "stop_token": id?, "stream": bool?, "sampling": {...}?}``.  The
  optional ``"sampling"`` object carries per-request
  :class:`~repro.infer.SamplingParams` fields (temperature / top_k /
  top_p / greedy / stop_token / seed); the resolved params are echoed
  back as ``"sampling"`` in the response (and in the first streaming
  record).  Non-streaming requests block and return the finished result
  with timing; ``"stream": true`` responds ``application/x-ndjson``
  over chunked transfer encoding, one ``{"token": id}`` line per
  sampled token as it lands, then a final ``{"done": true, ...}``
  record.
- ``GET /v1/stats`` — engine + server accounting snapshot plus the
  metrics-registry snapshot and the SLO verdict.
- ``GET /v1/trace?id=<trace_id>`` — one request's spans as a
  self-contained Chrome trace JSON slice.
- ``GET /metrics`` — the metrics registry in Prometheus text
  exposition format, scrapeable while the server runs.
- ``GET /healthz`` — three-state SLO-driven health:
  ``ok|degraded|failing`` (failing responds 503 so load balancers can
  act on it).

**Request tracing**: every ``POST /v1/submit`` gets a
:class:`~repro.obs.TraceContext` — continuing the trace of an incoming
W3C ``traceparent`` header when present, freshly minted otherwise.
The handler thread opens the request's root span; the context rides
into the decode-loop thread so the engine's queue-wait / prefill /
per-step decode spans land under the same trace; and the trace id is
echoed back in ``traceparent`` / ``X-Trace-Id`` response headers, ready
to paste into ``GET /v1/trace?id=...``.

Admission control maps onto status codes: 429 + ``Retry-After`` when
the queue-depth cap sheds the request, 400 for invalid/over-budget
bodies, 504 when the request's wall-clock timeout cancelled it (the
partial result is included), 503 once shutdown has begun.  Requests
that can never fit the KV budget (``prompt + max_new_tokens`` over the
window, or over the page pool) get a 400 whose body carries a
``limits`` dict — identical on the blocking and streaming paths, both
of which funnel through the same submit validation.  Invalid
``"sampling"`` objects get the same treatment: a 400 whose body
carries a ``params`` dict naming the offending field, value, and
constraint.
"""

from __future__ import annotations

import json
import threading
import urllib.parse
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from ..obs import NULL_OBS, Observability, TraceContext
from ..obs.exposition import CONTENT_TYPE as _PROM_CONTENT_TYPE
from ..obs.exposition import to_prometheus
from ..infer.sampling_params import SamplingParams, SamplingParamsError
from .admission import AdmissionPolicy, ServeError
from .worker import EngineWorker, RequestHandle


def result_to_json(result) -> dict:
    """JSON-ready dict for one :class:`~repro.infer.GenerationResult`."""
    body = {
        "request_id": result.request_id,
        "tokens": list(result.tokens),
        "completion": list(result.completion),
        "prompt_len": result.prompt_len,
        "finish_reason": result.finish_reason,
        "steps": result.steps,
    }
    if result.params is not None:
        body["sampling"] = result.params.to_dict()
    timing = result.timing
    if timing is not None:
        body["timing"] = {
            "queue_wait_s": timing.queue_wait_s,
            "ttft_s": timing.ttft_s,
            "prefill_s": timing.prefill_s,
            "decode_s": timing.decode_s,
            "tokens_per_sec": timing.tokens_per_sec,
            "new_tokens": timing.new_tokens,
        }
    return body


class _ServeHTTPServer(ThreadingHTTPServer):
    """ThreadingHTTPServer that carries the shared worker + telemetry."""

    daemon_threads = True
    allow_reuse_address = True

    def __init__(self, address, handler, worker: EngineWorker,
                 bundle: Observability) -> None:
        super().__init__(address, handler)
        self.worker = worker
        self.bundle = bundle
        self.events = bundle.events


class _Handler(BaseHTTPRequestHandler):
    """Request handler: routes the three endpoints onto the worker."""

    protocol_version = "HTTP/1.1"
    server: _ServeHTTPServer  # narrowed for attribute access below
    trace_ctx: TraceContext | None = None  # set per request in do_POST

    # -- plumbing ------------------------------------------------------
    def log_message(self, fmt, *args):  # noqa: D102 - stdlib override
        self.server.events.emit("http_log", line=fmt % args)

    def _trace_headers(self) -> dict:
        if self.trace_ctx is None:
            return {}
        return {"traceparent": self.trace_ctx.to_traceparent(),
                "X-Trace-Id": self.trace_ctx.trace_id}

    def _send_json(self, status: int, body: dict,
                   headers: dict | None = None) -> None:
        payload = json.dumps(body).encode()
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(payload)))
        merged = {**self._trace_headers(), **(headers or {})}
        for name, value in merged.items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(payload)

    def _send_text(self, status: int, text: str, content_type: str) -> None:
        payload = text.encode()
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(payload)))
        self.end_headers()
        self.wfile.write(payload)

    def _read_json(self) -> dict:
        length = int(self.headers.get("Content-Length", 0))
        raw = self.rfile.read(length) if length else b""
        body = json.loads(raw.decode() or "{}")
        if not isinstance(body, dict):
            raise ValueError("request body must be a JSON object")
        return body

    # -- chunked streaming --------------------------------------------
    def _start_stream(self) -> None:
        self.send_response(200)
        self.send_header("Content-Type", "application/x-ndjson")
        self.send_header("Transfer-Encoding", "chunked")
        for name, value in self._trace_headers().items():
            self.send_header(name, value)
        self.end_headers()

    def _stream_line(self, record: dict) -> None:
        data = (json.dumps(record) + "\n").encode()
        self.wfile.write(f"{len(data):x}\r\n".encode() + data + b"\r\n")
        self.wfile.flush()

    def _end_stream(self) -> None:
        self.wfile.write(b"0\r\n\r\n")
        self.wfile.flush()

    # -- routes --------------------------------------------------------
    def do_GET(self):  # noqa: D102 - stdlib route dispatch
        parsed = urllib.parse.urlsplit(self.path)
        if parsed.path == "/healthz":
            verdict = self.server.worker.health()
            status = 503 if verdict["status"] == "failing" else 200
            self._send_json(status, verdict)
        elif parsed.path == "/v1/stats":
            self._send_json(200, self.server.worker.stats())
        elif parsed.path == "/metrics":
            body = to_prometheus(self.server.bundle.metrics,
                                 labels={"job": "repro_serve"})
            self._send_text(200, body, _PROM_CONTENT_TYPE)
        elif parsed.path == "/v1/trace":
            self._respond_trace(parsed.query)
        else:
            self._send_json(404, {"error": "NotFound", "detail": self.path})

    def _respond_trace(self, query: str) -> None:
        params = urllib.parse.parse_qs(query)
        trace_ids = params.get("id")
        if not trace_ids:
            self._send_json(400, {"error": "BadRequest",
                                  "detail": "missing ?id=<trace_id>"})
            return
        tracer = self.server.bundle.tracer
        chrome = tracer.trace_slice(trace_ids[0])
        chrome["tracing_enabled"] = tracer.enabled
        self._send_json(200, chrome)

    def do_POST(self):  # noqa: D102 - stdlib route dispatch
        if self.path != "/v1/submit":
            self._send_json(404, {"error": "NotFound", "detail": self.path})
            return
        # One TraceContext per request: continue the caller's trace when
        # a traceparent header arrives, mint a fresh one otherwise.  The
        # ids come from os.urandom, never a seeded generator, so request
        # handling stays bit-identical for seeded decoding runs.
        remote = TraceContext.from_traceparent(self.headers.get("traceparent"))
        self.trace_ctx = remote.child() if remote is not None \
            else TraceContext.new()
        tracer = self.server.bundle.tracer
        with tracer.span("serve.request", ctx=self.trace_ctx,
                         path=self.path):
            self._handle_submit()

    def _handle_submit(self) -> None:
        try:
            body = self._read_json()
            prompt = body["prompt"]
            max_new_tokens = int(body["max_new_tokens"])
            stream = bool(body.get("stream", False))
            # Distinguish absent (engine default) from explicit null
            # (disable the stop token for this request).
            stop_token = body["stop_token"] if "stop_token" in body else ...
        except (KeyError, TypeError, ValueError, json.JSONDecodeError) as exc:
            self._send_json(400, {"error": "BadRequest", "detail": str(exc)})
            return
        params = None
        if "sampling" in body and body["sampling"] is not None:
            try:
                params = SamplingParams.from_dict(body["sampling"])
            except SamplingParamsError as exc:
                # Parsed before the stream/blocking split, so both paths
                # return byte-identical 400 bodies with the structured
                # ``params`` payload.
                self._send_json(400, {"error": "SamplingParamsError",
                                      "detail": str(exc),
                                      "params": exc.params})
                return
        try:
            handle = self.server.worker.submit(prompt, max_new_tokens,
                                               stop_token,
                                               trace_ctx=self.trace_ctx,
                                               params=params)
        except ServeError as exc:
            headers = {}
            retry = getattr(exc, "retry_after_s", None)
            if retry is not None:
                headers["Retry-After"] = f"{retry:g}"
            self._send_json(exc.status, exc.to_json(), headers)
            return
        if stream:
            self._respond_streaming(handle)
        else:
            self._respond_blocking(handle)

    def _respond_blocking(self, handle: RequestHandle) -> None:
        result = handle.wait()
        body = result_to_json(result)
        if handle.timed_out:
            body["error"] = "Timeout"
            self._send_json(504, body)
        else:
            self._send_json(200, body)

    def _respond_streaming(self, handle: RequestHandle) -> None:
        try:
            self._start_stream()
            first = {"request_id": handle.request_id}
            if self.trace_ctx is not None:
                first["trace_id"] = self.trace_ctx.trace_id
            if handle.params is not None:
                first["sampling"] = handle.params.to_dict()
            self._stream_line(first)
            for token in handle.tokens():
                self._stream_line({"token": token})
            result = handle.wait()
            final = {"done": True, "timed_out": handle.timed_out}
            final.update(result_to_json(result))
            self._stream_line(final)
            self._end_stream()
        except (BrokenPipeError, ConnectionResetError):
            # Client went away mid-stream: reclaim the slot instead of
            # decoding tokens nobody will read.
            self.server.worker.cancel(handle.request_id)
            self.close_connection = True


class InferenceServer:
    """HTTP serving facade: engine + worker + threaded HTTP front end.

    Takes ownership of ``engine`` (single consumer — nothing else may
    step it once the server starts).  ``port=0`` binds an ephemeral
    port, exposed as :attr:`port`/:attr:`url` after construction.

    ``slo`` (an :class:`~repro.obs.SLOMonitor`) drives the three-state
    ``/healthz`` verdict; omitted, a default monitor with loose
    thresholds is created.  ``flight`` (an
    :class:`~repro.obs.FlightRecorder`) is attached to the telemetry
    streams and dumped if the decode loop crashes.

    Usage::

        engine = GenerationEngine(model, batch_size=8,
                                  params=SamplingParams(greedy=True))
        with InferenceServer(engine, policy=AdmissionPolicy(
                max_queue_depth=32, request_timeout_s=30.0)) as server:
            print("listening on", server.url)
            ...
    """

    def __init__(self, engine, policy: AdmissionPolicy | None = None,
                 host: str = "127.0.0.1", port: int = 0,
                 obs: Observability | None = None,
                 slo=None, flight=None):
        self.obs = obs
        bundle = obs if obs is not None else NULL_OBS
        self.flight = flight
        if flight is not None:
            # The blackbox rides on the telemetry streams: event-log
            # sink + tracer record hook, plus process-level crash hooks.
            flight.attach(bundle)
            flight.install()
        self.worker = EngineWorker(engine, policy=policy, obs=obs,
                                   slo=slo, flight=flight)
        self.slo = self.worker.slo
        self._httpd = _ServeHTTPServer((host, port), _Handler,
                                       self.worker, bundle)
        self.host, self.port = self._httpd.server_address[:2]
        self.url = f"http://{self.host}:{self.port}"
        self._http_thread = threading.Thread(
            target=self._httpd.serve_forever, name="repro-serve-http",
            daemon=True)
        self._started = False

    def start(self) -> "InferenceServer":
        """Start the decode loop and the HTTP accept loop."""
        if not self._started:
            self._started = True
            self.worker.start()
            self._http_thread.start()
        return self

    def close(self) -> None:
        """Stop accepting, cancel pending requests, join both threads."""
        if self._started:
            self._httpd.shutdown()
        self._httpd.server_close()
        self.worker.close()
        if self._started:
            self._http_thread.join(timeout=10.0)

    def __enter__(self) -> "InferenceServer":
        return self.start()

    def __exit__(self, exc_type, exc, tb):
        self.close()
        return False

    def stats(self) -> dict:
        """In-process alias for ``GET /v1/stats``."""
        return self.worker.stats()
