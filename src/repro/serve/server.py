"""Zero-dependency HTTP/streaming front end for the generation engine.

Threading model: a :class:`http.server.ThreadingHTTPServer` spawns one
handler thread per connection; every handler funnels into the shared
:class:`~repro.serve.worker.EngineWorker`, whose lock-guarded submit
path and single decode-loop thread keep the engine — and its RNG
stream — exactly as a single-threaded caller would drive it.  The HTTP
threads only ever block on their own request's
:class:`~repro.serve.worker.RequestHandle`, never on the engine.

Endpoints (all JSON):

- ``POST /v1/submit`` — body ``{"prompt": [ids...], "max_new_tokens": N,
  "stop_token": id?, "stream": bool?}``.  Non-streaming requests block
  and return the finished result with timing; ``"stream": true``
  responds ``application/x-ndjson`` over chunked transfer encoding, one
  ``{"token": id}`` line per sampled token as it lands, then a final
  ``{"done": true, ...}`` record.
- ``GET /v1/stats`` — engine + server accounting snapshot (slot
  occupancy, queue depth, shed/timeout counts, admission knobs).
- ``GET /healthz`` — liveness probe.

Admission control maps onto status codes: 429 + ``Retry-After`` when
the queue-depth cap sheds the request, 400 for invalid/over-budget
bodies, 504 when the request's wall-clock timeout cancelled it (the
partial result is included), 503 once shutdown has begun.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from ..obs import Observability
from .admission import AdmissionPolicy, ServeError
from .worker import EngineWorker, RequestHandle


def result_to_json(result) -> dict:
    """JSON-ready dict for one :class:`~repro.infer.GenerationResult`."""
    body = {
        "request_id": result.request_id,
        "tokens": list(result.tokens),
        "completion": list(result.completion),
        "prompt_len": result.prompt_len,
        "finish_reason": result.finish_reason,
        "steps": result.steps,
    }
    timing = result.timing
    if timing is not None:
        body["timing"] = {
            "queue_wait_s": timing.queue_wait_s,
            "ttft_s": timing.ttft_s,
            "prefill_s": timing.prefill_s,
            "decode_s": timing.decode_s,
            "tokens_per_sec": timing.tokens_per_sec,
            "new_tokens": timing.new_tokens,
        }
    return body


class _ServeHTTPServer(ThreadingHTTPServer):
    """ThreadingHTTPServer that carries the shared worker + telemetry."""

    daemon_threads = True
    allow_reuse_address = True

    def __init__(self, address, handler, worker: EngineWorker,
                 events) -> None:
        super().__init__(address, handler)
        self.worker = worker
        self.events = events


class _Handler(BaseHTTPRequestHandler):
    """Request handler: routes the three endpoints onto the worker."""

    protocol_version = "HTTP/1.1"
    server: _ServeHTTPServer  # narrowed for attribute access below

    # -- plumbing ------------------------------------------------------
    def log_message(self, fmt, *args):  # noqa: D102 - stdlib override
        self.server.events.emit("http_log", line=fmt % args)

    def _send_json(self, status: int, body: dict,
                   headers: dict | None = None) -> None:
        payload = json.dumps(body).encode()
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(payload)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(payload)

    def _read_json(self) -> dict:
        length = int(self.headers.get("Content-Length", 0))
        raw = self.rfile.read(length) if length else b""
        body = json.loads(raw.decode() or "{}")
        if not isinstance(body, dict):
            raise ValueError("request body must be a JSON object")
        return body

    # -- chunked streaming --------------------------------------------
    def _start_stream(self) -> None:
        self.send_response(200)
        self.send_header("Content-Type", "application/x-ndjson")
        self.send_header("Transfer-Encoding", "chunked")
        self.end_headers()

    def _stream_line(self, record: dict) -> None:
        data = (json.dumps(record) + "\n").encode()
        self.wfile.write(f"{len(data):x}\r\n".encode() + data + b"\r\n")
        self.wfile.flush()

    def _end_stream(self) -> None:
        self.wfile.write(b"0\r\n\r\n")
        self.wfile.flush()

    # -- routes --------------------------------------------------------
    def do_GET(self):  # noqa: D102 - stdlib route dispatch
        if self.path == "/healthz":
            self._send_json(200, {"ok": True})
        elif self.path == "/v1/stats":
            self._send_json(200, self.server.worker.stats())
        else:
            self._send_json(404, {"error": "NotFound", "detail": self.path})

    def do_POST(self):  # noqa: D102 - stdlib route dispatch
        if self.path != "/v1/submit":
            self._send_json(404, {"error": "NotFound", "detail": self.path})
            return
        try:
            body = self._read_json()
            prompt = body["prompt"]
            max_new_tokens = int(body["max_new_tokens"])
            stream = bool(body.get("stream", False))
            # Distinguish absent (engine default) from explicit null
            # (disable the stop token for this request).
            stop_token = body["stop_token"] if "stop_token" in body else ...
        except (KeyError, TypeError, ValueError, json.JSONDecodeError) as exc:
            self._send_json(400, {"error": "BadRequest", "detail": str(exc)})
            return
        try:
            handle = self.server.worker.submit(prompt, max_new_tokens,
                                               stop_token)
        except ServeError as exc:
            headers = {}
            retry = getattr(exc, "retry_after_s", None)
            if retry is not None:
                headers["Retry-After"] = f"{retry:g}"
            self._send_json(exc.status, exc.to_json(), headers)
            return
        if stream:
            self._respond_streaming(handle)
        else:
            self._respond_blocking(handle)

    def _respond_blocking(self, handle: RequestHandle) -> None:
        result = handle.wait()
        body = result_to_json(result)
        if handle.timed_out:
            body["error"] = "Timeout"
            self._send_json(504, body)
        else:
            self._send_json(200, body)

    def _respond_streaming(self, handle: RequestHandle) -> None:
        try:
            self._start_stream()
            self._stream_line({"request_id": handle.request_id})
            for token in handle.tokens():
                self._stream_line({"token": token})
            result = handle.wait()
            final = {"done": True, "timed_out": handle.timed_out}
            final.update(result_to_json(result))
            self._stream_line(final)
            self._end_stream()
        except (BrokenPipeError, ConnectionResetError):
            # Client went away mid-stream: reclaim the slot instead of
            # decoding tokens nobody will read.
            self.server.worker.cancel(handle.request_id)
            self.close_connection = True


class InferenceServer:
    """HTTP serving facade: engine + worker + threaded HTTP front end.

    Takes ownership of ``engine`` (single consumer — nothing else may
    step it once the server starts).  ``port=0`` binds an ephemeral
    port, exposed as :attr:`port`/:attr:`url` after construction.

    Usage::

        engine = GenerationEngine(model, batch_size=8, greedy=True)
        with InferenceServer(engine, policy=AdmissionPolicy(
                max_queue_depth=32, request_timeout_s=30.0)) as server:
            print("listening on", server.url)
            ...
    """

    def __init__(self, engine, policy: AdmissionPolicy | None = None,
                 host: str = "127.0.0.1", port: int = 0,
                 obs: Observability | None = None):
        self.obs = obs
        self.worker = EngineWorker(engine, policy=policy, obs=obs)
        events = self.worker._events
        self._httpd = _ServeHTTPServer((host, port), _Handler,
                                       self.worker, events)
        self.host, self.port = self._httpd.server_address[:2]
        self.url = f"http://{self.host}:{self.port}"
        self._http_thread = threading.Thread(
            target=self._httpd.serve_forever, name="repro-serve-http",
            daemon=True)
        self._started = False

    def start(self) -> "InferenceServer":
        """Start the decode loop and the HTTP accept loop."""
        if not self._started:
            self._started = True
            self.worker.start()
            self._http_thread.start()
        return self

    def close(self) -> None:
        """Stop accepting, cancel pending requests, join both threads."""
        if self._started:
            self._httpd.shutdown()
        self._httpd.server_close()
        self.worker.close()
        if self._started:
            self._http_thread.join(timeout=10.0)

    def __enter__(self) -> "InferenceServer":
        return self.start()

    def __exit__(self, exc_type, exc, tb):
        self.close()
        return False

    def stats(self) -> dict:
        """In-process alias for ``GET /v1/stats``."""
        return self.worker.stats()
