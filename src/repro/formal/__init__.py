"""Formal-language substrate (§5/§7): DFAs, Tomita grammars, RNN->DFA
extraction — the machinery behind "realistic RNNs are finite state
machines"."""

from .dfa import DFA
from .extraction import (
    ExtractionResult,
    RNNClassifier,
    extract_and_evaluate,
    extract_dfa,
    extraction_fidelity,
)
from .tomita import sample_language_dataset, tomita

__all__ = [
    "DFA",
    "tomita",
    "sample_language_dataset",
    "RNNClassifier",
    "extract_dfa",
    "extraction_fidelity",
    "extract_and_evaluate",
    "ExtractionResult",
]
