"""The Tomita grammars: the standard regular-language RNN benchmark.

Seven binary-alphabet regular languages of graded difficulty, used since
the early 90s to study what recurrent networks learn and to extract
automata from them.  Each is given here as an explicit DFA plus a
balanced dataset sampler.
"""

from __future__ import annotations

import numpy as np

from .dfa import DFA

_SINK = "sink"  # convention marker in the builders below


def tomita_1() -> DFA:
    """1*: strings with no 0."""
    return DFA.from_dict(
        {0: {0: 1, 1: 0}, 1: {0: 1, 1: 1}},
        accepting=[0], alphabet_size=2,
    )


def tomita_2() -> DFA:
    """(10)*: alternating 1 0 pairs."""
    # states: 0 expect-1 (accepting), 1 expect-0, 2 sink
    return DFA.from_dict(
        {0: {0: 2, 1: 1}, 1: {0: 0, 1: 2}, 2: {0: 2, 1: 2}},
        accepting=[0], alphabet_size=2,
    )


def tomita_3() -> DFA:
    """No odd (maximal) run of 1s immediately followed by an odd run of 0s.

    States: 0 safe zone (start / safe 0-run / after even 1-run),
    1 current 1-run odd, 2 current 1-run even, 3 dangerous 0-run with odd
    count (rejecting — ending here completes the pattern), 4 dangerous
    0-run with even count, 5 dead (pattern completed by a following 1).
    """
    return DFA.from_dict(
        {
            0: {0: 0, 1: 1},
            1: {0: 3, 1: 2},
            2: {0: 0, 1: 1},
            3: {0: 4, 1: 5},
            4: {0: 3, 1: 1},
            5: {0: 5, 1: 5},
        },
        accepting=[0, 1, 2, 4], alphabet_size=2,
    )


def tomita_4() -> DFA:
    """No three consecutive 0s."""
    return DFA.from_dict(
        {
            0: {0: 1, 1: 0},
            1: {0: 2, 1: 0},
            2: {0: 3, 1: 0},
            3: {0: 3, 1: 3},  # sink after 000
        },
        accepting=[0, 1, 2], alphabet_size=2,
    )


def tomita_5() -> DFA:
    """Even number of 0s AND even number of 1s."""
    # state = (zeros parity, ones parity) -> 2*z + o
    return DFA.from_dict(
        {
            0: {0: 2, 1: 1},
            1: {0: 3, 1: 0},
            2: {0: 0, 1: 3},
            3: {0: 1, 1: 2},
        },
        accepting=[0], alphabet_size=2,
    )


def tomita_6() -> DFA:
    """(#0s - #1s) is divisible by 3."""
    return DFA.from_dict(
        {
            0: {0: 1, 1: 2},
            1: {0: 2, 1: 0},
            2: {0: 0, 1: 1},
        },
        accepting=[0], alphabet_size=2,
    )


def tomita_7() -> DFA:
    """0*1*0*1*: at most three alternation blocks."""
    return DFA.from_dict(
        {
            0: {0: 0, 1: 1},
            1: {0: 2, 1: 1},
            2: {0: 2, 1: 3},
            3: {0: 4, 1: 3},
            4: {0: 4, 1: 4},  # sink (fifth block)
        },
        accepting=[0, 1, 2, 3], alphabet_size=2,
    )


TOMITA: dict[int, DFA] = {}


def tomita(index: int) -> DFA:
    """The index-th Tomita grammar (1-7) as a DFA."""
    if not TOMITA:
        TOMITA.update({
            1: tomita_1(), 2: tomita_2(), 3: tomita_3(), 4: tomita_4(),
            5: tomita_5(), 6: tomita_6(), 7: tomita_7(),
        })
    if index not in TOMITA:
        raise KeyError(f"Tomita grammars are numbered 1-7, got {index}")
    return TOMITA[index]


def sample_language_dataset(
    dfa: DFA,
    rng: np.random.Generator,
    count: int,
    min_len: int = 1,
    max_len: int = 12,
    balanced: bool = True,
    max_attempts_factor: int = 400,
) -> tuple[list[list[int]], np.ndarray]:
    """Sample labelled strings; ``balanced=True`` equalises accept/reject.

    Returns (strings, labels) with labels in {0, 1}.
    """
    if count < 2:
        raise ValueError("count must be >= 2")
    positives, negatives = [], []
    want_each = count // 2
    attempts, budget = 0, count * max_attempts_factor
    while attempts < budget:
        attempts += 1
        length = int(rng.integers(min_len, max_len + 1))
        string = rng.integers(0, dfa.alphabet_size, size=length).tolist()
        if dfa.accepts(string):
            if len(positives) < (want_each if balanced else count):
                positives.append(string)
        elif len(negatives) < (want_each if balanced else count):
            negatives.append(string)
        if balanced and len(positives) >= want_each and len(negatives) >= want_each:
            break
        if not balanced and len(positives) + len(negatives) >= count:
            break
    if balanced and (len(positives) < want_each or len(negatives) < want_each):
        raise RuntimeError(
            f"could not sample a balanced set (got {len(positives)}+, "
            f"{len(negatives)}-); the language may be too sparse at these lengths"
        )
    strings = positives[:want_each] + negatives[:want_each] if balanced \
        else (positives + negatives)[:count]
    labels = np.array([1] * min(len(positives), want_each if balanced else count)
                      + [0] * (len(strings) - min(len(positives),
                                                  want_each if balanced else count)))
    order = rng.permutation(len(strings))
    return [strings[i] for i in order], labels[order]
