"""Extracting a finite state machine from a trained RNN (§7's program).

The reverse-engineering recipe: (1) train an RNN to classify strings of a
regular language; (2) cluster its hidden states; (3) read a DFA off the
clusters by majority-voting transitions; (4) measure the automaton's
fidelity to the network.  High fidelity on held-out strings is direct
evidence that the network "is" a finite state machine — the §5/§7 claim
about realistic-precision RNNs, demonstrated constructively.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..autograd import Tensor, cross_entropy, no_grad
from ..nn import Embedding, Linear, Module, Adam
from .dfa import DFA


class RNNClassifier(Module):
    """Elman RNN + linear read-out on the final state (accept/reject)."""

    def __init__(self, alphabet_size: int, hidden_dim: int = 16,
                 rng: np.random.Generator | int = 0):
        super().__init__()
        if isinstance(rng, (int, np.integer)):
            rng = np.random.default_rng(rng)
        self.alphabet_size = alphabet_size
        self.hidden_dim = hidden_dim
        self.embedding = Embedding(alphabet_size, hidden_dim, rng)
        self.w_x = Linear(hidden_dim, hidden_dim, rng)
        self.w_h = Linear(hidden_dim, hidden_dim, rng, bias=False)
        self.head = Linear(hidden_dim, 2, rng)

    def hidden_trace(self, string: list[int]) -> np.ndarray:
        """(len+1, hidden) hidden states, inference mode."""
        with no_grad():
            h = Tensor(np.zeros((1, self.hidden_dim)))
            states = [h.data[0].copy()]
            for symbol in string:
                emb = self.embedding(np.array([symbol]))
                h = (self.w_x(emb) + self.w_h(h)).tanh()
                states.append(h.data[0].copy())
        return np.stack(states)

    def _final_state(self, strings: list[list[int]]) -> Tensor:
        # pad-free sequential scan per string batch of equal length groups
        outputs = []
        for string in strings:
            h = Tensor(np.zeros((1, self.hidden_dim)))
            for symbol in string:
                emb = self.embedding(np.array([symbol]))
                h = (self.w_x(emb) + self.w_h(h)).tanh()
            outputs.append(h)
        from ..autograd import concatenate
        return concatenate(outputs, axis=0)

    def logits(self, strings: list[list[int]]) -> Tensor:
        return self.head(self._final_state(strings))

    def predict(self, string: list[int]) -> int:
        with no_grad():
            return int(np.argmax(self.logits([string]).data[0]))

    def fit(self, strings: list[list[int]], labels: np.ndarray,
            epochs: int = 15, batch_size: int = 16, lr: float = 1e-2,
            seed: int = 0) -> list[float]:
        rng = np.random.default_rng(seed)
        optimizer = Adam(self.parameters(), lr=lr)
        curve = []
        n = len(strings)
        for _ in range(epochs):
            order = rng.permutation(n)
            total, batches = 0.0, 0
            for start in range(0, n, batch_size):
                idx = order[start : start + batch_size]
                self.zero_grad()
                loss = cross_entropy(self.logits([strings[i] for i in idx]),
                                     labels[idx])
                loss.backward()
                optimizer.step()
                total += float(loss.data)
                batches += 1
            curve.append(total / batches)
        return curve

    def accuracy(self, strings: list[list[int]], labels: np.ndarray) -> float:
        return float(np.mean([self.predict(s) == l
                              for s, l in zip(strings, labels)]))


@dataclass
class ExtractionResult:
    """A DFA distilled from an RNN plus how faithfully it mimics it."""

    dfa: DFA
    num_clusters: int
    fidelity: float          # agreement with the RNN on held-out strings
    language_accuracy: float  # agreement with the TRUE language


def _kmeans(points: np.ndarray, k: int, rng: np.random.Generator,
            iterations: int = 30) -> tuple[np.ndarray, np.ndarray]:
    """Tiny k-means; returns (centroids, assignment)."""
    centroids = points[rng.choice(len(points), size=k, replace=False)]
    assignment = np.zeros(len(points), dtype=int)
    for _ in range(iterations):
        distances = ((points[:, None, :] - centroids[None, :, :]) ** 2).sum(-1)
        new_assignment = distances.argmin(axis=1)
        if np.array_equal(new_assignment, assignment):
            break
        assignment = new_assignment
        for j in range(k):
            members = points[assignment == j]
            if len(members):
                centroids[j] = members.mean(axis=0)
    return centroids, assignment


def extract_dfa(
    model: RNNClassifier,
    strings: list[list[int]],
    num_clusters: int = 10,
    rng: np.random.Generator | int = 0,
) -> DFA:
    """Cluster hidden states; majority-vote the cluster transition table."""
    if isinstance(rng, (int, np.integer)):
        rng = np.random.default_rng(rng)
    traces = [model.hidden_trace(s) for s in strings]
    all_states = np.concatenate(traces)
    k = min(num_clusters, len(np.unique(all_states.round(6), axis=0)))
    centroids, _ = _kmeans(all_states, k, rng)

    def cluster_of(h: np.ndarray) -> int:
        return int(((centroids - h) ** 2).sum(axis=1).argmin())

    # transition votes and accept votes
    votes: dict[tuple[int, int], dict[int, int]] = {}
    accept_votes: dict[int, list[int]] = {c: [] for c in range(k)}
    for string, trace in zip(strings, traces):
        clusters = [cluster_of(h) for h in trace]
        for position, symbol in enumerate(string):
            key = (clusters[position], symbol)
            votes.setdefault(key, {}).setdefault(clusters[position + 1], 0)
            votes[key][clusters[position + 1]] += 1
        accept_votes[clusters[-1]].append(model.predict(string))

    start = cluster_of(model.hidden_trace([])[0])
    transitions = []
    for state in range(k):
        row = []
        for symbol in range(model.alphabet_size):
            options = votes.get((state, symbol))
            row.append(max(options, key=options.get) if options else state)
        transitions.append(tuple(row))
    accepting = frozenset(
        state for state, outcomes in accept_votes.items()
        if outcomes and np.mean(outcomes) >= 0.5
    )
    return DFA(num_states=k, alphabet_size=model.alphabet_size,
               transitions=tuple(transitions), accepting=accepting,
               start=start)


def extraction_fidelity(model: RNNClassifier, dfa: DFA,
                        strings: list[list[int]]) -> float:
    """Fraction of strings where the DFA agrees with the RNN."""
    return float(np.mean([dfa.accepts(s) == bool(model.predict(s))
                          for s in strings]))


def extract_and_evaluate(
    model: RNNClassifier,
    reference: DFA,
    train_strings: list[list[int]],
    eval_strings: list[list[int]],
    num_clusters: int = 10,
    seed: int = 0,
) -> ExtractionResult:
    """Extract a DFA and score fidelity-to-RNN and truth-to-language."""
    dfa = extract_dfa(model, train_strings, num_clusters=num_clusters, rng=seed)
    minimized = dfa.minimized()
    fidelity = extraction_fidelity(model, minimized, eval_strings)
    language = float(np.mean([minimized.accepts(s) == reference.accepts(s)
                              for s in eval_strings]))
    return ExtractionResult(dfa=minimized, num_clusters=num_clusters,
                            fidelity=fidelity, language_accuracy=language)
