"""Deterministic finite automata.

§5 cites the result that under realistic (finite-precision) assumptions
an RNN's computational class is the finite state machine, recognising
regular languages [26, 134]; §8 makes the same point for constant-depth
transformers iterated autoregressively.  This module provides the DFA
substrate those claims quantify over.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping, Sequence


@dataclass(frozen=True)
class DFA:
    """A complete DFA over an integer alphabet.

    ``transitions[state][symbol]`` is the successor state; states are
    ``0..num_states-1``; ``accepting`` is the set of accepting states and
    ``start`` the initial state.
    """

    num_states: int
    alphabet_size: int
    transitions: tuple[tuple[int, ...], ...]
    accepting: frozenset[int]
    start: int = 0

    def __post_init__(self):
        if self.num_states < 1 or self.alphabet_size < 1:
            raise ValueError("need at least one state and one symbol")
        if len(self.transitions) != self.num_states:
            raise ValueError("transitions must have one row per state")
        for row in self.transitions:
            if len(row) != self.alphabet_size:
                raise ValueError("each state needs one transition per symbol")
            if any(not 0 <= t < self.num_states for t in row):
                raise ValueError("transition target out of range")
        if not 0 <= self.start < self.num_states:
            raise ValueError("start state out of range")
        if any(not 0 <= s < self.num_states for s in self.accepting):
            raise ValueError("accepting state out of range")

    @classmethod
    def from_dict(cls, transitions: Mapping[int, Mapping[int, int]],
                  accepting: Iterable[int], start: int = 0,
                  alphabet_size: int | None = None) -> "DFA":
        num_states = max(transitions) + 1
        alphabet_size = alphabet_size or (
            max(max(row) for row in transitions.values()) + 1
        )
        table = tuple(
            tuple(transitions[s][a] for a in range(alphabet_size))
            for s in range(num_states)
        )
        return cls(num_states=num_states, alphabet_size=alphabet_size,
                   transitions=table, accepting=frozenset(accepting),
                   start=start)

    # ------------------------------------------------------------------
    def step(self, state: int, symbol: int) -> int:
        return self.transitions[state][symbol]

    def run(self, string: Sequence[int]) -> int:
        """Final state after consuming ``string`` from the start state."""
        state = self.start
        for symbol in string:
            if not 0 <= symbol < self.alphabet_size:
                raise ValueError(f"symbol {symbol} outside alphabet")
            state = self.transitions[state][symbol]
        return state

    def accepts(self, string: Sequence[int]) -> bool:
        return self.run(string) in self.accepting

    def state_trace(self, string: Sequence[int]) -> list[int]:
        """States visited, including the start state (length len+1)."""
        states = [self.start]
        for symbol in string:
            states.append(self.transitions[states[-1]][symbol])
        return states

    # ------------------------------------------------------------------
    def reachable_states(self) -> set[int]:
        seen = {self.start}
        frontier = [self.start]
        while frontier:
            state = frontier.pop()
            for symbol in range(self.alphabet_size):
                nxt = self.transitions[state][symbol]
                if nxt not in seen:
                    seen.add(nxt)
                    frontier.append(nxt)
        return seen

    def minimized(self) -> "DFA":
        """Hopcroft-style partition refinement on reachable states."""
        reachable = sorted(self.reachable_states())
        index = {s: i for i, s in enumerate(reachable)}
        accepting = {index[s] for s in self.accepting if s in index}
        n = len(reachable)
        table = [[index[self.transitions[s][a]] for a in range(self.alphabet_size)]
                 for s in reachable]

        # initial partition: accepting vs non-accepting
        partition = [0 if i in accepting else 1 for i in range(n)]
        while True:
            signature = {}
            new_partition = []
            for i in range(n):
                sig = (partition[i],
                       tuple(partition[table[i][a]] for a in range(self.alphabet_size)))
                if sig not in signature:
                    signature[sig] = len(signature)
                new_partition.append(signature[sig])
            if new_partition == partition:
                break
            partition = new_partition
        num_blocks = max(partition) + 1
        block_table = [[0] * self.alphabet_size for _ in range(num_blocks)]
        for i in range(n):
            for a in range(self.alphabet_size):
                block_table[partition[i]][a] = partition[table[i][a]]
        return DFA(
            num_states=num_blocks,
            alphabet_size=self.alphabet_size,
            transitions=tuple(tuple(row) for row in block_table),
            accepting=frozenset(partition[i] for i in accepting),
            start=partition[index[self.start]],
        )

    def equivalent_to(self, other: "DFA", max_depth: int = 12) -> bool:
        """Bounded-depth language equivalence via product-automaton BFS."""
        if self.alphabet_size != other.alphabet_size:
            return False
        seen = set()
        frontier = [(self.start, other.start, 0)]
        while frontier:
            a, b, depth = frontier.pop()
            if (a in self.accepting) != (b in other.accepting):
                return False
            if (a, b) in seen or depth >= max_depth:
                continue
            seen.add((a, b))
            for symbol in range(self.alphabet_size):
                frontier.append((self.transitions[a][symbol],
                                 other.transitions[b][symbol], depth + 1))
        return True
