"""Probing classifiers (§7).

"Postulate a target for each training data item and train a probe model to
predict it from the embeddings."  :class:`LinearProbe` is the standard
logistic-regression probe; :class:`MLPProbe` the nonlinear variant;
:class:`MultiTargetLinearProbe` predicts many categorical targets at once
(one per Othello board cell).
"""

from __future__ import annotations

import numpy as np

from ..autograd import Tensor, cross_entropy, no_grad
from ..nn import MLP, Adam, Linear, Module


class _ProbeBase(Module):
    """Shared mini-batch training loop for probes."""

    def fit(self, features: np.ndarray, targets: np.ndarray,
            epochs: int = 30, batch_size: int = 64, lr: float = 1e-2,
            seed: int = 0, weight_decay: float = 1e-4) -> "list[float]":
        """Train with Adam; returns the per-epoch mean loss curve."""
        features = np.asarray(features, dtype=np.float64)
        targets = np.asarray(targets, dtype=np.int64)
        if len(features) != len(targets):
            raise ValueError("features/targets length mismatch")
        rng = np.random.default_rng(seed)
        optimizer = Adam(self.parameters(), lr=lr, weight_decay=weight_decay)
        curve: list[float] = []
        n = len(features)
        for _ in range(epochs):
            order = rng.permutation(n)
            epoch_loss, batches = 0.0, 0
            for start in range(0, n, batch_size):
                idx = order[start : start + batch_size]
                self.zero_grad()
                loss = self.loss(features[idx], targets[idx])
                loss.backward()
                optimizer.step()
                epoch_loss += float(loss.data)
                batches += 1
            curve.append(epoch_loss / batches)
        return curve

    def loss(self, features: np.ndarray, targets: np.ndarray) -> Tensor:
        logits = self.forward(Tensor(np.asarray(features, dtype=np.float64)))
        return cross_entropy(logits, targets)

    def predict(self, features: np.ndarray) -> np.ndarray:
        with no_grad():
            logits = self.forward(Tensor(np.asarray(features, dtype=np.float64)))
        return np.argmax(logits.data, axis=-1)

    def accuracy(self, features: np.ndarray, targets: np.ndarray) -> float:
        predictions = self.predict(features)
        targets = np.asarray(targets, dtype=np.int64)
        return float((predictions == targets).mean())


class LinearProbe(_ProbeBase):
    """Multinomial logistic regression: features (N, d) -> class logits."""

    def __init__(self, in_dim: int, num_classes: int, rng: np.random.Generator | int = 0):
        super().__init__()
        if isinstance(rng, (int, np.integer)):
            rng = np.random.default_rng(rng)
        self.linear = Linear(in_dim, num_classes, rng)

    def forward(self, x: Tensor) -> Tensor:
        return self.linear(x)

    @property
    def weight(self) -> np.ndarray:
        """(in_dim, num_classes) weight matrix — class directions."""
        return self.linear.weight.data


class MLPProbe(_ProbeBase):
    """One-hidden-layer probe, for targets not linearly decodable."""

    def __init__(self, in_dim: int, num_classes: int, hidden: int = 64,
                 rng: np.random.Generator | int = 0):
        super().__init__()
        if isinstance(rng, (int, np.integer)):
            rng = np.random.default_rng(rng)
        self.mlp = MLP([in_dim, hidden, num_classes], rng, activation="relu")

    def forward(self, x: Tensor) -> Tensor:
        return self.mlp(x)


class MultiTargetLinearProbe(_ProbeBase):
    """One linear probe per target, trained jointly.

    Maps features (N, d) to logits (N, num_targets, num_classes) — e.g.
    one 3-way (empty/mine/theirs) classification per board cell.
    """

    def __init__(self, in_dim: int, num_targets: int, num_classes: int,
                 rng: np.random.Generator | int = 0):
        super().__init__()
        if isinstance(rng, (int, np.integer)):
            rng = np.random.default_rng(rng)
        self.num_targets = num_targets
        self.num_classes = num_classes
        self.linear = Linear(in_dim, num_targets * num_classes, rng)

    def forward(self, x: Tensor) -> Tensor:
        logits = self.linear(x)
        return logits.reshape(x.shape[0], self.num_targets, self.num_classes)

    def loss(self, features: np.ndarray, targets: np.ndarray) -> Tensor:
        """``targets`` has shape (N, num_targets)."""
        targets = np.asarray(targets, dtype=np.int64)
        if targets.shape[-1] != self.num_targets:
            raise ValueError(f"expected (N, {self.num_targets}) targets")
        logits = self.forward(Tensor(np.asarray(features, dtype=np.float64)))
        return cross_entropy(logits, targets)

    def class_direction(self, target: int, klass: int) -> np.ndarray:
        """The probe's weight vector for one (target, class) logit."""
        return self.linear.weight.data[:, target * self.num_classes + klass]
