"""Activation patching (§7's targeted interventions).

"After modifying the activations so that the probe's output has flipped a
tile colour, the model predicts legal moves for the modified board state."
:func:`forward_with_patch` reruns a transformer with an arbitrary edit
applied to one layer's output; :func:`probe_guided_patch` builds the edit
from a linear probe's class directions.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from ..autograd import Tensor, no_grad
from ..core.gpt import TransformerLM

PatchFn = Callable[[np.ndarray], np.ndarray]


def forward_with_patch(
    model: TransformerLM,
    ids: np.ndarray,
    layer_index: int,
    patch_fn: PatchFn,
    cache: dict | None = None,
) -> np.ndarray:
    """Forward pass with ``patch_fn`` applied to block ``layer_index`` output.

    ``patch_fn`` receives and returns a (B, T, d) activation array.
    Returns the logits as a plain array (inference only).
    """
    if not 0 <= layer_index < len(model.blocks):
        raise IndexError(f"layer_index {layer_index} out of range")
    ids = np.asarray(ids, dtype=np.int64)
    if ids.ndim == 1:
        ids = ids[None, :]
    was_training = model.training
    model.eval()
    try:
        with no_grad():
            x = model.positional(model.token_embedding(ids))
            if cache is not None:
                cache["embed"] = x.data.copy()
            for i, block in enumerate(model.blocks):
                x = block(x, cache=cache, cache_key=f"block{i}")
                if i == layer_index:
                    patched = patch_fn(x.data.copy())
                    if patched.shape != x.data.shape:
                        raise ValueError("patch_fn changed the activation shape")
                    x = Tensor(patched)
            x = model.final_norm(x)
            logits = model.lm_head(x)
    finally:
        if was_training:
            model.train()
    return logits.data


def patch_position(position: int, delta: np.ndarray) -> PatchFn:
    """A patch that adds ``delta`` to every batch row at one position."""
    delta = np.asarray(delta, dtype=np.float64)

    def fn(activations: np.ndarray) -> np.ndarray:
        activations[:, position, :] += delta
        return activations

    return fn


def probe_guided_patch(
    from_direction: np.ndarray,
    to_direction: np.ndarray,
    position: int,
    strength: float = 4.0,
) -> PatchFn:
    """Move an activation away from one probe class and towards another.

    The edit ``x += strength * (w_to - w_from) / ||w_to - w_from||`` pushes
    the probe's logit margin from ``from`` to ``to`` — the minimal-surgery
    intervention of the Othello-GPT experiment.
    """
    direction = np.asarray(to_direction, dtype=np.float64) - np.asarray(
        from_direction, dtype=np.float64
    )
    norm = np.linalg.norm(direction)
    if norm == 0:
        raise ValueError("probe directions are identical")
    return patch_position(position, strength * direction / norm)
