"""Plain-text rendering of attention patterns.

A terminal-friendly stand-in for the heat-map figures interpretability
papers use: rows are query positions, columns key positions, and each
cell's glyph encodes the attention weight.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

_GLYPHS = " .:-=+*#%@"


def render_attention(weights: np.ndarray, tokens: Sequence[str] | None = None,
                     max_label: int = 6) -> str:
    """ASCII heat map of a (T, T) attention matrix.

    Weights are assumed in [0, 1] (rows of a softmax); each cell maps to
    one of ten density glyphs.  Token labels, if given, annotate rows and
    columns (truncated to ``max_label`` characters).
    """
    weights = np.asarray(weights, dtype=np.float64)
    if weights.ndim != 2 or weights.shape[0] != weights.shape[1]:
        raise ValueError("expected a square (T, T) attention matrix")
    if weights.min() < -1e-9 or weights.max() > 1 + 1e-9:
        raise ValueError("attention weights must lie in [0, 1]")
    t = weights.shape[0]
    if tokens is not None and len(tokens) != t:
        raise ValueError("token labels must match the matrix size")
    labels = [str(tok)[:max_label] for tok in tokens] if tokens else [""] * t
    width = max((len(label) for label in labels), default=0)

    lines = []
    for i in range(t):
        cells = "".join(
            _GLYPHS[min(int(weights[i, j] * (len(_GLYPHS) - 1) + 0.5),
                        len(_GLYPHS) - 1)]
            for j in range(t)
        )
        lines.append(f"{labels[i]:>{width}} |{cells}|")
    return "\n".join(lines)


def strongest_attention_edges(weights: np.ndarray, top_k: int = 5,
                              exclude_self: bool = True
                              ) -> list[tuple[int, int, float]]:
    """The top-k (query, key, weight) pairs — the 'circuit edges' view."""
    weights = np.asarray(weights, dtype=np.float64)
    if weights.ndim != 2:
        raise ValueError("expected a (T, T) matrix")
    masked = weights.copy()
    if exclude_self:
        np.fill_diagonal(masked, -np.inf)
    flat = np.argsort(-masked, axis=None)[:top_k]
    edges = []
    for index in flat:
        q, k = np.unravel_index(int(index), masked.shape)
        if np.isfinite(masked[q, k]):
            edges.append((int(q), int(k), float(weights[q, k])))
    return edges
