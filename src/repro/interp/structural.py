"""The Hewitt-Manning structural probe (§7).

Learn a rank-k projection B of contextualized embeddings such that the
squared distances ``||B(u_i - u_j)||^2`` approximate the parse-tree path
distances ``d(i, j)`` between words i and j.  The paper's headline: for
BERT a projection of rank ~50 (out of ~1000 dimensions) suffices — low
rank is the E10 sweep variable here.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np
from scipy import stats

from ..autograd import Tensor, no_grad
from ..nn import Module
from ..nn.init import scaled_normal


@dataclass
class ProbeExample:
    """Embeddings (n_words, d) and gold tree distances (n_words, n_words)."""

    embeddings: np.ndarray
    distances: np.ndarray

    def __post_init__(self):
        n = self.embeddings.shape[0]
        if self.distances.shape != (n, n):
            raise ValueError("distance matrix shape mismatch")


class StructuralProbe(Module):
    """Learns B in R^{d x k}; predicts squared L2 tree distances."""

    def __init__(self, in_dim: int, rank: int, rng: np.random.Generator | int = 0):
        super().__init__()
        if isinstance(rng, (int, np.integer)):
            rng = np.random.default_rng(rng)
        if rank < 1 or rank > in_dim:
            raise ValueError("rank must be in [1, in_dim]")
        self.rank = rank
        self.projection = Tensor(scaled_normal(rng, (in_dim, rank)), requires_grad=True)

    def predicted_distances(self, embeddings: Tensor) -> Tensor:
        """(n, d) embeddings -> (n, n) squared projected distances."""
        projected = embeddings @ self.projection  # (n, k)
        n, k = projected.shape
        diff = projected.reshape(n, 1, k) - projected.reshape(1, n, k)
        return (diff * diff).sum(axis=-1)

    def sentence_loss(self, example: ProbeExample) -> Tensor:
        """Hewitt-Manning L1 objective, normalised by pair count."""
        pred = self.predicted_distances(Tensor(example.embeddings))
        gold = Tensor(example.distances)
        n = example.distances.shape[0]
        return (pred - gold).abs().sum() * (1.0 / (n * n))

    def fit(self, examples: Sequence[ProbeExample], epochs: int = 30,
            lr: float = 1e-2, seed: int = 0) -> list[float]:
        """Adam over per-sentence losses; returns epoch loss curve."""
        from ..nn import Adam

        rng = np.random.default_rng(seed)
        optimizer = Adam(self.parameters(), lr=lr)
        curve: list[float] = []
        for _ in range(epochs):
            order = rng.permutation(len(examples))
            total = 0.0
            for i in order:
                self.zero_grad()
                loss = self.sentence_loss(examples[i])
                loss.backward()
                optimizer.step()
                total += float(loss.data)
            curve.append(total / len(examples))
        return curve

    def evaluate_spearman(self, examples: Sequence[ProbeExample]) -> float:
        """Mean Spearman correlation of predicted vs gold distances.

        Computed over the upper-triangular pairs of each sentence (the
        standard "distance Spearman" probe metric), averaged across
        sentences with at least 3 words.
        """
        scores: list[float] = []
        with no_grad():
            for example in examples:
                n = example.distances.shape[0]
                if n < 3:
                    continue
                pred = self.predicted_distances(Tensor(example.embeddings)).data
                iu = np.triu_indices(n, k=1)
                rho = stats.spearmanr(pred[iu], example.distances[iu]).statistic
                if np.isfinite(rho):
                    scores.append(float(rho))
        if not scores:
            raise ValueError("no sentence long enough to evaluate")
        return float(np.mean(scores))


# ---------------------------------------------------------------------------
# Closed-form metric probe
# ---------------------------------------------------------------------------
# The probe's objective is linear in the full metric M = B B^T:
# ``d(i, j) = (u_i - u_j)^T M (u_i - u_j) = <M, diff diff^T>``, so the best
# full-rank M is a ridge regression over outer-product features, and the
# best rank-k probe is its top-k eigen-truncation.  This convex estimator
# is far more stable than SGD on B at small scale.


def fit_distance_metric(examples: Sequence[ProbeExample],
                        ridge: float = 100.0) -> np.ndarray:
    """Least-squares symmetric metric M minimising
    ``sum (diff^T M diff - gold)^2 + ridge ||M||^2``; returns (d, d)."""
    if not examples:
        raise ValueError("need at least one example")
    rows, targets = [], []
    for example in examples:
        h = example.embeddings
        iu = np.triu_indices(h.shape[0], k=1)
        if iu[0].size == 0:
            continue
        diff = h[iu[0]] - h[iu[1]]
        rows.append((diff[:, :, None] * diff[:, None, :]).reshape(len(diff), -1))
        targets.append(example.distances[iu])
    features = np.concatenate(rows)
    gold = np.concatenate(targets)
    d = examples[0].embeddings.shape[1]
    gram = features.T @ features + ridge * np.eye(d * d)
    metric = np.linalg.solve(gram, features.T @ gold).reshape(d, d)
    return 0.5 * (metric + metric.T)


def metric_rank_projection(metric: np.ndarray, rank: int) -> np.ndarray:
    """Best rank-``rank`` PSD factor B of the metric: top eigenpairs,
    negative eigenvalues clipped.  Returns (d, rank)."""
    if rank < 1 or rank > metric.shape[0]:
        raise ValueError("rank out of range")
    eigenvalues, eigenvectors = np.linalg.eigh(metric)
    order = np.argsort(eigenvalues)[::-1][:rank]
    scales = np.sqrt(np.clip(eigenvalues[order], 0.0, None))
    return eigenvectors[:, order] * scales


def pooled_distance_spearman(projection: np.ndarray,
                             examples: Sequence[ProbeExample],
                             shuffle_gold: bool = False,
                             rng: np.random.Generator | None = None) -> float:
    """Spearman correlation of probed vs gold distances, pooled over all
    word pairs of all sentences.  ``shuffle_gold=True`` permutes the
    pooled gold vector globally, giving a permutation null of ~0."""
    predictions, golds = [], []
    for example in examples:
        z = example.embeddings @ projection
        iu = np.triu_indices(z.shape[0], k=1)
        if iu[0].size == 0:
            continue
        predictions.append(((z[iu[0]] - z[iu[1]]) ** 2).sum(axis=-1))
        golds.append(example.distances[iu])
    pooled_gold = np.concatenate(golds)
    if shuffle_gold:
        if rng is None:
            raise ValueError("shuffle_gold requires an rng")
        pooled_gold = rng.permutation(pooled_gold)
    rho = stats.spearmanr(np.concatenate(predictions), pooled_gold).statistic
    return float(rho)
