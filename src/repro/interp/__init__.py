"""Interpretability toolkit (§7): probes, interventions, induction heads."""

from .induction import (
    copying_accuracy,
    per_position_loss,
    prefix_matching_scores,
    repeated_sequence_batch,
    top_induction_head,
)
from .intervention import (
    forward_with_patch,
    patch_position,
    probe_guided_patch,
)
from .probes import LinearProbe, MLPProbe, MultiTargetLinearProbe
from .viz import render_attention, strongest_attention_edges
from .structural import (
    ProbeExample,
    StructuralProbe,
    fit_distance_metric,
    metric_rank_projection,
    pooled_distance_spearman,
)

__all__ = [
    "LinearProbe",
    "MLPProbe",
    "MultiTargetLinearProbe",
    "StructuralProbe",
    "ProbeExample",
    "fit_distance_metric",
    "metric_rank_projection",
    "pooled_distance_spearman",
    "forward_with_patch",
    "patch_position",
    "probe_guided_patch",
    "repeated_sequence_batch",
    "prefix_matching_scores",
    "copying_accuracy",
    "per_position_loss",
    "top_induction_head",
    "render_attention",
    "strongest_attention_edges",
]
