"""Induction heads (§7): detection scores and the behaviour they produce.

An induction head completes the pattern "A B ... A -> B": on a repeated
random sequence [s ; s], it attends from the second occurrence of a token
back to the position *after* its first occurrence, and copies.  Scores
here follow Olsson et al.: per-head prefix-matching attention mass, plus
behavioural measures (second-half copying accuracy and the per-position
loss drop between the two halves).
"""

from __future__ import annotations

import numpy as np

from ..autograd import no_grad
from ..core.gpt import TransformerLM


def repeated_sequence_batch(
    rng: np.random.Generator, vocab_size: int, half_len: int, batch_size: int
) -> np.ndarray:
    """Sequences [s ; s] with s uniform-random of length ``half_len``."""
    if half_len < 2:
        raise ValueError("half_len must be >= 2")
    s = rng.integers(0, vocab_size, size=(batch_size, half_len))
    return np.concatenate([s, s], axis=1).astype(np.int64)


def prefix_matching_scores(model: TransformerLM, x: np.ndarray) -> np.ndarray:
    """(num_layers, num_heads) mean attention to the induction target.

    For the repeated sequence of half-length k and query position
    t in [k, 2k-1], the induction target is position t - k + 1 (the token
    that followed the previous occurrence of the current token).
    """
    x = np.asarray(x, dtype=np.int64)
    if x.ndim == 1:
        x = x[None, :]
    half = x.shape[1] // 2
    if not np.array_equal(x[:, :half], x[:, half : 2 * half]):
        raise ValueError("input is not a repeated [s; s] batch")
    cache: dict = {}
    was_training = model.training
    model.eval()
    try:
        with no_grad():
            model.forward(x, cache=cache)
    finally:
        if was_training:
            model.train()
    num_layers = len(model.blocks)
    num_heads = model.config.num_heads
    scores = np.zeros((num_layers, num_heads))
    queries = np.arange(half, 2 * half - 1)  # last position has no target row use
    targets = queries - half + 1
    for layer in range(num_layers):
        weights = cache[f"block{layer}.weights"]  # (B, H, T, T)
        scores[layer] = weights[:, :, queries, targets].mean(axis=(0, 2))
    return scores


def copying_accuracy(model: TransformerLM, x: np.ndarray) -> tuple[float, float]:
    """(first-half, second-half) next-token accuracy on [s; s] batches.

    Second-half targets are fully determined by copying; first-half
    targets are random, so the *gap* measures in-context copying.
    """
    x = np.asarray(x, dtype=np.int64)
    half = x.shape[1] // 2
    was_training = model.training
    model.eval()
    try:
        with no_grad():
            logits = model.forward(x).data
    finally:
        if was_training:
            model.train()
    predictions = np.argmax(logits[:, :-1, :], axis=-1)
    targets = x[:, 1:]
    correct = predictions == targets
    first = float(correct[:, : half - 1].mean())
    second = float(correct[:, half - 1 :].mean())
    return first, second


def per_position_loss(model: TransformerLM, x: np.ndarray) -> np.ndarray:
    """Mean cross-entropy at each predicted position (length T-1).

    On repeated sequences, induction shows up as a sharp loss drop at the
    start of the second half — the "loss on 2nd occurrence << 1st"
    signature.
    """
    x = np.asarray(x, dtype=np.int64)
    was_training = model.training
    model.eval()
    try:
        with no_grad():
            logits = model.forward(x).data
    finally:
        if was_training:
            model.train()
    logits = logits[:, :-1, :]
    targets = x[:, 1:]
    shifted = logits - logits.max(axis=-1, keepdims=True)
    log_probs = shifted - np.log(np.exp(shifted).sum(axis=-1, keepdims=True))
    b, t = targets.shape
    nll = -log_probs[np.arange(b)[:, None], np.arange(t)[None, :], targets]
    return nll.mean(axis=0)


def top_induction_head(model: TransformerLM, x: np.ndarray) -> tuple[int, int, float]:
    """(layer, head, score) of the strongest prefix-matching head."""
    scores = prefix_matching_scores(model, x)
    layer, head = np.unravel_index(int(np.argmax(scores)), scores.shape)
    return int(layer), int(head), float(scores[layer, head])
