"""Othello substrate for the §7 world-model probing experiment."""

from .board import BLACK, EMPTY, WHITE, OthelloBoard
from .dataset import OthelloDataset, generate_dataset, legal_move_rate
from .game import GameRecord, MoveVocab, random_game, replay

__all__ = [
    "OthelloBoard",
    "BLACK",
    "WHITE",
    "EMPTY",
    "MoveVocab",
    "GameRecord",
    "random_game",
    "replay",
    "OthelloDataset",
    "generate_dataset",
    "legal_move_rate",
]
