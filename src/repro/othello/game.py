"""Random Othello game generation and the move-token vocabulary.

Othello-GPT is trained on synthetic games of uniformly random legal moves;
the token inventory is the set of playable squares (every cell except the
four pre-filled centre ones) plus a beginning-of-game token.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .board import BLACK, OthelloBoard


class MoveVocab:
    """Token ids for playable squares on a ``size`` x ``size`` board."""

    def __init__(self, size: int = 8):
        self.size = size
        mid = size // 2
        centre = {(mid - 1, mid - 1), (mid - 1, mid), (mid, mid - 1), (mid, mid)}
        self.cells = [
            (r, c) for r in range(size) for c in range(size) if (r, c) not in centre
        ]
        self._cell_to_id = {cell: i for i, cell in enumerate(self.cells)}
        self.bos_id = len(self.cells)

    def __len__(self) -> int:
        return len(self.cells) + 1  # + BOS

    def move_to_id(self, row: int, col: int) -> int:
        return self._cell_to_id[(row, col)]

    def id_to_move(self, token: int) -> tuple[int, int]:
        if token == self.bos_id:
            raise ValueError("BOS token is not a move")
        return self.cells[token]

    def notation(self, token: int) -> str:
        """Algebraic-ish notation, e.g. token for (2, 4) on 8x8 -> 'E3'."""
        row, col = self.id_to_move(token)
        return f"{chr(ord('A') + col)}{row + 1}"


@dataclass
class GameRecord:
    """One full game: moves, per-step relative board states, legal sets.

    ``states[t]`` is the board after ``moves[:t + 1]``, encoded relative to
    the player about to make move ``t + 1`` (1 = that player's stones,
    2 = opponent's) — the encoding that probes decode linearly.
    ``legal_next[t]`` is the set of legal *token ids* for move ``t + 1``
    (empty at the final position).
    """

    moves: list[int]                  # token ids
    states: list[np.ndarray]          # (size, size) int64 arrays
    legal_next: list[set[int]]


def random_game(rng: np.random.Generator, size: int = 8,
                vocab: MoveVocab | None = None) -> GameRecord:
    """Play uniformly random legal moves until neither side can move."""
    vocab = vocab or MoveVocab(size)
    board = OthelloBoard(size)
    moves: list[int] = []
    states: list[np.ndarray] = []
    legal_next: list[set[int]] = []
    last_player = BLACK
    while not board.game_over:
        options = board.legal_moves()
        row, col = options[int(rng.integers(len(options)))]
        last_player = board.to_move
        board.play(row, col)
        moves.append(vocab.move_to_id(row, col))
        perspective = board.to_move if not board.game_over else -last_player
        states.append(board.relative_state(perspective))
        if board.game_over:
            legal_next.append(set())
        else:
            legal_next.append({vocab.move_to_id(r, c) for r, c in board.legal_moves()})
    return GameRecord(moves=moves, states=states, legal_next=legal_next)


def replay(moves: list[int], size: int = 8, vocab: MoveVocab | None = None) -> OthelloBoard:
    """Reconstruct the board after a token-id move sequence."""
    vocab = vocab or MoveVocab(size)
    board = OthelloBoard(size)
    for token in moves:
        row, col = vocab.id_to_move(token)
        board.play(row, col)
    return board
