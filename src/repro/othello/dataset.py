"""Batched Othello-GPT training data: token sequences + probe targets."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .game import GameRecord, MoveVocab, random_game


@dataclass
class OthelloDataset:
    """Fixed-length, BOS-prefixed game tensors ready for the transformer.

    ``tokens[i]`` = [BOS, m_1, ..., m_T, PAD...]; positions beyond a
    game's length are padded with BOS (and masked out of all targets via
    ``lengths``).  ``board_states[i, t]`` is the flattened relative board
    after move t+1 (aligned with the input position holding move t+1, i.e.
    the transformer sees moves 1..t+1 and should know this state).
    """

    vocab: MoveVocab
    tokens: np.ndarray        # (N, L+1) int64
    lengths: np.ndarray       # (N,) moves per game
    board_states: np.ndarray  # (N, L, size*size) int64 in {0, 1, 2}
    legal_next: list[list[set[int]]]

    @property
    def seq_len(self) -> int:
        return self.tokens.shape[1]

    def lm_batch(self, indices: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """(x, y) where y is x shifted; padded target positions repeat BOS.

        Padding targets are BOS, which never occurs as a genuine target,
        so its loss contribution just teaches "emit BOS after game end" —
        harmless for the legal-move and probing analyses.
        """
        x = self.tokens[indices, :-1]
        y = self.tokens[indices, 1:]
        return x, y


def generate_dataset(
    rng: np.random.Generator, num_games: int, size: int = 6,
    max_moves: int | None = None,
) -> OthelloDataset:
    """Sample ``num_games`` random games and tensorise them."""
    vocab = MoveVocab(size)
    records: list[GameRecord] = [random_game(rng, size, vocab) for _ in range(num_games)]
    longest = max(len(r.moves) for r in records)
    limit = min(longest, max_moves) if max_moves else longest
    n = len(records)
    tokens = np.full((n, limit + 1), vocab.bos_id, dtype=np.int64)
    lengths = np.zeros(n, dtype=np.int64)
    boards = np.zeros((n, limit, size * size), dtype=np.int64)
    legal: list[list[set[int]]] = []
    for i, record in enumerate(records):
        moves = record.moves[:limit]
        tokens[i, 1 : len(moves) + 1] = moves
        lengths[i] = len(moves)
        for t in range(len(moves)):
            boards[i, t] = record.states[t].reshape(-1)
        legal.append(record.legal_next[:limit])
    return OthelloDataset(vocab=vocab, tokens=tokens, lengths=lengths,
                          board_states=boards, legal_next=legal)


def legal_move_rate(model, dataset: OthelloDataset, num_games: int | None = None,
                    positions_per_game: int | None = None,
                    rng: np.random.Generator | None = None) -> float:
    """Fraction of model argmax predictions that are legal next moves.

    The headline Othello-GPT sanity metric: a model with a working world
    model predicts (almost) only legal moves.
    """
    from ..autograd import no_grad

    n = dataset.tokens.shape[0] if num_games is None else min(num_games, len(dataset.tokens))
    hits, total = 0, 0
    with no_grad():
        for i in range(n):
            length = int(dataset.lengths[i])
            if length < 2:
                continue
            x = dataset.tokens[i : i + 1, :length]  # BOS + moves[:length-1]
            logits = model.forward(x).data[0]
            positions = range(1, length)
            if positions_per_game is not None and rng is not None:
                count = min(positions_per_game, length - 1)
                positions = sorted(rng.choice(np.arange(1, length), size=count,
                                              replace=False).tolist())
            for t in positions:
                legal = dataset.legal_next[i][t - 1]
                if not legal:
                    continue
                prediction = int(np.argmax(logits[t]))
                hits += prediction in legal
                total += 1
    if total == 0:
        raise ValueError("no scoreable positions")
    return hits / total
