"""Othello rules engine.

The §7 world-model experiment (Li et al.'s Othello-GPT) needs a full
implementation of the game: the map from move sequences to board states is
"easily computable yet very nonlocal and nonlinear", which is exactly why
probing for it is interesting.  The engine supports any even board size;
experiments default to 6x6 to keep CPU training cheap while preserving the
mechanics (8x8 is the paper's setting and fully supported).
"""

from __future__ import annotations

import numpy as np

BLACK = 1
WHITE = -1
EMPTY = 0

_DIRECTIONS = [(-1, -1), (-1, 0), (-1, 1), (0, -1), (0, 1), (1, -1), (1, 0), (1, 1)]


class OthelloBoard:
    """Mutable board state with legal-move generation and move application."""

    def __init__(self, size: int = 8):
        if size < 4 or size % 2 != 0:
            raise ValueError("board size must be an even number >= 4")
        self.size = size
        self.grid = np.zeros((size, size), dtype=np.int8)
        mid = size // 2
        self.grid[mid - 1, mid - 1] = WHITE
        self.grid[mid, mid] = WHITE
        self.grid[mid - 1, mid] = BLACK
        self.grid[mid, mid - 1] = BLACK
        self.to_move = BLACK

    def copy(self) -> "OthelloBoard":
        clone = OthelloBoard.__new__(OthelloBoard)
        clone.size = self.size
        clone.grid = self.grid.copy()
        clone.to_move = self.to_move
        return clone

    # ------------------------------------------------------------------
    def _captures(self, row: int, col: int, player: int) -> list[tuple[int, int]]:
        """All opponent stones flipped by playing at (row, col); [] if illegal."""
        if self.grid[row, col] != EMPTY:
            return []
        flips: list[tuple[int, int]] = []
        for dr, dc in _DIRECTIONS:
            line: list[tuple[int, int]] = []
            r, c = row + dr, col + dc
            while 0 <= r < self.size and 0 <= c < self.size and self.grid[r, c] == -player:
                line.append((r, c))
                r, c = r + dr, c + dc
            if line and 0 <= r < self.size and 0 <= c < self.size \
                    and self.grid[r, c] == player:
                flips.extend(line)
        return flips

    def legal_moves(self, player: int | None = None) -> list[tuple[int, int]]:
        """All squares where ``player`` (default: side to move) may play."""
        player = self.to_move if player is None else player
        moves = []
        for row in range(self.size):
            for col in range(self.size):
                if self.grid[row, col] == EMPTY and self._captures(row, col, player):
                    moves.append((row, col))
        return moves

    def is_legal(self, row: int, col: int, player: int | None = None) -> bool:
        player = self.to_move if player is None else player
        return bool(self._captures(row, col, player))

    def play(self, row: int, col: int) -> None:
        """Apply a move for the side to move; advances the turn.

        If the opponent then has no move, the turn passes back
        automatically (the pass is implicit, as in the Othello-GPT data).
        Raises ``ValueError`` on illegal moves.
        """
        player = self.to_move
        flips = self._captures(row, col, player)
        if not flips:
            raise ValueError(f"illegal move ({row}, {col}) for player {player}")
        self.grid[row, col] = player
        for r, c in flips:
            self.grid[r, c] = player
        opponent = -player
        if self._has_any_move(opponent):
            self.to_move = opponent
        elif self._has_any_move(player):
            self.to_move = player  # opponent passes
        else:
            self.to_move = EMPTY  # game over

    def _has_any_move(self, player: int) -> bool:
        for row in range(self.size):
            for col in range(self.size):
                if self.grid[row, col] == EMPTY and self._captures(row, col, player):
                    return True
        return False

    @property
    def game_over(self) -> bool:
        return self.to_move == EMPTY

    def score(self) -> tuple[int, int]:
        """(black stones, white stones)."""
        return int((self.grid == BLACK).sum()), int((self.grid == WHITE).sum())

    def relative_state(self, player: int) -> np.ndarray:
        """Board from ``player``'s perspective: 0 empty, 1 mine, 2 theirs.

        Li et al. found this "mine/theirs" encoding (rather than
        black/white) is what transformer activations encode linearly.
        """
        out = np.zeros_like(self.grid, dtype=np.int64)
        out[self.grid == player] = 1
        out[self.grid == -player] = 2
        return out

    def render(self) -> str:
        symbols = {EMPTY: ".", BLACK: "X", WHITE: "O"}
        rows = []
        for row in range(self.size):
            rows.append(" ".join(symbols[int(v)] for v in self.grid[row]))
        return "\n".join(rows)
