"""A mini BIG-bench (§4): synthetic tasks with exact graders.

Each :class:`Task` generates (input, output) text pairs and can render a
few-shot prompt — the in-context-learning format of §3.  The suite covers
the task families the paper names: arithmetic, letter manipulation
(anagrams/reversal), copying, comparison, and modular arithmetic.  All
tasks draw from a shared small alphabet so one character-level model can
be trained on a mixture and evaluated on every task.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

#: Every character any task may emit.  A single CharTokenizer over this
#: alphabet serves the whole suite.
SUITE_ALPHABET = list("0123456789abcdefghij+-*%=><|,;? \n")

_SEPARATOR = ";"  # between few-shot examples
_ARROW = "="      # between input and output


@dataclass(frozen=True)
class Example:
    """One task instance rendered as text."""

    input_text: str
    output_text: str


class Task:
    """Base class: named generator of graded text examples."""

    name: str = "task"

    def generate(self, rng: np.random.Generator, count: int) -> list[Example]:
        return [self.generate_one(rng) for _ in range(count)]

    def generate_one(self, rng: np.random.Generator) -> Example:
        raise NotImplementedError

    def grade(self, example: Example, model_output: str) -> bool:
        """Default grading: exact match up to surrounding whitespace."""
        return model_output.strip() == example.output_text.strip()


class AdditionTask(Task):
    """Single- or multi-digit addition, e.g. '23+45' -> '68'."""

    def __init__(self, digits: int = 1):
        if digits < 1:
            raise ValueError("digits must be >= 1")
        self.digits = digits
        self.name = f"addition_{digits}d"

    def generate_one(self, rng: np.random.Generator) -> Example:
        high = 10**self.digits
        a, b = int(rng.integers(0, high)), int(rng.integers(0, high))
        return Example(f"{a}+{b}", str(a + b))


class SubtractionTask(Task):
    """Non-negative subtraction, e.g. '7-3' -> '4'."""

    def __init__(self, digits: int = 1):
        self.digits = digits
        self.name = f"subtraction_{digits}d"

    def generate_one(self, rng: np.random.Generator) -> Example:
        high = 10**self.digits
        a, b = sorted((int(rng.integers(0, high)), int(rng.integers(0, high))))
        return Example(f"{b}-{a}", str(b - a))


class ModularArithmeticTask(Task):
    """'a+b%m' -> (a+b) mod m; the §4 toy-world staple."""

    def __init__(self, modulus: int = 7):
        if modulus < 2:
            raise ValueError("modulus must be >= 2")
        self.modulus = modulus
        self.name = f"mod{modulus}_addition"

    def generate_one(self, rng: np.random.Generator) -> Example:
        a = int(rng.integers(0, self.modulus))
        b = int(rng.integers(0, self.modulus))
        return Example(f"{a}+{b}%{self.modulus}", str((a + b) % self.modulus))


class CopyTask(Task):
    """Repeat the input string verbatim."""

    def __init__(self, length: int = 4, alphabet: str = "abcdefghij"):
        self.length = length
        self.alphabet = alphabet
        self.name = f"copy_{length}"

    def generate_one(self, rng: np.random.Generator) -> Example:
        s = "".join(rng.choice(list(self.alphabet), size=self.length))
        return Example(s, s)


class ReverseTask(Task):
    """Reverse the input string — letter rearrangement, per §3."""

    def __init__(self, length: int = 4, alphabet: str = "abcdefghij"):
        self.length = length
        self.alphabet = alphabet
        self.name = f"reverse_{length}"

    def generate_one(self, rng: np.random.Generator) -> Example:
        s = "".join(rng.choice(list(self.alphabet), size=self.length))
        return Example(s, s[::-1])


class SortTask(Task):
    """Sort the input letters alphabetically (anagram canonicalisation)."""

    def __init__(self, length: int = 4, alphabet: str = "abcdefghij"):
        self.length = length
        self.alphabet = alphabet
        self.name = f"sort_{length}"

    def generate_one(self, rng: np.random.Generator) -> Example:
        s = "".join(rng.choice(list(self.alphabet), size=self.length))
        return Example(s, "".join(sorted(s)))


class ComparisonTask(Task):
    """'a>b?' -> the larger number (common-sense comparison)."""

    def __init__(self, digits: int = 1):
        self.digits = digits
        self.name = f"max_{digits}d"

    def generate_one(self, rng: np.random.Generator) -> Example:
        high = 10**self.digits
        a, b = int(rng.integers(0, high)), int(rng.integers(0, high))
        return Example(f"{a}>{b}?", str(max(a, b)))


class SuccessorTask(Task):
    """Next letter in the alphabet: 'c' -> 'd' (wrapping)."""

    def __init__(self, alphabet: str = "abcdefghij"):
        self.alphabet = alphabet
        self.name = "successor"

    def generate_one(self, rng: np.random.Generator) -> Example:
        i = int(rng.integers(0, len(self.alphabet)))
        return Example(self.alphabet[i],
                       self.alphabet[(i + 1) % len(self.alphabet)])


def default_suite() -> list[Task]:
    """The standard task mixture used by the examples and benches."""
    return [
        AdditionTask(digits=1),
        SubtractionTask(digits=1),
        ModularArithmeticTask(modulus=7),
        CopyTask(length=4),
        ReverseTask(length=4),
        SortTask(length=4),
        ComparisonTask(digits=1),
        SuccessorTask(),
    ]


def render_example(example: Example) -> str:
    """One demonstration in prompt form: ``input = output``."""
    return f"{example.input_text}{_ARROW}{example.output_text}"


def few_shot_prompt(shots: list[Example], query: Example) -> str:
    """k demonstrations then the query input, ending at the '=' cue."""
    parts = [render_example(s) for s in shots]
    parts.append(f"{query.input_text}{_ARROW}")
    return _SEPARATOR.join(parts)


def mixture_text(tasks: list[Task], rng: np.random.Generator,
                 examples_per_task: int, shots: int = 3) -> str:
    """Training text: many few-shot episodes sampled across the suite.

    Each line is one complete episode (k demonstrations + completed
    query), so next-token prediction on this text teaches exactly the
    few-shot format evaluation uses.
    """
    lines: list[str] = []
    for task in tasks:
        for _ in range(examples_per_task):
            episode = task.generate(rng, shots + 1)
            lines.append(
                _SEPARATOR.join(render_example(e) for e in episode)
            )
    order = rng.permutation(len(lines))
    return "\n".join(lines[i] for i in order) + "\n"
