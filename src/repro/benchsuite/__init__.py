"""Mini BIG-bench (§4): synthetic graded tasks + evaluation harness."""

from .harness import (
    TaskScore,
    evaluate_suite,
    evaluate_task,
    leaderboard,
    shots_sweep,
)
from .tasks import (
    SUITE_ALPHABET,
    AdditionTask,
    ComparisonTask,
    CopyTask,
    Example,
    ModularArithmeticTask,
    ReverseTask,
    SortTask,
    SubtractionTask,
    SuccessorTask,
    Task,
    default_suite,
    few_shot_prompt,
    mixture_text,
    render_example,
)

__all__ = [
    "Task",
    "Example",
    "AdditionTask",
    "SubtractionTask",
    "ModularArithmeticTask",
    "CopyTask",
    "ReverseTask",
    "SortTask",
    "ComparisonTask",
    "SuccessorTask",
    "default_suite",
    "few_shot_prompt",
    "render_example",
    "mixture_text",
    "SUITE_ALPHABET",
    "TaskScore",
    "evaluate_task",
    "evaluate_suite",
    "shots_sweep",
    "leaderboard",
]
