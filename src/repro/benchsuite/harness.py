"""Benchmark harness: evaluate a character-level LM on the task suite.

This is the measurement instrument of §4 — standardized test items, model
accuracy evaluated reproducibly, results as a leaderboard-style table.
Evaluation is in-context: the model sees a k-shot prompt and must generate
the answer with no weight updates (§3's in-context learning).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..data.tokenizers import CharTokenizer
from .tasks import Task, few_shot_prompt


@dataclass
class TaskScore:
    """Per-task accuracy at one shot count (a cell in the eval grid)."""

    task_name: str
    shots: int
    correct: int
    total: int

    @property
    def accuracy(self) -> float:
        return self.correct / self.total if self.total else 0.0


def evaluate_task(
    model,
    tokenizer: CharTokenizer,
    task: Task,
    rng: np.random.Generator,
    num_queries: int = 25,
    shots: int = 3,
    max_answer_len: int = 8,
) -> TaskScore:
    """k-shot accuracy of ``model`` on ``task``.

    The model generates greedily from the prompt until the separator /
    newline; grading is the task's own (default exact-match).
    """
    stop_chars = {";", "\n"}
    correct = 0
    for _ in range(num_queries):
        episode = task.generate(rng, shots + 1)
        shots_list, query = episode[:shots], episode[shots]
        prompt = few_shot_prompt(shots_list, query)
        prompt_ids = tokenizer.encode(prompt)
        out_ids = model.generate(prompt_ids, max_answer_len, greedy=True)
        generated = tokenizer.decode(out_ids[len(prompt_ids):])
        for stop in stop_chars:
            if stop in generated:
                generated = generated.split(stop, 1)[0]
        if task.grade(query, generated):
            correct += 1
    return TaskScore(task_name=task.name, shots=shots,
                     correct=correct, total=num_queries)


def evaluate_suite(
    model,
    tokenizer: CharTokenizer,
    tasks: list[Task],
    rng: np.random.Generator,
    num_queries: int = 25,
    shots: int = 3,
) -> list[TaskScore]:
    """Score every task; returns one :class:`TaskScore` per task."""
    return [
        evaluate_task(model, tokenizer, task, rng,
                      num_queries=num_queries, shots=shots)
        for task in tasks
    ]


def shots_sweep(
    model,
    tokenizer: CharTokenizer,
    task: Task,
    rng: np.random.Generator,
    shot_counts: list[int],
    num_queries: int = 25,
) -> list[TaskScore]:
    """Accuracy as a function of the number of in-context examples."""
    return [
        evaluate_task(model, tokenizer, task, rng,
                      num_queries=num_queries, shots=k)
        for k in shot_counts
    ]


def leaderboard(scores: list[TaskScore]) -> str:
    """Plain-text leaderboard table, best tasks first."""
    rows = sorted(scores, key=lambda s: -s.accuracy)
    width = max(len(s.task_name) for s in rows)
    lines = [f"{'task':<{width}}  shots  accuracy"]
    for s in rows:
        lines.append(f"{s.task_name:<{width}}  {s.shots:>5}  {s.accuracy:>7.1%}")
    return "\n".join(lines)
