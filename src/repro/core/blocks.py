"""Transformer blocks: attention + position-wise FFN with residuals.

A block applies the two layer types of §6 in alternation — attention
(Eqs. 13-14) then an FFN applied to each position independently — each as
a residual update ("sums of these with the identity function").  Pre-layer
normalisation is the modern default; both the residuals and the pre-LN are
ablatable via the config flags.
"""

from __future__ import annotations

import numpy as np

from ..autograd import Tensor
from ..autograd.functional import dropout as dropout_fn
from ..nn import LayerNorm, Linear, Module, get_activation
from .attention import MultiHeadSelfAttention
from .config import TransformerConfig


class FeedForward(Module):
    """Position-wise FFN: Linear(p -> p_h), nonlinearity, Linear(p_h -> p).

    This is footnote 34's ``v_i = W_1 max(0, W_0 u_i + b_0) + b_1`` with a
    configurable nonlinearity (GELU by default, ReLU available).
    """

    def __init__(self, d_model: int, d_ff: int, rng: np.random.Generator,
                 activation: str = "gelu", dropout: float = 0.0):
        super().__init__()
        self.fc_in = Linear(d_model, d_ff, rng)
        self.fc_out = Linear(d_ff, d_model, rng)
        self._activation = get_activation(activation)
        self.dropout_p = dropout
        self._rng = rng

    def forward(self, x: Tensor) -> Tensor:
        h = self._activation(self.fc_in(x))
        h = self.fc_out(h)
        return dropout_fn(h, self.dropout_p, self._rng, training=self.training)


class TransformerBlock(Module):
    """One (attention, FFN) pair with residual connections and layer norm."""

    def __init__(self, config: TransformerConfig, rng: np.random.Generator):
        super().__init__()
        self.config = config
        self.ln1 = LayerNorm(config.d_model)
        self.attn = MultiHeadSelfAttention(
            config.d_model, config.num_heads, rng, dropout=config.dropout,
            window=config.attention_window, fused=config.fused,
            block_size=config.attention_block_size,
        )
        self.ln2 = LayerNorm(config.d_model)
        self.ffn = FeedForward(
            config.d_model, config.d_ff, rng,
            activation=config.activation, dropout=config.dropout,
        )

    def forward(self, x: Tensor, cache: dict | None = None,
                cache_key: str = "block") -> Tensor:
        cfg = self.config
        if cfg.pre_layernorm:
            attn_out = self.attn(self.ln1(x), cache=cache, cache_key=cache_key)
            x = x + attn_out if cfg.use_residual else attn_out
            ffn_out = self.ffn(self.ln2(x))
            x = x + ffn_out if cfg.use_residual else ffn_out
        else:  # post-LN (original Vaswani arrangement)
            attn_out = self.attn(x, cache=cache, cache_key=cache_key)
            x = self.ln1(x + attn_out if cfg.use_residual else attn_out)
            ffn_out = self.ffn(x)
            x = self.ln2(x + ffn_out if cfg.use_residual else ffn_out)
        if cache is not None:
            cache[f"{cache_key}.out"] = x.data.copy()
        return x

    def step(self, x: np.ndarray, state) -> np.ndarray:
        """Incremental-decoding counterpart of forward for one position.

        ``x`` is (B, 1, d_model); ``state`` is this block's KV cache —
        a plain dict or one :class:`repro.infer.KVCache` layer view,
        passed through to :meth:`MultiHeadSelfAttention.step` which
        handles both backends.  Plain-NumPy inference math mirroring the
        forward pass exactly.
        """

        def norm(layer, values):
            mu = values.mean(axis=-1, keepdims=True)
            var = values.var(axis=-1, keepdims=True)
            return ((values - mu) / np.sqrt(var + layer.eps)) \
                * layer.weight.data + layer.bias.data

        def ffn(values):
            from ..nn.layers import get_activation
            from ..autograd import Tensor

            h = values @ self.ffn.fc_in.weight.data + self.ffn.fc_in.bias.data
            h = self.ffn._activation(Tensor(h)).data
            return h @ self.ffn.fc_out.weight.data + self.ffn.fc_out.bias.data

        cfg = self.config
        if cfg.pre_layernorm:
            attn_out = self.attn.step(norm(self.ln1, x), state)
            x = x + attn_out if cfg.use_residual else attn_out
            ffn_out = ffn(norm(self.ln2, x))
            return x + ffn_out if cfg.use_residual else ffn_out
        attn_out = self.attn.step(x, state)
        x = norm(self.ln1, x + attn_out if cfg.use_residual else attn_out)
        ffn_out = ffn(x)
        return norm(self.ln2, x + ffn_out if cfg.use_residual else ffn_out)
