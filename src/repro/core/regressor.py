"""Transformer over continuous inputs, for in-context regression (§4, E9).

Garg et al.'s setting: the "tokens" are real vectors — alternating inputs
x_i and (padded) labels y_i — and the model is trained to predict y at the
final position.  Token embedding is replaced by a linear read-in and the
LM head by a scalar read-out; everything in between is the §6 stack.
"""

from __future__ import annotations

import numpy as np

from ..autograd import Tensor, no_grad
from ..nn import LayerNorm, Linear, Module
from .blocks import TransformerBlock
from .config import TransformerConfig
from .positional import LearnedPositional, SinusoidalPositional


class TransformerRegressor(Module):
    """Causal transformer mapping (B, T, in_dim) floats to (B, T) scalars."""

    def __init__(self, in_dim: int, config: TransformerConfig,
                 rng: np.random.Generator | int = 0):
        super().__init__()
        if isinstance(rng, (int, np.integer)):
            rng = np.random.default_rng(rng)
        self.config = config
        self.in_dim = in_dim
        self.read_in = Linear(in_dim, config.d_model, rng)
        if config.positional == "sinusoidal":
            self.positional = SinusoidalPositional(config.max_seq_len, config.d_model)
        else:
            self.positional = LearnedPositional(config.max_seq_len, config.d_model, rng)
        self.blocks = [TransformerBlock(config, rng) for _ in range(config.num_layers)]
        self.final_norm = LayerNorm(config.d_model)
        self.read_out = Linear(config.d_model, 1, rng)

    def forward(self, x: np.ndarray | Tensor) -> Tensor:
        if not isinstance(x, Tensor):
            x = Tensor(np.asarray(x, dtype=np.float64))
        if x.ndim != 3:
            raise ValueError(f"expected (B, T, in_dim) input, got shape {x.shape}")
        if x.shape[1] > self.config.max_seq_len:
            raise ValueError("sequence longer than configured window")
        h = self.positional(self.read_in(x))
        for block in self.blocks:
            h = block(h)
        h = self.final_norm(h)
        out = self.read_out(h)  # (B, T, 1)
        return out.reshape(out.shape[0], out.shape[1])

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Inference-mode forward returning a plain array."""
        was_training = self.training
        self.eval()
        try:
            with no_grad():
                out = self.forward(x)
        finally:
            if was_training:
                self.train()
        return out.data
