"""The decoder-only transformer language model (the §6 "recipe").

Pipeline per the paper: token ids -> embedding vectors (Eq. 7) + positional
encodings (Eq. 15) -> alternating attention (Eqs. 13-14) and FFN layers
with residual connections -> final projection to vocabulary logits -> the
Boltzmann distribution of Eq. 8.  Training minimises Eq. 3 with gradient
descent (Eq. 16).

``forward(ids, cache=...)`` optionally records every intermediate
activation ("contextualized embeddings", §7), which is what the
interpretability toolkit (probes, interventions, induction-head scores)
consumes.

With ``config.fused`` (the default) attention runs through the
single-node :func:`repro.autograd.fused_attention` kernel — numerically
identical to the composed-op reference, including bit-identical seeded
training trajectories.  Passing ``cache=`` (or training with attention
dropout) transparently falls back to the composed path per forward, so
activation capture always works regardless of the flag.
"""

from __future__ import annotations

import numpy as np

from ..autograd import Tensor, cross_entropy, no_grad
from ..autograd.functional import dropout as dropout_fn
from ..dtypes import dtype_scope
from ..lm.base import LanguageModel
from ..nn import Embedding, LayerNorm, Linear, Module
from .blocks import TransformerBlock
from .config import TransformerConfig
from .positional import LearnedPositional, NoPositional, SinusoidalPositional


class TransformerLM(Module, LanguageModel):
    """GPT-style autoregressive transformer over integer token ids."""

    def __init__(self, config: TransformerConfig, rng: np.random.Generator | int = 0):
        super().__init__()
        if isinstance(rng, (int, np.integer)):
            rng = np.random.default_rng(rng)
        self.config = config
        self.vocab_size = config.vocab_size
        # ``config.dtype`` scopes construction only: parameters are drawn
        # in float64 (identical RNG stream) and cast once, and every
        # forward/decode then follows the parameter dtype naturally.
        with dtype_scope(config.dtype):
            self.token_embedding = Embedding(config.vocab_size, config.d_model, rng)
            if config.positional == "learned":
                self.positional = LearnedPositional(config.max_seq_len, config.d_model, rng)
            elif config.positional == "sinusoidal":
                self.positional = SinusoidalPositional(config.max_seq_len, config.d_model)
            else:
                self.positional = NoPositional()
            self.blocks = [TransformerBlock(config, rng) for _ in range(config.num_layers)]
            self.final_norm = LayerNorm(config.d_model)
            self.lm_head = Linear(config.d_model, config.vocab_size, rng, bias=False)
        self.dropout_p = config.dropout
        self._rng = rng

    # ------------------------------------------------------------------
    # Forward / loss
    # ------------------------------------------------------------------
    def forward(self, ids: np.ndarray, cache: dict | None = None) -> Tensor:
        """Return logits of shape (B, T, V) for id array (B, T) or (T,)."""
        ids = np.asarray(ids, dtype=np.int64)
        if ids.ndim == 1:
            ids = ids[None, :]
        if ids.ndim != 2:
            raise ValueError(f"expected (B, T) or (T,) ids, got shape {ids.shape}")
        if ids.shape[1] > self.config.max_seq_len:
            raise ValueError(
                f"sequence length {ids.shape[1]} exceeds window L={self.config.max_seq_len}"
            )
        x = self.positional(self.token_embedding(ids))
        x = dropout_fn(x, self.dropout_p, self._rng, training=self.training)
        if cache is not None:
            cache["embed"] = x.data.copy()
        for i, block in enumerate(self.blocks):
            x = block(x, cache=cache, cache_key=f"block{i}")
        x = self.final_norm(x)
        if cache is not None:
            cache["final"] = x.data.copy()
        return self.lm_head(x)

    def loss(self, x: np.ndarray, y: np.ndarray) -> Tensor:
        """Eq. 3 on one (inputs, shifted-targets) batch."""
        logits = self.forward(x)
        return cross_entropy(logits, np.asarray(y, dtype=np.int64))

    # ------------------------------------------------------------------
    # LanguageModel interface
    # ------------------------------------------------------------------
    def next_token_logprobs(self, context: np.ndarray) -> np.ndarray:
        context = np.asarray(context, dtype=np.int64)
        if context.size == 0:
            # Condition on nothing: feed a window of the first vocab id and
            # read position 0's *prior* is ill-defined for a causal LM, so
            # use a single BOS-less convention: uniform over first tokens
            # seen is not available — instead run on a length-1 dummy and
            # take its unconditional column.  Practical callers always
            # provide at least one context token.
            context = np.zeros(1, dtype=np.int64)
            logits = self._last_logits(context)
            return logits - _logsumexp(logits)
        context = context[-self.config.max_seq_len :]
        logits = self._last_logits(context)
        return logits - _logsumexp(logits)

    def _last_logits(self, context: np.ndarray) -> np.ndarray:
        was_training = self.training
        self.eval()
        try:
            with no_grad():
                logits = self.forward(context[None, :])
        finally:
            if was_training:
                self.train()
        return logits.data[0, -1]

    def cross_entropy_on(self, ids: np.ndarray, seq_len: int | None = None,
                         batch_size: int = 16) -> float:
        """Efficient Eq. 3 evaluation on a held-out token stream.

        Overrides the generic one-token-at-a-time evaluation with batched
        full-window forwards (conditioning resets at window boundaries,
        the standard evaluation convention).
        """
        from ..data.corpus import sequential_batches  # local to avoid cycle

        seq_len = seq_len or self.config.max_seq_len
        was_training = self.training
        self.eval()
        total, count = 0.0, 0
        try:
            with no_grad():
                for x, y in sequential_batches(np.asarray(ids), batch_size, seq_len):
                    nll = cross_entropy(self.forward(x), y, reduction="sum")
                    total += float(nll.data)
                    count += y.size
        finally:
            if was_training:
                self.train()
        if count == 0:
            raise ValueError("held-out stream shorter than one window")
        return total / count

    def perplexity_on(self, ids: np.ndarray, seq_len: int | None = None) -> float:
        return float(np.exp(self.cross_entropy_on(ids, seq_len=seq_len)))

    # ------------------------------------------------------------------
    # KV-cache incremental decoding
    # ------------------------------------------------------------------
    def _embed_position(self, token: int, position: int) -> np.ndarray:
        """(1, 1, d) input vector for one token at an absolute position."""
        return self._embed_positions(
            np.asarray([token], dtype=np.int64), np.asarray([position], dtype=np.int64)
        )

    def _embed_positions(self, tokens: np.ndarray, positions: np.ndarray) -> np.ndarray:
        """(B, 1, d) input batch for B tokens at absolute positions."""
        tokens = np.asarray(tokens, dtype=np.int64)
        positions = np.asarray(positions, dtype=np.int64)
        x = self.token_embedding.weight.data[tokens][:, None, :].copy()
        if isinstance(self.positional, LearnedPositional):
            x += self.positional.table.weight.data[positions][:, None, :]
        elif isinstance(self.positional, SinusoidalPositional):
            x += self.positional._table[positions][:, None, :]
        return x

    def decode_step(self, tokens, positions, states) -> np.ndarray:
        """One batched KV-cached decode step: (B,) tokens -> (B, V) logits.

        ``states`` holds one per-layer cache each — either plain dicts or
        the layer views of a preallocated :class:`repro.infer.KVCache`
        (whose ``advance()`` the caller commits after this returns).
        Plain-NumPy inference math mirroring :meth:`forward` exactly for
        the newest position of every row.
        """
        x = self._embed_positions(tokens, positions)
        for block, state in zip(self.blocks, states):
            x = block.step(x, state)
        mu = x.mean(axis=-1, keepdims=True)
        var = x.var(axis=-1, keepdims=True)
        x = ((x - mu) / np.sqrt(var + self.final_norm.eps)) \
            * self.final_norm.weight.data + self.final_norm.bias.data
        return x[:, 0, :] @ self.lm_head.weight.data

    def generate_fast(
        self,
        prompt: list[int] | np.ndarray,
        max_new_tokens: int,
        rng: np.random.Generator | None = None,
        temperature: float = 1.0,
        top_k: int | None = None,
        top_p: float | None = None,
        greedy: bool = False,
        stop_token: int | None = None,
    ) -> list[int]:
        """KV-cached generation: O(T) per new token instead of O(T^2).

        Produces the same samples as :meth:`generate` (identical logits up
        to floating-point round-off, and the same ids for the same seed —
        including the stop-token convention of appending the stop token
        and halting).  Total length must fit the model's window L — the
        guard below makes every position absolute, so no sliding-window
        re-offsetting is ever needed here (the re-encoding of long
        contexts is what :meth:`generate` handles).

        Runs on the same preallocated-:class:`~repro.infer.KVCache` decode
        path as the batched :class:`~repro.infer.GenerationEngine`, as the
        batch-size-1 case.
        """
        from ..infer.kv_cache import KVCache
        from .sampling import sample_token

        ids = [int(i) for i in prompt]
        if not ids:
            raise ValueError("generate_fast requires a non-empty prompt")
        if len(ids) + max_new_tokens > self.config.max_seq_len:
            raise ValueError(
                f"prompt + max_new_tokens = {len(ids) + max_new_tokens} "
                f"exceeds window L={self.config.max_seq_len}; use generate()"
            )
        cache = KVCache.for_model(self, batch_size=1,
                                  max_seq_len=len(ids) + max_new_tokens)

        def advance(token: int, position: int) -> np.ndarray:
            logits = self.decode_step([token], [position], cache.layers)[0]
            cache.advance()
            return logits

        logits = None
        for position, token in enumerate(ids):
            logits = advance(token, position)
        for remaining in range(max_new_tokens, 0, -1):
            token = sample_token(logits, rng=rng, temperature=temperature,
                                 top_k=top_k, top_p=top_p, greedy=greedy)
            ids.append(token)
            if stop_token is not None and token == stop_token:
                break
            if remaining > 1:
                logits = advance(token, len(ids) - 1)
        return ids


def _logsumexp(v: np.ndarray) -> float:
    m = v.max()
    return float(m + np.log(np.exp(v - m).sum()))
