"""Multi-head causal self-attention (Eqs. 13-14).

Each output position i is a learned linear map W of a softmax-weighted sum
of value vectors at positions j <= i, with weights given by the Boltzmann
form ``c_ij = softmax_j(u_i . B . u_j)``.  The bilinear form B is factored
into "key" and "query" matrices (the paper's footnote 32), and H heads of
dimension q = p / H run in parallel and are concatenated.
"""

from __future__ import annotations

import numpy as np

from ..autograd import Tensor, fused_attention, softmax, split3
from ..autograd.functional import dropout as dropout_fn
from ..dtypes import f64_sum
from ..nn import Linear, Module

_MASK_VALUE = -1e9

# Mask arrays keyed by (seq_len, window, dtype).  Every layer of every
# forward used to rebuild the same (T, T) triangle; masks are small and
# few distinct keys occur in a run, so cache them as read-only arrays.
# The dtype is part of the key so a float32 model gets a float32 mask —
# adding a float64 mask to float32 scores would upcast the whole score
# tensor.  Bounded so pathological callers can't grow it forever.
_MASK_CACHE: dict[tuple[int, int | None, str], np.ndarray] = {}
_MASK_CACHE_MAX = 64


def causal_mask(seq_len: int, window: int | None = None,
                dtype=np.float64) -> np.ndarray:
    """Additive (1, 1, T, T) mask: 0 on allowed pairs, -1e9 elsewhere.

    Implements the j <= i restriction of Eq. 13 that makes the model
    autoregressive (footnote 33).  With ``window`` set, position i may
    additionally only attend to the last ``window`` positions — the
    local/sparse-attention variant §6 cites (Child et al.) as the standard
    fix for the O(L^2) cost; compute here stays dense (NumPy), but the
    *connectivity* matches.

    ``dtype`` should match the scores the mask is added to (-1e9 is
    exactly representable in float32, so masking semantics are identical
    at either precision).  Results are cached per
    ``(seq_len, window, dtype)`` and returned as shared **read-only**
    arrays — do not mutate; copy first if you must.
    """
    if window is not None and window < 1:
        raise ValueError("attention window must be >= 1")
    dtype = np.dtype(dtype)
    key = (seq_len, window, dtype.str)
    cached = _MASK_CACHE.get(key)
    if cached is not None:
        return cached
    mask = np.triu(np.full((seq_len, seq_len), _MASK_VALUE, dtype=dtype), k=1)
    if window is not None:
        mask += np.tril(np.full((seq_len, seq_len), _MASK_VALUE, dtype=dtype),
                        k=-window)
    mask = mask[None, None, :, :]
    mask.setflags(write=False)
    if len(_MASK_CACHE) >= _MASK_CACHE_MAX:
        _MASK_CACHE.clear()
    _MASK_CACHE[key] = mask
    return mask


class MultiHeadSelfAttention(Module):
    """H parallel attention heads followed by an output projection."""

    def __init__(
        self,
        d_model: int,
        num_heads: int,
        rng: np.random.Generator,
        dropout: float = 0.0,
        causal: bool = True,
        window: int | None = None,
        fused: bool = True,
        block_size: int | None = None,
    ):
        super().__init__()
        if d_model % num_heads != 0:
            raise ValueError("d_model must be divisible by num_heads")
        self.d_model = d_model
        self.num_heads = num_heads
        self.head_dim = d_model // num_heads
        self.causal = causal
        self.window = window
        self.dropout_p = dropout
        self.fused = fused
        self.block_size = block_size
        self._rng = rng
        # Fused query/key/value projection (the factored B of Eq. 14) and
        # the output map W of Eq. 13.
        self.qkv = Linear(d_model, 3 * d_model, rng)
        self.proj = Linear(d_model, d_model, rng)

    def forward(self, x: Tensor, cache: dict | None = None,
                cache_key: str = "attn") -> Tensor:
        """Eqs. 13-14 over a (B, T, d_model) batch.

        Two numerically equivalent execution paths: the default **fused**
        kernel (:func:`repro.autograd.fused_attention` fed by
        :func:`~repro.autograd.split3`, one graph node for the whole
        softmax-attention) and the **composed** reference built from
        primitive ops.  The composed path is kept for attention-weights
        capture (``cache=`` needs the intermediate softmax, which the
        fused node never materialises as a Tensor) and for attention
        dropout during training (the fused node has no hook between the
        softmax and the weighted sum).
        """
        batch, seq_len, _ = x.shape
        qkv = self.qkv(x)  # (B, T, 3C)
        use_fused = (
            self.fused
            and cache is None
            and not (self.training and self.dropout_p > 0.0)
        )
        mask = (
            causal_mask(seq_len, window=self.window, dtype=qkv.data.dtype)
            if self.causal else None
        )
        if use_fused:
            q, k, v = split3(qkv, axis=-1)
            out = fused_attention(
                q, k, v, self.num_heads,
                mask=mask,
                scale=1.0 / np.sqrt(self.head_dim),
                block_size=self.block_size,
            )
            return self.proj(out)

        q = qkv[:, :, : self.d_model]
        k = qkv[:, :, self.d_model : 2 * self.d_model]
        v = qkv[:, :, 2 * self.d_model :]

        def split_heads(t: Tensor) -> Tensor:
            return t.reshape(batch, seq_len, self.num_heads, self.head_dim).transpose(0, 2, 1, 3)

        q, k, v = split_heads(q), split_heads(k), split_heads(v)  # (B, H, T, q)
        scores = (q @ k.swapaxes(-1, -2)) * (1.0 / np.sqrt(self.head_dim))
        if self.causal:
            scores = scores + Tensor(mask)
        weights = softmax(scores, axis=-1)  # the c_ij of Eq. 14
        if cache is not None:
            cache[f"{cache_key}.weights"] = weights.data.copy()
        weights = dropout_fn(weights, self.dropout_p, self._rng, training=self.training)
        out = weights @ v  # (B, H, T, q): the weighted sums of Eq. 13
        out = out.transpose(0, 2, 1, 3).reshape(batch, seq_len, self.d_model)
        return self.proj(out)

    def step(self, x_last: np.ndarray, state) -> np.ndarray:
        """Incremental decoding: one new position against cached keys/values.

        ``x_last`` is the (B, 1, d_model) input for the newest position;
        ``state`` persists this layer's K/V between calls.  Two cache
        backends are supported:

        - a plain ``dict`` (the original single-sequence path), which
          concatenates per step and — with a local-attention ``window`` —
          is trimmed to the last ``window`` positions so long generations
          hold O(window) memory instead of growing without bound;
        - a preallocated layer view with an ``append(k, v)`` method
          (:class:`repro.infer.KVCache` layers), which writes in place and
          may return an additive key-position mask for ragged batches.

        Inference-only plain-NumPy math — per-token cost O(T) instead of
        the O(T^2) of re-running the full forward.
        """
        batch = x_last.shape[0]
        qkv = x_last.reshape(batch, -1) @ self.qkv.weight.data + self.qkv.bias.data
        q, k, v = np.split(qkv, 3, axis=-1)

        def heads(t: np.ndarray) -> np.ndarray:
            return t.reshape(batch, self.num_heads, self.head_dim)

        q, k, v = heads(q), heads(k), heads(v)  # (B, H, hd)
        if isinstance(state, dict):
            if "k" in state:
                state["k"] = np.concatenate([state["k"], k[:, :, None, :]], axis=2)
                state["v"] = np.concatenate([state["v"], v[:, :, None, :]], axis=2)
            else:
                state["k"] = k[:, :, None, :]
                state["v"] = v[:, :, None, :]
            if self.window is not None and state["k"].shape[2] > self.window:
                state["k"] = state["k"][:, :, -self.window :, :]
                state["v"] = state["v"][:, :, -self.window :, :]
            keys, values = state["k"], state["v"]  # (B, H, t, hd)
            mask = None
        else:
            keys, values, mask = state.append(k, v)
        # float(): a np.float64 divisor would upcast float32 scores (NEP 50
        # keeps numpy scalars strong); a Python float follows the array.
        scores = np.einsum("bhd,bhtd->bht", q, keys) / float(np.sqrt(self.head_dim))
        if mask is not None:
            scores = scores + mask[:, None, :]
        scores -= scores.max(axis=-1, keepdims=True)
        exp = np.exp(scores)
        attn = exp / f64_sum(exp, axis=-1, keepdims=True)
        out = np.einsum("bht,bhtd->bhd", attn, values)
        out = out.reshape(batch, self.d_model)
        out = out @ self.proj.weight.data + self.proj.bias.data
        return out[:, None, :]
