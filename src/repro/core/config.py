"""Transformer hyperparameters (the quantities listed at the end of §6).

The paper's symbols map to fields as: embedding dimension p -> ``d_model``,
hidden dimension p_h -> ``d_ff`` (default 4p, as in GPT-3), window length
L -> ``max_seq_len``, number of heads H -> ``num_heads``, and depth D ->
``num_layers`` blocks (each block containing one attention and one FFN
layer, so the paper's layer count is ``2 * num_layers``).
"""

from __future__ import annotations

from dataclasses import dataclass, field, asdict


@dataclass
class TransformerConfig:
    """Architecture hyper-parameters in the paper's §2 notation (L, p, H, D).

    Validated on construction; the ablation switches (positional scheme,
    pre-LN, residuals, attention window) default to the standard GPT
    recipe.
    """

    vocab_size: int
    max_seq_len: int = 64          # L
    d_model: int = 32              # p
    num_heads: int = 4             # H   (head dim q = p / H)
    num_layers: int = 2            # D/2 blocks of (attention, FFN)
    d_ff: int | None = None        # p_h; defaults to 4 * d_model
    dropout: float = 0.0
    positional: str = "learned"    # "learned" | "sinusoidal" | "none"
    pre_layernorm: bool = True     # pre-LN residual blocks (ablatable)
    use_residual: bool = True      # residual connections (ablatable)
    activation: str = "gelu"
    attention_window: int | None = None  # local/sparse attention span (None = full)
    fused: bool = True             # fused-attention kernel (vs composed ops)
    attention_block_size: int | None = None  # flash-style row-block size (None = dense)
    dtype: str | None = None       # "float32" | "float64" | None (= policy default)

    def __post_init__(self) -> None:
        if self.d_ff is None:
            self.d_ff = 4 * self.d_model
        if self.d_model % self.num_heads != 0:
            raise ValueError(
                f"d_model={self.d_model} not divisible by num_heads={self.num_heads}"
            )
        if self.positional not in ("learned", "sinusoidal", "none"):
            raise ValueError(f"unknown positional scheme {self.positional!r}")
        if self.vocab_size < 1 or self.max_seq_len < 1:
            raise ValueError("vocab_size and max_seq_len must be positive")
        if self.attention_window is not None and self.attention_window < 1:
            raise ValueError("attention_window must be >= 1 when set")
        if self.attention_block_size is not None and self.attention_block_size < 1:
            raise ValueError("attention_block_size must be >= 1 when set")
        if self.dtype is not None and self.dtype not in ("float32", "float64"):
            raise ValueError(
                f"dtype must be 'float32', 'float64', or None, got {self.dtype!r}")

    @property
    def head_dim(self) -> int:
        return self.d_model // self.num_heads

    def to_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, d: dict) -> "TransformerConfig":
        return cls(**d)

    def approx_num_parameters(self) -> int:
        """The paper's ~12 D p^2 rule of thumb, plus embedding tables."""
        blocks = 12 * self.num_layers * self.d_model**2
        embeddings = self.vocab_size * self.d_model * 2  # in + out tables
        return blocks + embeddings
