"""The §6 transformer LLM: config, attention, blocks, GPT, sampling."""

from .attention import MultiHeadSelfAttention, causal_mask
from .blocks import FeedForward, TransformerBlock
from .config import TransformerConfig
from .gpt import TransformerLM
from .positional import (
    LearnedPositional,
    NoPositional,
    SinusoidalPositional,
    sinusoidal_positions,
)
from .regressor import TransformerRegressor
from .sampling import (
    filter_top_k,
    filter_top_p,
    logits_to_probs,
    sample_token,
)

__all__ = [
    "TransformerConfig",
    "TransformerLM",
    "TransformerRegressor",
    "MultiHeadSelfAttention",
    "causal_mask",
    "FeedForward",
    "TransformerBlock",
    "sinusoidal_positions",
    "SinusoidalPositional",
    "LearnedPositional",
    "NoPositional",
    "sample_token",
    "logits_to_probs",
    "filter_top_k",
    "filter_top_p",
]
