"""Sampling from next-token logits (Eq. 8 and its practical refinements).

Eq. 8 turns a prediction vector into a Boltzmann distribution with inverse
temperature beta = 1/T; T -> 0 recovers argmax ("greedy"), larger T
flattens the distribution.  Top-k and nucleus (top-p) filtering are the
standard truncations used by deployed LLMs.
"""

from __future__ import annotations

import numpy as np


def logits_to_probs(logits: np.ndarray, temperature: float = 1.0) -> np.ndarray:
    """Eq. 8: softmax of logits / T, computed stably."""
    if temperature <= 0:
        raise ValueError("temperature must be positive; use greedy=True for T -> 0")
    scaled = np.asarray(logits, dtype=np.float64) / temperature
    scaled -= scaled.max()
    e = np.exp(scaled)
    return e / e.sum()


def filter_top_k(logits: np.ndarray, k: int) -> np.ndarray:
    """Keep the k largest logits; set the rest to -inf."""
    if k < 1:
        raise ValueError("top_k must be >= 1")
    logits = np.asarray(logits, dtype=np.float64)
    if k >= logits.size:
        return logits.copy()
    threshold = np.partition(logits, -k)[-k]
    out = logits.copy()
    out[out < threshold] = -np.inf
    return out


def filter_top_p(logits: np.ndarray, p: float, temperature: float = 1.0) -> np.ndarray:
    """Nucleus filtering: keep the smallest set of tokens with mass >= p."""
    if not 0.0 < p <= 1.0:
        raise ValueError("top_p must be in (0, 1]")
    logits = np.asarray(logits, dtype=np.float64)
    probs = logits_to_probs(logits, temperature)
    order = np.argsort(-probs)
    cumulative = np.cumsum(probs[order])
    cutoff = int(np.searchsorted(cumulative, p)) + 1
    keep = order[:cutoff]
    out = np.full_like(logits, -np.inf)
    out[keep] = logits[keep]
    return out


def sample_token(
    logits: np.ndarray,
    rng: np.random.Generator | None = None,
    temperature: float = 1.0,
    top_k: int | None = None,
    top_p: float | None = None,
    greedy: bool = False,
) -> int:
    """Draw one token id from next-token ``logits``.

    ``greedy=True`` is the beta -> infinity / argmax limit of Eq. 8 and
    needs no randomness; otherwise ``rng`` is required.
    """
    logits = np.asarray(logits, dtype=np.float64)
    if logits.ndim != 1:
        raise ValueError("sample_token expects a 1-D logits vector")
    if greedy:
        return int(np.argmax(logits))
    if rng is None:
        raise ValueError("rng is required for stochastic sampling")
    if top_k is not None:
        logits = filter_top_k(logits, top_k)
    if top_p is not None:
        logits = filter_top_p(logits, top_p, temperature)
    probs = logits_to_probs(logits, temperature)
    return int(rng.choice(len(probs), p=probs))
