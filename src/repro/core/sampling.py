"""Sampling from next-token logits (Eq. 8 and its practical refinements).

Eq. 8 turns a prediction vector into a Boltzmann distribution with inverse
temperature beta = 1/T; T -> 0 recovers argmax ("greedy"), larger T
flattens the distribution.  Top-k and nucleus (top-p) filtering are the
standard truncations used by deployed LLMs.

Every function here accepts either a single ``(V,)`` logit vector or a
batch of ``(B, V)`` rows and treats the last axis as the vocabulary; the
batched forms are what the ``repro.infer`` engine uses to sample one token
for every active sequence per decode step.  ``sample_token`` consumes
exactly one uniform draw per row, in row order, so a batch of one is
bit-identical to the single-sequence path under the same RNG state.

Sampling is deliberately **pinned to float64** regardless of the process
dtype policy: logits are upcast on entry (see ``_as_logit_array``), so
probability normalisation, top-k/top-p cutoffs, and the inverse-CDF draw
behave identically whether the model computed in float32 or float64.
This keeps RNG consumption dtype-independent; the upcast of one (B, V)
row per step is noise next to the decode matmuls it follows.
"""

from __future__ import annotations

import numpy as np


def _as_logit_array(logits: np.ndarray, name: str) -> tuple[np.ndarray, bool]:
    """Return ``(rows, was_1d)`` with ``rows`` always of shape (B, V)."""
    logits = np.asarray(logits, dtype=np.float64)
    if logits.ndim == 1:
        return logits[None, :], True
    if logits.ndim == 2:
        return logits, False
    raise ValueError(f"{name} expects (V,) or (B, V) logits, got shape {logits.shape}")


def logits_to_probs(logits: np.ndarray, temperature: float = 1.0) -> np.ndarray:
    """Eq. 8: softmax of logits / T along the last axis, computed stably."""
    if temperature <= 0:
        raise ValueError("temperature must be positive; use greedy=True for T -> 0")
    scaled = np.asarray(logits, dtype=np.float64) / temperature
    scaled = scaled - scaled.max(axis=-1, keepdims=True)
    e = np.exp(scaled)
    return e / e.sum(axis=-1, keepdims=True)


def filter_top_k(logits: np.ndarray, k: int) -> np.ndarray:
    """Keep exactly the k largest logits per row; set the rest to -inf.

    Ties at the k-th value are broken by (arbitrary but deterministic)
    argpartition order, so exactly k entries survive — a thresholding rule
    like ``out[out < threshold] = -inf`` would instead keep *every* logit
    tied with the k-th and sample from more than k tokens.
    """
    if k < 1:
        raise ValueError("top_k must be >= 1")
    logits = np.asarray(logits, dtype=np.float64)
    if k >= logits.shape[-1]:
        return logits.copy()
    keep = np.argpartition(logits, -k, axis=-1)[..., -k:]
    out = np.full_like(logits, -np.inf)
    np.put_along_axis(out, keep, np.take_along_axis(logits, keep, axis=-1), axis=-1)
    return out


def filter_top_p(logits: np.ndarray, p: float, temperature: float = 1.0) -> np.ndarray:
    """Nucleus filtering: keep the smallest set of tokens with mass >= p.

    Applied independently to each row of ``(B, V)`` logits.
    """
    if not 0.0 < p <= 1.0:
        raise ValueError("top_p must be in (0, 1]")
    rows, was_1d = _as_logit_array(logits, "filter_top_p")
    probs = logits_to_probs(rows, temperature)
    order = np.argsort(-probs, axis=-1)
    cumulative = np.cumsum(np.take_along_axis(probs, order, axis=-1), axis=-1)
    # Number of sorted entries kept per row: all with cumulative mass < p,
    # plus the one that crosses the threshold.
    cutoff = (cumulative < p).sum(axis=-1, keepdims=True) + 1
    keep = np.arange(rows.shape[-1])[None, :] < cutoff
    sorted_logits = np.take_along_axis(rows, order, axis=-1)
    out = np.full_like(rows, -np.inf)
    np.put_along_axis(out, order, np.where(keep, sorted_logits, -np.inf), axis=-1)
    return out[0] if was_1d else out


def sampling_probs(
    logits: np.ndarray,
    temperature: float = 1.0,
    top_k: int | None = None,
    top_p: float | None = None,
) -> np.ndarray:
    """The exact distribution :func:`sample_token` draws from.

    Applies the same filter pipeline (top-k, then nucleus, then the
    Eq. 8 softmax at ``temperature``) and returns the resulting
    probability rows — ``(V,)`` for a 1-D input, ``(B, V)`` for a
    batch.  Speculative decoding uses this for both sides of the
    rejection-sampling identity: the target's modified distribution
    ``p`` and the draft's proposal distribution ``q`` must be computed
    by the very pipeline the baseline sampler uses, or acceptance
    would be measured against a distribution nobody samples from.
    """
    rows, was_1d = _as_logit_array(logits, "sampling_probs")
    if top_k is not None:
        rows = filter_top_k(rows, top_k)
    if top_p is not None:
        rows = filter_top_p(rows, top_p, temperature)
    probs = logits_to_probs(rows, temperature)
    return probs[0] if was_1d else probs


def sample_from_probs(probs: np.ndarray, rng: np.random.Generator) -> int:
    """One inverse-CDF draw from a ``(V,)`` probability vector.

    Mirrors :func:`sample_token`'s CDF construction (normalise by the
    final cumulative value, ``searchsorted`` with ``side="right"``) so
    a draw from ``sampling_probs(logits)`` consumes the RNG exactly
    like ``sample_token(logits)`` would.
    """
    cdf = np.cumsum(np.asarray(probs, dtype=np.float64))
    cdf /= cdf[-1]
    return int(np.searchsorted(cdf, rng.random(), side="right"))


def sample_token(
    logits: np.ndarray,
    rng: np.random.Generator | None = None,
    temperature: float = 1.0,
    top_k: int | None = None,
    top_p: float | None = None,
    greedy: bool = False,
) -> int | np.ndarray:
    """Draw one token id per row of next-token ``logits``.

    A 1-D ``(V,)`` input returns a plain ``int``; a 2-D ``(B, V)`` input
    returns an ``(B,)`` int64 array with one independent draw per row,
    consumed from ``rng`` in row order.  ``greedy=True`` is the
    beta -> infinity / argmax limit of Eq. 8 and needs no randomness;
    otherwise ``rng`` is required.
    """
    rows, was_1d = _as_logit_array(logits, "sample_token")
    if greedy:
        tokens = np.argmax(rows, axis=-1).astype(np.int64)
        return int(tokens[0]) if was_1d else tokens
    if rng is None:
        raise ValueError("rng is required for stochastic sampling")
    if top_k is not None:
        rows = filter_top_k(rows, top_k)
    if top_p is not None:
        rows = filter_top_p(rows, top_p, temperature)
    probs = logits_to_probs(rows, temperature)
    # Inverse-CDF sampling, mirroring np.random.Generator.choice exactly so
    # existing seeds keep producing the same streams.
    cdf = np.cumsum(probs, axis=-1)
    cdf /= cdf[:, -1:]
    uniform = rng.random(rows.shape[0])
    tokens = np.fromiter(
        (np.searchsorted(cdf[i], uniform[i], side="right") for i in range(rows.shape[0])),
        dtype=np.int64,
        count=rows.shape[0],
    )
    return int(tokens[0]) if was_1d else tokens
