"""Positional encodings.

Attention alone is permutation-invariant (§6), so the order of the input
list must be injected explicitly.  Two schemes from the paper:

* :func:`sinusoidal_positions` — the fixed sine/cosine basis of Eq. 15
  (Vaswani et al.);
* :class:`LearnedPositional` — "one could instead treat these vectors as
  learnable parameters".
"""

from __future__ import annotations

import numpy as np

from ..autograd import Tensor
from ..dtypes import default_dtype
from ..nn import Embedding, Module


def sinusoidal_positions(max_len: int, dim: int, base: float = 10000.0) -> np.ndarray:
    """The Eq. 15 table: row ``pos`` holds the encoding of position ``pos``.

    Pairs ``(e_{2i-1}, e_{2i}) = (cos, sin)(pos / base^{2i/dim})``.
    """
    if dim % 2 != 0:
        raise ValueError("sinusoidal positional dimension must be even")
    positions = np.arange(max_len)[:, None].astype(np.float64)
    i = np.arange(1, dim // 2 + 1)[None, :].astype(np.float64)
    angle = positions / base ** (2 * i / dim)
    table = np.empty((max_len, dim))
    table[:, 0::2] = np.cos(angle)
    table[:, 1::2] = np.sin(angle)
    return table


class SinusoidalPositional(Module):
    """Adds the fixed Eq. 15 table to the input embeddings."""

    def __init__(self, max_len: int, dim: int):
        super().__init__()
        # Built in float64 (the trig math), stored in the policy dtype so
        # the add in ``forward`` never upcasts float32 embeddings.
        self._table = np.asarray(sinusoidal_positions(max_len, dim),
                                 dtype=default_dtype())
        self.max_len = max_len

    def forward(self, x: Tensor) -> Tensor:
        seq_len = x.shape[-2]
        if seq_len > self.max_len:
            raise ValueError(f"sequence length {seq_len} exceeds max {self.max_len}")
        return x + Tensor(self._table[:seq_len])


class LearnedPositional(Module):
    """Adds a trainable position-embedding table to the input embeddings."""

    def __init__(self, max_len: int, dim: int, rng: np.random.Generator):
        super().__init__()
        self.table = Embedding(max_len, dim, rng)
        self.max_len = max_len

    def forward(self, x: Tensor) -> Tensor:
        seq_len = x.shape[-2]
        if seq_len > self.max_len:
            raise ValueError(f"sequence length {seq_len} exceeds max {self.max_len}")
        return x + self.table(np.arange(seq_len))


class NoPositional(Module):
    """Identity — used to demonstrate the permutation-invariance failure."""

    def forward(self, x: Tensor) -> Tensor:
        return x
