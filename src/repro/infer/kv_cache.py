"""Preallocated KV cache for batched incremental decoding.

The naive KV cache in :meth:`MultiHeadSelfAttention.step` grows its state
with ``np.concatenate`` every step — an O(t) allocation + memcpy per token,
O(T^2) per generation.  :class:`KVCache` instead allocates one
``(layers, B, H, L, head_dim)`` pair of buffers up front and appends
in place, so a decode step costs one row-write per layer and attention
reads are zero-copy views whenever every slot is active.

Slots are independent sequences: the engine resets a slot's length to 0
when a finished sequence is retired and a queued prompt takes its place
(continuous batching), overwriting the stale keys in place.  Rows may sit
at different sequence lengths; the per-layer :meth:`LayerKV.append`
returns an additive ``(B, t)`` mask (0 on valid key positions, -inf
elsewhere) whenever lengths are ragged, and ``None`` — the exact
single-sequence code path — when they agree.

With a local-attention ``window`` the buffer stays linear (bounded by the
model window L, which every admitted sequence must fit) and reads slice
the last ``window`` positions, matching the banded mask of
:func:`repro.core.attention.causal_mask`.

This dense cache allocates ``slots x max_len`` positions up front whether
or not they are ever written; its paged sibling
:class:`repro.infer.PagedKVCache` allocates fixed-size pages on demand
from a shared pool (and shares identical prompt prefixes between slots).
Both backends hand out layer states with the same ``append(k, v)``
contract, so the attention step path cannot tell them apart — and the
engine is bit-identical on either.
"""

from __future__ import annotations

import numpy as np

from ..dtypes import resolve_dtype


def kv_value_dtype(model=None, dtype=None) -> np.dtype:
    """The single policy point for KV pool *value* dtype (both backends).

    Resolution order: an explicit ``dtype`` argument wins; otherwise the
    ``model``'s parameter dtype (so a float32 model gets a float32 pool —
    half the KV bytes per page/slot); otherwise the process policy
    default.  Dense :class:`KVCache` and :class:`~repro.infer.PagedKVCache`
    both route through here so the two backends cannot drift.  Index and
    bookkeeping arrays (lengths, block tables, free lists, refcounts)
    stay int64 regardless — they hold positions, not activations.
    """
    if dtype is not None:
        return resolve_dtype(dtype)
    if model is not None and hasattr(model, "param_dtype"):
        return model.param_dtype()
    return resolve_dtype(None)


def ragged_key_mask(new_lens: np.ndarray, lo: int, t_max: int,
                    window: int | None, dtype=np.float64) -> np.ndarray | None:
    """Additive ``(n, t_max - lo)`` key mask for rows at mixed lengths.

    Returns ``None`` when every row sits at ``t_max`` (uniform lengths
    need no masking — the exact single-sequence code path).  Shared by
    the dense and paged cache backends so their masks are bit-identical
    by construction: 0 on positions a row may attend to, ``-inf`` on
    unwritten tails and (with a local-attention ``window``) positions
    that have slid out of the row's band.  ``dtype`` should match the
    attention scores the mask is added to, so a float32 decode step is
    not upcast by its mask.
    """
    if int(new_lens.min()) == t_max:
        return None
    positions = lo + np.arange(t_max - lo)
    valid = positions[None, :] < new_lens[:, None]
    if window is not None:
        valid &= positions[None, :] >= new_lens[:, None] - window
    return np.where(valid, 0.0, -np.inf).astype(dtype, copy=False)


class LayerKV:
    """One layer's view of the shared cache; the ``state`` handed to
    :meth:`MultiHeadSelfAttention.step`."""

    __slots__ = ("_cache", "_layer")

    def __init__(self, cache: "KVCache", layer: int):
        self._cache = cache
        self._layer = layer

    def append(self, k: np.ndarray, v: np.ndarray):
        """Write this step's (n, H, head_dim) keys/values in place.

        Returns ``(keys, values, mask)`` where keys/values cover every
        cached position the active rows may attend to — including the
        entries just written — and ``mask`` is an additive ``(n, t)``
        array (or ``None`` when all rows share one length and need no
        masking).
        """
        cache = self._cache
        kb = cache._k[self._layer]
        vb = cache._v[self._layer]
        active = cache._active
        lens = cache.lengths[active]
        kb[active, :, lens, :] = k
        vb[active, :, lens, :] = v

        new_lens = lens + 1
        t_max = int(new_lens.max())
        window = cache.window
        if window is None:
            lo = 0
        else:
            lo = max(0, int(new_lens.min()) - window)
        if cache._all_active:
            keys = kb[:, :, lo:t_max]
            values = vb[:, :, lo:t_max]
        else:
            keys = kb[:, :, lo:t_max][active]
            values = vb[:, :, lo:t_max][active]
        return keys, values, ragged_key_mask(new_lens, lo, t_max, window,
                                             dtype=kb.dtype)


class KVCache:
    """Preallocated per-layer K/V buffers plus per-slot length bookkeeping."""

    def __init__(
        self,
        num_layers: int,
        batch_size: int,
        num_heads: int,
        max_seq_len: int,
        head_dim: int,
        window: int | None = None,
        dtype=None,
    ):
        if min(num_layers, batch_size, num_heads, max_seq_len, head_dim) < 1:
            raise ValueError("all KVCache dimensions must be >= 1")
        if window is not None and window < 1:
            raise ValueError("window must be >= 1 when set")
        dtype = kv_value_dtype(dtype=dtype)
        shape = (num_layers, batch_size, num_heads, max_seq_len, head_dim)
        self._k = np.zeros(shape, dtype=dtype)
        self._v = np.zeros(shape, dtype=dtype)
        self.batch_size = batch_size
        self.max_seq_len = max_seq_len
        self.window = window
        self.lengths = np.zeros(batch_size, dtype=np.int64)
        self.layers = [LayerKV(self, i) for i in range(num_layers)]
        self.set_active(np.arange(batch_size))

    @classmethod
    def for_model(cls, model, batch_size: int, max_seq_len: int | None = None,
                  dtype=None) -> "KVCache":
        """Size a cache from a :class:`TransformerLM`-style ``model.config``.

        The pool dtype follows the model's parameter dtype via
        :func:`kv_value_dtype` (explicit ``dtype`` overrides), so a
        float32 model gets a float32 cache — half the KV bytes.
        """
        cfg = model.config
        return cls(
            num_layers=cfg.num_layers,
            batch_size=batch_size,
            num_heads=cfg.num_heads,
            max_seq_len=max_seq_len or cfg.max_seq_len,
            head_dim=cfg.head_dim,
            window=cfg.attention_window,
            dtype=kv_value_dtype(model, dtype),
        )

    @property
    def dtype(self) -> np.dtype:
        """Value dtype of the K/V pools (index arrays are always int64)."""
        return self._k.dtype

    @property
    def nbytes(self) -> int:
        return self._k.nbytes + self._v.nbytes

    def set_active(self, slots: np.ndarray) -> None:
        """Select which slots the next append/advance operates on."""
        slots = np.asarray(slots, dtype=np.int64)
        self._active = slots
        self._all_active = slots.size == self.batch_size and bool(
            np.array_equal(slots, np.arange(self.batch_size))
        )

    def advance(self) -> None:
        """Commit one decode step: every active slot grew by one position.

        Called once per model step, after all layers have appended, so the
        layers of a block stack all write at the same position.  A slot
        already at ``max_seq_len`` raises before any buffer is corrupted
        (the append itself would also fail its bounds check).
        """
        if self._active.size and int(self.lengths[self._active].max()) >= self.max_seq_len:
            raise ValueError(f"KVCache overflow: sequence exceeds {self.max_seq_len}")
        self.lengths[self._active] += 1

    def reset_slot(self, slot: int) -> None:
        """Free a slot for reuse; stale keys are overwritten in place."""
        self.lengths[slot] = 0
