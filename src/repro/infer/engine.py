"""Continuous-batching generation engine over the preallocated KV cache.

``TransformerLM.generate_fast`` serves one prompt at a time: N users cost
N full decode loops.  :class:`GenerationEngine` instead keeps a fixed pool
of ``batch_size`` cache slots and advances *every* active sequence by one
token per model step — one batched ``decode_step`` instead of one step per
user.  Sequences are admitted from a queue, left-aligned at position 0
with their own per-slot length counters (so a short prompt starts sampling
while a long one is still prefilling), and retired independently the
moment they emit their stop token or exhaust their token budget; a queued
prompt immediately takes the freed slot (continuous batching), so the
batch stays full whenever there is work.

Sampling is configured **per request** (PR 9): each submit carries a
:class:`~repro.infer.SamplingParams` (engine-wide constructor knobs
survive as deprecated defaults), and the sampler groups slots with
identical parameters into one vectorized
:func:`repro.core.sampling.sample_token` call per group, drawing from
the engine RNG in slot order.  When every slot shares the default
parameters this collapses to exactly the old single batched call, so
existing seeds keep producing identical streams; with a single slot the
engine consumes the RNG exactly like ``generate_fast``, so a batch of
one is bit-identical to the single-sequence path for the same seed.  A
request with ``seed`` set draws from its own private RNG, making its
trajectory independent of batch composition.

Speculative decoding (PR 9): passing a
:class:`~repro.infer.SpeculativeConfig` makes every decode round draft
``k`` tokens from a cheap :class:`~repro.infer.DraftModel` (the
classical LMs in :mod:`repro.lm` via
:class:`~repro.lm.LanguageModelDraft`), verify all of them plus the
pending token in one batched ``decode_step`` laid out as a paged *span
batch* (time along the batch axis, writing into a
:meth:`~repro.infer.PagedKVCache.fork_slot` of the sequence's slot),
and keep the longest accepted prefix by rejection sampling —
:meth:`~repro.infer.PagedKVCache.promote_fork` commits the accepted
pages and rolls the rejected ones back to the pool.  Greedy requests
decode bit-identically to the non-speculative engine while emitting up
to k+1 tokens per model step; stochastic requests stay
distribution-correct (docs/SPECULATIVE.md gives the argument).

Serving telemetry (PR 2): every request is stamped through its lifecycle
— submitted, admitted to a slot, first sampled token, finished — so each
:class:`GenerationResult` carries a :class:`RequestTiming` with queue
wait, prefill vs. decode split, time-to-first-token, and tokens/sec.
:meth:`GenerationEngine.stats` snapshots engine-level serving state
(slot occupancy, queue depth, steps, sampled tokens).  Passing an
:class:`~repro.obs.Observability` additionally emits per-step spans,
``engine.*`` metrics, and request lifecycle events; the stamps never
touch the RNG stream, so instrumented decoding stays bit-identical.

KV backends (PR 8): the engine runs on the paged
:class:`~repro.infer.PagedKVCache` by default — admission reserves KV
*pages* instead of assuming a dense ``slots x max_len`` buffer, prompts
sharing a cached prefix skip the covered prefill positions, retirement
and :meth:`GenerationEngine.cancel` return pages to the pool, and an
oversubscribed pool preempts the youngest sequence instead of crashing
mid-decode.  ``paged=False`` restores the dense cache; the two produce
bit-identical trajectories on non-shared workloads (docs/KV_CACHE.md
gives the argument, tests/test_infer_engine.py the proof).
"""

from __future__ import annotations

import time
import warnings
from collections import deque
from dataclasses import dataclass, replace

import numpy as np

from ..core.sampling import sample_token
from ..obs import NULL_OBS, Observability
from .kv_cache import KVCache
from .paged_kv import PagedKVCache
from .sampling_params import SamplingParams
from .speculative import SpeculativeConfig, verify_draft


class PromptLimitError(ValueError):
    """A request that can never fit: structured rejection for serving.

    Raised by :meth:`GenerationEngine.submit` with a ``limits`` dict
    (prompt_len, max_new_tokens, the cache's max_seq_len, and — under a
    paged cache — pool capacity) so the HTTP layer can return the same
    structured 400 on the blocking and streaming paths instead of each
    reformatting a bare string.
    """

    def __init__(self, message: str, limits: dict):
        super().__init__(message)
        self.limits = limits


@dataclass
class RequestTiming:
    """Lifecycle stamps for one request (``time.perf_counter`` seconds)."""

    submitted: float
    admitted: float
    first_token: float
    finished: float
    new_tokens: int

    @property
    def queue_wait_s(self) -> float:
        """Time spent queued before a cache slot freed up."""
        return self.admitted - self.submitted

    @property
    def ttft_s(self) -> float:
        """Submit-to-first-sampled-token latency (the user-felt number)."""
        return self.first_token - self.submitted

    @property
    def prefill_s(self) -> float:
        """Admission to first sampled token: prompt ingestion cost."""
        return self.first_token - self.admitted

    @property
    def decode_s(self) -> float:
        """First sampled token to completion: steady-state decoding."""
        return self.finished - self.first_token

    @property
    def tokens_per_sec(self) -> float:
        """Generated tokens over on-engine time (excludes queue wait)."""
        elapsed = self.finished - self.admitted
        return self.new_tokens / elapsed if elapsed > 0 else 0.0


@dataclass
class GenerationResult:
    """One finished sequence, in ``generate_fast`` conventions."""

    request_id: int
    tokens: list[int]            # prompt + completion, stop token included
    prompt_len: int
    finish_reason: str           # "stop_token" | "length"
    steps: int = 0               # decode steps spent on this sequence
    timing: RequestTiming | None = None
    params: SamplingParams | None = None   # resolved per-request params

    @property
    def completion(self) -> list[int]:
        return self.tokens[self.prompt_len:]


@dataclass
class _Sequence:
    """In-flight bookkeeping for one slot."""

    request_id: int
    tokens: list[int]            # prompt, then sampled tokens as they land
    prompt_len: int
    max_new_tokens: int
    params: SamplingParams
    rng: np.random.Generator | None = None  # private stream when seeded
    fed: int = 0                 # how many of ``tokens`` the model has seen
    steps: int = 0
    submitted_t: float = 0.0
    admitted_t: float = 0.0
    first_token_t: float | None = None
    trace_ctx: object | None = None   # TraceContext of the request root span


class GenerationEngine:
    """Batched KV-cached decoding for a :class:`TransformerLM`-style model.

    The model only needs ``config`` (for sizing the cache) and
    ``decode_step(tokens, positions, states) -> (B, V) logits``.
    Sampling is configured per request via
    :class:`~repro.infer.SamplingParams` (``params=`` on
    :meth:`submit`); ``params=`` on the constructor sets the default for
    requests that do not carry their own.  The engine-wide
    ``temperature``/``top_k``/``top_p``/``greedy``/``stop_token``
    arguments survive as a deprecated spelling of that default and emit
    a :class:`DeprecationWarning`.  ``speculative=`` (a
    :class:`~repro.infer.SpeculativeConfig`) turns on draft-and-verify
    decoding over the paged cache.
    """

    def __init__(
        self,
        model,
        batch_size: int = 8,
        rng: np.random.Generator | None = None,
        temperature: float | None = None,
        top_k: int | None = None,
        top_p: float | None = None,
        greedy: bool | None = None,
        stop_token: int | None = None,
        obs: Observability | None = None,
        on_token=None,
        paged: bool = True,
        kv_page_size: int = 16,
        kv_num_pages: int | None = None,
        prefix_cache: bool = True,
        params: SamplingParams | None = None,
        speculative: SpeculativeConfig | None = None,
    ):
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        self.model = model
        self.batch_size = batch_size
        self.rng = rng
        legacy = {"temperature": temperature, "top_k": top_k,
                  "top_p": top_p, "greedy": greedy, "stop_token": stop_token}
        passed = {name: value for name, value in legacy.items()
                  if value is not None}
        if passed:
            warnings.warn(
                "engine-wide sampling arguments (temperature/top_k/top_p/"
                "greedy/stop_token) are deprecated; pass "
                "params=SamplingParams(...) as the engine default or "
                "per-request via submit(..., params=...)",
                DeprecationWarning, stacklevel=2)
            if params is not None:
                raise ValueError(
                    "pass the sampling default via params= or the "
                    "deprecated engine-wide arguments, not both")
            params = SamplingParams(**passed)
        self.default_params = params if params is not None else SamplingParams()
        # Per-token hook for streaming consumers (the serving layer):
        # called as on_token(request_id, token) for every sampled token,
        # stop tokens included, after the token lands on the sequence.
        # Runs inside step(), so callbacks must be cheap and must never
        # touch the engine's RNG.
        self.on_token = on_token
        # Paged is the default backend: same bits out (see
        # docs/KV_CACHE.md), far less memory held per short request, and
        # prefix sharing across requests.  ``paged=False`` keeps the
        # dense preallocated cache, the equivalence oracle.
        self._paged = paged
        self.spec = speculative
        if speculative is not None and not paged:
            raise ValueError(
                "speculative decoding requires the paged KV cache "
                "(fork_slot/promote_fork); drop paged=False")
        if paged:
            # Speculative mode doubles the slot count: slot i's draft
            # branch verifies on scratch slot batch_size + i.  The pool
            # is sized for the *real* batch plus per-slot speculation
            # headroom (the span's fresh pages and one copy-on-write of
            # the fork boundary page), not for 2x dense capacity.
            slots = batch_size
            num_pages = kv_num_pages
            if speculative is not None:
                slots = 2 * batch_size
                if num_pages is None:
                    per_slot = -(-model.config.max_seq_len // kv_page_size)
                    margin = -(-(speculative.k + 1) // kv_page_size) + 1
                    num_pages = batch_size * (per_slot + margin)
            self.cache = PagedKVCache.for_model(
                model, slots, page_size=kv_page_size,
                num_pages=num_pages, prefix_sharing=prefix_cache)
        else:
            self.cache = KVCache.for_model(model, batch_size)
        self._slots: list[_Sequence | None] = [None] * batch_size
        self._queue: deque[_Sequence] = deque()
        self._results: list[GenerationResult] = []
        self._next_id = 0
        self.total_steps = 0
        # Serving accounting (cheap, always on; see stats()).
        self._clock = time.perf_counter
        self._active_slot_steps = 0     # sum over steps of active-slot count
        self._sampled_tokens = 0
        self._submitted = 0
        self._completed = 0
        # Observability hooks; null objects when obs is None.
        self.obs = obs
        bundle = obs if obs is not None else NULL_OBS
        self._tracer = bundle.tracer
        self._events = bundle.events
        metrics = bundle.metrics
        self._c_steps = metrics.counter("engine.steps")
        self._c_sampled = metrics.counter("engine.sampled_tokens")
        self._g_active = metrics.gauge("engine.active_slots")
        self._g_queue = metrics.gauge("engine.queue_depth")
        self._h_ttft = metrics.histogram("engine.ttft_seconds")
        self._h_queue_wait = metrics.histogram("engine.queue_wait_seconds")
        self._g_pages_free = metrics.gauge("engine.kv_pages_free")
        self._g_pages_used = metrics.gauge("engine.kv_pages_used")
        self._g_pages_shared = metrics.gauge("engine.kv_pages_shared")
        # Byte gauges computed from the pool's actual itemsize (a float32
        # cache reports half the bytes of a float64 one), never an
        # assumed 8 bytes per element.
        self._g_kv_bytes_pool = metrics.gauge("engine.kv_bytes_pool")
        self._g_kv_bytes_in_use = metrics.gauge("engine.kv_bytes_in_use")
        self._c_preempt = metrics.counter("engine.preemptions")
        self._c_prefix_hit = metrics.counter("prefix_cache.hit")
        self._c_prefix_miss = metrics.counter("prefix_cache.miss")
        self._c_prefix_evict = metrics.counter("prefix_cache.evict")
        # Counters are monotonic; the prefix cache keeps running totals.
        # Track what has already been pushed (null instruments expose no
        # readable value) and emit only the delta on each sync.
        self._prefix_pushed = {"hits": 0, "misses": 0, "evictions": 0}
        self.preemptions = 0
        # Speculative accounting: drafts proposed / accepted / rejected,
        # and verify rounds (model steps that judged at least one draft).
        self.spec_proposed = 0
        self.spec_accepted = 0
        self.spec_rejected = 0
        self.spec_rounds = 0
        self._c_spec_proposed = metrics.counter("engine.spec.proposed")
        self._c_spec_accepted = metrics.counter("engine.spec.accepted")
        self._c_spec_rejected = metrics.counter("engine.spec.rejected")
        self._g_spec_rate = metrics.gauge(
            "engine.spec.accepted_tokens_per_step")

    # ------------------------------------------------------------------
    # Sampling defaults (deprecated engine-wide views + resolution)
    # ------------------------------------------------------------------
    @property
    def temperature(self) -> float:
        """Deprecated engine-wide view of ``default_params.temperature``."""
        return self.default_params.temperature

    @property
    def top_k(self) -> int | None:
        """Deprecated engine-wide view of ``default_params.top_k``."""
        return self.default_params.top_k

    @property
    def top_p(self) -> float | None:
        """Deprecated engine-wide view of ``default_params.top_p``."""
        return self.default_params.top_p

    @property
    def greedy(self) -> bool:
        """Deprecated engine-wide view of ``default_params.greedy``."""
        return self.default_params.greedy

    @property
    def stop_token(self) -> int | None:
        """Deprecated engine-wide view of ``default_params.stop_token``."""
        return self.default_params.stop_token

    def resolve_params(self, params: SamplingParams | None = None,
                       stop_token=...) -> SamplingParams:
        """The parameters a request submitted with these arguments gets.

        ``params=None`` means the engine default; an explicit
        ``stop_token`` argument (the ``...`` sentinel distinguishes
        "absent" from "disable with None") overrides whatever the chosen
        params carry, preserving the long-standing per-request override
        spelling.  The serving layer calls this to echo resolved
        parameters back to clients before the request finishes.
        """
        base = self.default_params if params is None else params
        if stop_token is not ...:
            base = replace(base, stop_token=stop_token)
        return base

    # ------------------------------------------------------------------
    # Request intake
    # ------------------------------------------------------------------
    def submit(self, prompt, max_new_tokens: int, stop_token=...,
               trace_ctx=None,
               params: SamplingParams | None = None) -> int:
        """Queue one prompt; returns its request id.

        ``params`` (a :class:`~repro.infer.SamplingParams`) carries this
        request's sampling configuration; omitted, the engine default
        applies.  ``stop_token`` defaults (via the ``...`` sentinel) to
        the chosen params' value, so an explicit ``None`` disables
        stopping for this request only — see :meth:`resolve_params`.

        ``trace_ctx`` (a :class:`~repro.obs.TraceContext`) scopes this
        request's lifecycle telemetry to an end-to-end trace: queue-wait
        / prefill / per-step decode spans are recorded under it — even
        though they complete on the decode thread, not the caller's —
        and every event for the request is stamped with its trace id.
        """
        ids = [int(i) for i in prompt]
        if not ids:
            raise ValueError("GenerationEngine requires a non-empty prompt")
        if max_new_tokens < 0:
            raise ValueError("max_new_tokens must be >= 0")
        self._check_limits(len(ids), max_new_tokens)
        resolved = self.resolve_params(params, stop_token)
        request_id = self._next_id
        self._next_id += 1
        self._submitted += 1
        now = self._clock()
        seq = _Sequence(
            request_id=request_id,
            tokens=ids,
            prompt_len=len(ids),
            max_new_tokens=max_new_tokens,
            params=resolved,
            rng=(np.random.default_rng(resolved.seed)
                 if resolved.seed is not None else None),
            submitted_t=now,
            trace_ctx=trace_ctx,
        )
        self._events.emit("request_submitted", request_id=request_id,
                          prompt_len=len(ids), max_new_tokens=max_new_tokens,
                          **self._trace_fields(trace_ctx))
        if max_new_tokens == 0:
            self._completed += 1
            self._results.append(GenerationResult(
                request_id=request_id, tokens=ids, prompt_len=len(ids),
                finish_reason="length", params=resolved,
                timing=RequestTiming(submitted=now, admitted=now,
                                     first_token=now, finished=now,
                                     new_tokens=0),
            ))
            # The request completes inline, but its lifecycle must still
            # balance: event-log consumers count submitted vs finished.
            self._events.emit(
                "request_finished", request_id=request_id,
                finish_reason="length", steps=0, new_tokens=0,
                queue_wait_s=0.0, ttft_s=0.0, decode_s=0.0,
                tokens_per_sec=0.0, **self._trace_fields(trace_ctx),
            )
        else:
            self._queue.append(seq)
        self._sync_gauges()
        return request_id

    def cancel(self, request_id: int) -> GenerationResult | None:
        """Abort a queued or in-flight request, reclaiming its slot now.

        The partial sequence (prompt plus any tokens sampled so far) is
        returned — and recorded in the drain queue — as a
        :class:`GenerationResult` with ``finish_reason="cancelled"``, so
        request accounting stays balanced (``request_finished`` is
        emitted).  Returns None when the id is unknown or already done.
        """
        seq = None
        for i, queued in enumerate(self._queue):
            if queued.request_id == request_id:
                seq = queued
                del self._queue[i]
                break
        if seq is None:
            for slot, active in enumerate(self._slots):
                if active is not None and active.request_id == request_id:
                    seq = active
                    self._slots[slot] = None
                    # Cancellation reclaims KV pages immediately — a
                    # timed-out request must not pin pool capacity.
                    self.cache.reset_slot(slot)
                    break
        if seq is None:
            return None
        now = self._clock()
        admitted = seq.admitted_t or now
        first = seq.first_token_t if seq.first_token_t is not None else now
        generated = len(seq.tokens) - seq.prompt_len
        timing = RequestTiming(submitted=seq.submitted_t, admitted=admitted,
                               first_token=first, finished=now,
                               new_tokens=generated)
        result = GenerationResult(
            request_id=seq.request_id, tokens=seq.tokens,
            prompt_len=seq.prompt_len, finish_reason="cancelled",
            steps=seq.steps, timing=timing, params=seq.params,
        )
        self._results.append(result)
        self._completed += 1
        self._events.emit(
            "request_finished", request_id=seq.request_id,
            finish_reason="cancelled", steps=seq.steps, new_tokens=generated,
            queue_wait_s=timing.queue_wait_s, ttft_s=timing.ttft_s,
            decode_s=timing.decode_s, tokens_per_sec=timing.tokens_per_sec,
            **self._trace_fields(seq.trace_ctx),
        )
        self._sync_gauges()
        return result

    def _check_limits(self, prompt_len: int, max_new_tokens: int) -> None:
        """Single source of truth for "can this request ever complete?".

        Validates against the *cache's* ``max_seq_len`` (not the model
        config read separately — the two can differ when a cache is
        sized explicitly), and under a paged cache also against total
        pool capacity.  Every ``submit`` caller — blocking and streaming
        serving paths included — hits this one check, so a borderline
        request (``prompt_len + max_new_tokens == max_seq_len``) is
        accepted or rejected identically everywhere; failures raise
        :class:`PromptLimitError` carrying the limits for a structured
        400.
        """
        total = prompt_len + max_new_tokens
        limits = {
            "prompt_len": prompt_len,
            "max_new_tokens": max_new_tokens,
            "max_seq_len": self.cache.max_seq_len,
        }
        if total > self.cache.max_seq_len:
            raise PromptLimitError(
                f"prompt + max_new_tokens = {total} exceeds window "
                f"L={self.cache.max_seq_len}", limits)
        if self._paged:
            limits["kv_num_pages"] = self.cache.num_pages
            need = self.cache.pages_for(total)
            if self.spec is not None:
                # Speculative rounds need scratch headroom on top of the
                # sequence itself: the verify span's pages plus one
                # copy-on-write of the fork boundary page.
                need += self.cache.pages_for(self.spec.k + 1) + 1
            if need > self.cache.num_pages:
                raise PromptLimitError(
                    f"prompt + max_new_tokens = {total} needs "
                    f"{need} KV pages; the pool "
                    f"holds {self.cache.num_pages}", limits)

    @staticmethod
    def _trace_fields(trace_ctx) -> dict:
        """Event fields stamping a request's trace id (empty when untraced)."""
        if trace_ctx is None:
            return {}
        return {"trace_id": trace_ctx.trace_id}

    @property
    def num_active(self) -> int:
        return sum(seq is not None for seq in self._slots)

    @property
    def num_queued(self) -> int:
        return len(self._queue)

    @property
    def has_work(self) -> bool:
        return bool(self._queue) or self.num_active > 0

    # ------------------------------------------------------------------
    # Decode loop
    # ------------------------------------------------------------------
    def _admit(self) -> None:
        now = None
        for slot in range(self.batch_size):
            if not self._queue:
                break
            if self._slots[slot] is None:
                seq = self._queue[0]
                if self._paged:
                    # Page-availability admission: attach any cached
                    # prefix pages and reserve the prompt's fresh pages;
                    # when the pool cannot supply them, keep the request
                    # (and everything behind it — FIFO) queued.
                    cached = self.cache.try_admit(slot, seq.tokens)
                    if cached is None:
                        break
                    if cached != seq.fed:
                        seq.fed = cached
                        self._events.emit(
                            "prefix_cache_hit", request_id=seq.request_id,
                            cached_tokens=cached,
                            **self._trace_fields(seq.trace_ctx))
                else:
                    self.cache.reset_slot(slot)
                self._queue.popleft()
                if now is None:
                    now = self._clock()
                seq.admitted_t = now
                self._h_queue_wait.observe(now - seq.submitted_t)
                self._events.emit("request_admitted", request_id=seq.request_id,
                                  slot=slot, queue_wait_s=now - seq.submitted_t,
                                  **self._trace_fields(seq.trace_ctx))
                if seq.trace_ctx is not None:
                    # Recorded retrospectively on the decode thread but
                    # parented under the request's root span, which lives
                    # on the submitting thread (cross-thread reparenting).
                    self._tracer.record_span(
                        "request.queue_wait", seq.submitted_t, now,
                        parent=seq.trace_ctx, request_id=seq.request_id,
                        slot=slot)
                self._slots[slot] = seq
        self._sync_gauges()

    def _relieve_page_pressure(self, active: list[int],
                               shortfall=None) -> list[int]:
        """Preempt youngest-first until the next step's pages fit the pool.

        An oversubscribed pool can run dry mid-decode: several slots hit
        a page boundary in the same step with the free list empty.
        Rather than crash (or deadlock the batch), the youngest active
        request is recompute-preempted: its pages are released and it
        re-enters the *front* of the queue with its sampled tokens kept,
        so re-admission replays deterministically — feeding the kept
        tokens consumes no RNG draws, and its own registered prefix pages
        usually make the replay a cache hit.  The oldest sequence is
        never preempted, so the engine always makes progress (a lone
        sequence fits by the :meth:`submit` capacity check).

        ``shortfall`` (a callable over the active slot list) defaults to
        the one-position-per-slot estimate; the speculative step passes
        its own span-aware bound.
        """
        if shortfall is None:
            shortfall = self.cache.step_page_shortfall
        while len(active) > 1 and shortfall(active) > 0:
            slot = max(active, key=lambda s: self._slots[s].request_id)
            seq = self._slots[slot]
            self._slots[slot] = None
            self.cache.reset_slot(slot)
            seq.fed = 0
            self._queue.appendleft(seq)
            active.remove(slot)
            self.preemptions += 1
            self._c_preempt.inc()
            self._events.emit(
                "request_preempted", request_id=seq.request_id,
                tokens_kept=len(seq.tokens),
                **self._trace_fields(seq.trace_ctx))
        return active

    def _sample_rows(self, logits: np.ndarray, rows: list[int],
                     seqs: list[_Sequence]) -> np.ndarray:
        """One token per sampling row, grouping identical params.

        Rows sharing a :attr:`SamplingParams.sampling_key` draw through
        one vectorized :func:`sample_token` call from the engine RNG, in
        slot order within the group and first-appearance order across
        groups — a batch where every row carries the default params
        collapses to exactly the single pre-params call, so existing
        seeds keep their streams.  Rows with a per-request ``seed`` draw
        from their own RNG, making their tokens independent of batch
        composition.
        """
        drawn = np.empty(len(rows), dtype=np.int64)
        groups: dict[tuple, list[int]] = {}
        for pos, seq in enumerate(seqs):
            key = ("seeded", seq.request_id) if seq.rng is not None \
                else seq.params.sampling_key
            groups.setdefault(key, []).append(pos)
        for positions in groups.values():
            seq0 = seqs[positions[0]]
            p = seq0.params
            drawn[positions] = sample_token(
                logits[[rows[pos] for pos in positions]],
                rng=seq0.rng if seq0.rng is not None else self.rng,
                temperature=p.temperature, top_k=p.top_k, top_p=p.top_p,
                greedy=p.greedy,
            )
        return drawn

    def _land_token(self, seq: _Sequence, token: int, now: float,
                    step_t0: float) -> str | None:
        """Append one sampled token to ``seq``; returns the finish
        reason ("stop_token" | "length") or None while still running."""
        seq.tokens.append(token)
        if seq.first_token_t is None:
            seq.first_token_t = now
            self._h_ttft.observe(now - seq.submitted_t)
            if seq.trace_ctx is not None:
                self._tracer.record_span(
                    "request.prefill", seq.admitted_t, now,
                    parent=seq.trace_ctx, request_id=seq.request_id,
                    prompt_len=seq.prompt_len)
        elif seq.trace_ctx is not None and self._tracer.enabled:
            # One span per decode step per traced request, covering
            # this batched model step from the request's viewpoint.
            self._tracer.record_span(
                "request.decode_step", step_t0, now,
                parent=seq.trace_ctx, request_id=seq.request_id,
                step=seq.steps)
        if self.on_token is not None:
            self.on_token(seq.request_id, token)
        if seq.params.stop_token is not None \
                and token == seq.params.stop_token:
            return "stop_token"
        if len(seq.tokens) - seq.prompt_len >= seq.max_new_tokens:
            return "length"
        return None

    def _finish_seq(self, seq: _Sequence, reason: str,
                    now: float) -> GenerationResult:
        """Build, record, and account one finished request."""
        generated = len(seq.tokens) - seq.prompt_len
        first = seq.first_token_t if seq.first_token_t is not None else now
        timing = RequestTiming(
            submitted=seq.submitted_t, admitted=seq.admitted_t,
            first_token=first, finished=now, new_tokens=generated,
        )
        result = GenerationResult(
            request_id=seq.request_id, tokens=seq.tokens,
            prompt_len=seq.prompt_len, finish_reason=reason,
            steps=seq.steps, timing=timing, params=seq.params,
        )
        self._completed += 1
        self._events.emit(
            "request_finished", request_id=seq.request_id,
            finish_reason=reason, steps=seq.steps,
            new_tokens=generated, queue_wait_s=timing.queue_wait_s,
            ttft_s=timing.ttft_s, decode_s=timing.decode_s,
            tokens_per_sec=timing.tokens_per_sec,
            **self._trace_fields(seq.trace_ctx),
        )
        return result

    def step(self) -> list[GenerationResult]:
        """Advance every active sequence; return newly finished results
        (empty list while everything is still running).

        One model step advances each sequence by one token — or, under
        a :class:`~repro.infer.SpeculativeConfig`, by up to ``k + 1``
        accepted tokens (see :meth:`_spec_step`).
        """
        if self.spec is not None:
            return self._spec_step()
        self._admit()
        active = [slot for slot in range(self.batch_size)
                  if self._slots[slot] is not None]
        if self._paged:
            active = self._relieve_page_pressure(active)
        if not active:
            return []
        sequences = [self._slots[slot] for slot in active]
        tokens = np.array([seq.tokens[seq.fed] for seq in sequences], dtype=np.int64)
        positions = np.array([seq.fed for seq in sequences], dtype=np.int64)

        self.cache.set_active(np.asarray(active, dtype=np.int64))
        step_t0 = self._clock() if self._tracer.enabled else 0.0
        with self._tracer.span("engine.step", active=len(active),
                               queued=len(self._queue)):
            logits = self.model.decode_step(tokens, positions, self.cache.layers)
        self.cache.advance()
        self.total_steps += 1
        self._active_slot_steps += len(active)
        self._c_steps.inc()
        for row, seq in enumerate(sequences):
            seq.fed += 1
            seq.steps += 1
            if self._paged and seq.fed == seq.prompt_len:
                # Prompt fully ingested: publish its full pages so later
                # requests sharing the prefix skip this work (idempotent
                # if the pages came from the cache in the first place).
                # Only the fed prefix is published — after a preemption
                # replay ``tokens`` holds sampled tokens beyond ``fed``
                # whose positions are not written yet.
                self.cache.register_prefix(active[row], seq.tokens[:seq.fed])

        # Rows that have now seen their whole sequence need a fresh token:
        # the last prompt token just went in, or the previous sample did.
        sampling = [row for row, seq in enumerate(sequences)
                    if seq.fed == len(seq.tokens)]
        finished: list[GenerationResult] = []
        if sampling:
            drawn = self._sample_rows(logits, sampling,
                                      [sequences[row] for row in sampling])
            now = self._clock()
            self._sampled_tokens += len(sampling)
            self._c_sampled.inc(len(sampling))
            for row, token in zip(sampling, (int(t) for t in drawn)):
                seq = sequences[row]
                reason = self._land_token(seq, token, now, step_t0)
                if reason is None:
                    continue
                finished.append(self._finish_seq(seq, reason, now))
                self._slots[active[row]] = None
                # Reclaim the slot's pages immediately (not lazily at
                # the next admission): prefix-cached pages drop to
                # refcount 1 and become evictable, everything else goes
                # straight back to the free list.
                self.cache.reset_slot(active[row])
        self._results.extend(finished)
        self._sync_gauges()
        return finished

    # ------------------------------------------------------------------
    # Speculative decode loop
    # ------------------------------------------------------------------
    def _spec_page_shortfall(self, active: list[int], chunk: int) -> int:
        """Upper bound on pages this speculative round needs beyond the
        pool: per slot, the span's fresh pages plus one potential
        copy-on-write of the fork boundary page."""
        cache = self.cache
        needed = 0
        for slot in active:
            seq = self._slots[slot]
            remaining = len(seq.tokens) - seq.fed
            m = chunk if remaining == 1 else min(remaining, chunk)
            end = min(seq.fed + m, cache.max_seq_len)
            fresh = cache.pages_for(end) - len(cache.block_tables[slot])
            needed += max(fresh, 0) + 1
        return needed - cache.available_pages

    def _spec_step(self) -> list[GenerationResult]:
        """One speculative round: draft, verify in one forward, commit.

        Every active slot contributes one *span* of consecutive
        positions to a single batched ``decode_step``:

        - a still-prefilling sequence feeds up to ``k + 1`` known
          tokens on its own slot (chunked prefill — same writes the
          one-position path would do, k+1 steps at a time);
        - a sequence at the decode rest point forks its slot to the
          scratch slot ``batch_size + slot``, drafts ``k'`` tokens, and
          verifies pending + drafts there; the accept-prefix rule then
          decides how much of the scratch branch
          :meth:`~repro.infer.PagedKVCache.promote_fork` keeps.

        Greedy sequences reproduce the non-speculative trajectory
        bit-for-bit: the verify rows see byte-identical histories (the
        span writes exactly what sequential steps would have written),
        and the greedy accept rule emits argmax at every position.
        """
        spec = self.spec
        chunk = spec.k + 1
        self._admit()
        active = [slot for slot in range(self.batch_size)
                  if self._slots[slot] is not None]
        active = self._relieve_page_pressure(
            active, lambda slots: self._spec_page_shortfall(slots, chunk))
        if not active:
            return []
        # Build the span plan.  Drafting happens before the forward and
        # consumes each sequence's own RNG (or the engine RNG) in slot
        # order; greedy drafting consumes none.
        plans = []   # (slot, seq, kind, row_lo, row_hi, drafts, q)
        span_specs = []
        tokens: list[int] = []
        row = 0
        for slot in active:
            seq = self._slots[slot]
            f = seq.fed
            remaining = len(seq.tokens) - f
            if remaining > 1:
                m = min(remaining, chunk)
                span_tokens = seq.tokens[f:f + m]
                span_specs.append((slot, f, m))
                plans.append((slot, seq, "feed", row, row + m, None, None))
            else:
                budget = seq.max_new_tokens - (len(seq.tokens)
                                               - seq.prompt_len)
                k = min(spec.k, budget - 1)
                if k > 0:
                    rng = seq.rng if seq.rng is not None else self.rng
                    drafts, q = spec.draft.propose(seq.tokens, k,
                                                   seq.params, rng)
                    scratch = self.batch_size + slot
                    self.cache.fork_slot(slot, scratch)
                    span_tokens = [seq.tokens[f]] + [int(d) for d in drafts]
                    span_specs.append((scratch, f, 1 + k))
                    plans.append((slot, seq, "verify", row, row + 1 + k,
                                  drafts, q))
                else:
                    # No draft budget left (the next token is the last):
                    # degrade to a plain one-position step.
                    span_tokens = [seq.tokens[f]]
                    span_specs.append((slot, f, 1))
                    plans.append((slot, seq, "feed", row, row + 1,
                                  None, None))
            tokens.extend(int(t) for t in span_tokens)
            row += len(span_tokens)

        span = self.cache.begin_spans(span_specs)
        step_t0 = self._clock() if self._tracer.enabled else 0.0
        with self._tracer.span("engine.step", active=len(active),
                               queued=len(self._queue), speculative=True,
                               rows=row):
            logits = self.model.decode_step(
                np.asarray(tokens, dtype=np.int64),
                span.new_lens - 1, span.layers)
        self.total_steps += 1
        self._active_slot_steps += len(active)
        self._c_steps.inc()
        now = self._clock()
        finished: list[GenerationResult] = []

        # Feed spans commit first and their completing rows sample
        # through the same grouped call the non-speculative step uses.
        sample_rows: list[int] = []
        sample_plans = []
        for plan in plans:
            slot, seq, kind, lo, hi, _, _ = plan
            if kind != "feed":
                continue
            old_fed = seq.fed
            seq.fed += hi - lo
            seq.steps += 1
            self.cache.commit_span(slot, seq.fed)
            if old_fed < seq.prompt_len <= seq.fed:
                self.cache.register_prefix(
                    slot, seq.tokens[:seq.prompt_len])
            if seq.fed == len(seq.tokens):
                sample_rows.append(hi - 1)
                sample_plans.append(plan)
        if sample_rows:
            drawn = self._sample_rows(logits, sample_rows,
                                      [plan[1] for plan in sample_plans])
            self._sampled_tokens += len(sample_rows)
            self._c_sampled.inc(len(sample_rows))
            for plan, token in zip(sample_plans, (int(t) for t in drawn)):
                slot, seq = plan[0], plan[1]
                reason = self._land_token(seq, token, now, step_t0)
                if reason is not None:
                    finished.append(self._finish_seq(seq, reason, now))
                    self._slots[slot] = None
                    self.cache.reset_slot(slot)

        # Verify spans: accept-prefix per sequence, then promote the
        # scratch branch onto the canonical slot truncated to the
        # accepted length — the rollback of rejected pages.
        for plan in plans:
            slot, seq, kind, lo, hi, drafts, q = plan
            if kind != "verify":
                continue
            k = hi - lo - 1
            f = seq.fed
            rng = seq.rng if seq.rng is not None else self.rng
            emitted, accepted = verify_draft(logits[lo:hi], drafts, q,
                                             seq.params, rng)
            self.spec_proposed += k
            self.spec_accepted += accepted
            self.spec_rejected += k - accepted
            self.spec_rounds += 1
            self._c_spec_proposed.inc(k)
            self._c_spec_accepted.inc(accepted)
            self._c_spec_rejected.inc(k - accepted)
            seq.steps += 1
            reason = None
            kept = 0
            for token in emitted:
                kept += 1
                reason = self._land_token(seq, token, now, step_t0)
                if reason is not None:
                    break
            self._sampled_tokens += kept
            self._c_sampled.inc(kept)
            # Positions f .. f + min(accepted, kept) hold KV of tokens
            # that made it into the sequence (the pending token plus the
            # kept accepted drafts); everything beyond is rejected or
            # truncated by an early stop token and rolls back.
            new_fed = f + 1 + min(accepted, kept)
            self.cache.promote_fork(self.batch_size + slot, slot, new_fed)
            seq.fed = new_fed
            if f < seq.prompt_len <= new_fed:
                self.cache.register_prefix(
                    slot, seq.tokens[:seq.prompt_len])
            if reason is not None:
                finished.append(self._finish_seq(seq, reason, now))
                self._slots[slot] = None
                self.cache.reset_slot(slot)
        if self.spec_rounds:
            self._g_spec_rate.set(self.spec_accepted / self.spec_rounds)
        self._results.extend(finished)
        self._sync_gauges()
        return finished

    def _sync_gauges(self) -> None:
        """Refresh serving gauges at every occupancy transition.

        ``submit``/``_admit``/retirement/``cancel`` all change queue depth
        or slot occupancy between steps; syncing here (not just once per
        ``step()``) keeps out-of-band ``stats()`` scrapes — the server's
        ``/v1/stats`` path — from reading stale values.
        """
        self._g_active.set(self.num_active)
        self._g_queue.set(len(self._queue))
        self._g_kv_bytes_pool.set(self.cache.nbytes)
        if self._paged:
            self._g_kv_bytes_in_use.set(self.cache.bytes_in_use)
            self._g_pages_free.set(self.cache.free_pages)
            self._g_pages_used.set(self.cache.used_pages)
            self._g_pages_shared.set(self.cache.shared_pages)
            prefix = self.cache.prefix
            if prefix is not None:
                pushed = self._prefix_pushed
                for counter, key in ((self._c_prefix_hit, "hits"),
                                     (self._c_prefix_miss, "misses"),
                                     (self._c_prefix_evict, "evictions")):
                    delta = getattr(prefix, key) - pushed[key]
                    if delta:
                        counter.inc(delta)
                        pushed[key] += delta

    def run(self) -> list[GenerationResult]:
        """Decode until queue and slots are empty; results in request order."""
        while self.has_work:
            self.step()
        results = self.drain()
        results.sort(key=lambda r: r.request_id)
        return results

    def drain(self) -> list[GenerationResult]:
        """Remove and return every finished-but-uncollected result.

        The incremental counterpart to :meth:`run` for callers driving
        :meth:`step` themselves (the serving layer's decode loop): each
        call hands back only results finished since the last drain, so
        long-lived engines never accumulate unbounded result lists.
        """
        results, self._results = self._results, []
        return results

    def generate(self, prompts, max_new_tokens: int) -> list[list[int]]:
        """Batch convenience: token lists (prompt + completion) in input
        order, matching ``generate_fast(prompt, max_new_tokens)`` per row.

        Tracks its own request ids rather than assuming they are
        contiguous, so requests queued by other ``submit()`` callers are
        neither mis-mapped into this batch nor silently discarded — their
        results stay drainable via :meth:`run`.
        """
        ids = [self.submit(prompt, max_new_tokens) for prompt in prompts]
        wanted = set(ids)
        mine: dict[int, GenerationResult] = {}
        self._drain_into(wanted, mine)
        while len(mine) < len(wanted):
            if not self.has_work:
                missing = sorted(wanted - mine.keys())
                raise RuntimeError(
                    f"engine drained without finishing requests {missing}")
            self.step()
            self._drain_into(wanted, mine)
        return [mine[request_id].tokens for request_id in ids]

    def _drain_into(self, wanted: set, out: dict) -> None:
        """Move finished results with ids in ``wanted`` out of the drain
        queue, keeping everything else for other consumers."""
        kept = []
        for result in self._results:
            if result.request_id in wanted:
                out[result.request_id] = result
            else:
                kept.append(result)
        self._results = kept

    # ------------------------------------------------------------------
    # Serving snapshot
    # ------------------------------------------------------------------
    def stats(self) -> dict:
        """JSON-ready snapshot of engine-level serving state.

        ``occupancy`` is the fraction of slot-steps that carried an
        active sequence — 1.0 means the batch stayed full for the whole
        run, the continuous-batching ideal.
        """
        slot_steps = self.total_steps * self.batch_size
        if self._paged:
            kv = self.cache.stats()
            kv["preemptions"] = self.preemptions
        else:
            kv = {"backend": "dense",
                  "dtype": self.cache.dtype.name,
                  "kv_bytes_pool": self.cache.nbytes}
        spec = None
        if self.spec is not None:
            spec = {
                "k": self.spec.k,
                "draft": type(self.spec.draft).__name__,
                "proposed": self.spec_proposed,
                "accepted": self.spec_accepted,
                "rejected": self.spec_rejected,
                "rounds": self.spec_rounds,
                "acceptance_rate": (self.spec_accepted / self.spec_proposed
                                    if self.spec_proposed else 0.0),
                "accepted_tokens_per_step": (
                    self.spec_accepted / self.spec_rounds
                    if self.spec_rounds else 0.0),
            }
        out = {
            "batch_size": self.batch_size,
            "dtype": self.cache.dtype.name,
            "active_slots": self.num_active,
            "queue_depth": self.num_queued,
            "total_steps": self.total_steps,
            "sampled_tokens": self._sampled_tokens,
            "requests_submitted": self._submitted,
            "requests_completed": self._completed,
            "occupancy": (self._active_slot_steps / slot_steps
                          if slot_steps else 0.0),
            "kv": kv,
        }
        if spec is not None:
            out["spec"] = spec
        return out
