"""Continuous-batching generation engine over the preallocated KV cache.

``TransformerLM.generate_fast`` serves one prompt at a time: N users cost
N full decode loops.  :class:`GenerationEngine` instead keeps a fixed pool
of ``batch_size`` cache slots and advances *every* active sequence by one
token per model step — one batched ``decode_step`` instead of one step per
user.  Sequences are admitted from a queue, left-aligned at position 0
with their own per-slot length counters (so a short prompt starts sampling
while a long one is still prefilling), and retired independently the
moment they emit their stop token or exhaust their token budget; a queued
prompt immediately takes the freed slot (continuous batching), so the
batch stays full whenever there is work.

Sampling draws one uniform per sampling row per step, in slot order, via
the batched :func:`repro.core.sampling.sample_token`.  With a single slot
the engine consumes the RNG stream exactly like ``generate_fast``, so a
batch of one is bit-identical to the single-sequence path for the same
seed.

Serving telemetry (PR 2): every request is stamped through its lifecycle
— submitted, admitted to a slot, first sampled token, finished — so each
:class:`GenerationResult` carries a :class:`RequestTiming` with queue
wait, prefill vs. decode split, time-to-first-token, and tokens/sec.
:meth:`GenerationEngine.stats` snapshots engine-level serving state
(slot occupancy, queue depth, steps, sampled tokens).  Passing an
:class:`~repro.obs.Observability` additionally emits per-step spans,
``engine.*`` metrics, and request lifecycle events; the stamps never
touch the RNG stream, so instrumented decoding stays bit-identical.

KV backends (PR 8): the engine runs on the paged
:class:`~repro.infer.PagedKVCache` by default — admission reserves KV
*pages* instead of assuming a dense ``slots x max_len`` buffer, prompts
sharing a cached prefix skip the covered prefill positions, retirement
and :meth:`GenerationEngine.cancel` return pages to the pool, and an
oversubscribed pool preempts the youngest sequence instead of crashing
mid-decode.  ``paged=False`` restores the dense cache; the two produce
bit-identical trajectories on non-shared workloads (docs/KV_CACHE.md
gives the argument, tests/test_infer_engine.py the proof).
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass

import numpy as np

from ..core.sampling import sample_token
from ..obs import NULL_OBS, Observability
from .kv_cache import KVCache
from .paged_kv import PagedKVCache


class PromptLimitError(ValueError):
    """A request that can never fit: structured rejection for serving.

    Raised by :meth:`GenerationEngine.submit` with a ``limits`` dict
    (prompt_len, max_new_tokens, the cache's max_seq_len, and — under a
    paged cache — pool capacity) so the HTTP layer can return the same
    structured 400 on the blocking and streaming paths instead of each
    reformatting a bare string.
    """

    def __init__(self, message: str, limits: dict):
        super().__init__(message)
        self.limits = limits


@dataclass
class RequestTiming:
    """Lifecycle stamps for one request (``time.perf_counter`` seconds)."""

    submitted: float
    admitted: float
    first_token: float
    finished: float
    new_tokens: int

    @property
    def queue_wait_s(self) -> float:
        """Time spent queued before a cache slot freed up."""
        return self.admitted - self.submitted

    @property
    def ttft_s(self) -> float:
        """Submit-to-first-sampled-token latency (the user-felt number)."""
        return self.first_token - self.submitted

    @property
    def prefill_s(self) -> float:
        """Admission to first sampled token: prompt ingestion cost."""
        return self.first_token - self.admitted

    @property
    def decode_s(self) -> float:
        """First sampled token to completion: steady-state decoding."""
        return self.finished - self.first_token

    @property
    def tokens_per_sec(self) -> float:
        """Generated tokens over on-engine time (excludes queue wait)."""
        elapsed = self.finished - self.admitted
        return self.new_tokens / elapsed if elapsed > 0 else 0.0


@dataclass
class GenerationResult:
    """One finished sequence, in ``generate_fast`` conventions."""

    request_id: int
    tokens: list[int]            # prompt + completion, stop token included
    prompt_len: int
    finish_reason: str           # "stop_token" | "length"
    steps: int = 0               # decode steps spent on this sequence
    timing: RequestTiming | None = None

    @property
    def completion(self) -> list[int]:
        return self.tokens[self.prompt_len:]


@dataclass
class _Sequence:
    """In-flight bookkeeping for one slot."""

    request_id: int
    tokens: list[int]            # prompt, then sampled tokens as they land
    prompt_len: int
    max_new_tokens: int
    stop_token: int | None
    fed: int = 0                 # how many of ``tokens`` the model has seen
    steps: int = 0
    submitted_t: float = 0.0
    admitted_t: float = 0.0
    first_token_t: float | None = None
    trace_ctx: object | None = None   # TraceContext of the request root span


class GenerationEngine:
    """Batched KV-cached decoding for a :class:`TransformerLM`-style model.

    The model only needs ``config`` (for sizing the cache) and
    ``decode_step(tokens, positions, states) -> (B, V) logits``.
    Sampling parameters are engine-wide; ``max_new_tokens`` and
    ``stop_token`` may vary per request.
    """

    def __init__(
        self,
        model,
        batch_size: int = 8,
        rng: np.random.Generator | None = None,
        temperature: float = 1.0,
        top_k: int | None = None,
        top_p: float | None = None,
        greedy: bool = False,
        stop_token: int | None = None,
        obs: Observability | None = None,
        on_token=None,
        paged: bool = True,
        kv_page_size: int = 16,
        kv_num_pages: int | None = None,
        prefix_cache: bool = True,
    ):
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        self.model = model
        self.batch_size = batch_size
        self.rng = rng
        self.temperature = temperature
        self.top_k = top_k
        self.top_p = top_p
        self.greedy = greedy
        self.stop_token = stop_token
        # Per-token hook for streaming consumers (the serving layer):
        # called as on_token(request_id, token) for every sampled token,
        # stop tokens included, after the token lands on the sequence.
        # Runs inside step(), so callbacks must be cheap and must never
        # touch the engine's RNG.
        self.on_token = on_token
        # Paged is the default backend: same bits out (see
        # docs/KV_CACHE.md), far less memory held per short request, and
        # prefix sharing across requests.  ``paged=False`` keeps the
        # dense preallocated cache, the equivalence oracle.
        self._paged = paged
        if paged:
            self.cache = PagedKVCache.for_model(
                model, batch_size, page_size=kv_page_size,
                num_pages=kv_num_pages, prefix_sharing=prefix_cache)
        else:
            self.cache = KVCache.for_model(model, batch_size)
        self._slots: list[_Sequence | None] = [None] * batch_size
        self._queue: deque[_Sequence] = deque()
        self._results: list[GenerationResult] = []
        self._next_id = 0
        self.total_steps = 0
        # Serving accounting (cheap, always on; see stats()).
        self._clock = time.perf_counter
        self._active_slot_steps = 0     # sum over steps of active-slot count
        self._sampled_tokens = 0
        self._submitted = 0
        self._completed = 0
        # Observability hooks; null objects when obs is None.
        self.obs = obs
        bundle = obs if obs is not None else NULL_OBS
        self._tracer = bundle.tracer
        self._events = bundle.events
        metrics = bundle.metrics
        self._c_steps = metrics.counter("engine.steps")
        self._c_sampled = metrics.counter("engine.sampled_tokens")
        self._g_active = metrics.gauge("engine.active_slots")
        self._g_queue = metrics.gauge("engine.queue_depth")
        self._h_ttft = metrics.histogram("engine.ttft_seconds")
        self._h_queue_wait = metrics.histogram("engine.queue_wait_seconds")
        self._g_pages_free = metrics.gauge("engine.kv_pages_free")
        self._g_pages_used = metrics.gauge("engine.kv_pages_used")
        self._g_pages_shared = metrics.gauge("engine.kv_pages_shared")
        self._c_preempt = metrics.counter("engine.preemptions")
        self._c_prefix_hit = metrics.counter("prefix_cache.hit")
        self._c_prefix_miss = metrics.counter("prefix_cache.miss")
        self._c_prefix_evict = metrics.counter("prefix_cache.evict")
        # Counters are monotonic; the prefix cache keeps running totals.
        # Track what has already been pushed (null instruments expose no
        # readable value) and emit only the delta on each sync.
        self._prefix_pushed = {"hits": 0, "misses": 0, "evictions": 0}
        self.preemptions = 0

    # ------------------------------------------------------------------
    # Request intake
    # ------------------------------------------------------------------
    def submit(self, prompt, max_new_tokens: int, stop_token=...,
               trace_ctx=None) -> int:
        """Queue one prompt; returns its request id.

        ``stop_token`` defaults (via the ``...`` sentinel) to the
        engine-wide value, so an explicit ``None`` disables stopping for
        this request only.

        ``trace_ctx`` (a :class:`~repro.obs.TraceContext`) scopes this
        request's lifecycle telemetry to an end-to-end trace: queue-wait
        / prefill / per-step decode spans are recorded under it — even
        though they complete on the decode thread, not the caller's —
        and every event for the request is stamped with its trace id.
        """
        ids = [int(i) for i in prompt]
        if not ids:
            raise ValueError("GenerationEngine requires a non-empty prompt")
        if max_new_tokens < 0:
            raise ValueError("max_new_tokens must be >= 0")
        self._check_limits(len(ids), max_new_tokens)
        request_id = self._next_id
        self._next_id += 1
        self._submitted += 1
        now = self._clock()
        seq = _Sequence(
            request_id=request_id,
            tokens=ids,
            prompt_len=len(ids),
            max_new_tokens=max_new_tokens,
            stop_token=self.stop_token if stop_token is ... else stop_token,
            submitted_t=now,
            trace_ctx=trace_ctx,
        )
        self._events.emit("request_submitted", request_id=request_id,
                          prompt_len=len(ids), max_new_tokens=max_new_tokens,
                          **self._trace_fields(trace_ctx))
        if max_new_tokens == 0:
            self._completed += 1
            self._results.append(GenerationResult(
                request_id=request_id, tokens=ids, prompt_len=len(ids),
                finish_reason="length",
                timing=RequestTiming(submitted=now, admitted=now,
                                     first_token=now, finished=now,
                                     new_tokens=0),
            ))
            # The request completes inline, but its lifecycle must still
            # balance: event-log consumers count submitted vs finished.
            self._events.emit(
                "request_finished", request_id=request_id,
                finish_reason="length", steps=0, new_tokens=0,
                queue_wait_s=0.0, ttft_s=0.0, decode_s=0.0,
                tokens_per_sec=0.0, **self._trace_fields(trace_ctx),
            )
        else:
            self._queue.append(seq)
        self._sync_gauges()
        return request_id

    def cancel(self, request_id: int) -> GenerationResult | None:
        """Abort a queued or in-flight request, reclaiming its slot now.

        The partial sequence (prompt plus any tokens sampled so far) is
        returned — and recorded in the drain queue — as a
        :class:`GenerationResult` with ``finish_reason="cancelled"``, so
        request accounting stays balanced (``request_finished`` is
        emitted).  Returns None when the id is unknown or already done.
        """
        seq = None
        for i, queued in enumerate(self._queue):
            if queued.request_id == request_id:
                seq = queued
                del self._queue[i]
                break
        if seq is None:
            for slot, active in enumerate(self._slots):
                if active is not None and active.request_id == request_id:
                    seq = active
                    self._slots[slot] = None
                    # Cancellation reclaims KV pages immediately — a
                    # timed-out request must not pin pool capacity.
                    self.cache.reset_slot(slot)
                    break
        if seq is None:
            return None
        now = self._clock()
        admitted = seq.admitted_t or now
        first = seq.first_token_t if seq.first_token_t is not None else now
        generated = len(seq.tokens) - seq.prompt_len
        timing = RequestTiming(submitted=seq.submitted_t, admitted=admitted,
                               first_token=first, finished=now,
                               new_tokens=generated)
        result = GenerationResult(
            request_id=seq.request_id, tokens=seq.tokens,
            prompt_len=seq.prompt_len, finish_reason="cancelled",
            steps=seq.steps, timing=timing,
        )
        self._results.append(result)
        self._completed += 1
        self._events.emit(
            "request_finished", request_id=seq.request_id,
            finish_reason="cancelled", steps=seq.steps, new_tokens=generated,
            queue_wait_s=timing.queue_wait_s, ttft_s=timing.ttft_s,
            decode_s=timing.decode_s, tokens_per_sec=timing.tokens_per_sec,
            **self._trace_fields(seq.trace_ctx),
        )
        self._sync_gauges()
        return result

    def _check_limits(self, prompt_len: int, max_new_tokens: int) -> None:
        """Single source of truth for "can this request ever complete?".

        Validates against the *cache's* ``max_seq_len`` (not the model
        config read separately — the two can differ when a cache is
        sized explicitly), and under a paged cache also against total
        pool capacity.  Every ``submit`` caller — blocking and streaming
        serving paths included — hits this one check, so a borderline
        request (``prompt_len + max_new_tokens == max_seq_len``) is
        accepted or rejected identically everywhere; failures raise
        :class:`PromptLimitError` carrying the limits for a structured
        400.
        """
        total = prompt_len + max_new_tokens
        limits = {
            "prompt_len": prompt_len,
            "max_new_tokens": max_new_tokens,
            "max_seq_len": self.cache.max_seq_len,
        }
        if total > self.cache.max_seq_len:
            raise PromptLimitError(
                f"prompt + max_new_tokens = {total} exceeds window "
                f"L={self.cache.max_seq_len}", limits)
        if self._paged:
            limits["kv_num_pages"] = self.cache.num_pages
            if self.cache.pages_for(total) > self.cache.num_pages:
                raise PromptLimitError(
                    f"prompt + max_new_tokens = {total} needs "
                    f"{self.cache.pages_for(total)} KV pages; the pool "
                    f"holds {self.cache.num_pages}", limits)

    @staticmethod
    def _trace_fields(trace_ctx) -> dict:
        """Event fields stamping a request's trace id (empty when untraced)."""
        if trace_ctx is None:
            return {}
        return {"trace_id": trace_ctx.trace_id}

    @property
    def num_active(self) -> int:
        return sum(seq is not None for seq in self._slots)

    @property
    def num_queued(self) -> int:
        return len(self._queue)

    @property
    def has_work(self) -> bool:
        return bool(self._queue) or self.num_active > 0

    # ------------------------------------------------------------------
    # Decode loop
    # ------------------------------------------------------------------
    def _admit(self) -> None:
        now = None
        for slot in range(self.batch_size):
            if not self._queue:
                break
            if self._slots[slot] is None:
                seq = self._queue[0]
                if self._paged:
                    # Page-availability admission: attach any cached
                    # prefix pages and reserve the prompt's fresh pages;
                    # when the pool cannot supply them, keep the request
                    # (and everything behind it — FIFO) queued.
                    cached = self.cache.try_admit(slot, seq.tokens)
                    if cached is None:
                        break
                    if cached != seq.fed:
                        seq.fed = cached
                        self._events.emit(
                            "prefix_cache_hit", request_id=seq.request_id,
                            cached_tokens=cached,
                            **self._trace_fields(seq.trace_ctx))
                else:
                    self.cache.reset_slot(slot)
                self._queue.popleft()
                if now is None:
                    now = self._clock()
                seq.admitted_t = now
                self._h_queue_wait.observe(now - seq.submitted_t)
                self._events.emit("request_admitted", request_id=seq.request_id,
                                  slot=slot, queue_wait_s=now - seq.submitted_t,
                                  **self._trace_fields(seq.trace_ctx))
                if seq.trace_ctx is not None:
                    # Recorded retrospectively on the decode thread but
                    # parented under the request's root span, which lives
                    # on the submitting thread (cross-thread reparenting).
                    self._tracer.record_span(
                        "request.queue_wait", seq.submitted_t, now,
                        parent=seq.trace_ctx, request_id=seq.request_id,
                        slot=slot)
                self._slots[slot] = seq
        self._sync_gauges()

    def _relieve_page_pressure(self, active: list[int]) -> list[int]:
        """Preempt youngest-first until the next step's pages fit the pool.

        An oversubscribed pool can run dry mid-decode: several slots hit
        a page boundary in the same step with the free list empty.
        Rather than crash (or deadlock the batch), the youngest active
        request is recompute-preempted: its pages are released and it
        re-enters the *front* of the queue with its sampled tokens kept,
        so re-admission replays deterministically — feeding the kept
        tokens consumes no RNG draws, and its own registered prefix pages
        usually make the replay a cache hit.  The oldest sequence is
        never preempted, so the engine always makes progress (a lone
        sequence fits by the :meth:`submit` capacity check).
        """
        while len(active) > 1 and self.cache.step_page_shortfall(active) > 0:
            slot = max(active, key=lambda s: self._slots[s].request_id)
            seq = self._slots[slot]
            self._slots[slot] = None
            self.cache.reset_slot(slot)
            seq.fed = 0
            self._queue.appendleft(seq)
            active.remove(slot)
            self.preemptions += 1
            self._c_preempt.inc()
            self._events.emit(
                "request_preempted", request_id=seq.request_id,
                tokens_kept=len(seq.tokens),
                **self._trace_fields(seq.trace_ctx))
        return active

    def step(self) -> list[GenerationResult]:
        """Advance every active sequence one token; return newly finished
        results (empty list while everything is still running)."""
        self._admit()
        active = [slot for slot in range(self.batch_size)
                  if self._slots[slot] is not None]
        if self._paged:
            active = self._relieve_page_pressure(active)
        if not active:
            return []
        sequences = [self._slots[slot] for slot in active]
        tokens = np.array([seq.tokens[seq.fed] for seq in sequences], dtype=np.int64)
        positions = np.array([seq.fed for seq in sequences], dtype=np.int64)

        self.cache.set_active(np.asarray(active, dtype=np.int64))
        step_t0 = self._clock() if self._tracer.enabled else 0.0
        with self._tracer.span("engine.step", active=len(active),
                               queued=len(self._queue)):
            logits = self.model.decode_step(tokens, positions, self.cache.layers)
        self.cache.advance()
        self.total_steps += 1
        self._active_slot_steps += len(active)
        self._c_steps.inc()
        for row, seq in enumerate(sequences):
            seq.fed += 1
            seq.steps += 1
            if self._paged and seq.fed == seq.prompt_len:
                # Prompt fully ingested: publish its full pages so later
                # requests sharing the prefix skip this work (idempotent
                # if the pages came from the cache in the first place).
                self.cache.register_prefix(active[row], seq.tokens)

        # Rows that have now seen their whole sequence need a fresh token:
        # the last prompt token just went in, or the previous sample did.
        sampling = [row for row, seq in enumerate(sequences)
                    if seq.fed == len(seq.tokens)]
        finished: list[GenerationResult] = []
        if sampling:
            drawn = sample_token(
                logits[sampling], rng=self.rng, temperature=self.temperature,
                top_k=self.top_k, top_p=self.top_p, greedy=self.greedy,
            )
            now = self._clock()
            self._sampled_tokens += len(sampling)
            self._c_sampled.inc(len(sampling))
            for row, token in zip(sampling, (int(t) for t in drawn)):
                seq = sequences[row]
                seq.tokens.append(token)
                if seq.first_token_t is None:
                    seq.first_token_t = now
                    self._h_ttft.observe(now - seq.submitted_t)
                    if seq.trace_ctx is not None:
                        self._tracer.record_span(
                            "request.prefill", seq.admitted_t, now,
                            parent=seq.trace_ctx, request_id=seq.request_id,
                            prompt_len=seq.prompt_len)
                elif seq.trace_ctx is not None and self._tracer.enabled:
                    # One span per decode step per traced request, covering
                    # this batched model step from the request's viewpoint.
                    self._tracer.record_span(
                        "request.decode_step", step_t0, now,
                        parent=seq.trace_ctx, request_id=seq.request_id,
                        step=seq.steps)
                if self.on_token is not None:
                    self.on_token(seq.request_id, token)
                generated = len(seq.tokens) - seq.prompt_len
                if seq.stop_token is not None and token == seq.stop_token:
                    reason = "stop_token"
                elif generated >= seq.max_new_tokens:
                    reason = "length"
                else:
                    continue
                timing = RequestTiming(
                    submitted=seq.submitted_t, admitted=seq.admitted_t,
                    first_token=seq.first_token_t, finished=now,
                    new_tokens=generated,
                )
                result = GenerationResult(
                    request_id=seq.request_id, tokens=seq.tokens,
                    prompt_len=seq.prompt_len, finish_reason=reason,
                    steps=seq.steps, timing=timing,
                )
                finished.append(result)
                self._completed += 1
                self._events.emit(
                    "request_finished", request_id=seq.request_id,
                    finish_reason=reason, steps=seq.steps,
                    new_tokens=generated, queue_wait_s=timing.queue_wait_s,
                    ttft_s=timing.ttft_s, decode_s=timing.decode_s,
                    tokens_per_sec=timing.tokens_per_sec,
                    **self._trace_fields(seq.trace_ctx),
                )
                self._slots[active[row]] = None
                # Reclaim the slot's pages immediately (not lazily at
                # the next admission): prefix-cached pages drop to
                # refcount 1 and become evictable, everything else goes
                # straight back to the free list.
                self.cache.reset_slot(active[row])
        self._results.extend(finished)
        self._sync_gauges()
        return finished

    def _sync_gauges(self) -> None:
        """Refresh serving gauges at every occupancy transition.

        ``submit``/``_admit``/retirement/``cancel`` all change queue depth
        or slot occupancy between steps; syncing here (not just once per
        ``step()``) keeps out-of-band ``stats()`` scrapes — the server's
        ``/v1/stats`` path — from reading stale values.
        """
        self._g_active.set(self.num_active)
        self._g_queue.set(len(self._queue))
        if self._paged:
            self._g_pages_free.set(self.cache.free_pages)
            self._g_pages_used.set(self.cache.used_pages)
            self._g_pages_shared.set(self.cache.shared_pages)
            prefix = self.cache.prefix
            if prefix is not None:
                pushed = self._prefix_pushed
                for counter, key in ((self._c_prefix_hit, "hits"),
                                     (self._c_prefix_miss, "misses"),
                                     (self._c_prefix_evict, "evictions")):
                    delta = getattr(prefix, key) - pushed[key]
                    if delta:
                        counter.inc(delta)
                        pushed[key] += delta

    def run(self) -> list[GenerationResult]:
        """Decode until queue and slots are empty; results in request order."""
        while self.has_work:
            self.step()
        results = self.drain()
        results.sort(key=lambda r: r.request_id)
        return results

    def drain(self) -> list[GenerationResult]:
        """Remove and return every finished-but-uncollected result.

        The incremental counterpart to :meth:`run` for callers driving
        :meth:`step` themselves (the serving layer's decode loop): each
        call hands back only results finished since the last drain, so
        long-lived engines never accumulate unbounded result lists.
        """
        results, self._results = self._results, []
        return results

    def generate(self, prompts, max_new_tokens: int) -> list[list[int]]:
        """Batch convenience: token lists (prompt + completion) in input
        order, matching ``generate_fast(prompt, max_new_tokens)`` per row.

        Tracks its own request ids rather than assuming they are
        contiguous, so requests queued by other ``submit()`` callers are
        neither mis-mapped into this batch nor silently discarded — their
        results stay drainable via :meth:`run`.
        """
        ids = [self.submit(prompt, max_new_tokens) for prompt in prompts]
        wanted = set(ids)
        mine: dict[int, GenerationResult] = {}
        self._drain_into(wanted, mine)
        while len(mine) < len(wanted):
            if not self.has_work:
                missing = sorted(wanted - mine.keys())
                raise RuntimeError(
                    f"engine drained without finishing requests {missing}")
            self.step()
            self._drain_into(wanted, mine)
        return [mine[request_id].tokens for request_id in ids]

    def _drain_into(self, wanted: set, out: dict) -> None:
        """Move finished results with ids in ``wanted`` out of the drain
        queue, keeping everything else for other consumers."""
        kept = []
        for result in self._results:
            if result.request_id in wanted:
                out[result.request_id] = result
            else:
                kept.append(result)
        self._results = kept

    # ------------------------------------------------------------------
    # Serving snapshot
    # ------------------------------------------------------------------
    def stats(self) -> dict:
        """JSON-ready snapshot of engine-level serving state.

        ``occupancy`` is the fraction of slot-steps that carried an
        active sequence — 1.0 means the batch stayed full for the whole
        run, the continuous-batching ideal.
        """
        slot_steps = self.total_steps * self.batch_size
        if self._paged:
            kv = self.cache.stats()
            kv["preemptions"] = self.preemptions
        else:
            kv = {"backend": "dense", "kv_bytes_pool": self.cache.nbytes}
        return {
            "batch_size": self.batch_size,
            "active_slots": self.num_active,
            "queue_depth": self.num_queued,
            "total_steps": self.total_steps,
            "sampled_tokens": self._sampled_tokens,
            "requests_submitted": self._submitted,
            "requests_completed": self._completed,
            "occupancy": (self._active_slot_steps / slot_steps
                          if slot_steps else 0.0),
            "kv": kv,
        }
