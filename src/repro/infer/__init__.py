"""Batched inference: preallocated KV cache + continuous-batching engine.

``repro.core`` ends the §6 recipe at single-sequence sampling; this
package is the serving layer on top of it.  :class:`KVCache` replaces the
per-token ``np.concatenate`` cache growth with one up-front allocation
and in-place appends, and :class:`GenerationEngine` decodes a whole pool
of prompts per model step, admitting queued prompts into retired slots so
throughput scales with batch size instead of user count.
"""

from .engine import GenerationEngine, GenerationResult, RequestTiming
from .kv_cache import KVCache, LayerKV

__all__ = [
    "KVCache",
    "LayerKV",
    "GenerationEngine",
    "GenerationResult",
    "RequestTiming",
]
