"""Batched inference: preallocated KV cache + continuous-batching engine.

``repro.core`` ends the §6 recipe at single-sequence sampling; this
package is the serving layer on top of it.  :class:`KVCache` replaces the
per-token ``np.concatenate`` cache growth with one up-front allocation
and in-place appends, and :class:`GenerationEngine` decodes a whole pool
of prompts per model step, admitting queued prompts into retired slots so
throughput scales with batch size instead of user count.

:class:`PagedKVCache` (PR 8) is the engine's default backend: KV storage
lives in fixed-size refcounted pages with per-slot block tables, so
memory tracks actual sequence lengths, identical prompt prefixes are
shared across requests via :class:`PrefixCache`, and forks copy-on-write
— bit-identical to the dense cache on non-shared workloads (see
docs/KV_CACHE.md).
"""

from .engine import (GenerationEngine, GenerationResult, PromptLimitError,
                     RequestTiming)
from .kv_cache import KVCache, LayerKV, ragged_key_mask
from .paged_kv import PagedKVCache, PagePoolExhausted, PrefixCache

__all__ = [
    "KVCache",
    "LayerKV",
    "ragged_key_mask",
    "PagedKVCache",
    "PagePoolExhausted",
    "PrefixCache",
    "GenerationEngine",
    "GenerationResult",
    "PromptLimitError",
    "RequestTiming",
]
