"""Batched inference: preallocated KV cache + continuous-batching engine.

``repro.core`` ends the §6 recipe at single-sequence sampling; this
package is the serving layer on top of it.  :class:`KVCache` replaces the
per-token ``np.concatenate`` cache growth with one up-front allocation
and in-place appends, and :class:`GenerationEngine` decodes a whole pool
of prompts per model step, admitting queued prompts into retired slots so
throughput scales with batch size instead of user count.

:class:`PagedKVCache` (PR 8) is the engine's default backend: KV storage
lives in fixed-size refcounted pages with per-slot block tables, so
memory tracks actual sequence lengths, identical prompt prefixes are
shared across requests via :class:`PrefixCache`, and forks copy-on-write
— bit-identical to the dense cache on non-shared workloads (see
docs/KV_CACHE.md).

PR 9 adds per-request :class:`SamplingParams` (each submit carries its
own temperature/top-k/top-p/stop/seed; the engine groups identical
params into one vectorized sampler call) and speculative decoding
(:class:`SpeculativeConfig` + any :class:`DraftModel`): a cheap draft
proposes k tokens, one batched verify forward over a forked KV branch
accepts a prefix, and greedy output stays bit-identical to the
non-speculative engine (see docs/SPECULATIVE.md).
"""

from .engine import (GenerationEngine, GenerationResult, PromptLimitError,
                     RequestTiming)
from .kv_cache import KVCache, LayerKV, ragged_key_mask
from .paged_kv import PagedKVCache, PagePoolExhausted, PrefixCache, SpanBatch
from .sampling_params import SamplingParams, SamplingParamsError
from .speculative import DraftModel, SpeculativeConfig, verify_draft

__all__ = [
    "KVCache",
    "LayerKV",
    "ragged_key_mask",
    "PagedKVCache",
    "PagePoolExhausted",
    "PrefixCache",
    "SpanBatch",
    "GenerationEngine",
    "GenerationResult",
    "PromptLimitError",
    "RequestTiming",
    "SamplingParams",
    "SamplingParamsError",
    "SpeculativeConfig",
    "DraftModel",
    "verify_draft",
]
