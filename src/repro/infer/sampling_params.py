"""Per-request sampling parameters for the generation engine.

Sampling knobs used to be engine-wide constructor arguments, which
made one batch share a single temperature/top-k/top-p even though the
engine interleaves unrelated users' requests.  :class:`SamplingParams`
is the per-request value object threaded from the HTTP body through
:meth:`GenerationEngine.submit` down to the sampler: each request
carries its own knobs, the engine groups slots with identical
parameters into one vectorized :func:`~repro.core.sampling.sample_token`
call, and a request with a ``seed`` owns a private RNG so its draws
are reproducible regardless of batch composition.

Validation happens at construction and raises
:class:`SamplingParamsError` carrying a structured ``params`` dict —
the serving layer surfaces it as an HTTP 400 with a ``params`` payload,
mirroring the ``limits`` payload of
:class:`~repro.infer.PromptLimitError`.
"""

from __future__ import annotations

from dataclasses import dataclass, fields


class SamplingParamsError(ValueError):
    """Invalid sampling parameters: structured rejection for serving.

    ``params`` names the offending field, the value received, and the
    constraint violated, so the HTTP layer can return the same
    machine-readable 400 body on the blocking and streaming paths.
    """

    def __init__(self, message: str, params: dict):
        super().__init__(message)
        self.params = params


def _reject(field: str, value, constraint: str) -> SamplingParamsError:
    return SamplingParamsError(
        f"invalid sampling params: {field}={value!r} violates {constraint}",
        {"field": field, "value": value, "constraint": constraint})


@dataclass(frozen=True)
class SamplingParams:
    """One request's sampling configuration.

    ``temperature == 0`` is normalised to ``greedy=True`` (the
    beta -> infinity limit of Eq. 8), so the two spellings of argmax
    decoding compare equal and group into the same sampling batch.
    ``seed`` gives the request a private ``np.random.default_rng(seed)``
    stream; without it, draws come from the engine-wide RNG in slot
    order.
    """

    temperature: float = 1.0
    top_k: int | None = None
    top_p: float | None = None
    greedy: bool = False
    stop_token: int | None = None
    seed: int | None = None

    def __post_init__(self):
        if not isinstance(self.temperature, (int, float)) \
                or isinstance(self.temperature, bool):
            raise _reject("temperature", self.temperature, "a number")
        if self.temperature < 0:
            raise _reject("temperature", self.temperature, "temperature >= 0")
        if self.temperature == 0:
            # T -> 0 is argmax; normalise so downstream code never
            # divides logits by zero and both spellings batch together.
            object.__setattr__(self, "temperature", 1.0)
            object.__setattr__(self, "greedy", True)
        if self.top_k is not None:
            if not isinstance(self.top_k, int) or isinstance(self.top_k, bool):
                raise _reject("top_k", self.top_k, "an integer")
            if self.top_k < 1:
                raise _reject("top_k", self.top_k, "top_k >= 1")
        if self.top_p is not None:
            if not isinstance(self.top_p, (int, float)) \
                    or isinstance(self.top_p, bool):
                raise _reject("top_p", self.top_p, "a number")
            if not 0.0 < self.top_p <= 1.0:
                raise _reject("top_p", self.top_p, "0 < top_p <= 1")
        if self.stop_token is not None and (
                not isinstance(self.stop_token, int)
                or isinstance(self.stop_token, bool)):
            raise _reject("stop_token", self.stop_token, "an integer or null")
        if self.seed is not None:
            if not isinstance(self.seed, int) or isinstance(self.seed, bool):
                raise _reject("seed", self.seed, "an integer")
            if self.seed < 0:
                raise _reject("seed", self.seed, "seed >= 0")

    @property
    def sampling_key(self) -> tuple:
        """Slots whose keys match may share one vectorized sampler call."""
        if self.greedy:
            return ("greedy",)
        return (self.temperature, self.top_k, self.top_p)

    def to_dict(self) -> dict:
        """JSON-ready view, echoed back in serving responses."""
        return {
            "temperature": self.temperature,
            "top_k": self.top_k,
            "top_p": self.top_p,
            "greedy": self.greedy,
            "stop_token": self.stop_token,
            "seed": self.seed,
        }

    @classmethod
    def from_dict(cls, obj: dict) -> "SamplingParams":
        """Build from an untrusted JSON object (the ``"sampling"`` body).

        Unknown keys are rejected rather than ignored — a typo like
        ``"temprature"`` silently falling back to the default would be
        far harder to debug than a 400.
        """
        if not isinstance(obj, dict):
            raise _reject("sampling", obj, "a JSON object")
        known = {f.name for f in fields(cls)}
        unknown = sorted(set(obj) - known)
        if unknown:
            raise _reject(unknown[0], obj[unknown[0]],
                          f"a known field (one of {sorted(known)})")
        return cls(**obj)
