"""Speculative decoding: cheap drafts, one batched verify, exact output.

The serving survey (PAPERS.md) names speculative decoding as the third
core inference optimization next to paged attention and KV reuse: a
cheap *draft* model proposes k tokens autoregressively, the expensive
target model scores all k+1 positions in **one** batched forward, and
a rejection-sampling rule keeps the longest acceptable prefix — so
each target step emits between 1 and k+1 tokens while the output
distribution stays *exactly* the target's.

This module holds the pieces the engine composes:

- :class:`DraftModel` — the proposal protocol.  Any object with
  ``propose(tokens, k, params, rng) -> (drafts, q)`` qualifies; the
  :class:`~repro.lm.LanguageModelDraft` adapter covers the whole
  classical-LM family (n-gram, Kneser-Ney, FFN, RNN).
- :class:`SpeculativeConfig` — the engine knob: which draft, how many
  tokens per round.
- :func:`verify_draft` — the accept/reject core, pure of engine state.

**Correctness.** For each draft ``d_i`` with proposal distribution
``q_i`` and target distribution ``p_i`` (both *modified* distributions
— after the request's temperature/top-k/top-p pipeline), accept with
probability ``min(1, p_i(d_i) / q_i(d_i))``; on the first rejection,
emit one token from the residual ``normalize(max(p_i - q_i, 0))`` and
stop; if all k survive, emit a bonus token from ``p_{k+1}``.  A draw
accepted with probability ``min(1, p/q)`` plus a residual-distributed
replacement is distributed exactly as ``p`` (Leviathan et al.; the
argument is spelled out in docs/SPECULATIVE.md) — so every emitted
token is an exact sample from the target's own modified distribution,
independent of how bad the draft is.  Under greedy params the rule
degenerates to "accept while the draft matches argmax, else emit
argmax": bit-identical to non-speculative greedy decoding, no RNG
consumed.

The engine runs the verify forward as a *span batch* over the paged
KV cache (:class:`~repro.infer.paged_kv.SpanBatch`): the k+1 positions
of one sequence become k+1 batch rows writing into a
:meth:`~repro.infer.PagedKVCache.fork_slot` of the sequence's slot,
and :meth:`~repro.infer.PagedKVCache.promote_fork` commits the
accepted prefix while releasing the rejected pages — rollback is page
arithmetic, not recomputation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol, runtime_checkable

import numpy as np

from ..core.sampling import sample_from_probs, sampling_probs
from .sampling_params import SamplingParams


@runtime_checkable
class DraftModel(Protocol):
    """Proposal side of speculative decoding.

    Implementations must return the distribution each draft token was
    actually drawn from — the rejection rule is only exact when ``q``
    is the true proposal distribution.
    """

    def propose(self, tokens, k: int, params: SamplingParams, rng):
        """Propose ``k`` tokens extending ``tokens``.

        Returns ``(drafts, q)``: a length-k list of token ids and the
        ``(k, vocab)`` array of proposal distributions.  Must not touch
        ``rng`` when ``params.greedy``.
        """
        ...


@dataclass(frozen=True)
class SpeculativeConfig:
    """Engine knob enabling speculative decoding.

    ``k`` drafts are proposed per decode round; the verify forward
    scores k+1 positions, so each round emits 1..k+1 tokens.  Larger k
    amortizes more target compute per accepted token but wastes more
    work when the draft diverges — docs/SPECULATIVE.md discusses
    tuning.
    """

    draft: DraftModel
    k: int = 4

    def __post_init__(self):
        if self.k < 1:
            raise ValueError("SpeculativeConfig.k must be >= 1")
        if not hasattr(self.draft, "propose"):
            raise TypeError("draft must implement propose(tokens, k, "
                            "params, rng) — see DraftModel")


def verify_draft(logits: np.ndarray, drafts, q: np.ndarray,
                 params: SamplingParams, rng) -> tuple[list[int], int]:
    """Accept-prefix rule over one verify forward's target logits.

    ``logits`` has k+1 rows: row ``i`` is the target's next-token
    logits *after* draft ``i`` tokens (row 0 conditions on none of
    them), so row ``i`` judges ``drafts[i]`` and row k feeds the bonus
    token.  Returns ``(emitted, accepted)`` where ``emitted`` is the
    1..k+1 tokens this round produces and ``accepted`` counts surviving
    drafts — ``emitted[:accepted] == drafts[:accepted]``, followed by
    one replacement or bonus token.

    Greedy params consume no randomness and reproduce the baseline
    argmax trajectory exactly; stochastic params consume one uniform
    per judged draft plus one for the replacement/bonus draw.
    """
    k = len(drafts)
    emitted: list[int] = []
    if params.greedy:
        for i in range(k):
            top = int(np.argmax(logits[i]))
            emitted.append(top)
            if top != drafts[i]:
                return emitted, i
        emitted.append(int(np.argmax(logits[k])))
        return emitted, k
    for i in range(k):
        p = sampling_probs(logits[i], temperature=params.temperature,
                           top_k=params.top_k, top_p=params.top_p)
        d = int(drafts[i])
        q_d = float(q[i, d])
        # q_d == 0 means the adapter proposed a token it assigned no
        # mass — a contract breach; treating the ratio as infinite
        # keeps the draw count deterministic rather than crashing.
        if rng.random() < (1.0 if q_d <= 0.0 else min(1.0, p[d] / q_d)):
            emitted.append(d)
            continue
        residual = np.maximum(p - q[i], 0.0)
        total = residual.sum()
        dist = residual / total if total > 0.0 else p
        emitted.append(sample_from_probs(dist, rng))
        return emitted, i
    p = sampling_probs(logits[k], temperature=params.temperature,
                       top_k=params.top_k, top_p=params.top_p)
    emitted.append(sample_from_probs(p, rng))
    return emitted, k
