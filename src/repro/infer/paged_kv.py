"""Paged KV cache: a vLLM-style block-pool allocator with prefix sharing.

The dense :class:`~repro.infer.KVCache` preallocates ``slots x max_len``
positions per layer, so memory scales with the *worst case* even when
every live request is short, and identical prompt prefixes (a shared
system prompt, few-shot headers) are recomputed and stored once per
slot.  This module replaces that buffer with the serving-literature
answer (paged attention + KV reuse, per the training-to-inference
survey in PAPERS.md):

- **Page pool** — K/V storage is carved into fixed-size *pages* of
  ``page_size`` token positions, held in one
  ``(layers, num_pages, H, page_size, head_dim)`` buffer pair.  A page
  id is valid across every layer, so allocation granularity is "one
  page of positions for the whole model".
- **Free list + refcounts** — pages are handed out from a free list and
  reference-counted; a page returns to the pool when its last holder
  (a slot's block table or the prefix cache) releases it.
- **Block tables** — each slot maps logical positions to pages through
  a per-slot table: position ``p`` lives in ``table[p // page_size]``
  at row ``p % page_size``.  Short sequences hold few pages; nothing
  scales with ``max_len`` until a sequence actually grows.
- **Copy-on-write** — :meth:`PagedKVCache.fork_slot` shares every page
  between parent and child; the first write to a shared page copies it
  (all layers) so divergent continuations never corrupt each other.
- **Prefix cache** — full pages of finished prompt prefills are
  published under their token-prefix key; a later prompt with the same
  prefix re-uses those pages outright and skips the covered positions
  at prefill.  Under memory pressure, unreferenced cached pages are
  evicted LRU back into the free list.

Reads gather the referenced pages into the contiguous ``(B, H, t, hd)``
view the attention step expects.  Gathered values are bit-for-bit the
same floats the dense buffer would hold and ragged-length masks come
from the shared :func:`~repro.infer.kv_cache.ragged_key_mask`, so a
paged engine decodes **bit-identically** to the dense path whenever no
sharing is in play — and still token-identically on cache hits, because
shared pages hold exactly the keys/values an identical prefill would
have produced.
"""

from __future__ import annotations

import numpy as np

from .kv_cache import kv_value_dtype, ragged_key_mask


class PagePoolExhausted(RuntimeError):
    """No free page and nothing evictable: every page is actively held.

    The engine avoids this by checking availability before admitting or
    stepping (queueing / preempting instead); seeing it raised means the
    caller wrote past what :meth:`PagedKVCache.step_page_shortfall`
    reported, or sized the pool below one maximum-length sequence.
    """


class PrefixCache:
    """Token-prefix -> page index for sharing prompt prefills across slots.

    One entry per *full* page of a registered prompt, keyed by the
    tuple of every token up to and including that page — chained
    keying, so a lookup hit guarantees the whole covered prefix
    matches, not just the page's own slice.  Entries hold a pool
    reference (refcount +1) to keep their page alive after the
    registering slot retires; :meth:`evict_one` drops the least
    recently used entry whose page no live slot shares.

    Hit/miss/eviction totals are plain ints so the cache stays free of
    telemetry dependencies; the engine mirrors them into ``repro.obs``
    counters.
    """

    def __init__(self, cache: "PagedKVCache"):
        self._cache = cache
        self._pages: dict[tuple, int] = {}    # prefix key -> page id
        self._stamp: dict[tuple, int] = {}    # prefix key -> LRU tick
        self._tick = 0                        # logical clock, RNG-free
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.hit_tokens = 0

    def __len__(self) -> int:
        return len(self._pages)

    def _touch(self, key: tuple) -> None:
        self._tick += 1
        self._stamp[key] = self._tick

    def match(self, tokens, record: bool = True) -> list[int]:
        """Longest chain of cached pages covering a prefix of ``tokens``.

        Capped at ``len(tokens) - 1`` positions so at least one token is
        always left to feed (the model must produce logits for the last
        prompt position before anything can be sampled).  ``record``
        updates hit/miss counters and LRU stamps; peek with
        ``record=False`` when only sizing an admission decision.
        """
        size = self._cache.page_size
        pages: list[int] = []
        for n_pages in range(1, (len(tokens) - 1) // size + 1):
            key = tuple(tokens[: n_pages * size])
            page = self._pages.get(key)
            if page is None:
                break
            pages.append(page)
            if record:
                self._touch(key)
        if record:
            if pages:
                self.hits += 1
                self.hit_tokens += len(pages) * size
            else:
                self.misses += 1
        return pages

    def insert(self, tokens, block_table: list[int]) -> int:
        """Publish every full page of ``tokens`` held in ``block_table``.

        Idempotent: prefixes already cached (including pages this very
        slot borrowed on its own admission) are left untouched, so two
        slots registering the same prompt share one chain.  Returns the
        number of newly published pages.
        """
        size = self._cache.page_size
        published = 0
        for n_pages in range(1, len(tokens) // size + 1):
            key = tuple(tokens[: n_pages * size])
            if key in self._pages:
                self._touch(key)
                continue
            page = block_table[n_pages - 1]
            self._pages[key] = page
            self._cache.refcounts[page] += 1
            self._touch(key)
            published += 1
        return published

    @property
    def evictable_pages(self) -> int:
        """Cached pages no live slot shares (refcount held by us alone)."""
        refs = self._cache.refcounts
        return sum(refs[page] == 1 for page in self._pages.values())

    def evict_one(self) -> int:
        """Drop the LRU unshared entry, freeing its page; returns the page.

        Raises :class:`PagePoolExhausted` when every cached page is
        still shared by a live slot (nothing can be reclaimed).
        """
        refs = self._cache.refcounts
        victim = None
        for key in sorted(self._pages, key=self._stamp.__getitem__):
            if refs[self._pages[key]] == 1:
                victim = key
                break
        if victim is None:
            raise PagePoolExhausted(
                "prefix cache holds no evictable page: every page is "
                "shared by a live slot")
        page = self._pages.pop(victim)
        del self._stamp[victim]
        self._cache._release(page)
        self.evictions += 1
        return page

    def stats(self) -> dict:
        """JSON-ready counters for ``engine.stats()`` / ``/v1/stats``."""
        return {
            "entries": len(self._pages),
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "hit_tokens": self.hit_tokens,
        }


class PagedLayerKV:
    """One layer's view of the page pool; the ``state`` handed to
    :meth:`MultiHeadSelfAttention.step` — same ``append`` contract as
    the dense :class:`~repro.infer.kv_cache.LayerKV`."""

    __slots__ = ("_cache", "_layer")

    def __init__(self, cache: "PagedKVCache", layer: int):
        self._cache = cache
        self._layer = layer

    def append(self, k: np.ndarray, v: np.ndarray):
        """Write this step's (n, H, head_dim) keys/values into the pool.

        The first layer of a step resolves each active slot's writable
        page (allocating fresh pages at page boundaries, copying shared
        pages on write); later layers reuse that resolution, so a block
        stack writes one position per slot per step exactly like the
        dense cache.  Returns ``(keys, values, mask)`` gathered over
        every cached position the active rows may attend to.
        """
        cache = self._cache
        if not cache._prepared:
            cache._prepare_step()
        kb = cache._k[self._layer]
        vb = cache._v[self._layer]
        active = cache._active
        lens = cache.lengths[active]
        offsets = lens % cache.page_size
        kb[cache._write_pages, :, offsets, :] = k
        vb[cache._write_pages, :, offsets, :] = v

        new_lens = lens + 1
        t_max = int(new_lens.max())
        window = cache.window
        lo = 0 if window is None else max(0, int(new_lens.min()) - window)
        keys = cache._gather(kb, active, lo, t_max)
        values = cache._gather(vb, active, lo, t_max)
        return keys, values, ragged_key_mask(new_lens, lo, t_max, window,
                                             dtype=kb.dtype)


class SpanLayerKV:
    """One layer's view of a multi-position span write (speculative decode).

    Same ``append(k, v) -> (keys, values, mask)`` contract as
    :class:`PagedLayerKV`, but each batch row is one *position* of a
    span rather than one slot: verifying k draft tokens of a sequence
    becomes k+1 rows of the same slot at consecutive positions, all in
    one batched forward.  Row ``j`` attends to rows ``< j`` of its own
    span because ``append`` writes every row's K/V into the pool
    *before* gathering, and the ragged mask (``new_lens[j] = pos_j + 1``)
    hides later positions — time laid out along the batch axis.
    """

    __slots__ = ("_span", "_layer")

    def __init__(self, span: "SpanBatch", layer: int):
        self._span = span
        self._layer = layer

    def append(self, k: np.ndarray, v: np.ndarray):
        """Write one position per row, then gather each row's history."""
        span = self._span
        cache = span.cache
        kb = cache._k[self._layer]
        vb = cache._v[self._layer]
        kb[span.pages, :, span.offsets, :] = k
        vb[span.pages, :, span.offsets, :] = v
        keys = cache._gather(kb, span.row_slots, span.lo, span.t_max)
        values = cache._gather(vb, span.row_slots, span.lo, span.t_max)
        return keys, values, ragged_key_mask(span.new_lens, span.lo,
                                             span.t_max, cache.window,
                                             dtype=kb.dtype)


class SpanBatch:
    """Resolved write plan for one batched multi-position model step.

    Built by :meth:`PagedKVCache.begin_spans` from ``(slot, start, m)``
    triples: positions ``start .. start+m-1`` of each slot become ``m``
    consecutive batch rows.  Construction resolves every written page
    once (allocating at page boundaries, copying shared pages on write
    — at most one COW per span, the fork boundary page); the per-layer
    :attr:`layers` states then write vectorized.  Slot lengths are NOT
    advanced: the caller commits explicitly (``commit_span`` /
    ``promote_fork``) after deciding how much of the span survives.
    """

    __slots__ = ("cache", "row_slots", "pages", "offsets", "new_lens",
                 "lo", "t_max", "layers")

    def __init__(self, cache: "PagedKVCache", spans):
        size = cache.page_size
        row_slots: list[int] = []
        pages: list[int] = []
        positions: list[int] = []
        for slot, start, m in spans:
            if m < 1:
                raise ValueError("span length must be >= 1")
            end = start + m
            if end > cache.max_seq_len:
                raise ValueError(
                    f"PagedKVCache overflow: span reaches {end} > "
                    f"{cache.max_seq_len}")
            table = cache.block_tables[slot]
            for idx in range(start // size, (end - 1) // size + 1):
                if idx == len(table):
                    table.append(cache._allocate())
                elif cache.refcounts[table[idx]] > 1:
                    # Copy-on-write before the span lands: the page is
                    # shared with a fork parent or the prefix cache.
                    fresh = cache._allocate()
                    cache._k[:, fresh] = cache._k[:, table[idx]]
                    cache._v[:, fresh] = cache._v[:, table[idx]]
                    cache._release(table[idx])
                    table[idx] = fresh
            for pos in range(start, end):
                row_slots.append(slot)
                pages.append(table[pos // size])
                positions.append(pos)
        self.cache = cache
        self.row_slots = np.asarray(row_slots, dtype=np.int64)
        self.pages = np.asarray(pages, dtype=np.int64)
        pos_arr = np.asarray(positions, dtype=np.int64)
        self.offsets = pos_arr % size
        self.new_lens = pos_arr + 1
        self.t_max = int(self.new_lens.max())
        window = cache.window
        self.lo = 0 if window is None \
            else max(0, int(self.new_lens.min()) - window)
        self.layers = [SpanLayerKV(self, i)
                       for i in range(len(cache.layers))]


class PagedKVCache:
    """Fixed-size-page KV pool with refcounted sharing and copy-on-write.

    Drop-in engine backend next to the dense :class:`~repro.infer.KVCache`:
    same ``layers`` / ``set_active`` / ``advance`` / ``reset_slot``
    surface, plus the paging-specific API the engine's admission and
    preemption logic uses (:meth:`try_admit`, :meth:`step_page_shortfall`,
    :meth:`register_prefix`, :meth:`fork_slot`).

    ``num_pages`` defaults to dense-equivalent capacity
    (``batch_size * ceil(max_seq_len / page_size)``) so a default
    engine can never run out of pages; size it smaller to oversubscribe
    slots against real memory, with admission/preemption absorbing the
    pressure.
    """

    def __init__(
        self,
        num_layers: int,
        batch_size: int,
        num_heads: int,
        max_seq_len: int,
        head_dim: int,
        page_size: int = 16,
        num_pages: int | None = None,
        window: int | None = None,
        dtype=None,
        prefix_sharing: bool = True,
    ):
        if min(num_layers, batch_size, num_heads, max_seq_len, head_dim,
               page_size) < 1:
            raise ValueError("all PagedKVCache dimensions must be >= 1")
        if window is not None and window < 1:
            raise ValueError("window must be >= 1 when set")
        if num_pages is None:
            # Dense-equivalent capacity: every slot can reach max_seq_len,
            # so a default engine can never exhaust the pool.  Sizing
            # num_pages smaller opts into oversubscription — the engine
            # then bounds each request by pool capacity at submit and
            # preempts under mid-decode pressure.
            num_pages = batch_size * -(-max_seq_len // page_size)
        if num_pages < 1:
            raise ValueError("num_pages must be >= 1")
        dtype = kv_value_dtype(dtype=dtype)
        shape = (num_layers, num_pages, num_heads, page_size, head_dim)
        self._k = np.zeros(shape, dtype=dtype)
        self._v = np.zeros(shape, dtype=dtype)
        self.batch_size = batch_size
        self.max_seq_len = max_seq_len
        self.page_size = page_size
        self.num_pages = num_pages
        self.window = window
        self.lengths = np.zeros(batch_size, dtype=np.int64)
        self.block_tables: list[list[int]] = [[] for _ in range(batch_size)]
        self.refcounts = np.zeros(num_pages, dtype=np.int64)
        # Popping yields ascending page ids: deterministic allocation
        # order, which keeps paged runs reproducible byte for byte.
        self._free = list(range(num_pages - 1, -1, -1))
        self.peak_pages_used = 0
        self.prefix: PrefixCache | None = \
            PrefixCache(self) if prefix_sharing else None
        self.layers = [PagedLayerKV(self, i) for i in range(num_layers)]
        self._write_pages = np.empty(0, dtype=np.int64)
        self._prepared = False
        self.set_active(np.arange(batch_size))

    @classmethod
    def for_model(cls, model, batch_size: int,
                  max_seq_len: int | None = None, page_size: int = 16,
                  num_pages: int | None = None,
                  prefix_sharing: bool = True,
                  dtype=None) -> "PagedKVCache":
        """Size a cache from a :class:`TransformerLM`-style ``model.config``.

        The page-pool dtype follows the model's parameter dtype via
        :func:`~repro.infer.kv_cache.kv_value_dtype` (explicit ``dtype``
        overrides), halving KV bytes per page for a float32 model.
        """
        cfg = model.config
        return cls(
            num_layers=cfg.num_layers,
            batch_size=batch_size,
            num_heads=cfg.num_heads,
            max_seq_len=max_seq_len or cfg.max_seq_len,
            head_dim=cfg.head_dim,
            page_size=page_size,
            num_pages=num_pages,
            window=cfg.attention_window,
            prefix_sharing=prefix_sharing,
            dtype=kv_value_dtype(model, dtype),
        )

    # ------------------------------------------------------------------
    # Pool accounting
    # ------------------------------------------------------------------
    @property
    def dtype(self) -> np.dtype:
        """Value dtype of the page pool (index arrays are always int64)."""
        return self._k.dtype

    @property
    def free_pages(self) -> int:
        return len(self._free)

    @property
    def used_pages(self) -> int:
        return self.num_pages - len(self._free)

    @property
    def shared_pages(self) -> int:
        """Pages with more than one holder (slots and/or the prefix cache)."""
        return int((self.refcounts > 1).sum())

    @property
    def available_pages(self) -> int:
        """Pages obtainable right now: free plus LRU-evictable cached."""
        evictable = self.prefix.evictable_pages if self.prefix else 0
        return len(self._free) + evictable

    @property
    def page_bytes(self) -> int:
        """K+V bytes of one page across every layer."""
        return int(self._k[:, 0].nbytes + self._v[:, 0].nbytes)

    @property
    def nbytes(self) -> int:
        """Bytes of the whole pool allocation (used or not)."""
        return self._k.nbytes + self._v.nbytes

    @property
    def bytes_in_use(self) -> int:
        """Bytes of pages currently held by slots or the prefix cache."""
        return self.used_pages * self.page_bytes

    def pages_for(self, n_tokens: int) -> int:
        """Pages needed to hold ``n_tokens`` positions."""
        return -(-n_tokens // self.page_size)

    def stats(self) -> dict:
        """JSON-ready pool + prefix-cache snapshot for ``engine.stats()``."""
        snapshot = {
            "backend": "paged",
            "dtype": self.dtype.name,
            "page_size": self.page_size,
            "num_pages": self.num_pages,
            "pages_free": self.free_pages,
            "pages_used": self.used_pages,
            "pages_shared": self.shared_pages,
            "peak_pages_used": self.peak_pages_used,
            "page_bytes": self.page_bytes,
            "kv_bytes_pool": self.nbytes,
            "kv_bytes_in_use": self.bytes_in_use,
        }
        if self.prefix is not None:
            snapshot["prefix_cache"] = self.prefix.stats()
        return snapshot

    # ------------------------------------------------------------------
    # Allocation / release
    # ------------------------------------------------------------------
    def _allocate(self) -> int:
        if not self._free:
            if self.prefix is None:
                raise PagePoolExhausted(
                    f"all {self.num_pages} pages are in use")
            self.prefix.evict_one()
        page = self._free.pop()
        self.refcounts[page] = 1
        self.peak_pages_used = max(self.peak_pages_used, self.used_pages)
        return page

    def _release(self, page: int) -> None:
        self.refcounts[page] -= 1
        if self.refcounts[page] == 0:
            self._free.append(page)
        elif self.refcounts[page] < 0:
            raise AssertionError(f"page {page} refcount went negative")

    # ------------------------------------------------------------------
    # Step protocol (same surface as the dense KVCache)
    # ------------------------------------------------------------------
    def set_active(self, slots: np.ndarray) -> None:
        """Select which slots the next append/advance operates on."""
        self._active = np.asarray(slots, dtype=np.int64)
        self._prepared = False

    def _writable_page(self, slot: int) -> int:
        """Resolve (allocating or copy-on-writing) this slot's write page."""
        pos = int(self.lengths[slot])
        if pos >= self.max_seq_len:
            raise ValueError(
                f"PagedKVCache overflow: sequence exceeds {self.max_seq_len}")
        idx = pos // self.page_size
        table = self.block_tables[slot]
        if idx == len(table):
            table.append(self._allocate())
        elif self.refcounts[table[idx]] > 1:
            # Copy-on-write: the page is shared (a fork sibling or the
            # prefix cache also holds it); divergence gets a private copy
            # of every layer's rows before the write lands.
            fresh = self._allocate()
            self._k[:, fresh] = self._k[:, table[idx]]
            self._v[:, fresh] = self._v[:, table[idx]]
            self._release(table[idx])
            table[idx] = fresh
        return table[idx]

    def _prepare_step(self) -> None:
        """Resolve every active slot's write page once per model step."""
        pages = np.empty(self._active.size, dtype=np.int64)
        for row, slot in enumerate(self._active):
            pages[row] = self._writable_page(int(slot))
        self._write_pages = pages
        self._prepared = True

    def _gather(self, buf: np.ndarray, active: np.ndarray, lo: int,
                t_max: int) -> np.ndarray:
        """Contiguous (n, H, t_max - lo, hd) view over scattered pages.

        Rows shorter than ``t_max`` gather whatever the defaulted page 0
        holds beyond their block table — those positions are exactly the
        ones :func:`ragged_key_mask` sends to ``-inf``, so their values
        never reach an attention weight (``exp(-inf) == 0.0``).
        """
        size = self.page_size
        page_lo = lo // size
        page_hi = -(-t_max // size)
        cols = page_hi - page_lo
        table = np.zeros((active.size, cols), dtype=np.int64)
        for row, slot in enumerate(active):
            bt = self.block_tables[int(slot)]
            have = min(len(bt), page_hi) - page_lo
            if have > 0:
                table[row, :have] = bt[page_lo:page_hi]
        n = active.size
        _, heads, _, head_dim = buf.shape
        # One column at a time lands each (n, H, page, hd) page block
        # directly in its target position — a single copy into the
        # contiguous layout, instead of fancy-index + transpose/reshape
        # (two full copies).  cols is small (t / page_size).
        out = np.empty((n, heads, cols * size, head_dim), dtype=buf.dtype)
        for col in range(cols):
            out[:, :, col * size:(col + 1) * size] = buf[table[:, col]]
        return out[:, :, lo - page_lo * size: t_max - page_lo * size]

    def advance(self) -> None:
        """Commit one decode step: every active slot grew by one position."""
        if self._active.size and \
                int(self.lengths[self._active].max()) >= self.max_seq_len:
            raise ValueError(
                f"PagedKVCache overflow: sequence exceeds {self.max_seq_len}")
        self.lengths[self._active] += 1
        self._prepared = False

    def reset_slot(self, slot: int) -> None:
        """Release the slot's pages back to the pool (or to the prefix
        cache, for pages it also holds) and zero its length."""
        for page in self.block_tables[slot]:
            self._release(page)
        self.block_tables[slot] = []
        self.lengths[slot] = 0
        self._prepared = False

    # ------------------------------------------------------------------
    # Paging-specific API (admission, sharing, forking)
    # ------------------------------------------------------------------
    def pages_to_admit(self, tokens) -> int:
        """Fresh pages an admission would need after prefix reuse."""
        shared = len(self.prefix.match(tokens, record=False)) \
            if self.prefix else 0
        return self.pages_for(len(tokens)) - shared

    def try_admit(self, slot: int, tokens) -> int | None:
        """Attach prefix-cached pages and reserve the slot for ``tokens``.

        Returns the number of positions covered by reused pages (0 on a
        miss) — the engine starts prefill *after* them — or ``None``
        when the pool cannot currently supply the prompt's fresh pages
        (the caller should keep the request queued).
        """
        pages = self.prefix.match(tokens, record=False) if self.prefix else []
        needed = self.pages_for(len(tokens)) - len(pages)
        self.reset_slot(slot)
        for page in pages:
            self.refcounts[page] += 1
        # Matched pages are pinned (refcount >= 2) before availability is
        # measured, so the eviction headroom below cannot count them.
        if needed > self.available_pages:
            for page in pages:
                self._release(page)
            return None
        if self.prefix is not None:
            # Re-record as a real admission (match() above only peeked).
            if pages:
                self.prefix.hits += 1
                self.prefix.hit_tokens += len(pages) * self.page_size
                for n_pages in range(1, len(pages) + 1):
                    self.prefix._touch(tuple(tokens[: n_pages * self.page_size]))
            else:
                self.prefix.misses += 1
        self.block_tables[slot] = list(pages)
        self.lengths[slot] = len(pages) * self.page_size
        return len(pages) * self.page_size

    def step_page_shortfall(self, active) -> int:
        """Pages the next step needs beyond what the pool can supply.

        Positive means stepping would exhaust the pool: some active slot
        sits at a page boundary (needs a fresh page) or must copy-on-
        write a shared page, and free + evictable cannot cover them all.
        The engine preempts until this is no longer positive.
        """
        needed = 0
        for slot in active:
            pos = int(self.lengths[slot])
            idx = pos // self.page_size
            table = self.block_tables[int(slot)]
            if idx == len(table) or self.refcounts[table[idx]] > 1:
                needed += 1
        return needed - self.available_pages

    def register_prefix(self, slot: int, tokens) -> int:
        """Publish the slot's full prompt pages into the prefix cache."""
        if self.prefix is None:
            return 0
        return self.prefix.insert(tokens, self.block_tables[slot])

    def begin_spans(self, spans) -> SpanBatch:
        """Resolve a multi-position write: ``spans`` is a list of
        ``(slot, start, m)`` triples, each contributing ``m`` batch rows
        at consecutive positions.  Returns the :class:`SpanBatch` whose
        ``layers`` drive one ``decode_step``; commit survivors with
        :meth:`commit_span` / :meth:`promote_fork` afterwards."""
        return SpanBatch(self, spans)

    def commit_span(self, slot: int, length: int) -> None:
        """Set a slot's valid length after a span write landed on it."""
        if length > self.max_seq_len:
            raise ValueError(
                f"PagedKVCache overflow: sequence exceeds {self.max_seq_len}")
        self.lengths[slot] = length
        self._prepared = False

    def promote_fork(self, src: int, dst: int, length: int) -> None:
        """Adopt ``src``'s pages as ``dst``'s state, truncated to ``length``.

        The speculative commit-or-rollback primitive: the draft branch
        decoded on fork ``src``; ``dst`` (the canonical slot) takes over
        ``src``'s block table up to ``length`` accepted positions, pages
        beyond that are released (the rollback of rejected drafts), and
        ``dst``'s previous references are dropped — pages shared by both
        tables just lose the fork's double-count, pages ``src`` COW-ed
        replace their stale originals, and ``src`` is left empty.
        """
        keep = self.pages_for(length)
        table = self.block_tables[src]
        if keep > len(table):
            raise ValueError(
                f"promote_fork: {length} positions need {keep} pages but "
                f"slot {src} holds {len(table)}")
        for page in table[keep:]:
            self._release(page)
        kept = table[:keep]
        self.block_tables[src] = []
        self.lengths[src] = 0
        for page in self.block_tables[dst]:
            self._release(page)
        self.block_tables[dst] = kept
        self.lengths[dst] = length
        self._prepared = False

    def fork_slot(self, src: int, dst: int) -> None:
        """Clone ``src`` into ``dst`` by sharing every page (O(1) copies).

        Both slots keep decoding from the same history; the first write
        either side makes to a shared page triggers copy-on-write, so
        continuations diverge safely — the building block for parallel
        sampling and beam-style search.
        """
        if src == dst:
            raise ValueError("cannot fork a slot onto itself")
        self.reset_slot(dst)
        for page in self.block_tables[src]:
            self.refcounts[page] += 1
        self.block_tables[dst] = list(self.block_tables[src])
        self.lengths[dst] = self.lengths[src]
