"""Co-occurrence matrices: the distributional-hypothesis workhorse (§5).

"You shall know a word by the company it keeps": the (w, w') entry of the
co-occurrence matrix counts how often the two words appear within the same
window, and its columns are the first, |W|-dimensional word embedding
(Eq. 7) from which PPMI/PCA refinements are derived.
"""

from __future__ import annotations

import numpy as np


def cooccurrence_matrix(
    ids: np.ndarray, vocab_size: int, window: int = 4, symmetric: bool = True
) -> np.ndarray:
    """Count pairs within ``window`` positions of each other.

    With ``symmetric=True`` the matrix counts unordered neighbour pairs
    (the paper's M_N with N = window + 1, up to double counting on the
    diagonal direction); otherwise only left-contexts are counted.
    """
    ids = np.asarray(ids, dtype=np.int64)
    if window < 1:
        raise ValueError("window must be >= 1")
    if ids.size and (ids.min() < 0 or ids.max() >= vocab_size):
        raise ValueError("token id out of range")
    matrix = np.zeros((vocab_size, vocab_size))
    for offset in range(1, window + 1):
        left = ids[:-offset]
        right = ids[offset:]
        np.add.at(matrix, (right, left), 1.0)
    if symmetric:
        matrix = matrix + matrix.T
    return matrix


def word_counts(ids: np.ndarray, vocab_size: int) -> np.ndarray:
    """#(w) for every word — the normaliser in the Eq. 10 ratios."""
    ids = np.asarray(ids, dtype=np.int64)
    return np.bincount(ids, minlength=vocab_size).astype(np.float64)
