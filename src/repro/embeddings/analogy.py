"""Word-vector arithmetic: the Eq. 9 analogy test.

``iota(king) - iota(man) + iota(woman) ~ iota(queen)``: form the query
vector, find the nearest embedding by cosine similarity (excluding the
three query words, the standard convention), and score top-1 accuracy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..data.vocab import Vocabulary


def _normalise(matrix: np.ndarray) -> np.ndarray:
    norms = np.linalg.norm(matrix, axis=1, keepdims=True)
    norms[norms == 0] = 1.0
    return matrix / norms


def nearest_words(
    embeddings: np.ndarray,
    vocab: Vocabulary,
    query: np.ndarray,
    k: int = 5,
    exclude: Sequence[str] = (),
) -> list[tuple[str, float]]:
    """Top-k words by cosine similarity to ``query``."""
    unit = _normalise(np.asarray(embeddings, dtype=np.float64))
    q = np.asarray(query, dtype=np.float64)
    q_norm = np.linalg.norm(q)
    if q_norm == 0:
        raise ValueError("zero query vector")
    sims = unit @ (q / q_norm)
    for word in exclude:
        if word in vocab:
            sims[vocab.token_to_id(word)] = -np.inf
    order = np.argsort(-sims)[:k]
    return [(vocab.id_to_token(int(i)), float(sims[i])) for i in order]


def analogy_query(
    embeddings: np.ndarray, vocab: Vocabulary, a: str, b: str, c: str
) -> np.ndarray:
    """The Eq. 9 query vector v(a) - v(b) + v(c)."""
    for word in (a, b, c):
        if word not in vocab:
            raise KeyError(f"{word!r} not in vocabulary")
    e = np.asarray(embeddings, dtype=np.float64)
    return (e[vocab.token_to_id(a)] - e[vocab.token_to_id(b)]
            + e[vocab.token_to_id(c)])


@dataclass
class AnalogyReport:
    """Result of an analogy evaluation: counts plus the failing quadruples."""

    total: int
    correct: int
    failures: list[tuple[str, str, str, str, str]]  # (a, b, c, expected, got)

    @property
    def accuracy(self) -> float:
        return self.correct / self.total if self.total else 0.0


def evaluate_analogies(
    embeddings: np.ndarray,
    vocab: Vocabulary,
    questions: Sequence[tuple[str, str, str, str]],
) -> AnalogyReport:
    """Top-1 accuracy of a - b + c ~ d over a question set.

    Questions whose words are missing from the vocabulary are skipped
    (they cannot be asked of this embedding).
    """
    correct = 0
    total = 0
    failures: list[tuple[str, str, str, str, str]] = []
    for a, b, c, expected in questions:
        if any(w not in vocab for w in (a, b, c, expected)):
            continue
        total += 1
        query = analogy_query(embeddings, vocab, a, b, c)
        top = nearest_words(embeddings, vocab, query, k=1, exclude=(a, b, c))
        got = top[0][0]
        if got == expected:
            correct += 1
        else:
            failures.append((a, b, c, expected, got))
    return AnalogyReport(total=total, correct=correct, failures=failures)
