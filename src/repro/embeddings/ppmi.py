"""Positive pointwise mutual information weighting.

The Eq. 10 analogy identity is a statement about ratios of normalised
co-occurrence counts — i.e. about pointwise mutual information
``log P(w, u) / (P(w) P(u))``.  Taking logs turns the multiplicative ratio
structure into the additive structure that vector arithmetic exploits;
clipping at zero (PPMI) is the standard robustness fix for rare pairs.
"""

from __future__ import annotations

import numpy as np


def pmi_matrix(counts: np.ndarray, positive: bool = True,
               smoothing: float = 0.75) -> np.ndarray:
    """(P)PMI transform of a co-occurrence count matrix.

    ``smoothing`` raises context counts to a power < 1 (the word2vec /
    GloVe context-distribution smoothing), which damps the PMI of rare
    contexts.
    """
    counts = np.asarray(counts, dtype=np.float64)
    if counts.ndim != 2 or counts.shape[0] != counts.shape[1]:
        raise ValueError("expected a square co-occurrence matrix")
    total = counts.sum()
    if total == 0:
        raise ValueError("empty co-occurrence matrix")
    row = counts.sum(axis=1, keepdims=True)
    col = counts.sum(axis=0, keepdims=True) ** smoothing
    col = col / col.sum() * total  # renormalise smoothed context mass
    with np.errstate(divide="ignore", invalid="ignore"):
        pmi = np.log(counts * total / (row * col))
    pmi[~np.isfinite(pmi)] = 0.0 if positive else -np.inf
    if positive:
        pmi = np.maximum(pmi, 0.0)
    return pmi
