"""Distributional word embeddings (§5): co-occurrence, PPMI, SVD, analogies."""

from .analogy import (
    AnalogyReport,
    analogy_query,
    evaluate_analogies,
    nearest_words,
)
from .cooccurrence import cooccurrence_matrix, word_counts
from .pca import center_rows, explained_variance, svd_embedding
from .ppmi import pmi_matrix

__all__ = [
    "cooccurrence_matrix",
    "word_counts",
    "pmi_matrix",
    "svd_embedding",
    "explained_variance",
    "center_rows",
    "analogy_query",
    "nearest_words",
    "evaluate_analogies",
    "AnalogyReport",
]
