"""Dimensionality reduction of word vectors (§5's "rank-p approximation").

The raw co-occurrence columns live in |W| dimensions with many zeros; a
truncated SVD gives the best low-rank approximation (the paper's PCA step)
and also demonstrates the §7 "compression" point — interpretable
high-dimensional structure survives projection to a much lower dimension.
"""

from __future__ import annotations

import numpy as np


def svd_embedding(matrix: np.ndarray, dim: int, scale_by_singular_values: bool = True
                  ) -> np.ndarray:
    """Rank-``dim`` embedding of the rows of ``matrix`` via truncated SVD.

    Returns a (|W|, dim) array.  With scaling on, rows are
    ``U_d diag(s_d)^{1/2}``, the symmetric convention standard for
    count/PPMI matrices.
    """
    matrix = np.asarray(matrix, dtype=np.float64)
    if dim < 1 or dim > min(matrix.shape):
        raise ValueError(f"dim must be in [1, {min(matrix.shape)}]")
    u, s, _vt = np.linalg.svd(matrix, full_matrices=False)
    if scale_by_singular_values:
        return u[:, :dim] * np.sqrt(s[:dim])
    return u[:, :dim]


def explained_variance(matrix: np.ndarray, dim: int) -> float:
    """Fraction of squared Frobenius mass captured by the top ``dim`` ranks."""
    s = np.linalg.svd(np.asarray(matrix, dtype=np.float64), compute_uv=False)
    total = float((s**2).sum())
    if total == 0:
        raise ValueError("zero matrix has no variance to explain")
    return float((s[:dim] ** 2).sum() / total)


def center_rows(matrix: np.ndarray) -> np.ndarray:
    """Subtract the column mean (true PCA preprocessing)."""
    matrix = np.asarray(matrix, dtype=np.float64)
    return matrix - matrix.mean(axis=0, keepdims=True)
