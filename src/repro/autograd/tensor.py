"""Reverse-mode automatic differentiation over NumPy arrays.

This module is the computational substrate the paper assumes when it says
"backpropagation" (Eq. 16).  A :class:`Tensor` wraps a ``numpy.ndarray``
and records the operations applied to it; :meth:`Tensor.backward` walks the
recorded graph in reverse topological order and accumulates gradients.

Only the primitives needed by the rest of the library are implemented, but
each one supports full NumPy broadcasting; gradients of broadcast operands
are reduced back to the operand's shape (see :func:`_unbroadcast`).

Arrays follow the process dtype policy (:mod:`repro.dtypes`): float64 by
default — so the finite-difference checks in
:mod:`repro.autograd.gradcheck` stay meaningful — with an opt-in float32
path for the bandwidth-bound training and decode hot loops.  A
:class:`Tensor` built from an existing float32/float64 array keeps that
array's dtype (and aliasing); anything else is cast to the active
default.  Gradients are accumulated in the tensor's own dtype.
"""

from __future__ import annotations

import contextlib
from typing import Callable, Iterable, Sequence, Union

import numpy as np

from ..dtypes import SUPPORTED_DTYPES, default_dtype, resolve_dtype

Arrayish = Union["Tensor", np.ndarray, float, int, list, tuple]

_GRAD_ENABLED = True

# Monotone counter bumped at the start of every Tensor.backward() call.
# Multi-output nodes (e.g. functional.split3) use it to tell one backward
# pass from the next, so per-pass scratch buffers are never reused stale.
_BACKWARD_PASS = 0


def _backward_pass_id() -> int:
    """Identifier of the backward pass currently (or last) running."""
    return _BACKWARD_PASS


@contextlib.contextmanager
def no_grad():
    """Context manager that disables graph recording (for inference)."""
    global _GRAD_ENABLED
    previous, _GRAD_ENABLED = _GRAD_ENABLED, False
    try:
        yield
    finally:
        _GRAD_ENABLED = previous


def is_grad_enabled() -> bool:
    """Return whether operations are currently recorded onto the graph."""
    return _GRAD_ENABLED


def _unbroadcast(grad: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
    """Sum ``grad`` down to ``shape``, undoing NumPy broadcasting.

    If an operand of shape ``shape`` was broadcast up to ``grad.shape``
    during the forward pass, the chain rule requires summing the incoming
    gradient over every broadcast axis.
    """
    if grad.shape == shape:
        return grad
    # Sum over leading axes that were added by broadcasting.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Sum over axes that were size-1 in the original operand.
    axes = tuple(i for i, n in enumerate(shape) if n == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


class Tensor:
    """A NumPy array with an optional gradient and autograd history.

    Parameters
    ----------
    data:
        Anything convertible to a ``numpy.ndarray``.  Arrays already in a
        supported compute dtype (float32/float64) are kept as-is — no
        copy, no cast — so models built under a ``dtype_scope`` thread
        their dtype through every downstream op.  Anything else (python
        scalars, lists, integer arrays) is cast to the policy default.
    requires_grad:
        If True, gradients are accumulated into ``self.grad`` during
        :meth:`backward`.
    dtype:
        Optional explicit override; wins over both the array's own dtype
        and the policy default.
    """

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_parents")

    def __init__(self, data: Arrayish, requires_grad: bool = False, dtype=None):
        if isinstance(data, Tensor):
            data = data.data
        if dtype is not None:
            self.data = np.asarray(data, dtype=resolve_dtype(dtype))
        else:
            arr = np.asarray(data)
            if arr.dtype not in SUPPORTED_DTYPES:
                arr = arr.astype(default_dtype())
            self.data = arr
        self.requires_grad = bool(requires_grad) and _GRAD_ENABLED
        self.grad: np.ndarray | None = None
        self._backward: Callable[[np.ndarray], None] | None = None
        self._parents: tuple[Tensor, ...] = ()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:
        flag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor({self.data!r}{flag})"

    def item(self) -> float:
        return float(self.data)

    def numpy(self) -> np.ndarray:
        """Return the underlying array (not a copy)."""
        return self.data

    def detach(self) -> "Tensor":
        """Return a new tensor sharing data but cut off from the graph."""
        out = Tensor.__new__(Tensor)
        out.data = self.data
        out.requires_grad = False
        out.grad = None
        out._backward = None
        out._parents = ()
        return out

    # ------------------------------------------------------------------
    # Graph construction / backward
    # ------------------------------------------------------------------
    @staticmethod
    def _make(
        data: np.ndarray,
        parents: Sequence["Tensor"],
        backward: Callable[[np.ndarray], None],
    ) -> "Tensor":
        """Build a result tensor, recording history only when needed."""
        needs = _GRAD_ENABLED and any(p.requires_grad for p in parents)
        out = Tensor.__new__(Tensor)
        out.data = data
        out.grad = None
        out.requires_grad = needs
        if needs:
            out._parents = tuple(parents)
            out._backward = backward
        else:
            out._parents = ()
            out._backward = None
        return out

    def _accumulate(self, grad: np.ndarray, owned: bool = False) -> None:
        """Fold one contribution into ``self.grad``.

        ``owned=True`` means the caller guarantees ``grad`` is a freshly
        allocated array nobody else references, so it can be adopted
        directly (and mutated in place later) instead of copied.  Either
        way ``self.grad`` is exclusively ours afterwards, which is what
        makes the in-place ``+=`` on subsequent contributions safe.
        """
        if self.grad is None:
            self.grad = grad if owned else np.array(grad, dtype=self.data.dtype)
        else:
            self.grad += grad

    def backward(self, grad: np.ndarray | None = None) -> None:
        """Backpropagate from this tensor.

        If ``grad`` is omitted the tensor must be a scalar, in which case
        the seed gradient is 1.0 (the usual loss.backward() convention).
        """
        global _BACKWARD_PASS
        if not self.requires_grad:
            raise RuntimeError("backward() on a tensor that does not require grad")
        _BACKWARD_PASS += 1
        if grad is None:
            if self.data.size != 1:
                raise RuntimeError("backward() without grad requires a scalar tensor")
            grad = np.ones_like(self.data)
        grad = np.asarray(grad, dtype=self.data.dtype)
        if grad.shape != self.data.shape:
            raise ValueError(
                f"seed gradient shape {grad.shape} != tensor shape {self.data.shape}"
            )

        order: list[Tensor] = []
        seen: set[int] = set()
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                order.append(node)
                continue
            if id(node) in seen:
                continue
            seen.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if parent.requires_grad and id(parent) not in seen:
                    stack.append((parent, False))

        grads: dict[int, np.ndarray] = {id(self): grad}
        owned: set[int] = set()
        for node in reversed(order):
            g = grads.pop(id(node), None)
            owned.discard(id(node))
            if g is None:
                continue
            if node._backward is None:
                # Leaf: accumulate into .grad
                node._accumulate(g)
                continue
            node._pass_down(g, grads, owned)

    def _pass_down(
        self,
        g: np.ndarray,
        grads: dict[int, np.ndarray],
        owned: set[int],
    ) -> None:
        """Run this node's backward fn, routing parent grads via ``grads``.

        Gradient accumulation owns its buffer: the first time a second
        contribution arrives for a node, one buffer is allocated (or an
        emitter-owned fresh array adopted) and recorded in ``owned``;
        every later contribution is an in-place ``+=`` into it instead of
        a fresh allocation per contribution.  Emitters flag contributions
        they exclusively own (freshly allocated, emitted once) via
        ``emit(parent, pg, True)``; unflagged contributions may alias
        ``g`` or other live arrays and are never mutated.
        """
        contributions: list[tuple[Tensor, np.ndarray, bool]] = []

        def emit(parent: Tensor, pg: np.ndarray, pg_owned: bool = False) -> None:
            contributions.append((parent, pg, pg_owned))

        self._backward(g, emit)  # type: ignore[misc]
        for parent, pg, pg_owned in contributions:
            if not parent.requires_grad:
                continue
            if parent._backward is None and not parent._parents:
                parent._accumulate(pg, owned=pg_owned)
                continue
            key = id(parent)
            cur = grads.get(key)
            if cur is None:
                grads[key] = pg
                if pg_owned:
                    owned.add(key)
            elif key in owned:
                # In-place for ndarrays; the store-back also covers 0-d
                # results that NumPy returned as (immutable) scalars.
                cur += pg
                grads[key] = cur
            elif pg_owned:
                pg += cur
                grads[key] = pg
                owned.add(key)
            else:
                grads[key] = cur + pg
                owned.add(key)

    def zero_grad(self) -> None:
        self.grad = None

    # ------------------------------------------------------------------
    # Arithmetic primitives
    # ------------------------------------------------------------------
    def __add__(self, other: Arrayish) -> "Tensor":
        other = as_tensor(other, self.data.dtype)
        data = self.data + other.data

        def backward(g, emit):
            emit(self, _unbroadcast(g, self.shape))
            emit(other, _unbroadcast(g, other.shape))

        return Tensor._make(data, (self, other), backward)

    __radd__ = __add__

    def __neg__(self) -> "Tensor":
        def backward(g, emit):
            emit(self, -g, True)

        return Tensor._make(-self.data, (self,), backward)

    def __sub__(self, other: Arrayish) -> "Tensor":
        return self + (-as_tensor(other, self.data.dtype))

    def __rsub__(self, other: Arrayish) -> "Tensor":
        return as_tensor(other, self.data.dtype) + (-self)

    def __mul__(self, other: Arrayish) -> "Tensor":
        other = as_tensor(other, self.data.dtype)
        data = self.data * other.data

        def backward(g, emit):
            emit(self, _unbroadcast(g * other.data, self.shape), True)
            emit(other, _unbroadcast(g * self.data, other.shape), True)

        return Tensor._make(data, (self, other), backward)

    __rmul__ = __mul__

    def __truediv__(self, other: Arrayish) -> "Tensor":
        other = as_tensor(other, self.data.dtype)
        data = self.data / other.data

        def backward(g, emit):
            emit(self, _unbroadcast(g / other.data, self.shape), True)
            emit(other, _unbroadcast(-g * self.data / (other.data**2), other.shape), True)

        return Tensor._make(data, (self, other), backward)

    def __rtruediv__(self, other: Arrayish) -> "Tensor":
        return as_tensor(other, self.data.dtype) / self

    def __pow__(self, exponent: float) -> "Tensor":
        if isinstance(exponent, Tensor):
            raise TypeError("tensor exponents are not supported; use exp/log")
        data = self.data**exponent

        def backward(g, emit):
            emit(self, g * exponent * self.data ** (exponent - 1), True)

        return Tensor._make(data, (self,), backward)

    def __matmul__(self, other: Arrayish) -> "Tensor":
        other = as_tensor(other)
        a, b = self.data, other.data
        if a.ndim < 2 or b.ndim < 2:
            raise ValueError("matmul requires tensors with ndim >= 2")
        data = a @ b

        def backward(g, emit):
            ga = g @ b.swapaxes(-1, -2)
            gb = a.swapaxes(-1, -2) @ g
            emit(self, _unbroadcast(ga, a.shape), True)
            emit(other, _unbroadcast(gb, b.shape), True)

        return Tensor._make(data, (self, other), backward)

    # ------------------------------------------------------------------
    # Elementwise functions
    # ------------------------------------------------------------------
    def exp(self) -> "Tensor":
        data = np.exp(self.data)

        def backward(g, emit):
            emit(self, g * data, True)

        return Tensor._make(data, (self,), backward)

    def log(self) -> "Tensor":
        def backward(g, emit):
            emit(self, g / self.data, True)

        return Tensor._make(np.log(self.data), (self,), backward)

    def sqrt(self) -> "Tensor":
        return self**0.5

    def tanh(self) -> "Tensor":
        data = np.tanh(self.data)

        def backward(g, emit):
            emit(self, g * (1.0 - data**2), True)

        return Tensor._make(data, (self,), backward)

    def sigmoid(self) -> "Tensor":
        data = 1.0 / (1.0 + np.exp(-self.data))

        def backward(g, emit):
            emit(self, g * data * (1.0 - data), True)

        return Tensor._make(data, (self,), backward)

    def relu(self) -> "Tensor":
        mask = self.data > 0
        data = np.where(mask, self.data, 0.0)

        def backward(g, emit):
            emit(self, g * mask, True)

        return Tensor._make(data, (self,), backward)

    def square(self) -> "Tensor":
        return self * self

    def abs(self) -> "Tensor":
        sign = np.sign(self.data)

        def backward(g, emit):
            emit(self, g * sign, True)

        return Tensor._make(np.abs(self.data), (self,), backward)

    # ------------------------------------------------------------------
    # Reductions
    # ------------------------------------------------------------------
    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        axis = _normalize_axes(axis)
        data = self.data.sum(axis=axis, keepdims=keepdims)

        def backward(g, emit):
            g = np.asarray(g)
            if axis is not None and not keepdims:
                g = np.expand_dims(g, axis)
            emit(self, np.broadcast_to(g, self.shape).copy(), True)

        return Tensor._make(data, (self,), backward)

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        axis = _normalize_axes(axis)
        if axis is None:
            count = self.data.size
        else:
            count = int(np.prod([self.data.shape[a] for a in axis]))
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def max(self, axis=None, keepdims: bool = False) -> "Tensor":
        axis = _normalize_axes(axis)
        data = self.data.max(axis=axis, keepdims=keepdims)

        def backward(g, emit):
            g = np.asarray(g)
            expanded = data
            if axis is not None and not keepdims:
                g = np.expand_dims(g, axis)
                expanded = np.expand_dims(data, axis)
            mask = (self.data == expanded).astype(self.data.dtype)
            # Split gradient evenly among ties, matching subgradient choice.
            mask /= mask.sum(axis=axis, keepdims=True) if axis is not None else mask.sum()
            emit(self, g * mask, True)

        return Tensor._make(data, (self,), backward)

    # ------------------------------------------------------------------
    # Shape manipulation
    # ------------------------------------------------------------------
    def reshape(self, *shape) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        data = self.data.reshape(shape)

        def backward(g, emit):
            emit(self, g.reshape(self.shape))

        return Tensor._make(data, (self,), backward)

    def transpose(self, *axes) -> "Tensor":
        if len(axes) == 1 and isinstance(axes[0], (tuple, list)):
            axes = tuple(axes[0])
        if not axes:
            axes = tuple(reversed(range(self.ndim)))
        inverse = np.argsort(axes)
        data = self.data.transpose(axes)

        def backward(g, emit):
            emit(self, g.transpose(inverse))

        return Tensor._make(data, (self,), backward)

    def swapaxes(self, a: int, b: int) -> "Tensor":
        axes = list(range(self.ndim))
        axes[a], axes[b] = axes[b], axes[a]
        return self.transpose(tuple(axes))

    def __getitem__(self, index) -> "Tensor":
        data = self.data[index]
        basic = _is_basic_index(index)

        def backward(g, emit):
            buf = np.zeros_like(self.data)
            if basic:
                # Basic (slice/int/ellipsis) indexing selects each source
                # element at most once, so the gradient can be assigned
                # straight into the zero buffer.  ``np.add.at`` — an order
                # of magnitude slower — is only needed for integer-array
                # indices, which may repeat elements.
                buf[index] = g
            else:
                np.add.at(buf, index, g)
            emit(self, buf, True)

        return Tensor._make(data, (self,), backward)

    def pad_last(self, before: int, after: int) -> "Tensor":
        """Zero-pad the final axis (used by convolution-free models)."""
        widths = [(0, 0)] * (self.ndim - 1) + [(before, after)]
        data = np.pad(self.data, widths)
        last = self.shape[-1]

        def backward(g, emit):
            sl = [slice(None)] * (self.ndim - 1) + [slice(before, before + last)]
            emit(self, g[tuple(sl)])

        return Tensor._make(data, (self,), backward)


def _normalize_axes(axis) -> tuple[int, ...] | None:
    """Coerce a reduction ``axis`` argument to ``None`` or a tuple of ints.

    NumPy reductions accept an int, a tuple, or a list; the backward
    passes need one canonical form so ``np.expand_dims`` re-inserts the
    reduced axes correctly (a bare list used to crash the backward).
    """
    if axis is None:
        return None
    if isinstance(axis, (list, np.ndarray)):
        return tuple(int(a) for a in axis)
    if isinstance(axis, tuple):
        return axis
    return (int(axis),)


def _is_basic_index(index) -> bool:
    """True when ``index`` triggers NumPy basic (non-repeating) indexing.

    Boolean masks also select each element at most once, but they go
    through the advanced-indexing machinery and are rare here, so only
    the common scalar/slice forms take the fast path.
    """
    if isinstance(index, tuple):
        return all(_is_basic_index(i) for i in index)
    return (
        index is None
        or index is Ellipsis
        or isinstance(index, (int, np.integer, slice))
    )


def as_tensor(value: Arrayish, dtype=None) -> Tensor:
    """Coerce ``value`` to a (non-grad-requiring) :class:`Tensor`.

    ``dtype`` applies only when ``value`` is a bare scalar: the binary
    ops pass their own dtype here so ``x * 0.5`` stays float32 for a
    float32 ``x`` — wrapping the scalar as a float64 0-d *array* would
    otherwise upcast the whole expression under NumPy's promotion
    rules.  Arrays and existing tensors keep their own dtype.
    """
    if isinstance(value, Tensor):
        return value
    if dtype is not None and np.isscalar(value):
        return Tensor(value, dtype=dtype)
    return Tensor(value)


def concatenate(tensors: Iterable[Tensor], axis: int = 0) -> Tensor:
    """Concatenate tensors along ``axis`` with gradient routing."""
    tensors = [as_tensor(t) for t in tensors]
    data = np.concatenate([t.data for t in tensors], axis=axis)
    sizes = [t.data.shape[axis] for t in tensors]
    offsets = np.cumsum([0] + sizes)

    def backward(g, emit):
        for t, start, stop in zip(tensors, offsets[:-1], offsets[1:]):
            sl = [slice(None)] * g.ndim
            sl[axis] = slice(int(start), int(stop))
            emit(t, g[tuple(sl)])

    return Tensor._make(data, tuple(tensors), backward)


def stack(tensors: Iterable[Tensor], axis: int = 0) -> Tensor:
    """Stack tensors along a new axis with gradient routing."""
    tensors = [as_tensor(t) for t in tensors]
    data = np.stack([t.data for t in tensors], axis=axis)

    def backward(g, emit):
        for i, t in enumerate(tensors):
            emit(t, np.take(g, i, axis=axis), True)

    return Tensor._make(data, tuple(tensors), backward)


def where(condition: np.ndarray, a: Arrayish, b: Arrayish) -> Tensor:
    """Elementwise select; ``condition`` is a constant boolean array."""
    like = a if isinstance(a, Tensor) else b if isinstance(b, Tensor) else None
    peer = like.data.dtype if like is not None else None
    a, b = as_tensor(a, peer), as_tensor(b, peer)
    cond = np.asarray(condition, dtype=bool)
    data = np.where(cond, a.data, b.data)

    def backward(g, emit):
        emit(a, _unbroadcast(np.where(cond, g, 0.0), a.shape), True)
        emit(b, _unbroadcast(np.where(cond, 0.0, g), b.shape), True)

    return Tensor._make(data, (a, b), backward)
