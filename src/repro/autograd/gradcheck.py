"""Finite-difference gradient verification for the autograd engine."""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from .tensor import Tensor


def numerical_gradient(
    fn: Callable[..., Tensor],
    inputs: Sequence[Tensor],
    index: int,
    eps: float = 1e-6,
) -> np.ndarray:
    """Central-difference gradient of ``fn(*inputs).sum()`` w.r.t. one input."""
    target = inputs[index]
    grad = np.zeros_like(target.data)
    flat = target.data.reshape(-1)
    grad_flat = grad.reshape(-1)
    for i in range(flat.size):
        original = flat[i]
        flat[i] = original + eps
        hi = float(fn(*inputs).data.sum())
        flat[i] = original - eps
        lo = float(fn(*inputs).data.sum())
        flat[i] = original
        grad_flat[i] = (hi - lo) / (2 * eps)
    return grad


def check_gradients(
    fn: Callable[..., Tensor],
    inputs: Sequence[Tensor],
    atol: float = 1e-6,
    rtol: float = 1e-4,
    eps: float = 1e-6,
) -> None:
    """Assert analytic gradients of ``fn(*inputs).sum()`` match finite diffs.

    Raises ``AssertionError`` with a diagnostic message on mismatch.  Every
    input with ``requires_grad=True`` is checked.
    """
    for t in inputs:
        t.zero_grad()
    out = fn(*inputs)
    out.backward(np.ones_like(out.data))
    for i, t in enumerate(inputs):
        if not t.requires_grad:
            continue
        analytic = t.grad if t.grad is not None else np.zeros_like(t.data)
        numeric = numerical_gradient(fn, inputs, i, eps=eps)
        if not np.allclose(analytic, numeric, atol=atol, rtol=rtol):
            worst = np.abs(analytic - numeric).max()
            raise AssertionError(
                f"gradient mismatch on input {i}: max abs error {worst:.3e}\n"
                f"analytic:\n{analytic}\nnumeric:\n{numeric}"
            )
