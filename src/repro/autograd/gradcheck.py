"""Finite-difference gradient verification for the autograd engine.

This module is pinned to float64 regardless of the process dtype policy:
central differences with ``eps=1e-6`` are meaningless at float32
precision (the perturbation drowns in rounding error), so
:func:`numerical_gradient` rejects lower-precision inputs loudly instead
of producing garbage comparisons.  Build gradcheck inputs with
``Tensor(x, dtype="float64")`` or outside any float32 scope.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from .tensor import Tensor


def numerical_gradient(
    fn: Callable[..., Tensor],
    inputs: Sequence[Tensor],
    index: int,
    eps: float = 1e-6,
) -> np.ndarray:
    """Central-difference gradient of ``fn(*inputs).sum()`` w.r.t. one input."""
    for pos, t in enumerate(inputs):
        if t.data.dtype != np.float64:
            raise TypeError(
                f"gradcheck requires float64 inputs; input {pos} is "
                f"{t.data.dtype.name} (finite differences at eps={eps} are "
                "not meaningful below float64 precision)")
    target = inputs[index]
    grad = np.zeros_like(target.data)
    flat = target.data.reshape(-1)
    grad_flat = grad.reshape(-1)
    for i in range(flat.size):
        original = flat[i]
        flat[i] = original + eps
        hi = float(fn(*inputs).data.sum())
        flat[i] = original - eps
        lo = float(fn(*inputs).data.sum())
        flat[i] = original
        grad_flat[i] = (hi - lo) / (2 * eps)
    return grad


def check_gradients(
    fn: Callable[..., Tensor],
    inputs: Sequence[Tensor],
    atol: float = 1e-6,
    rtol: float = 1e-4,
    eps: float = 1e-6,
) -> None:
    """Assert analytic gradients of ``fn(*inputs).sum()`` match finite diffs.

    Raises ``AssertionError`` with a diagnostic message on mismatch.  Every
    input with ``requires_grad=True`` is checked.
    """
    for t in inputs:
        t.zero_grad()
    out = fn(*inputs)
    out.backward(np.ones_like(out.data))
    for i, t in enumerate(inputs):
        if not t.requires_grad:
            continue
        analytic = t.grad if t.grad is not None else np.zeros_like(t.data)
        numeric = numerical_gradient(fn, inputs, i, eps=eps)
        if not np.allclose(analytic, numeric, atol=atol, rtol=rtol):
            worst = np.abs(analytic - numeric).max()
            raise AssertionError(
                f"gradient mismatch on input {i}: max abs error {worst:.3e}\n"
                f"analytic:\n{analytic}\nnumeric:\n{numeric}"
            )
