"""Fused differentiable functions built on :class:`~repro.autograd.Tensor`.

These are the handful of composite operations (softmax, cross-entropy,
layer norm, GELU, dropout) whose analytic backward passes are both faster
and numerically better behaved than chaining the primitive ops.  Each
matches its standard deep-learning definition; softmax is the "Boltzmann
distribution" of the paper's Eq. 8.

Dtype policy: every op here computes in the activation dtype, but softmax
denominators and attention normalisers are *accumulated* in float64 via
:func:`repro.dtypes.f64_sum` even when activations are float32 — for
float64 inputs that helper is bit-identical to a plain ``sum``, so the
seed float64 behaviour is unchanged.
"""

from __future__ import annotations

import math

import numpy as np

from ..dtypes import f64_sum
from .tensor import Tensor


def _softmax_data(x: np.ndarray, axis: int) -> np.ndarray:
    shifted = x - x.max(axis=axis, keepdims=True)
    e = np.exp(shifted)
    return e / f64_sum(e, axis=axis, keepdims=True)


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Softmax along ``axis`` (Eq. 8 with beta = 1)."""
    y = _softmax_data(x.data, axis)

    def backward(g, emit):
        inner = (g * y).sum(axis=axis, keepdims=True)
        emit(x, y * (g - inner), True)

    return Tensor._make(y, (x,), backward)


def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable log-softmax along ``axis``."""
    shifted = x.data - x.data.max(axis=axis, keepdims=True)
    lse = np.log(f64_sum(np.exp(shifted), axis=axis, keepdims=True))
    out = shifted - lse
    probs = np.exp(out)

    def backward(g, emit):
        emit(x, g - probs * g.sum(axis=axis, keepdims=True), True)

    return Tensor._make(out, (x,), backward)


def cross_entropy(logits: Tensor, targets: np.ndarray, reduction: str = "mean") -> Tensor:
    """Cross-entropy between ``logits`` and integer ``targets`` (Eq. 3).

    ``logits`` has shape ``(..., V)``; ``targets`` has the matching leading
    shape and holds class indices.  With ``reduction="mean"`` this is the
    per-token average negative log-likelihood — the paper's loss
    :math:`\\mathcal{L}`; ``exp`` of it is the perplexity.
    """
    if reduction not in ("mean", "sum", "none"):
        raise ValueError(f"unknown reduction {reduction!r}")
    targets = np.asarray(targets)
    flat_logits = logits.data.reshape(-1, logits.data.shape[-1])
    flat_targets = targets.reshape(-1).astype(np.intp)
    n, v = flat_logits.shape
    if flat_targets.shape[0] != n:
        raise ValueError("targets shape does not match logits leading shape")
    if flat_targets.min(initial=0) < 0 or flat_targets.max(initial=0) >= v:
        raise ValueError("target index out of range")

    shifted = flat_logits - flat_logits.max(axis=1, keepdims=True)
    lse = np.log(f64_sum(np.exp(shifted), axis=1, keepdims=True))
    log_probs = shifted - lse
    nll = -log_probs[np.arange(n), flat_targets]

    if reduction == "none":
        out_data = nll.reshape(targets.shape)
    elif reduction == "sum":
        out_data = np.asarray(nll.sum())
    else:
        out_data = np.asarray(nll.mean())

    def backward(g, emit):
        probs = np.exp(log_probs)
        probs[np.arange(n), flat_targets] -= 1.0
        if reduction == "none":
            probs *= np.asarray(g).reshape(-1, 1)
        elif reduction == "sum":
            probs *= float(g)
        else:
            probs *= float(g) / n
        emit(logits, probs.reshape(logits.data.shape), True)

    return Tensor._make(out_data, (logits,), backward)


def layer_norm(x: Tensor, weight: Tensor, bias: Tensor, eps: float = 1e-5) -> Tensor:
    """Layer normalisation over the final axis, with affine parameters."""
    mu = x.data.mean(axis=-1, keepdims=True)
    var = x.data.var(axis=-1, keepdims=True)
    inv_std = 1.0 / np.sqrt(var + eps)
    xhat = (x.data - mu) * inv_std
    out = xhat * weight.data + bias.data

    def backward(g, emit):
        reduce_axes = tuple(range(g.ndim - 1))
        emit(weight, (g * xhat).sum(axis=reduce_axes), True)
        emit(bias, g.sum(axis=reduce_axes), True)
        gx = g * weight.data
        mean_gx = gx.mean(axis=-1, keepdims=True)
        mean_gx_xhat = (gx * xhat).mean(axis=-1, keepdims=True)
        emit(x, inv_std * (gx - mean_gx - xhat * mean_gx_xhat), True)

    return Tensor._make(out, (x, weight, bias), backward)


_GELU_C = math.sqrt(2.0 / math.pi)


def gelu(x: Tensor) -> Tensor:
    """GELU activation (tanh approximation, as used in GPT models).

    Cubes are computed as repeated products: ``np.power`` routes through
    libm ``pow`` and is ~40x slower than two multiplies on float64, which
    made this the hottest op on the batched decode path.
    """
    sq = x.data * x.data
    u = _GELU_C * (x.data + 0.044715 * (sq * x.data))
    t = np.tanh(u)
    out = 0.5 * x.data * (1.0 + t)

    def backward(g, emit):
        du = _GELU_C * (1.0 + 3 * 0.044715 * sq)
        dt = (1.0 - t * t) * du
        emit(x, g * (0.5 * (1.0 + t) + 0.5 * x.data * dt), True)

    return Tensor._make(out, (x,), backward)


def relu(x: Tensor) -> Tensor:
    """ReLU activation (the paper's default FFN nonlinearity, §5)."""
    return x.relu()


def dropout(x: Tensor, p: float, rng: np.random.Generator, training: bool = True) -> Tensor:
    """Inverted dropout: zero each element with probability ``p``."""
    if not 0.0 <= p < 1.0:
        raise ValueError("dropout probability must be in [0, 1)")
    if not training or p == 0.0:
        return x
    # The float64 draw keeps the RNG stream dtype-independent; the mask is
    # cast afterwards so float32 activations are not upcast by the multiply.
    mask = ((rng.random(x.shape) >= p) / (1.0 - p)).astype(x.data.dtype, copy=False)

    def backward(g, emit):
        emit(x, g * mask, True)

    return Tensor._make(x.data * mask, (x,), backward)


def split3(x: Tensor, axis: int = -1) -> tuple[Tensor, Tensor, Tensor]:
    """Split ``x`` into three equal chunks along ``axis`` (the QKV split).

    Forward returns three zero-copy views.  The backward is the point:
    instead of three ``np.zeros_like`` + ``np.add.at`` scatters (one per
    chunk, the cost of slicing via ``Tensor.__getitem__``), the three
    gradient chunks are assigned into **one** preallocated buffer which
    is emitted once, as an owned allocation, when the last chunk's
    gradient arrives.

    Contract: all three outputs must participate in the differentiated
    computation (true for its purpose, the fused-attention QKV split) —
    the joint buffer is only emitted once every chunk has contributed.
    A fresh buffer is allocated per backward pass (tracked via the
    engine's pass counter), so repeated ``backward()`` calls on the same
    graph accumulate correctly.
    """
    from .tensor import _backward_pass_id

    n = x.shape[axis]
    if n % 3 != 0:
        raise ValueError(f"axis {axis} has length {n}, not divisible by 3")
    step = n // 3
    ax = axis if axis >= 0 else x.ndim + axis
    if not 0 <= ax < x.ndim:
        raise ValueError(f"axis {axis} out of range for ndim {x.ndim}")
    state = {"pass_id": None, "buf": None, "pending": 0}

    def make_backward(sl):
        def backward(g, emit):
            pid = _backward_pass_id()
            if state["pass_id"] != pid:
                state["pass_id"] = pid
                state["buf"] = np.zeros_like(x.data)
                state["pending"] = 3
            state["buf"][sl] = g
            state["pending"] -= 1
            if state["pending"] == 0:
                emit(x, state["buf"], True)
                state["buf"] = None
        return backward

    outs = []
    for i in range(3):
        sl = (slice(None),) * ax + (slice(i * step, (i + 1) * step),)
        outs.append(Tensor._make(x.data[sl], (x,), make_backward(sl)))
    return outs[0], outs[1], outs[2]


def fused_attention(
    q: Tensor,
    k: Tensor,
    v: Tensor,
    num_heads: int,
    mask: np.ndarray | None = None,
    scale: float | None = None,
    block_size: int | None = None,
) -> Tensor:
    """Multi-head causal self-attention as one autograd node (Eqs. 13-14).

    ``q``, ``k``, ``v`` are ``(B, T, C)`` projections; ``mask`` is an
    additive constant array broadcastable to ``(B, H, T, T)`` (use
    :func:`repro.core.attention.causal_mask`); ``scale`` defaults to
    ``1/sqrt(C // num_heads)``.  Returns the merged-head ``(B, T, C)``
    context, i.e. ``softmax(q k^T * scale + mask) v`` per head.

    Replaces the ~12-node composed graph (head split/merge reshapes and
    transposes, score matmul, scale, mask add, softmax, weighted sum)
    with a single node whose backward is the hand-derived closed form:
    with ``P = softmax(S)`` and ``O = P V``,

    ``dV = P^T dO``, ``dP = dO V^T``,
    ``dS = P * (dP - rowsum(dP * P))``, ``dQ = dS K * scale``,
    ``dK = dS^T Q * scale``.

    Head split/merge happens inside the node as strided reshapes, so no
    intermediate ``(B, H, T, *)`` tensors hit the graph.  In the default
    (non-blocked) mode the forward is **bit-identical** to the composed
    reference — every elementwise/matmul step runs in the same order on
    identically-strided arrays — which is what lets ``fused=True`` keep
    seeded training runs exactly reproducible.

    ``block_size`` switches to a FlashAttention-style streaming softmax:
    queries and keys are processed in row/column blocks with a running
    (max, sum) pair, so at most ``(B, H, block, block)`` of scores is
    ever materialised instead of ``(B, H, T, T)``, and the backward
    recomputes per-block probabilities from the saved row logsumexp.
    Blocked results agree with the reference to float64 round-off (the
    softmax is reassociated), not bit-for-bit.
    """
    b, t, c = q.shape
    if k.shape != q.shape or v.shape != q.shape:
        raise ValueError(f"q/k/v shapes differ: {q.shape} {k.shape} {v.shape}")
    if c % num_heads != 0:
        raise ValueError(f"feature dim {c} not divisible by num_heads={num_heads}")
    hd = c // num_heads
    if scale is None:
        scale = 1.0 / math.sqrt(hd)
    if block_size is not None and block_size < 1:
        raise ValueError("block_size must be >= 1 when set")
    # Head split: (B, T, C) -> (B, H, T, hd).  The reshape copies when the
    # input is a split3/slice view (same as the composed path's reshape),
    # the transpose is a stride trick.
    qh = q.data.reshape(b, t, num_heads, hd).transpose(0, 2, 1, 3)
    kh = k.data.reshape(b, t, num_heads, hd).transpose(0, 2, 1, 3)
    vh = v.data.reshape(b, t, num_heads, hd).transpose(0, 2, 1, 3)
    # Round the scale to the activation dtype up front.  The composed
    # path multiplies by a scalar already cast to the score dtype; an
    # in-place ``*=`` with a float64 scalar would instead compute each
    # product in float64 and round once at the end — a 1-ulp difference
    # that breaks fused==composed bit-identity in float32.
    scale = qh.dtype.type(scale)

    if block_size is None:
        out, ctx = _attention_forward_dense(qh, kh, vh, mask, scale, (b, t, c))
        backward = _attention_backward_dense(q, k, v, qh, kh, vh, ctx,
                                             scale, (b, t, num_heads, hd))
    else:
        out, ctx = _attention_forward_blocked(qh, kh, vh, mask, scale,
                                              block_size, (b, t, c))
        backward = _attention_backward_blocked(q, k, v, qh, kh, vh, mask, ctx,
                                               scale, block_size,
                                               (b, t, num_heads, hd))
    return Tensor._make(out, (q, k, v), backward)


def _attention_forward_dense(qh, kh, vh, mask, scale, btc):
    """Dense fused-attention forward; returns (out, saved probabilities).

    Mirrors the composed reference op for op — matmul on the same strided
    views, then scale, mask add, shift, exp, normalise — but runs the
    pointwise steps in place on the score buffer, so the only live
    ``(B, H, T, T)`` array is the softmax output the backward needs.
    """
    b, t, c = btc
    scores = qh @ kh.swapaxes(-1, -2)
    scores *= scale
    if mask is not None:
        scores += mask
    scores -= scores.max(axis=-1, keepdims=True)
    np.exp(scores, out=scores)
    scores /= f64_sum(scores, axis=-1, keepdims=True)
    probs = scores
    out = (probs @ vh).transpose(0, 2, 1, 3).reshape(b, t, c)
    return out, probs


def _attention_backward_dense(q, k, v, qh, kh, vh, probs, scale, bthd):
    """Closed-form backward for the dense mode.

    Computes exactly the arrays the composed graph's chain of backwards
    would (same matmul operand layouts, same reduction order), so fused
    gradients are bit-identical to composed ones.
    """
    b, t, h, hd = bthd

    def backward(g, emit):
        gh = g.reshape(b, t, h, hd).transpose(0, 2, 1, 3)
        dv = probs.swapaxes(-1, -2) @ gh
        dp = gh @ vh.swapaxes(-1, -2)
        dp -= (dp * probs).sum(axis=-1, keepdims=True)
        dp *= probs
        dp *= scale  # now dS, the gradient of q k^T
        dq = dp @ kh
        dk = (qh.swapaxes(-1, -2) @ dp).swapaxes(-1, -2)
        emit(q, dq.transpose(0, 2, 1, 3).reshape(b, t, h * hd), True)
        emit(k, dk.transpose(0, 2, 1, 3).reshape(b, t, h * hd), True)
        emit(v, dv.transpose(0, 2, 1, 3).reshape(b, t, h * hd), True)

    return backward


# Mask entries at or below this are treated as fully masked-out when the
# blocked kernel decides whether a (row, column) tile can be skipped.
_MASK_SKIP_THRESHOLD = -1e8


def _attention_forward_blocked(qh, kh, vh, mask, scale, block, btc):
    """Streaming-softmax forward over (row, column) tiles.

    Classic FlashAttention recurrence on the running row maximum ``m``
    and normaliser ``l``: each key tile rescales the accumulator by
    ``exp(m_old - m_new)`` before folding its own ``exp(S - m_new)``
    contribution.  Tiles whose additive mask is entirely below the skip
    threshold (the upper triangle, or outside a local window) are never
    formed.  Saves the per-row logsumexp and the merged output for the
    recomputation backward.

    Tile math runs in the activation dtype, but the running normaliser
    ``norm`` (and the saved logsumexp) accumulate in float64 regardless —
    the streaming rescale compounds rounding error otherwise.  For
    float64 activations every step below is bit-identical to the seed.
    """
    b, t, c = btc
    hd = qh.shape[-1]
    h = qh.shape[1]
    out_h = np.empty((b, h, t, hd), dtype=qh.dtype)
    lse = np.empty((b, h, t))
    for i0 in range(0, t, block):
        i1 = min(i0 + block, t)
        qi = qh[:, :, i0:i1, :]
        m = np.full((b, h, i1 - i0, 1), -np.inf, dtype=qh.dtype)
        norm = np.zeros((b, h, i1 - i0, 1))
        acc = np.zeros((b, h, i1 - i0, hd), dtype=qh.dtype)
        for j0 in range(0, t, block):
            j1 = min(j0 + block, t)
            mblk = None
            if mask is not None:
                mblk = mask[..., i0:i1, j0:j1]
                if np.all(mblk <= _MASK_SKIP_THRESHOLD):
                    continue
            s = qi @ kh[:, :, j0:j1, :].swapaxes(-1, -2)
            s *= scale
            if mblk is not None:
                s = s + mblk
            m_new = np.maximum(m, s.max(axis=-1, keepdims=True))
            p = np.exp(s - m_new)
            correction = np.exp(m - m_new)
            norm = norm * correction + p.sum(axis=-1, keepdims=True,
                                             dtype=np.float64)
            acc = acc * correction + p @ vh[:, :, j0:j1, :]
            m = m_new
        out_h[:, :, i0:i1, :] = acc / norm
        lse[:, :, i0:i1] = (m + np.log(norm))[..., 0]
    return out_h.transpose(0, 2, 1, 3).reshape(b, t, c), (out_h, lse)


def _attention_backward_blocked(q, k, v, qh, kh, vh, mask, ctx, scale,
                                block, bthd):
    """Recomputation backward for the blocked mode.

    Never materialises ``(B, H, T, T)``: per tile it rebuilds
    ``P = exp(S - lse)`` from the saved row logsumexp and accumulates
    ``dQ``/``dK``/``dV`` tile sums, using the FlashAttention identity
    ``rowsum(dP * P) = rowsum(dO * O)`` (valid because every row of
    ``P`` sums to one).
    """
    b, t, h, hd = bthd
    out_h, lse = ctx

    def backward(g, emit):
        gh = np.ascontiguousarray(
            g.reshape(b, t, h, hd).transpose(0, 2, 1, 3))
        row_dot = (gh * out_h).sum(axis=-1, keepdims=True)  # (B,H,T,1)
        dq = np.zeros_like(qh)
        dk = np.zeros_like(kh)
        dv = np.zeros_like(vh)
        # The saved logsumexp is float64; cast it once to the activation
        # dtype so ``exp(s - lse)`` does not upcast float32 tiles (for
        # float64 activations the cast is a no-op view).
        lse_act = lse if qh.dtype == np.float64 else lse.astype(qh.dtype)
        for i0 in range(0, t, block):
            i1 = min(i0 + block, t)
            qi = qh[:, :, i0:i1, :]
            gi = gh[:, :, i0:i1, :]
            lse_i = lse_act[:, :, i0:i1, None]
            dot_i = row_dot[:, :, i0:i1, :]
            for j0 in range(0, t, block):
                j1 = min(j0 + block, t)
                mblk = None
                if mask is not None:
                    mblk = mask[..., i0:i1, j0:j1]
                    if np.all(mblk <= _MASK_SKIP_THRESHOLD):
                        continue
                kj = kh[:, :, j0:j1, :]
                vj = vh[:, :, j0:j1, :]
                s = qi @ kj.swapaxes(-1, -2)
                s *= scale
                if mblk is not None:
                    s = s + mblk
                p = np.exp(s - lse_i)
                dv[:, :, j0:j1, :] += p.swapaxes(-1, -2) @ gi
                dp = gi @ vj.swapaxes(-1, -2)
                dp -= dot_i
                dp *= p
                dp *= scale
                dq[:, :, i0:i1, :] += dp @ kj
                dk[:, :, j0:j1, :] += dp.swapaxes(-1, -2) @ qi
        emit(q, dq.transpose(0, 2, 1, 3).reshape(b, t, h * hd), True)
        emit(k, dk.transpose(0, 2, 1, 3).reshape(b, t, h * hd), True)
        emit(v, dv.transpose(0, 2, 1, 3).reshape(b, t, h * hd), True)

    return backward
