"""Fused differentiable functions built on :class:`~repro.autograd.Tensor`.

These are the handful of composite operations (softmax, cross-entropy,
layer norm, GELU, dropout) whose analytic backward passes are both faster
and numerically better behaved than chaining the primitive ops.  Each
matches its standard deep-learning definition; softmax is the "Boltzmann
distribution" of the paper's Eq. 8.
"""

from __future__ import annotations

import math

import numpy as np

from .tensor import Tensor


def _softmax_data(x: np.ndarray, axis: int) -> np.ndarray:
    shifted = x - x.max(axis=axis, keepdims=True)
    e = np.exp(shifted)
    return e / e.sum(axis=axis, keepdims=True)


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Softmax along ``axis`` (Eq. 8 with beta = 1)."""
    y = _softmax_data(x.data, axis)

    def backward(g, emit):
        inner = (g * y).sum(axis=axis, keepdims=True)
        emit(x, y * (g - inner))

    return Tensor._make(y, (x,), backward)


def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable log-softmax along ``axis``."""
    shifted = x.data - x.data.max(axis=axis, keepdims=True)
    lse = np.log(np.exp(shifted).sum(axis=axis, keepdims=True))
    out = shifted - lse
    probs = np.exp(out)

    def backward(g, emit):
        emit(x, g - probs * g.sum(axis=axis, keepdims=True))

    return Tensor._make(out, (x,), backward)


def cross_entropy(logits: Tensor, targets: np.ndarray, reduction: str = "mean") -> Tensor:
    """Cross-entropy between ``logits`` and integer ``targets`` (Eq. 3).

    ``logits`` has shape ``(..., V)``; ``targets`` has the matching leading
    shape and holds class indices.  With ``reduction="mean"`` this is the
    per-token average negative log-likelihood — the paper's loss
    :math:`\\mathcal{L}`; ``exp`` of it is the perplexity.
    """
    if reduction not in ("mean", "sum", "none"):
        raise ValueError(f"unknown reduction {reduction!r}")
    targets = np.asarray(targets)
    flat_logits = logits.data.reshape(-1, logits.data.shape[-1])
    flat_targets = targets.reshape(-1).astype(np.intp)
    n, v = flat_logits.shape
    if flat_targets.shape[0] != n:
        raise ValueError("targets shape does not match logits leading shape")
    if flat_targets.min(initial=0) < 0 or flat_targets.max(initial=0) >= v:
        raise ValueError("target index out of range")

    shifted = flat_logits - flat_logits.max(axis=1, keepdims=True)
    lse = np.log(np.exp(shifted).sum(axis=1, keepdims=True))
    log_probs = shifted - lse
    nll = -log_probs[np.arange(n), flat_targets]

    if reduction == "none":
        out_data = nll.reshape(targets.shape)
    elif reduction == "sum":
        out_data = np.asarray(nll.sum())
    else:
        out_data = np.asarray(nll.mean())

    def backward(g, emit):
        probs = np.exp(log_probs)
        probs[np.arange(n), flat_targets] -= 1.0
        if reduction == "none":
            probs *= np.asarray(g).reshape(-1, 1)
        elif reduction == "sum":
            probs *= float(g)
        else:
            probs *= float(g) / n
        emit(logits, probs.reshape(logits.data.shape))

    return Tensor._make(out_data, (logits,), backward)


def layer_norm(x: Tensor, weight: Tensor, bias: Tensor, eps: float = 1e-5) -> Tensor:
    """Layer normalisation over the final axis, with affine parameters."""
    mu = x.data.mean(axis=-1, keepdims=True)
    var = x.data.var(axis=-1, keepdims=True)
    inv_std = 1.0 / np.sqrt(var + eps)
    xhat = (x.data - mu) * inv_std
    out = xhat * weight.data + bias.data

    def backward(g, emit):
        reduce_axes = tuple(range(g.ndim - 1))
        emit(weight, (g * xhat).sum(axis=reduce_axes))
        emit(bias, g.sum(axis=reduce_axes))
        gx = g * weight.data
        mean_gx = gx.mean(axis=-1, keepdims=True)
        mean_gx_xhat = (gx * xhat).mean(axis=-1, keepdims=True)
        emit(x, inv_std * (gx - mean_gx - xhat * mean_gx_xhat))

    return Tensor._make(out, (x, weight, bias), backward)


_GELU_C = math.sqrt(2.0 / math.pi)


def gelu(x: Tensor) -> Tensor:
    """GELU activation (tanh approximation, as used in GPT models).

    Cubes are computed as repeated products: ``np.power`` routes through
    libm ``pow`` and is ~40x slower than two multiplies on float64, which
    made this the hottest op on the batched decode path.
    """
    sq = x.data * x.data
    u = _GELU_C * (x.data + 0.044715 * (sq * x.data))
    t = np.tanh(u)
    out = 0.5 * x.data * (1.0 + t)

    def backward(g, emit):
        du = _GELU_C * (1.0 + 3 * 0.044715 * sq)
        dt = (1.0 - t * t) * du
        emit(x, g * (0.5 * (1.0 + t) + 0.5 * x.data * dt))

    return Tensor._make(out, (x,), backward)


def relu(x: Tensor) -> Tensor:
    """ReLU activation (the paper's default FFN nonlinearity, §5)."""
    return x.relu()


def dropout(x: Tensor, p: float, rng: np.random.Generator, training: bool = True) -> Tensor:
    """Inverted dropout: zero each element with probability ``p``."""
    if not 0.0 <= p < 1.0:
        raise ValueError("dropout probability must be in [0, 1)")
    if not training or p == 0.0:
        return x
    mask = (rng.random(x.shape) >= p) / (1.0 - p)

    def backward(g, emit):
        emit(x, g * mask)

    return Tensor._make(x.data * mask, (x,), backward)
