"""Reverse-mode autodiff over NumPy: the substrate behind every model here."""

from ..dtypes import default_dtype, dtype_scope, resolve_dtype, set_default_dtype
from .functional import (
    cross_entropy,
    dropout,
    fused_attention,
    gelu,
    layer_norm,
    log_softmax,
    relu,
    softmax,
    split3,
)
from .gradcheck import check_gradients, numerical_gradient
from .tensor import (
    Tensor,
    as_tensor,
    concatenate,
    is_grad_enabled,
    no_grad,
    stack,
    where,
)

__all__ = [
    "Tensor",
    "as_tensor",
    "concatenate",
    "stack",
    "where",
    "no_grad",
    "is_grad_enabled",
    "default_dtype",
    "set_default_dtype",
    "dtype_scope",
    "resolve_dtype",
    "softmax",
    "log_softmax",
    "cross_entropy",
    "layer_norm",
    "gelu",
    "relu",
    "dropout",
    "fused_attention",
    "split3",
    "check_gradients",
    "numerical_gradient",
]
