"""The 1-gram (frequency) model of Eq. 1: words drawn independently."""

from __future__ import annotations

import numpy as np

from .base import LanguageModel


class UnigramLM(LanguageModel):
    """P(w) = count(w) / total, optionally add-k smoothed.

    Smoothing keeps held-out tokens that never appeared in training from
    receiving probability zero (infinite cross-entropy).
    """

    def __init__(self, vocab_size: int, add_k: float = 1.0):
        if vocab_size < 1:
            raise ValueError("vocab_size must be positive")
        if add_k < 0:
            raise ValueError("add_k must be non-negative")
        self.vocab_size = vocab_size
        self.add_k = add_k
        self._counts = np.zeros(vocab_size)
        self._logprobs: np.ndarray | None = None

    def fit(self, ids: np.ndarray) -> "UnigramLM":
        ids = np.asarray(ids, dtype=np.int64)
        if ids.size and (ids.min() < 0 or ids.max() >= self.vocab_size):
            raise ValueError("token id out of range")
        self._counts += np.bincount(ids, minlength=self.vocab_size)
        smoothed = self._counts + self.add_k
        total = smoothed.sum()
        if total == 0:
            raise ValueError("cannot fit on empty data with add_k=0")
        with np.errstate(divide="ignore"):
            self._logprobs = np.log(smoothed / total)
        return self

    def next_token_logprobs(self, context: np.ndarray) -> np.ndarray:
        if self._logprobs is None:
            raise RuntimeError("UnigramLM must be fit before evaluation")
        return self._logprobs.copy()

    @property
    def probs(self) -> np.ndarray:
        if self._logprobs is None:
            raise RuntimeError("UnigramLM must be fit before evaluation")
        return np.exp(self._logprobs)
