"""N-gram language models (Eqs. 5-6) with smoothing.

The maximum-likelihood estimator of Eq. 6 assigns zero probability to any
continuation unseen after a given (N-1)-word context, so practical N-gram
models smooth.  Two classic schemes are implemented:

* add-k ("Laplace") smoothing on the conditional counts;
* Jelinek-Mercer interpolation, mixing every lower order down to the
  unigram — the "simple statistical tricks" of §5.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from typing import Sequence

import numpy as np

from .base import LanguageModel


class NGramLM(LanguageModel):
    """Order-``n`` model: P(w_n | w_1 .. w_{n-1}) from context counts."""

    def __init__(self, vocab_size: int, order: int, add_k: float = 1.0):
        if order < 1:
            raise ValueError("order must be >= 1")
        if add_k < 0:
            raise ValueError("add_k must be non-negative")
        self.vocab_size = vocab_size
        self.order = order
        self.add_k = add_k
        # context tuple (length order-1) -> Counter of next-token counts
        self._counts: dict[tuple[int, ...], Counter] = defaultdict(Counter)
        self._context_totals: dict[tuple[int, ...], int] = defaultdict(int)

    def fit(self, ids: Sequence[int]) -> "NGramLM":
        ids = np.asarray(ids, dtype=np.int64)
        if ids.size and (ids.min() < 0 or ids.max() >= self.vocab_size):
            raise ValueError("token id out of range")
        k = self.order - 1
        ids_list = ids.tolist()
        for i in range(k, len(ids_list)):
            context = tuple(ids_list[i - k : i])
            token = ids_list[i]
            self._counts[context][token] += 1
            self._context_totals[context] += 1
        return self

    def num_contexts(self) -> int:
        """Number of distinct contexts observed (grows ~ |W|^{n-1})."""
        return len(self._counts)

    def conditional_probs(self, context: Sequence[int]) -> np.ndarray:
        """Eq. 6 with add-k smoothing, as a dense length-|W| vector."""
        key = tuple(int(t) for t in context[-(self.order - 1):]) if self.order > 1 else ()
        probs = np.full(self.vocab_size, self.add_k, dtype=np.float64)
        counter = self._counts.get(key)
        total = self._context_totals.get(key, 0)
        if counter:
            for token, count in counter.items():
                probs[token] += count
        denom = total + self.add_k * self.vocab_size
        if denom == 0:
            # Unseen context with add_k = 0: no mass anywhere.  Callers that
            # need a proper distribution (next_token_logprobs) fall back to
            # uniform; the interpolated model simply drops this order.
            return np.zeros(self.vocab_size)
        return probs / denom

    def next_token_logprobs(self, context: np.ndarray) -> np.ndarray:
        probs = self.conditional_probs(np.asarray(context, dtype=np.int64))
        if probs.sum() == 0:
            probs = np.full(self.vocab_size, 1.0 / self.vocab_size)
        with np.errstate(divide="ignore"):
            return np.log(probs)


class InterpolatedNGramLM(LanguageModel):
    """Jelinek-Mercer mixture of orders 1..n with fixed weights.

    ``lambdas[i]`` weights the order-(i+1) model; they must sum to 1.  The
    lowest order is add-1 smoothed so the mixture never assigns zero mass.
    """

    def __init__(self, vocab_size: int, order: int, lambdas: Sequence[float] | None = None):
        if order < 1:
            raise ValueError("order must be >= 1")
        self.vocab_size = vocab_size
        self.order = order
        if lambdas is None:
            # Geometric weights favouring higher orders.
            raw = np.array([2.0**i for i in range(order)])
            lambdas = raw / raw.sum()
        lambdas = np.asarray(lambdas, dtype=np.float64)
        if lambdas.shape != (order,) or not np.isclose(lambdas.sum(), 1.0):
            raise ValueError("lambdas must be length-order and sum to 1")
        self.lambdas = lambdas
        self._models = [
            NGramLM(vocab_size, order=i + 1, add_k=1.0 if i == 0 else 0.0)
            for i in range(order)
        ]

    def fit(self, ids: Sequence[int]) -> "InterpolatedNGramLM":
        for model in self._models:
            model.fit(ids)
        return self

    def next_token_logprobs(self, context: np.ndarray) -> np.ndarray:
        context = np.asarray(context, dtype=np.int64)
        mixture = np.zeros(self.vocab_size)
        for weight, model in zip(self.lambdas, self._models):
            if len(context) < model.order - 1:
                continue  # not enough context for this order
            mixture += weight * model.conditional_probs(context)
        mixture /= mixture.sum()
        with np.errstate(divide="ignore"):
            return np.log(mixture)
