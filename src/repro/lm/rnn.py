"""Recurrent language models: the Eq. 12 dynamical system, and the LSTM.

The RNN threads a state vector s_i through the sequence:
``(v_{i+1}, s_{i+1}) = F(s_i, v_i)`` — memory without a fixed window, at
the cost of strictly sequential computation (the O(L) depth the paper
contrasts with the transformer's parallel attention, §6).
"""

from __future__ import annotations

import numpy as np

from ..autograd import Tensor, cross_entropy, no_grad, stack
from ..nn import Embedding, Linear, Module
from .base import LanguageModel


class _RecurrentLM(Module, LanguageModel):
    """Shared training/eval plumbing for RNN and LSTM variants."""

    vocab_size: int
    hidden_dim: int

    def forward(self, ids: np.ndarray) -> Tensor:
        """(B, T) ids -> (B, T, V) logits, scanning left to right."""
        ids = np.asarray(ids, dtype=np.int64)
        if ids.ndim == 1:
            ids = ids[None, :]
        batch, seq_len = ids.shape
        state = self._initial_state(batch)
        outputs = []
        for t in range(seq_len):
            emb = self.embedding(ids[:, t])  # (B, d)
            state, hidden = self._step(emb, state)
            outputs.append(self.head(hidden))  # (B, V)
        return stack(outputs, axis=1)

    def loss(self, x: np.ndarray, y: np.ndarray) -> Tensor:
        return cross_entropy(self.forward(x), np.asarray(y, dtype=np.int64))

    def next_token_logprobs(self, context: np.ndarray) -> np.ndarray:
        context = np.asarray(context, dtype=np.int64)
        if context.size == 0:
            context = np.zeros(1, dtype=np.int64)
        was_training = self.training
        self.eval()
        try:
            with no_grad():
                logits = self.forward(context[None, :]).data[0, -1]
        finally:
            if was_training:
                self.train()
        logits = logits - logits.max()
        return logits - np.log(np.exp(logits).sum())

    def sequential_steps(self, seq_len: int) -> int:
        """Number of inherently serial state updates for a length-L input.

        For the E12 complexity comparison: an RNN needs L serial steps
        while a transformer's depth is independent of L.
        """
        return seq_len

    # Subclass hooks -----------------------------------------------------
    def _initial_state(self, batch: int):
        raise NotImplementedError

    def _step(self, emb: Tensor, state):
        """Advance one token; returns (new_state, hidden_for_output)."""
        raise NotImplementedError


class RNNLM(_RecurrentLM):
    """Vanilla (Elman) RNN: s' = tanh(W_x v + W_h s + b)."""

    def __init__(self, vocab_size: int, embed_dim: int = 16, hidden_dim: int = 32,
                 rng: np.random.Generator | int = 0):
        super().__init__()
        if isinstance(rng, (int, np.integer)):
            rng = np.random.default_rng(rng)
        self.vocab_size = vocab_size
        self.hidden_dim = hidden_dim
        self.embedding = Embedding(vocab_size, embed_dim, rng)
        self.w_x = Linear(embed_dim, hidden_dim, rng)
        self.w_h = Linear(hidden_dim, hidden_dim, rng, bias=False)
        self.head = Linear(hidden_dim, vocab_size, rng)

    def _initial_state(self, batch: int) -> Tensor:
        return Tensor(np.zeros((batch, self.hidden_dim)))

    def _step(self, emb: Tensor, state: Tensor):
        new_state = (self.w_x(emb) + self.w_h(state)).tanh()
        return new_state, new_state


class LSTMLM(_RecurrentLM):
    """LSTM [Hochreiter & Schmidhuber]: gated cell state for long memory."""

    def __init__(self, vocab_size: int, embed_dim: int = 16, hidden_dim: int = 32,
                 rng: np.random.Generator | int = 0):
        super().__init__()
        if isinstance(rng, (int, np.integer)):
            rng = np.random.default_rng(rng)
        self.vocab_size = vocab_size
        self.hidden_dim = hidden_dim
        self.embedding = Embedding(vocab_size, embed_dim, rng)
        # Fused gate projections: [input, forget, cell, output].
        self.w_x = Linear(embed_dim, 4 * hidden_dim, rng)
        self.w_h = Linear(hidden_dim, 4 * hidden_dim, rng, bias=False)
        self.head = Linear(hidden_dim, vocab_size, rng)

    def _initial_state(self, batch: int):
        zeros = np.zeros((batch, self.hidden_dim))
        return (Tensor(zeros), Tensor(zeros.copy()))  # (h, c)

    def _step(self, emb: Tensor, state):
        h, c = state
        gates = self.w_x(emb) + self.w_h(h)  # (B, 4H)
        H = self.hidden_dim
        i = gates[:, 0 * H : 1 * H].sigmoid()
        f = gates[:, 1 * H : 2 * H].sigmoid()
        g = gates[:, 2 * H : 3 * H].tanh()
        o = gates[:, 3 * H : 4 * H].sigmoid()
        c_new = f * c + i * g
        h_new = o * c_new.tanh()
        return (h_new, c_new), h_new
