"""The common language-model interface.

Every model in this library — from the 1-gram frequency model (Eq. 1) to
the transformer — encodes a distribution over token strings via its
next-token conditionals (Eq. 2).  This base class derives everything else
(sequence log-probability, the Eq. 3 cross-entropy, perplexity, and
autoregressive generation) from a single method,
:meth:`next_token_logprobs`.
"""

from __future__ import annotations

import numpy as np


class LanguageModel:
    """Abstract autoregressive language model over integer token ids."""

    vocab_size: int

    def next_token_logprobs(self, context: np.ndarray) -> np.ndarray:
        """log P(w | context) for every w; ``context`` is a 1-D id array.

        An empty context must also be accepted (the unconditional first-
        token distribution).
        """
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Derived quantities
    # ------------------------------------------------------------------
    def sequence_logprob(self, ids: np.ndarray) -> float:
        """log P(w_1 ... w_L) via the autoregressive factorisation."""
        ids = np.asarray(ids, dtype=np.int64)
        total = 0.0
        for i in range(len(ids)):
            total += float(self.next_token_logprobs(ids[:i])[ids[i]])
        return total

    def cross_entropy(self, ids: np.ndarray) -> float:
        """Eq. 3: mean negative log-likelihood per token (nats)."""
        ids = np.asarray(ids, dtype=np.int64)
        if len(ids) == 0:
            raise ValueError("cannot evaluate cross-entropy on empty ids")
        return -self.sequence_logprob(ids) / len(ids)

    def perplexity(self, ids: np.ndarray) -> float:
        """exp of the Eq. 3 loss — the paper's standard quality measure."""
        return float(np.exp(self.cross_entropy(ids)))

    def generate(
        self,
        prompt: list[int] | np.ndarray,
        max_new_tokens: int,
        rng: np.random.Generator | None = None,
        temperature: float = 1.0,
        top_k: int | None = None,
        top_p: float | None = None,
        greedy: bool = False,
        stop_token: int | None = None,
    ) -> list[int]:
        """Extend ``prompt`` one sampled token at a time (§3's recipe)."""
        # Imported lazily: repro.core depends on this module for the
        # LanguageModel interface, so a top-level import would be circular.
        from ..core.sampling import sample_token

        ids = list(int(i) for i in prompt)
        for _ in range(max_new_tokens):
            logprobs = self.next_token_logprobs(np.asarray(ids, dtype=np.int64))
            token = sample_token(
                logprobs, rng=rng, temperature=temperature,
                top_k=top_k, top_p=top_p, greedy=greedy,
            )
            ids.append(token)
            if stop_token is not None and token == stop_token:
                break
        return ids


    def beam_search(
        self,
        prompt: list[int] | np.ndarray,
        max_new_tokens: int,
        beam_width: int = 4,
        stop_token: int | None = None,
        length_penalty: float = 0.0,
    ) -> list[int]:
        """Search for a high-probability continuation (§8's missing piece).

        Greedy decoding commits to one token at a time and "cannot go back
        to revise"; beam search keeps ``beam_width`` partial continuations
        and returns the one with the best total log-probability (plus an
        optional per-token ``length_penalty`` bonus that discourages early
        stopping).  This is the simplest instance of adding search on top
        of an autoregressive model.
        """
        if beam_width < 1:
            raise ValueError("beam_width must be >= 1")
        prompt = [int(i) for i in prompt]
        # (ids, logprob, finished)
        beams: list[tuple[list[int], float, bool]] = [(prompt, 0.0, False)]
        for _ in range(max_new_tokens):
            candidates: list[tuple[list[int], float, bool]] = []
            for ids, score, finished in beams:
                if finished:
                    candidates.append((ids, score, True))
                    continue
                logprobs = self.next_token_logprobs(np.asarray(ids, dtype=np.int64))
                top = np.argsort(-logprobs)[:beam_width]
                for token in top:
                    token = int(token)
                    done = stop_token is not None and token == stop_token
                    candidates.append(
                        (ids + [token],
                         score + float(logprobs[token]) + length_penalty,
                         done)
                    )
            candidates.sort(key=lambda c: -c[1])
            beams = candidates[:beam_width]
            if all(finished for _ids, _s, finished in beams):
                break
        return beams[0][0]


def bits_per_token(cross_entropy_nats: float) -> float:
    """Convert an Eq. 3 loss from nats to bits."""
    return cross_entropy_nats / np.log(2.0)
