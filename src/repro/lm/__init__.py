"""Simpler language models (§5) and the shared LanguageModel interface."""

from .base import LanguageModel, bits_per_token
from .ffn import FFNLM, make_windows
from .kneser_ney import KneserNeyLM
from .ngram import InterpolatedNGramLM, NGramLM
from .rnn import LSTMLM, RNNLM
from .unigram import UnigramLM

__all__ = [
    "LanguageModel",
    "bits_per_token",
    "UnigramLM",
    "NGramLM",
    "InterpolatedNGramLM",
    "KneserNeyLM",
    "FFNLM",
    "make_windows",
    "RNNLM",
    "LSTMLM",
]
