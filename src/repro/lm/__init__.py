"""Simpler language models (§5) and the shared LanguageModel interface.

:class:`LanguageModelDraft` adapts any of them into a speculative-
decoding draft model for :mod:`repro.infer` (PR 9).
"""

from .base import LanguageModel, bits_per_token
from .draft import LanguageModelDraft
from .ffn import FFNLM, make_windows
from .kneser_ney import KneserNeyLM
from .ngram import InterpolatedNGramLM, NGramLM
from .rnn import LSTMLM, RNNLM
from .unigram import UnigramLM

__all__ = [
    "LanguageModel",
    "LanguageModelDraft",
    "bits_per_token",
    "UnigramLM",
    "NGramLM",
    "InterpolatedNGramLM",
    "KneserNeyLM",
    "FFNLM",
    "make_windows",
    "RNNLM",
    "LSTMLM",
]
