"""Fixed-window feed-forward language model (Bengio et al., §5).

"A very natural deep learning version of the L-gram models": embed the k
most recent tokens (Eq. 7), concatenate the embedding vectors into one
long vector (the "direct sum"), and apply an FFN (Eq. 11) to produce the
prediction vector, decoded by Eq. 8.  Its defining limitation — no memory
beyond the window — is what the RNN and the transformer each fix.
"""

from __future__ import annotations

import numpy as np

from ..autograd import Tensor, cross_entropy, no_grad
from ..nn import MLP, Embedding, Module
from .base import LanguageModel


def make_windows(ids: np.ndarray, window: int) -> tuple[np.ndarray, np.ndarray]:
    """All (context window, next token) pairs from a contiguous stream."""
    ids = np.asarray(ids, dtype=np.int64)
    if len(ids) <= window:
        raise ValueError(f"stream of {len(ids)} tokens too short for window={window}")
    contexts = np.stack([ids[i : i + window] for i in range(len(ids) - window)])
    targets = ids[window:]
    return contexts, targets


class FFNLM(Module, LanguageModel):
    """Embedding + concatenation + MLP over a fixed context window."""

    def __init__(
        self,
        vocab_size: int,
        window: int,
        embed_dim: int = 16,
        hidden_dim: int = 64,
        rng: np.random.Generator | int = 0,
        activation: str = "relu",
    ):
        super().__init__()
        if isinstance(rng, (int, np.integer)):
            rng = np.random.default_rng(rng)
        if window < 1:
            raise ValueError("window must be >= 1")
        self.vocab_size = vocab_size
        self.window = window
        self.embed_dim = embed_dim
        self.embedding = Embedding(vocab_size, embed_dim, rng)
        self.mlp = MLP([window * embed_dim, hidden_dim, vocab_size], rng,
                       activation=activation)

    def forward(self, contexts: np.ndarray) -> Tensor:
        """(B, window) int contexts -> (B, V) next-token logits."""
        contexts = np.asarray(contexts, dtype=np.int64)
        if contexts.ndim != 2 or contexts.shape[1] != self.window:
            raise ValueError(f"expected (B, {self.window}) contexts, got {contexts.shape}")
        emb = self.embedding(contexts)  # (B, window, d)
        flat = emb.reshape(contexts.shape[0], self.window * self.embed_dim)
        return self.mlp(flat)

    def loss(self, contexts: np.ndarray, targets: np.ndarray) -> Tensor:
        return cross_entropy(self.forward(contexts), np.asarray(targets, dtype=np.int64))

    def next_token_logprobs(self, context: np.ndarray) -> np.ndarray:
        context = np.asarray(context, dtype=np.int64)
        # Left-pad short contexts with token 0 (a documented convention;
        # corpora here reserve low ids for frequent/special tokens).
        if len(context) < self.window:
            pad = np.zeros(self.window - len(context), dtype=np.int64)
            context = np.concatenate([pad, context])
        window = context[-self.window :][None, :]
        was_training = self.training
        self.eval()
        try:
            with no_grad():
                logits = self.forward(window).data[0]
        finally:
            if was_training:
                self.train()
        logits = logits - logits.max()
        return logits - np.log(np.exp(logits).sum())
