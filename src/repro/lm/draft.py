"""Classical LMs as speculative-decoding draft models.

Speculative decoding needs a proposer that is much cheaper than the
target transformer and returns, alongside its k proposed tokens, the
exact distribution each one was drawn from — the ``q`` side of the
rejection-sampling identity.  Every model in :mod:`repro.lm` (n-gram,
Kneser-Ney, FFN, RNN) already exposes
:meth:`~repro.lm.LanguageModel.next_token_logprobs`, so one adapter
covers the whole family: :class:`LanguageModelDraft` rolls the LM
forward k tokens under the *request's own*
:class:`~repro.infer.SamplingParams`, using the same filter pipeline
(:func:`~repro.core.sampling.sampling_probs`) as the target sampler.
Proposing under different knobs than the verifier judges with would
silently destroy the acceptance rate, not the correctness — the
rejection rule keeps the output distribution right regardless of how
bad ``q`` is.
"""

from __future__ import annotations

import numpy as np

from ..core.sampling import sample_from_probs, sampling_probs


class LanguageModelDraft:
    """Adapt any :class:`~repro.lm.LanguageModel` to the
    :class:`~repro.infer.DraftModel` protocol.

    ``propose`` is autoregressive over the LM's own proposals: token
    ``i+1`` conditions on the context extended by draft token ``i``,
    exactly as the verified sequence would read if everything is
    accepted.
    """

    def __init__(self, lm):
        self.lm = lm
        self.vocab_size = lm.vocab_size

    def propose(self, tokens, k: int, params, rng):
        """Propose ``k`` tokens after ``tokens``; returns ``(drafts, q)``.

        ``drafts`` is a length-k list of token ids and ``q`` the
        ``(k, V)`` array of proposal distributions they were drawn from
        (one-hot under greedy params).  ``rng`` may be ``None`` for
        greedy proposals, which consume no randomness.
        """
        context = [int(t) for t in tokens]
        drafts: list[int] = []
        q = np.empty((k, self.vocab_size), dtype=np.float64)
        for i in range(k):
            logprobs = self.lm.next_token_logprobs(
                np.asarray(context, dtype=np.int64))
            if params.greedy:
                token = int(np.argmax(logprobs))
                row = np.zeros(self.vocab_size, dtype=np.float64)
                row[token] = 1.0
            else:
                row = sampling_probs(logprobs, temperature=params.temperature,
                                     top_k=params.top_k, top_p=params.top_p)
                token = sample_from_probs(row, rng)
            q[i] = row
            drafts.append(token)
            context.append(token)
        return drafts, q
