"""Interpolated Kneser-Ney smoothing — the strongest classical N-gram.

§5 notes that N-gram models "can be improved a bit by simple statistical
tricks (smoothing)"; Kneser-Ney is the trick that matters.  Two ideas on
top of plain interpolation: absolute discounting (subtract a fixed ``d``
from every seen count and hand the freed mass to the lower order), and
continuation counts at the lower orders (a word's back-off score is the
number of *distinct contexts* it follows, not its raw frequency — the
classic "San Francisco" fix: "Francisco" is frequent but only ever
follows "San", so it should back off weakly).
"""

from __future__ import annotations

from collections import Counter, defaultdict
from typing import Sequence

import numpy as np

from .base import LanguageModel


class KneserNeyLM(LanguageModel):
    """Interpolated Kneser-Ney of a given order with absolute discount."""

    def __init__(self, vocab_size: int, order: int = 3, discount: float = 0.75):
        if order < 1:
            raise ValueError("order must be >= 1")
        if not 0.0 < discount < 1.0:
            raise ValueError("discount must be in (0, 1)")
        self.vocab_size = vocab_size
        self.order = order
        self.discount = discount
        # _tables[k] maps a length-k context tuple to Counter(next -> count).
        # The top order uses raw counts; lower orders use continuation
        # counts (number of distinct left extensions of the (k+1)-gram).
        self._tables: list[dict[tuple[int, ...], Counter]] = [
            defaultdict(Counter) for _ in range(order)
        ]
        self._fitted = False

    def fit(self, ids: Sequence[int]) -> "KneserNeyLM":
        ids = np.asarray(ids, dtype=np.int64)
        if ids.size and (ids.min() < 0 or ids.max() >= self.vocab_size):
            raise ValueError("token id out of range")
        tokens = ids.tolist()
        n = self.order
        # Raw counts at the top order.
        top = self._tables[n - 1]
        for i in range(n - 1, len(tokens)):
            context = tuple(tokens[i - n + 1 : i])
            top[context][tokens[i]] += 1
        # Continuation counts for each lower order k (context length k-1):
        # count_k(h, w) = |{v : the (k+1)-gram (v, h, w) appears}|.  Each
        # distinct extended gram contributes exactly one count.
        for k in range(n - 1, 0, -1):
            table = self._tables[k - 1]
            seen: set[tuple[int, ...]] = set()
            for i in range(k, len(tokens)):
                gram = tuple(tokens[i - k : i + 1])  # (v, h..., w), len k+1
                if gram in seen:
                    continue
                seen.add(gram)
                table[gram[1:-1]][gram[-1]] += 1
        self._fitted = True
        return self

    def _prob(self, word: int, context: tuple[int, ...], k: int) -> float:
        """P_k(word | context) with ``k`` the current order (1..order)."""
        if k == 0:
            return 1.0 / self.vocab_size
        table = self._tables[k - 1]
        counter = table.get(context, None)
        shorter = context[1:] if context else ()
        if not counter:
            return self._prob(word, shorter, k - 1)
        total = sum(counter.values())
        distinct = len(counter)
        d = self.discount
        discounted = max(counter.get(word, 0) - d, 0.0) / total
        backoff_weight = d * distinct / total
        return discounted + backoff_weight * self._prob(word, shorter, k - 1)

    def next_token_logprobs(self, context: np.ndarray) -> np.ndarray:
        if not self._fitted:
            raise RuntimeError("KneserNeyLM must be fit before evaluation")
        context = tuple(int(t) for t in np.asarray(context)[-(self.order - 1):]) \
            if self.order > 1 else ()
        probs = np.array([self._prob(w, context, self.order)
                          for w in range(self.vocab_size)])
        probs /= probs.sum()  # exact renormalisation against float drift
        with np.errstate(divide="ignore"):
            return np.log(probs)
