"""Inside-Outside expectation-maximisation for PCFGs (§7 / appendix).

Given only raw strings, EM re-estimates rule probabilities: the E-step
computes expected rule counts from the inside (alpha) and outside (beta)
charts, the M-step renormalises per nonterminal.  Corpus log-likelihood is
non-decreasing across iterations — a property the tests assert.

This is the classical algorithm the paper cites ([87]) and the one Zhou et
al.'s computational model implements with attention (§7).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from .cfg import Rule
from .cyk import _Index, inside_chart
from .pcfg import PCFG


@dataclass
class EMResult:
    """Inside-outside output: re-estimated grammar and per-iteration likelihood."""

    grammar: PCFG
    log_likelihoods: list[float]  # corpus log-likelihood per iteration


def expected_rule_counts(
    grammar: PCFG, tokens: Sequence[str]
) -> tuple[dict[Rule, float], float]:
    """E-step on one sentence: expected counts and the sentence log-prob.

    Returns ``({}, -inf)`` when the sentence is outside the language.
    """
    tokens = list(tokens)
    n = len(tokens)
    index = _Index(grammar)
    alpha = inside_chart(grammar, tokens)
    z = alpha[(0, n)].get(grammar.start, 0.0)
    if z <= 0.0:
        return {}, -math.inf

    # Outside (beta) pass, widest spans first.
    beta: dict[tuple[int, int], dict[str, float]] = {
        span: {} for span in alpha
    }
    beta[(0, n)][grammar.start] = 1.0
    for width in range(n, 1, -1):
        for i in range(0, n - width + 1):
            j = i + width
            outer = beta[(i, j)]
            if not outer:
                continue
            for k in range(i + 1, j):
                left, right = alpha[(i, k)], alpha[(k, j)]
                if not left or not right:
                    continue
                for lhs, b, c, prob in index.binary:
                    if lhs not in outer or b not in left or c not in right:
                        continue
                    contribution = outer[lhs] * prob
                    beta[(i, k)][b] = beta[(i, k)].get(b, 0.0) + contribution * right[c]
                    beta[(k, j)][c] = beta[(k, j)].get(c, 0.0) + contribution * left[b]

    counts: dict[Rule, float] = {}
    # Binary rule expectations.
    for width in range(2, n + 1):
        for i in range(0, n - width + 1):
            j = i + width
            outer = beta[(i, j)]
            if not outer:
                continue
            for k in range(i + 1, j):
                left, right = alpha[(i, k)], alpha[(k, j)]
                for lhs, b, c, prob in index.binary:
                    if lhs not in outer or b not in left or c not in right:
                        continue
                    expected = outer[lhs] * prob * left[b] * right[c] / z
                    if expected > 0:
                        rule = Rule(lhs, (b, c))
                        counts[rule] = counts.get(rule, 0.0) + expected
    # Lexical rule expectations.
    for i, token in enumerate(tokens):
        outer = beta[(i, i + 1)]
        for lhs, prob in index.lexical.get(token, []):
            if lhs not in outer:
                continue
            expected = outer[lhs] * prob / z
            if expected > 0:
                rule = Rule(lhs, (token,))
                counts[rule] = counts.get(rule, 0.0) + expected
    return counts, math.log(z)


def inside_outside_em(
    initial: PCFG,
    sentences: Sequence[Sequence[str]],
    iterations: int = 10,
    smoothing: float = 1e-6,
) -> EMResult:
    """Run EM from ``initial`` (must be CNF) over a corpus of sentences.

    ``smoothing`` adds a tiny pseudo-count to every rule of the *initial*
    grammar so no rule's probability collapses to exactly zero (which
    would freeze EM out of part of the hypothesis space).
    """
    if not initial.cfg.is_cnf():
        raise ValueError("inside_outside_em requires a CNF grammar")
    if iterations < 1:
        raise ValueError("iterations must be >= 1")
    grammar = initial
    log_likelihoods: list[float] = []
    support = list(initial.probs)
    for _ in range(iterations):
        totals: dict[Rule, float] = {rule: smoothing for rule in support}
        corpus_ll = 0.0
        parsed_any = False
        for sentence in sentences:
            counts, ll = expected_rule_counts(grammar, sentence)
            if math.isinf(ll):
                continue
            parsed_any = True
            corpus_ll += ll
            for rule, count in counts.items():
                totals[rule] = totals.get(rule, 0.0) + count
        if not parsed_any:
            raise ValueError("no training sentence is parseable by the grammar")
        log_likelihoods.append(corpus_ll)
        by_lhs: dict[str, float] = {}
        for rule, count in totals.items():
            by_lhs[rule.lhs] = by_lhs.get(rule.lhs, 0.0) + count
        new_probs = {rule: count / by_lhs[rule.lhs] for rule, count in totals.items()}
        grammar = PCFG(new_probs, grammar.start, normalize=True)
    return EMResult(grammar=grammar, log_likelihoods=log_likelihoods)


def random_restart_grammar(template: PCFG, rng: np.random.Generator,
                           concentration: float = 1.0) -> PCFG:
    """Same support as ``template`` but Dirichlet-random probabilities.

    Used to initialise EM away from the generating grammar so the bench
    can demonstrate genuine learning.
    """
    by_lhs: dict[str, list[Rule]] = {}
    for rule in template.rules:
        by_lhs.setdefault(rule.lhs, []).append(rule)
    probs: dict[Rule, float] = {}
    for lhs, rules in by_lhs.items():
        draw = rng.dirichlet(np.full(len(rules), concentration))
        for rule, p in zip(rules, draw):
            probs[rule] = float(p)
    return PCFG(probs, template.start, normalize=True)
