"""The Figure-3 arithmetic grammar and its evaluator.

The appendix's worked exercise: parse ``y + 1 * x`` and check that
multiplication takes precedence over addition.  Precedence is encoded
structurally — ``*`` lives under TERM, which nests *inside* EXPR's ``+``
rule — so the correct parse groups ``1 * x`` before adding ``y``.
"""

from __future__ import annotations

from .cfg import Tree
from .cnf import to_cnf
from .cyk import ParseResult, viterbi_parse
from .pcfg import PCFG

#: Figure 3, verbatim (probabilities chosen to keep sampling shallow).
FIGURE3_GRAMMAR_TEXT = """
EXPR -> TERM + EXPR [0.25]
EXPR -> ( EXPR ) [0.05]
EXPR -> TERM [0.70]
TERM -> VALUE * TERM [0.25]
TERM -> ( EXPR ) [0.05]
TERM -> VALUE [0.70]
VALUE -> x [0.15]
VALUE -> y [0.15]
VALUE -> 0 [0.07]
VALUE -> 1 [0.07]
VALUE -> 2 [0.07]
VALUE -> 3 [0.07]
VALUE -> 4 [0.07]
VALUE -> 5 [0.07]
VALUE -> 6 [0.07]
VALUE -> 7 [0.07]
VALUE -> 8 [0.07]
VALUE -> 9 [0.07]
VALUE -> z [0.02]
"""


def arithmetic_pcfg() -> PCFG:
    """The Figure-3 grammar as a PCFG over tokens x y z 0-9 + * ( )."""
    return PCFG.from_text(FIGURE3_GRAMMAR_TEXT, start="EXPR")


def arithmetic_cnf() -> PCFG:
    """CNF form of the Figure-3 grammar, ready for CYK/Inside-Outside."""
    return to_cnf(arithmetic_pcfg())


def parse_expression(tokens: list[str] | str,
                     grammar: PCFG | None = None) -> ParseResult | None:
    """Parse an arithmetic token string (spaces optional if given as str)."""
    if isinstance(tokens, str):
        tokens = [c for c in tokens if not c.isspace()]
    return viterbi_parse(grammar or arithmetic_cnf(), tokens)


def evaluate_tree(tree: Tree, env: dict[str, int] | None = None) -> int:
    """Evaluate a parse of the Figure-3 grammar.

    Handles the unit-chain-collapsed shapes produced by CNF parsing:
    ``[left, '+', right]``, ``[left, '*', right]``, ``['(', inner, ')']``,
    a bare terminal leaf, or a single-child wrapper node.
    """
    env = env or {}
    if tree.is_leaf():
        token = tree.label
        if token.isdigit():
            return int(token)
        if token in env:
            return int(env[token])
        raise KeyError(f"unbound variable {token!r}")
    labels = [child.label for child in tree.children]
    if len(tree.children) == 1:
        return evaluate_tree(tree.children[0], env)
    if len(tree.children) == 3:
        left, mid, right = tree.children
        if mid.label == "+":
            return evaluate_tree(left, env) + evaluate_tree(right, env)
        if mid.label == "*":
            return evaluate_tree(left, env) * evaluate_tree(right, env)
        if left.label == "(" and right.label == ")":
            return evaluate_tree(mid, env)
    raise ValueError(f"unrecognised node shape: {labels}")


def evaluate_expression(expression: str, env: dict[str, int] | None = None,
                        grammar: PCFG | None = None) -> int:
    """Parse then evaluate; precedence comes from the grammar, not Python."""
    result = parse_expression(expression, grammar)
    if result is None:
        raise ValueError(f"not a grammatical expression: {expression!r}")
    return evaluate_tree(result.tree, env)
