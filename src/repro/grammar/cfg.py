"""Context-free grammars and parse trees (the paper's appendix).

A grammar is a set of production rules ``lhs -> rhs`` where ``lhs`` is a
single nonterminal (the context-free restriction) and ``rhs`` is a string
of terminals and nonterminals.  Derivations from the start symbol generate
the language; recording the rule applications yields a parse tree.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence


@dataclass(frozen=True)
class Rule:
    """One production ``lhs -> rhs``; rhs is a tuple of symbol names."""

    lhs: str
    rhs: tuple[str, ...]

    def __post_init__(self):
        if not self.lhs:
            raise ValueError("empty lhs")
        if len(self.rhs) == 0:
            raise ValueError("epsilon (empty rhs) rules are not supported")

    def __str__(self) -> str:
        return f"{self.lhs} -> {' '.join(self.rhs)}"


class Tree:
    """A parse tree node.  Leaves are terminal symbols (no children)."""

    __slots__ = ("label", "children")

    def __init__(self, label: str, children: Sequence["Tree"] = ()):
        self.label = label
        self.children = tuple(children)

    def is_leaf(self) -> bool:
        return not self.children

    def leaves(self) -> list[str]:
        if self.is_leaf():
            return [self.label]
        out: list[str] = []
        for child in self.children:
            out.extend(child.leaves())
        return out

    def depth(self) -> int:
        if self.is_leaf():
            return 0
        return 1 + max(child.depth() for child in self.children)

    def productions(self) -> list[Rule]:
        """All rule applications in this tree, preorder."""
        if self.is_leaf():
            return []
        rules = [Rule(self.label, tuple(c.label for c in self.children))]
        for child in self.children:
            rules.extend(child.productions())
        return rules

    def spans(self, start: int = 0) -> list[tuple[str, int, int]]:
        """(label, start, end) for every internal node, end exclusive."""
        if self.is_leaf():
            return []
        out = []
        width = len(self.leaves())
        out.append((self.label, start, start + width))
        offset = start
        for child in self.children:
            out.extend(child.spans(offset))
            offset += len(child.leaves())
        return out

    def unbinarize(self, helper_prefix: str = "_") -> "Tree":
        """Splice out helper nonterminals introduced by CNF conversion.

        Children of a node whose label starts with ``helper_prefix`` are
        promoted into the parent; helper *preterminals* (one terminal
        child) are replaced by the terminal directly.
        """
        if self.is_leaf():
            return Tree(self.label)
        new_children: list[Tree] = []
        for child in self.children:
            cleaned = child.unbinarize(helper_prefix)
            if cleaned.label.startswith(helper_prefix):
                if cleaned.is_leaf():
                    new_children.append(cleaned)
                else:
                    new_children.extend(cleaned.children)
            else:
                new_children.append(cleaned)
        return Tree(self.label, new_children)

    def pretty(self, indent: int = 0) -> str:
        pad = "  " * indent
        if self.is_leaf():
            return f"{pad}{self.label}"
        inner = "\n".join(child.pretty(indent + 1) for child in self.children)
        return f"{pad}({self.label}\n{inner})"

    def bracketed(self) -> str:
        """One-line (LABEL child child) notation."""
        if self.is_leaf():
            return self.label
        inner = " ".join(child.bracketed() for child in self.children)
        return f"({self.label} {inner})"

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, Tree)
            and self.label == other.label
            and self.children == other.children
        )

    def __hash__(self) -> int:
        return hash((self.label, self.children))

    def __repr__(self) -> str:
        return f"Tree({self.bracketed()!r})"


class CFG:
    """A context-free grammar: rules, a start symbol, inferred terminals."""

    def __init__(self, rules: Iterable[Rule], start: str):
        self.rules = list(rules)
        if not self.rules:
            raise ValueError("grammar needs at least one rule")
        self.start = start
        self.nonterminals = {rule.lhs for rule in self.rules}
        if start not in self.nonterminals:
            raise ValueError(f"start symbol {start!r} has no rules")
        self.terminals = {
            symbol
            for rule in self.rules
            for symbol in rule.rhs
            if symbol not in self.nonterminals
        }

    @classmethod
    def from_text(cls, text: str, start: str | None = None) -> "CFG":
        """Parse rules from lines like ``EXPR -> TERM + EXPR``.

        The lhs of the first rule is the start symbol unless given.
        Alternatives may be written with ``|``.
        """
        rules: list[Rule] = []
        for line in text.strip().splitlines():
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            if "->" not in line:
                raise ValueError(f"rule line missing '->': {line!r}")
            lhs, rhs_text = line.split("->", 1)
            lhs = lhs.strip()
            for alternative in rhs_text.split("|"):
                symbols = tuple(alternative.split())
                rules.append(Rule(lhs, symbols))
        if not rules:
            raise ValueError("no rules found")
        return cls(rules, start or rules[0].lhs)

    def rules_for(self, nonterminal: str) -> list[Rule]:
        return [rule for rule in self.rules if rule.lhs == nonterminal]

    def is_cnf(self) -> bool:
        """Chomsky normal form: every rule is A -> B C or A -> a."""
        for rule in self.rules:
            if len(rule.rhs) == 1:
                if rule.rhs[0] in self.nonterminals:
                    return False
            elif len(rule.rhs) == 2:
                if any(s in self.terminals for s in rule.rhs):
                    return False
            else:
                return False
        return True

    def __repr__(self) -> str:
        return f"CFG({len(self.rules)} rules, start={self.start!r})"
