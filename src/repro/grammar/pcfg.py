"""Probabilistic context-free grammars (appendix).

A PCFG attaches a probability distribution to each nonterminal's rule set,
turning the grammar into a generative model over strings: sample a
derivation top-down, multiply rule probabilities for its likelihood.  A
PCFG "gives zero probability to nongrammatical strings" and is the object
the Inside-Outside algorithm learns from raw text.
"""

from __future__ import annotations

import math
from typing import Mapping

import numpy as np

from .cfg import CFG, Rule, Tree


class DepthLimitExceeded(RuntimeError):
    """Raised when top-down sampling fails to terminate within the limit."""


class PCFG:
    """A CFG plus per-nonterminal rule probabilities."""

    def __init__(self, weighted_rules: Mapping[Rule, float], start: str,
                 normalize: bool = False, tolerance: float = 1e-6):
        rules = list(weighted_rules)
        self.cfg = CFG(rules, start)
        probs = {rule: float(w) for rule, w in weighted_rules.items()}
        if any(p < 0 for p in probs.values()):
            raise ValueError("rule probabilities must be non-negative")
        if normalize:
            totals: dict[str, float] = {}
            for rule, p in probs.items():
                totals[rule.lhs] = totals.get(rule.lhs, 0.0) + p
            probs = {rule: p / totals[rule.lhs] for rule, p in probs.items()}
        else:
            totals = {}
            for rule, p in probs.items():
                totals[rule.lhs] = totals.get(rule.lhs, 0.0) + p
            for lhs, total in totals.items():
                if abs(total - 1.0) > tolerance:
                    raise ValueError(
                        f"probabilities for {lhs!r} sum to {total}, not 1; "
                        "pass normalize=True to renormalise"
                    )
        self.probs = probs

    # ------------------------------------------------------------------
    @property
    def start(self) -> str:
        return self.cfg.start

    @property
    def rules(self) -> list[Rule]:
        return self.cfg.rules

    @property
    def nonterminals(self) -> set[str]:
        return self.cfg.nonterminals

    @property
    def terminals(self) -> set[str]:
        return self.cfg.terminals

    def rule_prob(self, rule: Rule) -> float:
        return self.probs.get(rule, 0.0)

    @classmethod
    def from_text(cls, text: str, start: str | None = None) -> "PCFG":
        """Parse lines like ``EXPR -> TERM + EXPR [0.3]``.

        Omitted weights default to 1 before normalisation, so plain CFG
        text yields the uniform PCFG.
        """
        weighted: dict[Rule, float] = {}
        first_lhs: str | None = None
        for line in text.strip().splitlines():
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            weight = 1.0
            if line.endswith("]") and "[" in line:
                line, bracket = line.rsplit("[", 1)
                weight = float(bracket[:-1])
            lhs, rhs_text = line.split("->", 1)
            lhs = lhs.strip()
            if first_lhs is None:
                first_lhs = lhs
            rule = Rule(lhs, tuple(rhs_text.split()))
            weighted[rule] = weight
        return cls(weighted, start or first_lhs, normalize=True)

    @classmethod
    def uniform(cls, cfg: CFG) -> "PCFG":
        """Equal probability to every alternative of each nonterminal."""
        weighted = {rule: 1.0 for rule in cfg.rules}
        return cls(weighted, cfg.start, normalize=True)

    # ------------------------------------------------------------------
    # Generation
    # ------------------------------------------------------------------
    def sample_tree(self, rng: np.random.Generator, max_depth: int = 40,
                    symbol: str | None = None) -> Tree:
        """Top-down sampling; raises :class:`DepthLimitExceeded` if stuck."""
        symbol = symbol or self.start
        return self._sample(symbol, rng, max_depth)

    def _sample(self, symbol: str, rng: np.random.Generator, budget: int) -> Tree:
        if symbol in self.cfg.terminals:
            return Tree(symbol)
        if budget <= 0:
            raise DepthLimitExceeded(f"depth limit hit while expanding {symbol!r}")
        options = self.cfg.rules_for(symbol)
        weights = np.array([self.probs[r] for r in options])
        rule = options[int(rng.choice(len(options), p=weights / weights.sum()))]
        children = [self._sample(s, rng, budget - 1) for s in rule.rhs]
        return Tree(symbol, children)

    def sample_sentence(self, rng: np.random.Generator, max_depth: int = 40,
                        max_attempts: int = 50) -> list[str]:
        """Sample a terminal string, retrying on depth-limit failures."""
        for _ in range(max_attempts):
            try:
                return self.sample_tree(rng, max_depth).leaves()
            except DepthLimitExceeded:
                continue
        raise DepthLimitExceeded(
            f"no sentence within depth {max_depth} after {max_attempts} attempts"
        )

    # ------------------------------------------------------------------
    # Scoring
    # ------------------------------------------------------------------
    def tree_logprob(self, tree: Tree) -> float:
        """log probability of a derivation (sum of rule log-probs)."""
        total = 0.0
        for rule in tree.productions():
            p = self.probs.get(rule, 0.0)
            if p == 0.0:
                return -math.inf
            total += math.log(p)
        return total

    def rule_distribution(self, lhs: str) -> dict[Rule, float]:
        return {r: self.probs[r] for r in self.cfg.rules_for(lhs)}

    def kl_divergence_from(self, other: "PCFG") -> float:
        """Mean over nonterminals of KL(self's rule dist || other's).

        A convergence measure for Inside-Outside estimation (E14): zero
        iff the two grammars assign identical rule probabilities.
        """
        shared = self.nonterminals & other.nonterminals
        if not shared:
            raise ValueError("grammars share no nonterminals")
        total = 0.0
        for lhs in shared:
            for rule, p in self.rule_distribution(lhs).items():
                if p == 0:
                    continue
                q = other.rule_prob(rule)
                if q == 0:
                    return math.inf
                total += p * math.log(p / q)
        return total / len(shared)
