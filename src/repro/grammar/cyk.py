"""CYK parsing and the Inside algorithm for CNF PCFGs.

Given a grammar in Chomsky normal form, the CYK chart computes in
O(n^3 |G|):

* :func:`recognize` — is the string in the language?
* :func:`viterbi_parse` — the most probable parse tree (the appendix's
  "parser" algorithm);
* :func:`inside_logprob` — the total probability of the string under the
  PCFG (the alpha recursion of the Inside-Outside framework, §7).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from .cfg import Tree
from .pcfg import PCFG


@dataclass
class ParseResult:
    """A Viterbi parse: the highest-probability tree and its log-probability."""

    tree: Tree
    logprob: float


class _Index:
    """Rule lookup tables for a CNF grammar."""

    def __init__(self, grammar: PCFG):
        if not grammar.cfg.is_cnf():
            raise ValueError("CYK requires a grammar in Chomsky normal form; "
                             "convert with repro.grammar.to_cnf first")
        self.lexical: dict[str, list[tuple[str, float]]] = {}
        self.binary: list[tuple[str, str, str, float]] = []
        for rule, prob in grammar.probs.items():
            if prob == 0:
                continue
            if len(rule.rhs) == 1:
                self.lexical.setdefault(rule.rhs[0], []).append((rule.lhs, prob))
            else:
                self.binary.append((rule.lhs, rule.rhs[0], rule.rhs[1], prob))


def _chart_cells(tokens: Sequence[str], index: _Index, mode: str):
    """Shared CYK recursion.

    ``mode="viterbi"`` keeps (best prob, backpointer); ``mode="inside"``
    sums probabilities.  Returns the chart dict keyed by (i, j) spans
    (j exclusive) mapping nonterminal -> cell value.
    """
    n = len(tokens)
    chart: dict[tuple[int, int], dict] = {}
    for i, token in enumerate(tokens):
        cell: dict = {}
        for lhs, prob in index.lexical.get(token, []):
            if mode == "viterbi":
                if lhs not in cell or prob > cell[lhs][0]:
                    cell[lhs] = (prob, None)
            else:
                cell[lhs] = cell.get(lhs, 0.0) + prob
        chart[(i, i + 1)] = cell
    for width in range(2, n + 1):
        for i in range(0, n - width + 1):
            j = i + width
            cell = {}
            for k in range(i + 1, j):
                left, right = chart[(i, k)], chart[(k, j)]
                if not left or not right:
                    continue
                for lhs, b, c, prob in index.binary:
                    if b not in left or c not in right:
                        continue
                    if mode == "viterbi":
                        score = prob * left[b][0] * right[c][0]
                        if lhs not in cell or score > cell[lhs][0]:
                            cell[lhs] = (score, (k, b, c))
                    else:
                        cell[lhs] = cell.get(lhs, 0.0) + prob * left[b] * right[c]
            chart[(i, j)] = cell
    return chart


def recognize(grammar: PCFG, tokens: Sequence[str]) -> bool:
    """Membership test: does the CNF grammar generate ``tokens``?"""
    tokens = list(tokens)
    if not tokens:
        return False
    chart = _chart_cells(tokens, _Index(grammar), mode="inside")
    return grammar.start in chart[(0, len(tokens))]


def inside_chart(grammar: PCFG, tokens: Sequence[str]) -> dict[tuple[int, int], dict[str, float]]:
    """The full inside (alpha) chart: alpha[i, j][A] = P(A =>* tokens[i:j])."""
    return _chart_cells(list(tokens), _Index(grammar), mode="inside")


def inside_logprob(grammar: PCFG, tokens: Sequence[str]) -> float:
    """log P(string) under the PCFG; ``-inf`` if not in the language."""
    tokens = list(tokens)
    if not tokens:
        return -math.inf
    chart = inside_chart(grammar, tokens)
    total = chart[(0, len(tokens))].get(grammar.start, 0.0)
    return math.log(total) if total > 0 else -math.inf


def viterbi_parse(grammar: PCFG, tokens: Sequence[str],
                  unbinarize: bool = True) -> ParseResult | None:
    """Most probable parse, or None if the string is not in the language.

    With ``unbinarize=True`` (default) the CNF helper nonterminals are
    spliced out, so the tree reflects the original grammar's structure
    (modulo collapsed unit chains).
    """
    tokens = list(tokens)
    if not tokens:
        return None
    chart = _chart_cells(tokens, _Index(grammar), mode="viterbi")
    top = chart[(0, len(tokens))]
    if grammar.start not in top:
        return None

    def build(i: int, j: int, symbol: str) -> Tree:
        prob, back = chart[(i, j)][symbol]
        if back is None:
            return Tree(symbol, [Tree(tokens[i])])
        k, b, c = back
        return Tree(symbol, [build(i, k, b), build(k, j, c)])

    tree = build(0, len(tokens), grammar.start)
    if unbinarize:
        tree = tree.unbinarize()
    return ParseResult(tree=tree, logprob=math.log(top[grammar.start][0]))
