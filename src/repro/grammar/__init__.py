"""CFG/PCFG stack (the paper's appendix): parsing, CNF, Inside-Outside."""

from .arithmetic import (
    FIGURE3_GRAMMAR_TEXT,
    arithmetic_cnf,
    arithmetic_pcfg,
    evaluate_expression,
    evaluate_tree,
    parse_expression,
)
from .cfg import CFG, Rule, Tree
from .cnf import to_cnf
from .cyk import (
    ParseResult,
    inside_chart,
    inside_logprob,
    recognize,
    viterbi_parse,
)
from .inside_outside import (
    EMResult,
    expected_rule_counts,
    inside_outside_em,
    random_restart_grammar,
)
from .pcfg import PCFG, DepthLimitExceeded
from .treebank import (
    ENGLISH_TOY_GRAMMAR_TEXT,
    TreebankExample,
    english_toy_pcfg,
    sample_treebank,
    tree_distance_matrix,
    treebank_text,
)

__all__ = [
    "Rule",
    "Tree",
    "CFG",
    "PCFG",
    "DepthLimitExceeded",
    "to_cnf",
    "recognize",
    "viterbi_parse",
    "inside_chart",
    "inside_logprob",
    "ParseResult",
    "expected_rule_counts",
    "inside_outside_em",
    "random_restart_grammar",
    "EMResult",
    "arithmetic_pcfg",
    "arithmetic_cnf",
    "parse_expression",
    "evaluate_tree",
    "evaluate_expression",
    "FIGURE3_GRAMMAR_TEXT",
    "english_toy_pcfg",
    "ENGLISH_TOY_GRAMMAR_TEXT",
    "sample_treebank",
    "tree_distance_matrix",
    "treebank_text",
    "TreebankExample",
]
