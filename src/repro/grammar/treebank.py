"""Synthetic treebanks: (sentence, gold parse, tree distances) triples.

Stands in for the Penn Treebank in the structural-probe experiment (E10):
the Hewitt-Manning probe needs, for every sentence, the matrix of pairwise
path distances between words in the gold parse tree.  A PCFG treebank
provides exact gold trees by construction.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .cfg import Tree
from .pcfg import PCFG, DepthLimitExceeded

#: A small English-like PCFG for LM corpora and probe experiments.
ENGLISH_TOY_GRAMMAR_TEXT = """
S -> NP VP [1.0]
NP -> Det N [0.55]
NP -> Det Adj N [0.25]
NP -> NP PP [0.20]
VP -> V NP [0.55]
VP -> V NP PP [0.20]
VP -> V [0.25]
PP -> P NP [1.0]
Det -> the [0.6]
Det -> a [0.4]
N -> dog [0.14]
N -> cat [0.14]
N -> bird [0.14]
N -> man [0.14]
N -> woman [0.14]
N -> park [0.15]
N -> telescope [0.15]
Adj -> big [0.34]
Adj -> small [0.33]
Adj -> red [0.33]
V -> saw [0.25]
V -> liked [0.25]
V -> found [0.25]
V -> chased [0.25]
P -> in [0.34]
P -> with [0.33]
P -> near [0.33]
"""


def english_toy_pcfg() -> PCFG:
    """The built-in English-like grammar used across experiments."""
    return PCFG.from_text(ENGLISH_TOY_GRAMMAR_TEXT, start="S")


def tree_distance_matrix(tree: Tree) -> np.ndarray:
    """Pairwise path lengths between leaves in the parse tree.

    ``d(i, j)`` is the number of edges on the unique path between leaf i
    and leaf j — the quantity the structural probe regresses onto.
    """
    paths: list[list[int]] = []
    counter = [0]

    def walk(node: Tree, ancestry: list[int]) -> None:
        node_id = counter[0]
        counter[0] += 1
        ancestry = ancestry + [node_id]
        if node.is_leaf():
            paths.append(ancestry)
            return
        for child in node.children:
            walk(child, ancestry)

    walk(tree, [])
    n = len(paths)
    distances = np.zeros((n, n))
    for i in range(n):
        for j in range(i + 1, n):
            a, b = paths[i], paths[j]
            common = 0
            for x, y in zip(a, b):
                if x != y:
                    break
                common += 1
            distances[i, j] = distances[j, i] = (len(a) - common) + (len(b) - common)
    return distances


@dataclass
class TreebankExample:
    """One treebank entry: tokens, gold tree, gold leaf-distance matrix."""

    tokens: list[str]
    tree: Tree
    distances: np.ndarray


def sample_treebank(
    grammar: PCFG,
    count: int,
    rng: np.random.Generator,
    min_len: int = 3,
    max_len: int = 16,
    max_depth: int = 30,
    max_attempts_per_example: int = 200,
) -> list[TreebankExample]:
    """Sample ``count`` sentences with gold trees in a length band."""
    examples: list[TreebankExample] = []
    attempts = 0
    budget = count * max_attempts_per_example
    while len(examples) < count and attempts < budget:
        attempts += 1
        try:
            tree = grammar.sample_tree(rng, max_depth=max_depth)
        except DepthLimitExceeded:
            continue
        tokens = tree.leaves()
        if not min_len <= len(tokens) <= max_len:
            continue
        examples.append(
            TreebankExample(tokens=tokens, tree=tree,
                            distances=tree_distance_matrix(tree))
        )
    if len(examples) < count:
        raise RuntimeError(
            f"only sampled {len(examples)}/{count} sentences in the length "
            f"band [{min_len}, {max_len}]"
        )
    return examples


def treebank_text(examples: list[TreebankExample], end_token: str = ".") -> str:
    """Flatten a treebank into LM training text, one sentence per period."""
    return (f" {end_token} ".join(" ".join(ex.tokens) for ex in examples)
            + f" {end_token}")
