"""Chomsky-normal-form conversion for PCFGs.

CNF (every rule ``A -> B C`` or ``A -> a``) is what CYK and Inside-Outside
require; the appendix notes any grammar can be rewritten into it "by
introducing more nonterminals".  The probabilistic version must also
redistribute probability correctly; unit rules ``A -> B`` are eliminated
with the standard matrix-closure construction so that string probabilities
are preserved exactly.
"""

from __future__ import annotations

import numpy as np

from .cfg import Rule
from .pcfg import PCFG

TERMINAL_PREFIX = "_T_"
BINARY_PREFIX = "_B_"


def to_cnf(grammar: PCFG) -> PCFG:
    """Return an equivalent PCFG in Chomsky normal form.

    Three passes: TERM (lift terminals out of long rules), BIN (binarise
    long rules), UNIT (eliminate nonterminal chain rules via the closure
    ``(I - U)^{-1}``).  Helper nonterminals are prefixed with ``_`` so
    :meth:`Tree.unbinarize` can splice them back out of parses.
    """
    nonterminals = set(grammar.nonterminals)
    weighted: dict[Rule, float] = {}
    term_cache: dict[str, str] = {}
    bin_counter = 0

    def terminal_proxy(symbol: str) -> str:
        if symbol not in term_cache:
            proxy = f"{TERMINAL_PREFIX}{symbol}"
            term_cache[symbol] = proxy
            weighted[Rule(proxy, (symbol,))] = 1.0
        return term_cache[symbol]

    # --- TERM + BIN ----------------------------------------------------
    for rule in grammar.rules:
        prob = grammar.probs[rule]
        rhs = list(rule.rhs)
        if len(rhs) >= 2:
            rhs = [s if s in nonterminals else terminal_proxy(s) for s in rhs]
        while len(rhs) > 2:
            helper = f"{BINARY_PREFIX}{bin_counter}"
            bin_counter += 1
            weighted[Rule(helper, (rhs[-2], rhs[-1]))] = 1.0
            rhs = rhs[:-2] + [helper]
        new_rule = Rule(rule.lhs, tuple(rhs))
        weighted[new_rule] = weighted.get(new_rule, 0.0) + prob

    # --- UNIT ------------------------------------------------------------
    all_nts = sorted({r.lhs for r in weighted} | {
        s for r in weighted for s in r.rhs if s in nonterminals
        or s.startswith((TERMINAL_PREFIX, BINARY_PREFIX))
    })
    nt_index = {nt: i for i, nt in enumerate(all_nts)}
    n = len(all_nts)
    unit = np.zeros((n, n))
    non_unit: dict[Rule, float] = {}
    for rule, prob in weighted.items():
        is_unit = len(rule.rhs) == 1 and rule.rhs[0] in nt_index
        if is_unit:
            unit[nt_index[rule.lhs], nt_index[rule.rhs[0]]] += prob
        else:
            non_unit[rule] = non_unit.get(rule, 0.0) + prob

    if not np.any(unit):
        closure = np.eye(n)
    else:
        spectral = np.abs(np.linalg.eigvals(unit)).max()
        if spectral >= 1.0:
            raise ValueError("unit-rule cycle with probability mass >= 1")
        closure = np.linalg.inv(np.eye(n) - unit)

    final: dict[Rule, float] = {}
    for rule, prob in non_unit.items():
        b = nt_index[rule.lhs]
        for a_sym, a in nt_index.items():
            weight = closure[a, b]
            if weight <= 0:
                continue
            new_rule = Rule(a_sym, rule.rhs)
            final[new_rule] = final.get(new_rule, 0.0) + weight * prob

    # Drop nonterminals that became unreachable/unproductive zero-mass rows.
    final = {rule: p for rule, p in final.items() if p > 0}
    result = PCFG(final, grammar.start, normalize=False, tolerance=1e-6)
    if not result.cfg.is_cnf():
        raise AssertionError("CNF conversion produced a non-CNF grammar")
    return result
