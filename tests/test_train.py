"""Unit tests for the trainer, metrics, and checkpointing."""

import numpy as np
import pytest

from repro.core import TransformerConfig, TransformerLM
from repro.lm import FFNLM, UnigramLM, make_windows
from repro.nn import Adam, Constant
from repro.train import (
    History,
    Trainer,
    accuracy,
    cross_entropy_of,
    distribution_entropy,
    exact_match,
    load_checkpoint,
    perplexity_of,
    rouge_l,
    rouge_n,
    save_checkpoint,
    train_lm_on_stream,
)


class TestTrainer:
    def _ffn_setup(self):
        rng = np.random.default_rng(0)
        stream = np.array([0, 1, 2, 3] * 200)
        lm = FFNLM(4, window=2, embed_dim=8, hidden_dim=16, rng=0)
        ctx, tgt = make_windows(stream, 2)

        def batch_fn(step):
            idx = rng.integers(0, len(tgt), size=32)
            return ctx[idx], tgt[idx]

        return lm, batch_fn

    def test_history_recorded(self):
        lm, batch_fn = self._ffn_setup()
        trainer = Trainer(lm, Adam(lm.parameters(), lr=1e-2), batch_fn)
        history = trainer.run(30)
        assert len(history.losses) == 30
        assert history.losses[-1] < history.losses[0]
        assert history.wall_time > 0

    def test_eval_fn_called_periodically(self):
        lm, batch_fn = self._ffn_setup()
        calls = []

        def eval_fn(model, step):
            calls.append(step)
            return {"metric": 1.0}

        trainer = Trainer(lm, Adam(lm.parameters(), lr=1e-2), batch_fn,
                          eval_fn=eval_fn, eval_every=10)
        history = trainer.run(25)
        assert calls == [9, 19, 24]
        steps, values = history.eval_series("metric")
        assert steps == [9, 19, 24] and values == [1.0, 1.0, 1.0]

    def test_schedule_applied(self):
        lm, batch_fn = self._ffn_setup()
        opt = Adam(lm.parameters(), lr=123.0)
        Trainer(lm, opt, batch_fn, schedule=Constant(1e-3)).run(3)
        assert opt.lr == 1e-3

    def test_clip_norm_applied(self):
        lm, batch_fn = self._ffn_setup()
        trainer = Trainer(lm, Adam(lm.parameters(), lr=1e-2), batch_fn,
                          clip_norm=1e-8)
        history = trainer.run(5)  # clipped to nothing: loss barely moves
        assert abs(history.losses[-1] - history.losses[0]) < 0.1

    def test_zero_steps_rejected(self):
        lm, batch_fn = self._ffn_setup()
        with pytest.raises(ValueError):
            Trainer(lm, Adam(lm.parameters(), lr=1e-2), batch_fn).run(0)

    def test_history_helpers(self):
        h = History(steps=[0, 1, 2], losses=[3.0, 2.0, 1.0])
        assert h.final_loss == 1.0
        assert len(h.smoothed_losses(window=2)) == 2
        with pytest.raises(ValueError):
            History().final_loss

    def test_train_lm_on_stream_transformer(self):
        cfg = TransformerConfig(vocab_size=4, max_seq_len=8, d_model=16,
                                num_heads=2, num_layers=1)
        model = TransformerLM(cfg, rng=0)
        stream = np.array([0, 1, 2, 3] * 100)
        history = train_lm_on_stream(model, stream, num_steps=60,
                                     batch_size=8, seq_len=8)
        assert history.losses[-1] < 0.5


class TestMetrics:
    def test_accuracy(self):
        assert accuracy([1, 2, 3], [1, 0, 3]) == pytest.approx(2 / 3)
        with pytest.raises(ValueError):
            accuracy([1], [1, 2])
        with pytest.raises(ValueError):
            accuracy([], [])

    def test_exact_match_whitespace_normalised(self):
        assert exact_match(" a  b ", "a b")
        assert not exact_match("a b", "a c")

    def test_rouge_1_recall(self):
        cand = "the cat sat".split()
        ref = "the cat sat down".split()
        assert rouge_n(cand, ref, n=1) == pytest.approx(3 / 4)

    def test_rouge_2(self):
        cand = "a b c".split()
        ref = "a b d".split()
        assert rouge_n(cand, ref, n=2) == pytest.approx(1 / 2)

    def test_rouge_identical_is_one(self):
        tokens = "x y z".split()
        assert rouge_n(tokens, tokens, 1) == 1.0
        assert rouge_l(tokens, tokens) == 1.0

    def test_rouge_disjoint_is_zero(self):
        assert rouge_n(["a"], ["b"], 1) == 0.0
        assert rouge_l(["a"], ["b"]) == 0.0

    def test_rouge_l_subsequence(self):
        cand = "a x b y c".split()
        ref = "a b c".split()
        # LCS = 3; precision 3/5, recall 1 -> F1 = 0.75
        assert rouge_l(cand, ref) == pytest.approx(0.75)

    def test_rouge_empty_reference(self):
        assert rouge_n(["a"], [], 1) == 0.0

    def test_distribution_entropy(self):
        assert distribution_entropy(np.array([0.5, 0.5])) == pytest.approx(np.log(2))
        assert distribution_entropy(np.array([1.0, 0.0])) == 0.0
        with pytest.raises(ValueError):
            distribution_entropy(np.array([0.5, 0.6]))

    def test_perplexity_of_prefers_batched_path(self):
        stream = np.array([0, 1, 2, 3] * 50)
        lm = UnigramLM(4).fit(stream)
        assert perplexity_of(lm, stream) == pytest.approx(4.0, rel=0.05)
        cfg = TransformerConfig(vocab_size=4, max_seq_len=8, d_model=8,
                                num_heads=2, num_layers=1)
        model = TransformerLM(cfg, rng=0)
        ce = cross_entropy_of(model, stream)  # uses cross_entropy_on
        assert 0 < ce < 3.0


class TestCheckpoint:
    def test_roundtrip(self, tmp_path):
        cfg = TransformerConfig(vocab_size=6, max_seq_len=8, d_model=8,
                                num_heads=2, num_layers=1)
        a = TransformerLM(cfg, rng=0)
        b = TransformerLM(cfg, rng=99)
        path = tmp_path / "model.npz"
        save_checkpoint(path, a, config=cfg.to_dict())
        loaded_cfg = load_checkpoint(path, b)
        assert loaded_cfg == cfg.to_dict()
        x = np.zeros((1, 4), dtype=int)
        assert np.allclose(a.forward(x).data, b.forward(x).data)

    def test_config_optional(self, tmp_path):
        cfg = TransformerConfig(vocab_size=6, max_seq_len=8, d_model=8,
                                num_heads=2, num_layers=1)
        model = TransformerLM(cfg, rng=0)
        path = tmp_path / "weights.npz"
        save_checkpoint(path, model)
        assert load_checkpoint(path, model) is None

    def test_wrong_architecture_raises(self, tmp_path):
        cfg = TransformerConfig(vocab_size=6, max_seq_len=8, d_model=8,
                                num_heads=2, num_layers=1)
        other = TransformerConfig(vocab_size=6, max_seq_len=8, d_model=16,
                                  num_heads=2, num_layers=1)
        path = tmp_path / "model.npz"
        save_checkpoint(path, TransformerLM(cfg, rng=0))
        with pytest.raises(ValueError):
            load_checkpoint(path, TransformerLM(other, rng=0))


class TestHistoryTelemetry:
    """PR 2: eval_series with ragged snapshots and per-step stats."""

    def _setup(self):
        rng = np.random.default_rng(0)
        stream = np.array([0, 1, 2, 3] * 100)
        lm = FFNLM(4, window=2, embed_dim=8, hidden_dim=16, rng=0)
        ctx, tgt = make_windows(stream, 2)

        def batch_fn(step):
            idx = rng.integers(0, len(tgt), size=16)
            return ctx[idx], tgt[idx]

        return lm, batch_fn

    def test_eval_series_skips_missing_keys(self):
        h = History(eval_steps=[0, 5, 10],
                    eval_values=[{"loss": 5.0},
                                 {"loss": 4.0, "acc": 0.5},
                                 {"acc": 0.75}])
        # an eval_fn may report different metrics at different cadences;
        # missing keys must be skipped with steps/values kept aligned
        assert h.eval_series("acc") == ([5, 10], [0.5, 0.75])
        assert h.eval_series("loss") == ([0, 5], [5.0, 4.0])
        assert h.eval_series("never_reported") == ([], [])

    def test_per_step_telemetry_recorded(self):
        lm, batch_fn = self._setup()
        history = Trainer(lm, Adam(lm.parameters(), lr=1e-2), batch_fn).run(5)
        assert len(history.step_seconds) == 5
        assert all(s > 0 for s in history.step_seconds)
        assert history.step_tokens == [16] * 5
        assert history.total_tokens == 80
        assert history.tokens_per_sec > 0
        # no clipping and no observability: the norm sweep is skipped
        assert history.grad_norms == []

    def test_grad_norms_recorded_when_clipping(self):
        lm, batch_fn = self._setup()
        trainer = Trainer(lm, Adam(lm.parameters(), lr=1e-2), batch_fn,
                          clip_norm=10.0)
        history = trainer.run(3)
        assert len(history.grad_norms) == 3
        assert all(g > 0 for g in history.grad_norms)

    def test_empty_history_throughput_is_zero(self):
        assert History().tokens_per_sec == 0.0
        assert History().total_tokens == 0


class TestMetricsEdgeCases:
    def test_rouge_empty_candidate(self):
        assert rouge_n([], ["a", "b"], 1) == 0.0
        assert rouge_l([], ["a", "b"]) == 0.0
        assert rouge_l(["a"], []) == 0.0

    def test_accuracy_length_mismatch(self):
        with pytest.raises(ValueError):
            accuracy([1, 0], [1])
        with pytest.raises(ValueError):
            accuracy([], [])

    def test_distribution_entropy_float32_tolerance(self):
        # a float32 softmax legitimately sums to 1 only within ~1e-6 per
        # element; the dtype-aware gate must accept that slack...
        near_one = np.array([0.5, 0.5 + 3e-6], dtype=np.float32)
        assert distribution_entropy(near_one) == pytest.approx(np.log(2), abs=1e-4)
        # ...while the same deviation in float64 is a genuine error
        with pytest.raises(ValueError):
            distribution_entropy(np.array([0.5, 0.5 + 3e-6], dtype=np.float64))
        # and a real mismatch still fails in float32
        with pytest.raises(ValueError):
            distribution_entropy(np.array([0.5, 0.51], dtype=np.float32))
