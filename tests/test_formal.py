"""Tests for DFAs, the Tomita grammars, and RNN -> DFA extraction."""

import itertools

import numpy as np
import pytest

from repro.formal import (
    DFA,
    RNNClassifier,
    extract_and_evaluate,
    sample_language_dataset,
    tomita,
)


def _brute_force_strings(max_len: int):
    for length in range(max_len + 1):
        yield from (list(s) for s in itertools.product([0, 1], repeat=length))


# Ground-truth predicates for the seven Tomita languages.
def _runs(s):
    out = []
    for symbol in s:
        if out and out[-1][0] == symbol:
            out[-1][1] += 1
        else:
            out.append([symbol, 1])
    return out


_PREDICATES = {
    1: lambda s: 0 not in s,
    2: lambda s: s == [1, 0] * (len(s) // 2) and len(s) % 2 == 0,
    3: lambda s: not any(
        a == 1 and la % 2 == 1 and b == 0 and lb % 2 == 1
        for (a, la), (b, lb) in zip(_runs(s), _runs(s)[1:])
    ),
    4: lambda s: "000" not in "".join(map(str, s)),
    5: lambda s: s.count(0) % 2 == 0 and s.count(1) % 2 == 0,
    6: lambda s: (s.count(0) - s.count(1)) % 3 == 0,
    7: lambda s: [r[0] for r in _runs(s)] in (
        [], [0], [1], [0, 1], [1, 0], [0, 1, 0], [1, 0, 1], [0, 1, 0, 1]
    ),
}


class TestDFA:
    def test_basic_run_and_accept(self):
        parity = tomita(5)
        assert parity.accepts([])
        assert parity.accepts([0, 0, 1, 1])
        assert not parity.accepts([0])
        assert parity.run([0, 1]) != parity.start

    def test_symbol_range_checked(self):
        with pytest.raises(ValueError):
            tomita(1).run([2])

    def test_state_trace_length(self):
        trace = tomita(4).state_trace([0, 1, 0])
        assert len(trace) == 4
        assert trace[0] == tomita(4).start

    def test_validation(self):
        with pytest.raises(ValueError):
            DFA(num_states=0, alphabet_size=2, transitions=(),
                accepting=frozenset())
        with pytest.raises(ValueError):
            DFA(num_states=1, alphabet_size=1, transitions=((5,),),
                accepting=frozenset())

    def test_minimization_preserves_language(self):
        # build a redundant DFA for "ends with 1" with duplicated states
        dfa = DFA.from_dict(
            {0: {0: 2, 1: 1}, 1: {0: 2, 1: 3}, 2: {0: 2, 1: 1},
             3: {0: 2, 1: 3}},
            accepting=[1, 3], alphabet_size=2,
        )
        small = dfa.minimized()
        assert small.num_states == 2
        for s in _brute_force_strings(7):
            assert dfa.accepts(s) == small.accepts(s)

    def test_equivalence_check(self):
        assert tomita(5).equivalent_to(tomita(5))
        assert not tomita(5).equivalent_to(tomita(6))

    def test_reachability(self):
        # states 2 and 3 unreachable from 0
        dfa = DFA.from_dict(
            {0: {0: 0, 1: 1}, 1: {0: 0, 1: 1}, 2: {0: 3, 1: 3},
             3: {0: 3, 1: 3}},
            accepting=[1], alphabet_size=2,
        )
        assert dfa.reachable_states() == {0, 1}
        assert dfa.minimized().num_states <= 2


class TestTomita:
    @pytest.mark.parametrize("index", [1, 2, 3, 4, 5, 6, 7])
    def test_dfa_matches_predicate(self, index):
        dfa = tomita(index)
        predicate = _PREDICATES[index]
        for s in _brute_force_strings(9):
            assert dfa.accepts(s) == predicate(s), (index, s)

    def test_unknown_index(self):
        with pytest.raises(KeyError):
            tomita(8)

    def test_balanced_sampling(self):
        rng = np.random.default_rng(0)
        strings, labels = sample_language_dataset(tomita(4), rng, 60)
        assert len(strings) == 60
        assert labels.sum() == 30
        for s, l in zip(strings, labels):
            assert tomita(4).accepts(s) == bool(l)

    def test_sampling_impossible_language_raises(self):
        rng = np.random.default_rng(0)
        with pytest.raises(RuntimeError):
            # Tomita 1 positives are vanishingly rare at long lengths
            sample_language_dataset(tomita(1), rng, 40, min_len=14,
                                    max_len=16, max_attempts_factor=5)


class TestExtraction:
    @pytest.fixture(scope="class")
    def trained(self):
        rng = np.random.default_rng(0)
        dfa = tomita(4)
        strings, labels = sample_language_dataset(dfa, rng, 120, max_len=10)
        model = RNNClassifier(2, hidden_dim=12, rng=0)
        model.fit(strings, labels, epochs=12, lr=1e-2)
        return model, dfa, strings, labels

    def test_rnn_learns_language(self, trained):
        model, dfa, strings, labels = trained
        assert model.accuracy(strings, labels) > 0.9

    def test_extracted_dfa_is_faithful(self, trained):
        model, dfa, strings, _labels = trained
        rng = np.random.default_rng(9)
        eval_strings, _ = sample_language_dataset(dfa, rng, 60, max_len=10)
        result = extract_and_evaluate(model, dfa, strings, eval_strings,
                                      num_clusters=12)
        assert result.fidelity > 0.85
        assert result.language_accuracy > 0.85
        assert result.dfa.num_states <= 12

    def test_hidden_trace_shape(self, trained):
        model, *_ = trained
        trace = model.hidden_trace([0, 1, 0])
        assert trace.shape == (4, 12)
