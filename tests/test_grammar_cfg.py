"""Unit tests for CFG, Rule, Tree, and PCFG basics."""

import math

import numpy as np
import pytest

from repro.grammar import CFG, PCFG, DepthLimitExceeded, Rule, Tree


class TestRule:
    def test_str(self):
        assert str(Rule("S", ("NP", "VP"))) == "S -> NP VP"

    def test_epsilon_rejected(self):
        with pytest.raises(ValueError):
            Rule("S", ())

    def test_empty_lhs_rejected(self):
        with pytest.raises(ValueError):
            Rule("", ("a",))

    def test_hashable_and_equal(self):
        assert Rule("A", ("b",)) == Rule("A", ("b",))
        assert len({Rule("A", ("b",)), Rule("A", ("b",))}) == 1


class TestTree:
    def _tree(self):
        return Tree("S", [
            Tree("NP", [Tree("the"), Tree("cat")]),
            Tree("VP", [Tree("sat")]),
        ])

    def test_leaves_in_order(self):
        assert self._tree().leaves() == ["the", "cat", "sat"]

    def test_depth(self):
        assert self._tree().depth() == 2
        assert Tree("a").depth() == 0

    def test_productions(self):
        rules = self._tree().productions()
        assert Rule("S", ("NP", "VP")) in rules
        assert Rule("NP", ("the", "cat")) in rules
        assert len(rules) == 3

    def test_spans(self):
        spans = self._tree().spans()
        assert ("S", 0, 3) in spans
        assert ("NP", 0, 2) in spans
        assert ("VP", 2, 3) in spans

    def test_bracketed_and_pretty(self):
        t = self._tree()
        assert t.bracketed() == "(S (NP the cat) (VP sat))"
        assert "NP" in t.pretty()

    def test_unbinarize_splices_helpers(self):
        t = Tree("S", [Tree("A", [Tree("a")]),
                       Tree("_B_0", [Tree("B", [Tree("b")]),
                                     Tree("C", [Tree("c")])])])
        clean = t.unbinarize()
        assert clean.bracketed() == "(S (A a) (B b) (C c))"

    def test_equality_and_hash(self):
        assert self._tree() == self._tree()
        assert hash(self._tree()) == hash(self._tree())


class TestCFG:
    GRAMMAR = """
    S -> NP VP
    NP -> det n
    VP -> v NP | v
    """

    def test_from_text(self):
        g = CFG.from_text(self.GRAMMAR)
        assert g.start == "S"
        assert g.nonterminals == {"S", "NP", "VP"}
        assert g.terminals == {"det", "n", "v"}
        assert len(g.rules) == 4  # alternatives expanded

    def test_rules_for(self):
        g = CFG.from_text(self.GRAMMAR)
        assert len(g.rules_for("VP")) == 2

    def test_start_must_have_rules(self):
        with pytest.raises(ValueError):
            CFG([Rule("A", ("a",))], start="S")

    def test_missing_arrow_raises(self):
        with pytest.raises(ValueError):
            CFG.from_text("S NP VP")

    def test_is_cnf(self):
        cnf = CFG.from_text("S -> A B\nA -> a\nB -> b")
        assert cnf.is_cnf()
        assert not CFG.from_text("S -> A B C\nA -> a\nB -> b\nC -> c").is_cnf()
        assert not CFG.from_text("S -> A\nA -> a").is_cnf()  # unit rule
        assert not CFG.from_text("S -> A b\nA -> a").is_cnf()  # mixed binary


class TestPCFG:
    def test_probabilities_validated(self):
        rules = {Rule("S", ("a",)): 0.6, Rule("S", ("b",)): 0.3}
        with pytest.raises(ValueError):
            PCFG(rules, "S")
        g = PCFG(rules, "S", normalize=True)
        assert g.rule_prob(Rule("S", ("a",))) == pytest.approx(2 / 3)

    def test_negative_prob_rejected(self):
        with pytest.raises(ValueError):
            PCFG({Rule("S", ("a",)): -1.0}, "S")

    def test_from_text_weights(self):
        g = PCFG.from_text("S -> a [3]\nS -> b [1]")
        assert g.rule_prob(Rule("S", ("a",))) == pytest.approx(0.75)

    def test_uniform(self):
        cfg = CFG.from_text("S -> a | b | c")
        g = PCFG.uniform(cfg)
        assert g.rule_prob(Rule("S", ("a",))) == pytest.approx(1 / 3)

    def test_sampling_respects_grammar(self):
        g = PCFG.from_text("S -> a S [0.3]\nS -> a [0.7]")
        rng = np.random.default_rng(0)
        for _ in range(20):
            sentence = g.sample_sentence(rng, max_depth=30)
            assert set(sentence) == {"a"}

    def test_depth_limit_raised(self):
        g = PCFG.from_text("S -> S S [0.95]\nS -> a [0.05]")
        rng = np.random.default_rng(0)
        with pytest.raises(DepthLimitExceeded):
            g.sample_tree(rng, max_depth=2)

    def test_tree_logprob(self):
        g = PCFG.from_text("S -> a [0.25]\nS -> b [0.75]")
        assert g.tree_logprob(Tree("S", [Tree("a")])) == pytest.approx(math.log(0.25))

    def test_tree_logprob_unknown_rule_is_minus_inf(self):
        g = PCFG.from_text("S -> a [1.0]")
        assert g.tree_logprob(Tree("S", [Tree("zzz")])) == -math.inf

    def test_kl_divergence(self):
        a = PCFG.from_text("S -> a [0.5]\nS -> b [0.5]")
        b = PCFG.from_text("S -> a [0.9]\nS -> b [0.1]")
        assert a.kl_divergence_from(a) == pytest.approx(0.0)
        assert a.kl_divergence_from(b) > 0

    def test_kl_divergence_infinite_on_missing_support(self):
        a = PCFG.from_text("S -> a [0.5]\nS -> b [0.5]")
        c = PCFG.from_text("S -> a [1.0]")
        assert a.kl_divergence_from(c) == math.inf

    def test_sample_statistics_match_probs(self):
        g = PCFG.from_text("S -> a [0.8]\nS -> b [0.2]")
        rng = np.random.default_rng(0)
        draws = [g.sample_sentence(rng)[0] for _ in range(500)]
        assert draws.count("a") / 500 == pytest.approx(0.8, abs=0.05)
