"""Unit tests for compute accounting, scaling fits, grokking, and ICL."""

import numpy as np
import pytest

from repro.core import TransformerConfig, TransformerLM
from repro.phenomenology import (
    GrokkingResult,
    attention_flops,
    compute_optimal_tokens,
    encode_sequences,
    fit_joint_ansatz,
    fit_power_law,
    gradient_descent_profile,
    inference_flops,
    make_icl_batch,
    modular_addition_dataset,
    ols_profile,
    ridge_profile,
    sample_tasks,
    training_flops,
    transformer_param_estimate,
    zero_profile,
)


class TestCompute:
    def test_training_flops_6pd(self):
        assert training_flops(100, 1000) == 6e5
        assert inference_flops(100, 1000) == 2e5

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            training_flops(-1, 10)

    def test_param_estimate_within_factor_two(self):
        cfg = TransformerConfig(vocab_size=64, max_seq_len=32, d_model=48,
                                num_heads=4, num_layers=3)
        actual = TransformerLM(cfg, rng=0).num_parameters()
        estimate = transformer_param_estimate(cfg)
        assert 0.5 < estimate / actual < 2.0

    def test_attention_flops_quadratic_in_l(self):
        assert attention_flops(64, 32, 2) == 4 * attention_flops(32, 32, 2)

    def test_compute_optimal_tokens(self):
        assert compute_optimal_tokens(6e6, 100) == pytest.approx(1e4)
        with pytest.raises(ValueError):
            compute_optimal_tokens(1e6, 0)


class TestPowerLawFit:
    def test_recovers_exact_power_law(self):
        x = np.array([1e2, 1e3, 1e4, 1e5])
        y = 5.0 * x**-0.3
        fit = fit_power_law(x, y)
        assert fit.exponent == pytest.approx(0.3, abs=1e-9)
        assert fit.coefficient == pytest.approx(5.0, rel=1e-9)
        assert fit.r_squared == pytest.approx(1.0)

    def test_predict(self):
        fit = fit_power_law([10, 100, 1000], 2.0 * np.array([10, 100, 1000.0])**-0.5)
        assert fit.predict(np.array([10.0]))[0] == pytest.approx(2.0 * 10**-0.5)

    def test_floor_variant_recovers_floor(self):
        x = np.logspace(2, 6, 12)
        y = 1.5 + 40.0 * x**-0.4
        fit = fit_power_law(x, y, fit_floor=True)
        assert fit.floor == pytest.approx(1.5, abs=0.1)
        assert fit.exponent == pytest.approx(0.4, abs=0.05)

    def test_noisy_fit_r_squared_below_one(self):
        rng = np.random.default_rng(0)
        x = np.logspace(1, 4, 20)
        y = 3.0 * x**-0.2 * np.exp(rng.normal(scale=0.05, size=20))
        fit = fit_power_law(x, y)
        assert 0.8 < fit.r_squared < 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            fit_power_law([1.0], [1.0])
        with pytest.raises(ValueError):
            fit_power_law([1.0, -2.0], [1.0, 1.0])


class TestJointFit:
    def test_recovers_eq4_parameters(self):
        alpha_p, alpha_d, p_c, d_c = 0.35, 0.3, 1e4, 5e4
        p_grid = np.array([1e3, 1e4, 1e5, 1e3, 1e4, 1e5, 1e3, 1e4, 1e5])
        d_grid = np.array([1e4] * 3 + [1e5] * 3 + [1e6] * 3)
        loss = ((p_c / p_grid) ** (alpha_p / alpha_d) + d_c / d_grid) ** alpha_d
        fit = fit_joint_ansatz(p_grid, d_grid, loss)
        assert fit.r_squared > 0.999
        predicted = fit.predict(p_grid, d_grid)
        assert np.allclose(predicted, loss, rtol=0.02)

    def test_too_few_points_rejected(self):
        with pytest.raises(ValueError):
            fit_joint_ansatz([1e3, 1e4], [1e4, 1e4], [1.0, 0.9])


class TestModularDataset:
    def test_covers_all_pairs(self):
        rng = np.random.default_rng(0)
        xtr, ytr, xte, yte = modular_addition_dataset(7, 0.5, rng)
        assert len(xtr) + len(xte) == 49
        assert xtr.shape[1] == 14

    def test_labels_correct(self):
        rng = np.random.default_rng(0)
        xtr, ytr, _, _ = modular_addition_dataset(5, 0.8, rng)
        for features, label in zip(xtr, ytr):
            a = int(np.argmax(features[:5]))
            b = int(np.argmax(features[5:]))
            assert label == (a + b) % 5

    def test_validation(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            modular_addition_dataset(2, 0.5, rng)
        with pytest.raises(ValueError):
            modular_addition_dataset(7, 1.0, rng)


class TestGrokkingResult:
    def test_step_reaching_and_gap(self):
        r = GrokkingResult(
            eval_steps=[0, 100, 200, 300],
            train_acc=[0.5, 1.0, 1.0, 1.0],
            test_acc=[0.1, 0.1, 0.1, 0.95],
        )
        assert r.step_reaching(r.train_acc, 0.99) == 100
        assert r.step_reaching(r.test_acc, 0.9) == 300
        assert r.grok_gap() == 200

    def test_gap_none_when_never_reached(self):
        r = GrokkingResult(eval_steps=[0], train_acc=[0.1], test_acc=[0.1])
        assert r.grok_gap() is None


class TestICLEncoding:
    def test_token_layout(self):
        xs = np.ones((2, 3, 4))
        ys = np.full((2, 3), 7.0)
        tokens = encode_sequences(xs, ys)
        assert tokens.shape == (2, 6, 5)
        assert np.allclose(tokens[:, 0::2, :4], 1.0)  # x tokens carry x
        assert np.allclose(tokens[:, 0::2, 4], 0.0)
        assert np.allclose(tokens[:, 1::2, 4], 7.0)  # y tokens carry y
        assert np.allclose(tokens[:, 1::2, :4], 0.0)

    def test_sample_tasks_linear(self):
        rng = np.random.default_rng(0)
        xs, ys, w = sample_tasks(rng, batch=4, num_points=5, dim=3)
        assert np.allclose(ys, np.einsum("bkd,bd->bk", xs, w))

    def test_noise_added(self):
        rng = np.random.default_rng(0)
        xs, ys, w = sample_tasks(rng, 4, 5, 3, noise_std=0.5)
        assert not np.allclose(ys, np.einsum("bkd,bd->bk", xs, w))


class TestBaselineProfiles:
    @pytest.fixture(scope="class")
    def batch(self):
        return make_icl_batch(np.random.default_rng(0), 128, 8, 3)

    def test_zero_profile_is_task_variance(self, batch):
        profile = zero_profile(batch.xs, batch.ys)
        # E[y^2] = dim for w, x ~ N(0, I); y^2 is heavy-tailed, so the
        # empirical mean over 128 tasks wanders — check the average.
        assert profile.mean() == pytest.approx(3.0, abs=0.5)
        assert (profile > 1.0).all()

    def test_ols_exact_after_dim_points(self, batch):
        profile = ols_profile(batch.xs, batch.ys)
        assert np.allclose(profile[3:], 0.0, atol=1e-12)
        assert profile[0] > 1.0

    def test_ridge_decreasing_and_near_ols(self, batch):
        profile = ridge_profile(batch.xs, batch.ys, lam=0.1)
        assert profile[-1] < 0.1
        assert profile[0] > profile[-1]

    def test_gd_improves_with_more_steps(self, batch):
        few = gradient_descent_profile(batch.xs, batch.ys, steps=1, lr=0.1)
        many = gradient_descent_profile(batch.xs, batch.ys, steps=50, lr=0.1)
        assert many[-1] < few[-1]

    def test_all_profiles_beat_nothing_with_context(self, batch):
        zero = zero_profile(batch.xs, batch.ys)
        for profile in (ols_profile(batch.xs, batch.ys),
                        ridge_profile(batch.xs, batch.ys),
                        gradient_descent_profile(batch.xs, batch.ys)):
            assert profile[-1] < zero[-1]


class TestComputeEstimators:
    """PR 2: edge cases for the FLOP / parameter-count rules of thumb."""

    def test_inference_flops_negative_rejected(self):
        with pytest.raises(ValueError):
            inference_flops(10, -1)
        with pytest.raises(ValueError):
            inference_flops(-10, 1)

    def test_param_estimate_blocks_only(self):
        cfg = TransformerConfig(vocab_size=64, max_seq_len=32, d_model=48,
                                num_heads=4, num_layers=3)
        assert (transformer_param_estimate(cfg, include_embeddings=False)
                == 12 * 3 * 48**2)

    def test_param_estimate_positional_variants(self):
        kwargs = dict(vocab_size=64, max_seq_len=32, d_model=48,
                      num_heads=4, num_layers=3)
        learned = TransformerConfig(positional="learned", **kwargs)
        sinusoidal = TransformerConfig(positional="sinusoidal", **kwargs)
        diff = (transformer_param_estimate(learned)
                - transformer_param_estimate(sinusoidal))
        assert diff == 32 * 48  # only the learned position table differs

    def test_compute_optimal_tokens_inverts_training_flops(self):
        assert compute_optimal_tokens(training_flops(100, 1000), 100) == 1000.0
        with pytest.raises(ValueError):
            compute_optimal_tokens(1e6, 0)

    def test_attention_flops_scaling(self):
        base = attention_flops(64, 32, 2)
        assert attention_flops(128, 32, 2) == 4 * base   # quadratic in L
        assert attention_flops(64, 32, 4) == 2 * base    # linear in depth
        assert attention_flops(64, 64, 2) == 2 * base    # linear in width
