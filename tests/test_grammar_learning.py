"""Tests for Inside-Outside EM and the synthetic treebank."""

import math

import numpy as np
import pytest

from repro.grammar import (
    PCFG,
    Tree,
    english_toy_pcfg,
    expected_rule_counts,
    inside_outside_em,
    random_restart_grammar,
    sample_treebank,
    to_cnf,
    tree_distance_matrix,
    treebank_text,
)


@pytest.fixture(scope="module")
def english_cnf():
    return to_cnf(english_toy_pcfg())


@pytest.fixture(scope="module")
def sentences():
    rng = np.random.default_rng(0)
    grammar = english_toy_pcfg()
    return [grammar.sample_sentence(rng, max_depth=25) for _ in range(30)]


class TestExpectedCounts:
    def test_unparseable_sentence_returns_neg_inf(self, english_cnf):
        counts, ll = expected_rule_counts(english_cnf, ["zzz"])
        assert counts == {} and ll == -math.inf

    def test_counts_sum_to_tree_size_for_unambiguous(self):
        # Unambiguous grammar: every expected count is exactly its usage.
        g = to_cnf(PCFG.from_text("S -> A B [1.0]\nA -> a [1.0]\nB -> b [1.0]"))
        counts, ll = expected_rule_counts(g, ["a", "b"])
        assert ll == pytest.approx(0.0)
        assert sum(counts.values()) == pytest.approx(3.0)  # S->AB, A->a, B->b
        for value in counts.values():
            assert value == pytest.approx(1.0)

    def test_counts_fractional_under_ambiguity(self):
        from repro.grammar import Rule

        g = PCFG(
            {
                Rule("S", ("A", "A")): 0.5,
                Rule("S", ("B", "A")): 0.5,
                Rule("A", ("a",)): 1.0,
                Rule("B", ("a",)): 1.0,
            },
            "S",
        )
        counts, _ll = expected_rule_counts(g, ["a", "a"])
        assert counts[Rule("S", ("A", "A"))] == pytest.approx(0.5)
        assert counts[Rule("B", ("a",))] == pytest.approx(0.5)
        assert counts[Rule("A", ("a",))] == pytest.approx(1.5)


class TestInsideOutsideEM:
    def test_log_likelihood_monotone(self, english_cnf, sentences):
        rng = np.random.default_rng(1)
        start = random_restart_grammar(english_cnf, rng)
        result = inside_outside_em(start, sentences, iterations=6)
        lls = result.log_likelihoods
        assert len(lls) == 6
        for earlier, later in zip(lls, lls[1:]):
            assert later >= earlier - 1e-6

    def test_em_improves_towards_generator(self, english_cnf, sentences):
        rng = np.random.default_rng(2)
        start = random_restart_grammar(english_cnf, rng)
        result = inside_outside_em(start, sentences, iterations=8)
        before = english_cnf.kl_divergence_from(start)
        after = english_cnf.kl_divergence_from(result.grammar)
        assert after < before

    def test_requires_cnf(self, sentences):
        with pytest.raises(ValueError):
            inside_outside_em(english_toy_pcfg(), sentences)

    def test_requires_parseable_corpus(self, english_cnf):
        with pytest.raises(ValueError):
            inside_outside_em(english_cnf, [["zzz", "qqq"]])

    def test_iterations_validated(self, english_cnf, sentences):
        with pytest.raises(ValueError):
            inside_outside_em(english_cnf, sentences, iterations=0)

    def test_random_restart_same_support(self, english_cnf):
        rng = np.random.default_rng(0)
        restart = random_restart_grammar(english_cnf, rng)
        assert set(restart.probs) == set(english_cnf.probs)
        by_lhs = {}
        for rule, p in restart.probs.items():
            by_lhs[rule.lhs] = by_lhs.get(rule.lhs, 0.0) + p
        for total in by_lhs.values():
            assert total == pytest.approx(1.0)


class TestTreeDistances:
    def test_two_leaf_tree(self):
        t = Tree("S", [Tree("a"), Tree("b")])
        d = tree_distance_matrix(t)
        assert d[0, 1] == 2.0  # a -> S -> b

    def test_deeper_tree(self):
        t = Tree("S", [Tree("NP", [Tree("the"), Tree("cat")]), Tree("sat")])
        d = tree_distance_matrix(t)
        assert d[0, 1] == 2.0  # the <-> cat via NP
        assert d[0, 2] == 3.0  # the -> NP -> S -> sat

    def test_metric_properties(self):
        rng = np.random.default_rng(0)
        examples = sample_treebank(english_toy_pcfg(), 5, rng, min_len=4, max_len=10)
        for ex in examples:
            d = ex.distances
            n = d.shape[0]
            assert np.array_equal(d, d.T)
            assert (np.diag(d) == 0).all()
            assert (d[~np.eye(n, dtype=bool)] >= 2).all()
            # triangle inequality
            for i in range(n):
                for j in range(n):
                    assert (d[i, :] + d[:, j] >= d[i, j] - 1e-9).all()


class TestTreebank:
    def test_length_band_respected(self):
        rng = np.random.default_rng(0)
        examples = sample_treebank(english_toy_pcfg(), 10, rng,
                                   min_len=4, max_len=8)
        assert all(4 <= len(ex.tokens) <= 8 for ex in examples)

    def test_tokens_match_tree_leaves(self):
        rng = np.random.default_rng(0)
        for ex in sample_treebank(english_toy_pcfg(), 5, rng):
            assert ex.tokens == ex.tree.leaves()

    def test_impossible_band_raises(self):
        rng = np.random.default_rng(0)
        with pytest.raises(RuntimeError):
            sample_treebank(english_toy_pcfg(), 5, rng, min_len=500,
                            max_len=600, max_attempts_per_example=5)

    def test_treebank_text_format(self):
        rng = np.random.default_rng(0)
        examples = sample_treebank(english_toy_pcfg(), 3, rng)
        text = treebank_text(examples)
        assert text.count(" . ") == 2 and text.endswith(" .")
