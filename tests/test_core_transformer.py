"""Unit + integration tests for the §6 transformer stack."""

import numpy as np
import pytest

from repro.autograd import Tensor, no_grad
from repro.core import (
    LearnedPositional,
    MultiHeadSelfAttention,
    NoPositional,
    SinusoidalPositional,
    TransformerConfig,
    TransformerLM,
    causal_mask,
    sinusoidal_positions,
)
from repro.data import sample_batch
from repro.nn import AdamW


class TestConfig:
    def test_defaults(self):
        cfg = TransformerConfig(vocab_size=10)
        assert cfg.d_ff == 4 * cfg.d_model
        assert cfg.head_dim * cfg.num_heads == cfg.d_model

    def test_validation(self):
        with pytest.raises(ValueError):
            TransformerConfig(vocab_size=10, d_model=10, num_heads=3)
        with pytest.raises(ValueError):
            TransformerConfig(vocab_size=10, positional="fourier")
        with pytest.raises(ValueError):
            TransformerConfig(vocab_size=0)

    def test_roundtrip_dict(self):
        cfg = TransformerConfig(vocab_size=11, d_model=16, num_heads=4)
        assert TransformerConfig.from_dict(cfg.to_dict()) == cfg

    def test_param_estimate_tracks_actual(self):
        cfg = TransformerConfig(vocab_size=50, max_seq_len=32, d_model=32,
                                num_heads=4, num_layers=2)
        model = TransformerLM(cfg, rng=0)
        estimate = cfg.approx_num_parameters()
        actual = model.num_parameters()
        assert 0.5 < estimate / actual < 2.0


class TestPositional:
    def test_sinusoidal_table_matches_eq15(self):
        table = sinusoidal_positions(10, 8)
        # pair (cos, sin) layout, position 0 -> cos=1, sin=0
        assert np.allclose(table[0, 0::2], 1.0)
        assert np.allclose(table[0, 1::2], 0.0)
        # unit norm per (cos, sin) pair
        pairs = table[:, 0::2] ** 2 + table[:, 1::2] ** 2
        assert np.allclose(pairs, 1.0)

    def test_sinusoidal_positions_distinct(self):
        table = sinusoidal_positions(20, 16)
        gram = table @ table.T
        off_diag = gram - np.diag(np.diag(gram))
        assert off_diag.max() < gram[0, 0]  # no two positions identical

    def test_odd_dim_rejected(self):
        with pytest.raises(ValueError):
            sinusoidal_positions(10, 7)

    def test_module_adds_table(self):
        pos = SinusoidalPositional(8, 4)
        x = Tensor(np.zeros((2, 5, 4)))
        out = pos(x)
        assert np.allclose(out.data[0], sinusoidal_positions(8, 4)[:5])

    def test_length_overflow_raises(self):
        pos = SinusoidalPositional(4, 4)
        with pytest.raises(ValueError):
            pos(Tensor(np.zeros((1, 5, 4))))
        lp = LearnedPositional(4, 4, np.random.default_rng(0))
        with pytest.raises(ValueError):
            lp(Tensor(np.zeros((1, 5, 4))))

    def test_no_positional_is_identity(self):
        x = Tensor(np.ones((1, 3, 4)))
        assert np.array_equal(NoPositional()(x).data, x.data)


class TestAttention:
    def test_causal_mask_shape_and_values(self):
        mask = causal_mask(4)
        assert mask.shape == (1, 1, 4, 4)
        assert mask[0, 0, 0, 1] < -1e8
        assert mask[0, 0, 3, 0] == 0.0

    def test_output_shape(self):
        attn = MultiHeadSelfAttention(8, 2, np.random.default_rng(0))
        out = attn(Tensor(np.random.default_rng(1).normal(size=(2, 5, 8))))
        assert out.shape == (2, 5, 8)

    def test_causality_future_tokens_do_not_affect_past(self):
        """Changing input at position t must not change outputs before t."""
        rng = np.random.default_rng(0)
        attn = MultiHeadSelfAttention(8, 2, rng)
        attn.eval()
        x = rng.normal(size=(1, 6, 8))
        base = attn(Tensor(x)).data.copy()
        x2 = x.copy()
        x2[0, 4, :] += 10.0
        out = attn(Tensor(x2)).data
        assert np.allclose(out[0, :4], base[0, :4])
        assert not np.allclose(out[0, 4:], base[0, 4:])

    def test_attention_weights_rows_sum_to_one_and_causal(self):
        attn = MultiHeadSelfAttention(8, 2, np.random.default_rng(0))
        cache = {}
        attn(Tensor(np.random.default_rng(1).normal(size=(1, 5, 8))),
             cache=cache, cache_key="a")
        w = cache["a.weights"]
        assert w.shape == (1, 2, 5, 5)
        assert np.allclose(w.sum(axis=-1), 1.0)
        assert np.allclose(np.triu(w[0, 0], k=1), 0.0)

    def test_invalid_heads_rejected(self):
        with pytest.raises(ValueError):
            MultiHeadSelfAttention(8, 3, np.random.default_rng(0))

    def test_non_causal_mode_attends_forward(self):
        attn = MultiHeadSelfAttention(8, 2, np.random.default_rng(0), causal=False)
        cache = {}
        attn(Tensor(np.random.default_rng(1).normal(size=(1, 4, 8))),
             cache=cache, cache_key="a")
        assert np.triu(cache["a.weights"][0, 0], k=1).sum() > 0


class TestTransformerLM:
    def test_logits_shape(self, tiny_transformer):
        logits = tiny_transformer.forward(np.zeros((3, 10), dtype=int))
        assert logits.shape == (3, 10, 8)

    def test_1d_input_promoted(self, tiny_transformer):
        logits = tiny_transformer.forward(np.zeros(6, dtype=int))
        assert logits.shape == (1, 6, 8)

    def test_window_overflow_raises(self, tiny_transformer):
        with pytest.raises(ValueError):
            tiny_transformer.forward(np.zeros((1, 17), dtype=int))

    def test_bad_ndim_raises(self, tiny_transformer):
        with pytest.raises(ValueError):
            tiny_transformer.forward(np.zeros((1, 2, 3), dtype=int))

    def test_whole_model_causality(self, tiny_transformer):
        x = np.array([[1, 2, 3, 4, 5, 6]])
        with no_grad():
            base = tiny_transformer.forward(x).data.copy()
            x2 = x.copy()
            x2[0, 3] = 7
            out = tiny_transformer.forward(x2).data
        assert np.allclose(out[0, :3], base[0, :3], atol=1e-10)
        assert not np.allclose(out[0, 3:], base[0, 3:])

    def test_cache_contains_all_layers(self, tiny_transformer):
        cache = {}
        tiny_transformer.forward(np.zeros((1, 5), dtype=int), cache=cache)
        assert "embed" in cache and "final" in cache
        for i in range(2):
            assert f"block{i}.out" in cache
            assert f"block{i}.weights" in cache
        assert cache["block0.out"].shape == (1, 5, 16)

    def test_loss_decreases_when_overfitting(self, tiny_transformer):
        data = np.array([1, 2, 3, 4, 5, 6, 7] * 30)
        rng = np.random.default_rng(0)
        opt = AdamW(tiny_transformer.parameters(), lr=3e-3)
        first = None
        for step in range(120):
            x, y = sample_batch(data, 8, 7, rng)
            tiny_transformer.zero_grad()
            loss = tiny_transformer.loss(x, y)
            loss.backward()
            opt.step()
            if first is None:
                first = float(loss.data)
        assert float(loss.data) < 0.2 < first

    def test_greedy_generation_continues_pattern(self, tiny_transformer):
        data = np.array([1, 2, 3, 4, 5, 6, 7] * 30)
        rng = np.random.default_rng(0)
        opt = AdamW(tiny_transformer.parameters(), lr=3e-3)
        for _ in range(150):
            x, y = sample_batch(data, 8, 7, rng)
            tiny_transformer.zero_grad()
            tiny_transformer.loss(x, y).backward()
            opt.step()
        out = tiny_transformer.generate([1, 2, 3], 4, greedy=True)
        assert out == [1, 2, 3, 4, 5, 6, 7]

    def test_next_token_logprobs_normalised(self, tiny_transformer):
        lp = tiny_transformer.next_token_logprobs(np.array([1, 2, 3]))
        assert np.isclose(np.exp(lp).sum(), 1.0)

    def test_next_token_logprobs_truncates_long_context(self, tiny_transformer):
        long_ctx = np.ones(100, dtype=int)
        lp = tiny_transformer.next_token_logprobs(long_ctx)
        assert np.isfinite(lp).all()

    def test_cross_entropy_on_matches_loss_scale(self, tiny_transformer, tiny_stream):
        ce = tiny_transformer.cross_entropy_on(tiny_stream[:200], seq_len=16)
        assert 0 < ce < np.log(8) + 1.0  # near-uniform untrained model

    def test_perplexity_on(self, tiny_transformer, tiny_stream):
        ppl = tiny_transformer.perplexity_on(tiny_stream[:200], seq_len=16)
        assert 1.0 < ppl < 20.0

    def test_eval_mode_restored_after_scoring(self, tiny_transformer, tiny_stream):
        tiny_transformer.train()
        tiny_transformer.cross_entropy_on(tiny_stream[:100], seq_len=16)
        assert tiny_transformer.training

    def test_sinusoidal_variant_runs(self):
        cfg = TransformerConfig(vocab_size=8, max_seq_len=16, d_model=16,
                                num_heads=2, num_layers=1,
                                positional="sinusoidal")
        model = TransformerLM(cfg, rng=0)
        assert model.forward(np.zeros((1, 8), dtype=int)).shape == (1, 8, 8)

    def test_permutation_invariance_without_positions(self):
        """§6: attention alone is permutation-invariant on the context set.

        For a single layer with no positional encoding, the final
        position's logits see only the *multiset* of context embeddings,
        so permuting the context cannot change them.  (Deeper stacks break
        this only via the causal mask's prefix structure.)"""
        cfg = TransformerConfig(vocab_size=8, max_seq_len=16, d_model=16,
                                num_heads=2, num_layers=1, positional="none")
        model = TransformerLM(cfg, rng=0)
        x1 = np.array([[3, 1, 4, 1, 5, 2]])
        x2 = np.array([[1, 4, 3, 5, 1, 2]])  # same multiset, same last token
        with no_grad():
            a = model.forward(x1).data[0, -1]
            b = model.forward(x2).data[0, -1]
        assert np.allclose(a, b, atol=1e-8)

    def test_learned_positions_break_permutation_invariance(self):
        cfg = TransformerConfig(vocab_size=8, max_seq_len=16, d_model=16,
                                num_heads=2, num_layers=2, positional="learned")
        model = TransformerLM(cfg, rng=0)
        x1 = np.array([[3, 1, 4, 1, 5, 2]])
        x2 = np.array([[1, 4, 3, 5, 1, 2]])
        with no_grad():
            a = model.forward(x1).data[0, -1]
            b = model.forward(x2).data[0, -1]
        assert not np.allclose(a, b)

    def test_post_ln_ablation_runs(self):
        cfg = TransformerConfig(vocab_size=8, max_seq_len=8, d_model=16,
                                num_heads=2, num_layers=1, pre_layernorm=False)
        model = TransformerLM(cfg, rng=0)
        assert np.isfinite(model.forward(np.zeros((1, 4), dtype=int)).data).all()

    def test_no_residual_ablation_runs(self):
        cfg = TransformerConfig(vocab_size=8, max_seq_len=8, d_model=16,
                                num_heads=2, num_layers=1, use_residual=False)
        model = TransformerLM(cfg, rng=0)
        assert np.isfinite(model.forward(np.zeros((1, 4), dtype=int)).data).all()

    def test_gradcheck_full_model(self):
        """End-to-end finite-difference check on a micro transformer."""
        cfg = TransformerConfig(vocab_size=5, max_seq_len=4, d_model=8,
                                num_heads=2, num_layers=1, d_ff=8)
        model = TransformerLM(cfg, rng=0)
        rng = np.random.default_rng(3)
        x = rng.integers(0, 5, size=(2, 4))
        y = rng.integers(0, 5, size=(2, 4))
        loss = model.loss(x, y)
        loss.backward()
        p = model.blocks[0].ffn.fc_in.weight
        eps = 1e-6
        for idx in [(0, 0), (3, 5), (7, 2)]:
            orig = p.data[idx]
            p.data[idx] = orig + eps
            hi = float(model.loss(x, y).data)
            p.data[idx] = orig - eps
            lo = float(model.loss(x, y).data)
            p.data[idx] = orig
            assert (hi - lo) / (2 * eps) == pytest.approx(p.grad[idx], abs=1e-5)
