"""Unit tests for the Tensor primitives and the backward pass."""

import numpy as np
import pytest

from repro.autograd import (
    Tensor,
    as_tensor,
    check_gradients,
    concatenate,
    is_grad_enabled,
    no_grad,
    stack,
    where,
)


def _t(shape, seed=0, requires_grad=True):
    rng = np.random.default_rng(seed)
    return Tensor(rng.normal(size=shape), requires_grad=requires_grad)


class TestConstruction:
    def test_from_list(self):
        t = Tensor([1.0, 2.0, 3.0])
        assert t.shape == (3,)
        assert t.data.dtype == np.float64

    def test_from_tensor_copies_reference(self):
        a = Tensor([1.0, 2.0])
        b = Tensor(a)
        assert np.array_equal(a.data, b.data)

    def test_scalar_item(self):
        assert Tensor(3.5).item() == 3.5

    def test_len_and_size(self):
        t = Tensor(np.zeros((4, 5)))
        assert len(t) == 4
        assert t.size == 20
        assert t.ndim == 2

    def test_repr_mentions_grad_flag(self):
        assert "requires_grad=True" in repr(Tensor([1.0], requires_grad=True))
        assert "requires_grad" not in repr(Tensor([1.0]))

    def test_detach_cuts_graph(self):
        a = _t((3,))
        b = (a * 2).detach()
        assert not b.requires_grad
        assert b._parents == ()


class TestBackwardMechanics:
    def test_scalar_backward_seeds_one(self):
        a = Tensor(2.0, requires_grad=True)
        (a * a).backward()
        assert a.grad == pytest.approx(4.0)

    def test_backward_requires_scalar_without_seed(self):
        a = _t((3,))
        with pytest.raises(RuntimeError):
            (a * 2).backward()

    def test_backward_on_non_grad_tensor_raises(self):
        with pytest.raises(RuntimeError):
            Tensor([1.0]).backward()

    def test_seed_shape_mismatch_raises(self):
        a = _t((3,))
        out = a * 2
        with pytest.raises(ValueError):
            out.backward(np.ones(4))

    def test_grad_accumulates_across_backward_calls(self):
        a = Tensor(1.0, requires_grad=True)
        (a * 3).backward()
        (a * 3).backward()
        assert a.grad == pytest.approx(6.0)

    def test_zero_grad(self):
        a = Tensor(1.0, requires_grad=True)
        (a * 3).backward()
        a.zero_grad()
        assert a.grad is None

    def test_diamond_graph_accumulates_once_per_path(self):
        # f = (a + a) * a => df/da = 4a
        a = Tensor(3.0, requires_grad=True)
        ((a + a) * a).backward()
        assert a.grad == pytest.approx(12.0)

    def test_reused_node_deep_graph(self):
        a = Tensor(2.0, requires_grad=True)
        b = a * a         # 4
        c = b + b         # 8, uses b twice
        (c * a).backward()  # f = 2a^3, f' = 6a^2 = 24
        assert a.grad == pytest.approx(24.0)


class TestNoGrad:
    def test_no_grad_disables_recording(self):
        a = _t((3,))
        with no_grad():
            assert not is_grad_enabled()
            out = a * 2
        assert not out.requires_grad
        assert is_grad_enabled()

    def test_no_grad_restores_on_exception(self):
        try:
            with no_grad():
                raise RuntimeError("boom")
        except RuntimeError:
            pass
        assert is_grad_enabled()

    def test_tensor_created_under_no_grad_is_constant(self):
        with no_grad():
            t = Tensor([1.0], requires_grad=True)
        assert not t.requires_grad


class TestArithmeticGradients:
    def test_add_broadcast(self):
        a, b = _t((3, 4)), _t((4,), seed=1)
        check_gradients(lambda a, b: (a + b).square().sum(), [a, b])

    def test_scalar_broadcast(self):
        a = _t((2, 3))
        check_gradients(lambda a: (a + 5.0).square().sum(), [a])
        check_gradients(lambda a: (5.0 - a).square().sum(), [a])

    def test_mul_div(self):
        a, b = _t((3, 4)), _t((3, 4), seed=1)
        b.data += 3.0  # keep denominators away from zero
        check_gradients(lambda a, b: (a * b).sum(), [a, b])
        check_gradients(lambda a, b: (a / b).sum(), [a, b])

    def test_rdiv(self):
        a = _t((4,))
        a.data += 3.0
        check_gradients(lambda a: (1.0 / a).sum(), [a])

    def test_pow(self):
        a = _t((3,))
        a.data = np.abs(a.data) + 0.5
        check_gradients(lambda a: (a**3).sum(), [a])
        check_gradients(lambda a: (a**0.5).sum(), [a], atol=1e-5)

    def test_pow_tensor_exponent_rejected(self):
        a = _t((3,))
        with pytest.raises(TypeError):
            a ** Tensor(2.0)

    def test_matmul_2d(self):
        a, b = _t((3, 4)), _t((4, 5), seed=1)
        check_gradients(lambda a, b: (a @ b).sum(), [a, b])

    def test_matmul_batched_broadcast(self):
        a, b = _t((2, 3, 4)), _t((4, 5), seed=1)
        check_gradients(lambda a, b: (a @ b).tanh().sum(), [a, b])

    def test_matmul_requires_2d(self):
        with pytest.raises(ValueError):
            _t((3,)) @ _t((3,), seed=1)

    def test_neg_sub(self):
        a, b = _t((3,)), _t((3,), seed=1)
        check_gradients(lambda a, b: (-a - b).square().sum(), [a, b])


class TestElementwiseGradients:
    def test_exp_log(self):
        a = _t((4,))
        check_gradients(lambda a: a.exp().sum(), [a])
        b = _t((4,), seed=2)
        b.data = np.abs(b.data) + 0.5
        check_gradients(lambda b: b.log().sum(), [b])

    def test_tanh_sigmoid(self):
        a = _t((3, 3))
        check_gradients(lambda a: a.tanh().sum(), [a])
        check_gradients(lambda a: a.sigmoid().sum(), [a])

    def test_relu_subgradient_at_masked_region(self):
        a = Tensor(np.array([-1.0, 2.0, -0.5, 3.0]), requires_grad=True)
        a.relu().sum().backward()
        assert np.array_equal(a.grad, [0.0, 1.0, 0.0, 1.0])

    def test_abs(self):
        a = Tensor(np.array([-2.0, 3.0]), requires_grad=True)
        a.abs().sum().backward()
        assert np.array_equal(a.grad, [-1.0, 1.0])

    def test_square_sqrt(self):
        a = _t((4,))
        a.data = np.abs(a.data) + 0.5
        check_gradients(lambda a: a.square().sum(), [a])
        check_gradients(lambda a: a.sqrt().sum(), [a], atol=1e-5)


class TestReductions:
    def test_sum_axis_keepdims(self):
        a = _t((3, 4, 5))
        check_gradients(lambda a: a.sum(axis=1).square().sum(), [a])
        check_gradients(lambda a: a.sum(axis=(0, 2), keepdims=True).square().sum(), [a])

    def test_mean(self):
        a = _t((3, 4))
        check_gradients(lambda a: a.mean().square().sum(), [a])
        check_gradients(lambda a: a.mean(axis=0).square().sum(), [a])

    def test_max_gradient_routes_to_argmax(self):
        a = Tensor(np.array([[1.0, 5.0], [7.0, 2.0]]), requires_grad=True)
        a.max(axis=1).sum().backward()
        assert np.array_equal(a.grad, [[0.0, 1.0], [1.0, 0.0]])

    def test_max_ties_split_gradient(self):
        a = Tensor(np.array([3.0, 3.0]), requires_grad=True)
        a.max().backward()
        assert np.allclose(a.grad, [0.5, 0.5])


class TestShapeOps:
    def test_reshape(self):
        a = _t((2, 6))
        check_gradients(lambda a: a.reshape(3, 4).square().sum(), [a])
        check_gradients(lambda a: a.reshape((4, 3)).square().sum(), [a])

    def test_transpose_and_default(self):
        a = _t((2, 3, 4))
        check_gradients(lambda a: a.transpose(2, 0, 1).square().sum(), [a])
        check_gradients(lambda a: a.transpose().square().sum(), [a])

    def test_swapaxes(self):
        a = _t((2, 3, 4))
        check_gradients(lambda a: a.swapaxes(0, 2).square().sum(), [a])

    def test_getitem_slices(self):
        a = _t((5, 6))
        check_gradients(lambda a: a[1:4, ::2].square().sum(), [a])

    def test_getitem_integer_array_with_duplicates(self):
        a = _t((5, 3))
        idx = np.array([0, 2, 2, 4])
        check_gradients(lambda a: a[idx].square().sum(), [a])

    def test_pad_last(self):
        a = _t((2, 3))
        check_gradients(lambda a: a.pad_last(1, 2).square().sum(), [a])
        out = a.pad_last(1, 2)
        assert out.shape == (2, 6)


class TestCombinators:
    def test_concatenate(self):
        a, b = _t((2, 3)), _t((4, 3), seed=1)
        check_gradients(lambda a, b: concatenate([a, b], axis=0).square().sum(), [a, b])

    def test_stack(self):
        a, b = _t((2, 3)), _t((2, 3), seed=1)
        check_gradients(lambda a, b: stack([a, b], axis=1).square().sum(), [a, b])
        assert stack([a, b], axis=1).shape == (2, 2, 3)

    def test_where(self):
        a, b = _t((4,)), _t((4,), seed=1)
        cond = np.array([True, False, True, False])
        check_gradients(lambda a, b: where(cond, a, b).square().sum(), [a, b])

    def test_as_tensor_passthrough(self):
        t = Tensor([1.0])
        assert as_tensor(t) is t
        assert isinstance(as_tensor([1.0, 2.0]), Tensor)


class TestMaxEdgeCases:
    """ISSUE 5 satellite: ties x keepdims x tuple/list axes coverage."""

    def test_max_ties_keepdims(self):
        a = Tensor(np.array([[2.0, 2.0, 1.0]]), requires_grad=True)
        a.max(axis=1, keepdims=True).sum().backward()
        assert np.allclose(a.grad, [[0.5, 0.5, 0.0]])

    def test_max_tuple_axis(self):
        a = _t((2, 3, 4))
        check_gradients(lambda a: a.max(axis=(0, 2)).square().sum(), [a])
        check_gradients(lambda a: a.max(axis=(1, 2), keepdims=True).square().sum(), [a])

    def test_max_list_axis(self):
        # regression: list-valued axis used to crash the backward with a
        # TypeError inside np.expand_dims
        a = _t((2, 3, 4))
        check_gradients(lambda a: a.max(axis=[0, 1]).square().sum(), [a])

    def test_max_negative_tuple_axis_ties(self):
        data = np.zeros((2, 2, 2))
        data[0, 0, 0] = data[0, 1, 1] = 1.0  # ties across the reduced axes
        a = Tensor(data, requires_grad=True)
        a.max(axis=(-2, -1)).sum().backward()
        expected = np.zeros((2, 2, 2))
        expected[0, 0, 0] = expected[0, 1, 1] = 0.5
        expected[1] = 0.25  # four-way tie at 0.0 in the second batch
        assert np.allclose(a.grad, expected)

    def test_max_axis_none_ties(self):
        a = Tensor(np.array([[4.0, 4.0], [4.0, 1.0]]), requires_grad=True)
        a.max().backward()
        assert np.allclose(a.grad, [[1 / 3, 1 / 3], [1 / 3, 0.0]])

    def test_sum_list_axis(self):
        a = _t((2, 3, 4))
        check_gradients(lambda a: a.sum(axis=[0, 2]).square().sum(), [a])


class TestGetitemFastPath:
    """ISSUE 5 satellite: basic slices avoid np.add.at in the backward."""

    def test_basic_slice_gradient(self):
        a = _t((4, 6))
        check_gradients(lambda a: a[1:3, ::2].square().sum(), [a])

    def test_negative_step_slice(self):
        a = _t((5,))
        check_gradients(lambda a: a[::-1].square().sum(), [a])

    def test_ellipsis_and_newaxis(self):
        a = _t((3, 4))
        check_gradients(lambda a: a[..., 1:][None].square().sum(), [a])

    def test_scalar_index(self):
        a = _t((3, 4))
        check_gradients(lambda a: a[1].square().sum(), [a])

    def test_same_slice_twice_accumulates(self):
        # two graph uses of one slice: buffer must accumulate, not overwrite
        a = Tensor(np.array([1.0, 2.0, 3.0]), requires_grad=True)
        b = a[0:2]
        (b.sum() + (b * 2.0).sum()).backward()
        assert np.allclose(a.grad, [3.0, 3.0, 0.0])

    def test_boolean_mask_still_correct(self):
        a = _t((4,))
        m = np.array([True, False, True, True])
        check_gradients(lambda a: a[m].square().sum(), [a])

    def test_integer_array_duplicates_still_scatter(self):
        # fancy indexing with repeats must keep the add.at path
        a = Tensor(np.array([1.0, 2.0]), requires_grad=True)
        a[np.array([0, 0, 1])].sum().backward()
        assert np.allclose(a.grad, [2.0, 1.0])


class TestInPlaceAccumulation:
    """ISSUE 5 tentpole rider: owned-buffer += gradient accumulation."""

    def test_diamond_graph_accumulates(self):
        # b feeds two consumers, so its pending gradient is accumulated
        # in place in the owned buffer before flowing on to a
        def diamond(a):
            b = a.exp()
            return (b * b.tanh()).sum()

        check_gradients(diamond, [_t((3, 3))])

    def test_zero_dim_double_use(self):
        # regression: 0-d intermediates produce immutable np.float64
        # contributions; += on a local must not drop the second one
        x = Tensor(np.array(3.0), requires_grad=True)
        y = x * x
        y.backward()
        assert float(x.grad) == 6.0

    def test_repeated_backward_fresh_buffers(self):
        # owned buffers are per-pass: a second backward on the same graph
        # must not corrupt the first pass's accumulated .grad
        a = _t((2, 2))
        loss = (a.exp() + a.sigmoid()).sum()
        loss.backward()
        first = a.grad.copy()
        loss.backward()
        assert np.allclose(a.grad, 2 * first)

    def test_unowned_view_contribution_not_mutated(self):
        # reshape emits a view of the incoming gradient; sharing a parent
        # with an owned contribution must not clobber the upstream array
        a = _t((2, 3))
        b = a.reshape(3, 2).reshape(2, 3) + a.exp()
        b.sum().backward()
        assert np.allclose(a.grad, 1.0 + np.exp(a.data))

    def test_broadcast_add_gradients(self):
        a = _t((2, 3))
        b = _t((3,), seed=1)
        check_gradients(lambda a, b: (a + b).square().sum(), [a, b])
