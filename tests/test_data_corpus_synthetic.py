"""Unit tests for corpus batching and the synthetic corpora."""

import numpy as np
import pytest

from repro.data import (
    CAPITAL_TRIPLES,
    GENDER_TRIPLES,
    Corpus,
    attribute_world_corpus,
    capital_analogy_questions,
    diversity_corpus,
    gender_analogy_questions,
    iterate_batches,
    math_word_problems,
    render_problem,
    sample_batch,
    sequential_batches,
    solve_left_to_right,
    train_test_split,
)


class TestSplitsAndBatches:
    def test_split_is_contiguous_tail(self):
        ids = np.arange(100)
        train, test = train_test_split(ids, test_fraction=0.2)
        assert len(train) == 80 and len(test) == 20
        assert np.array_equal(test, np.arange(80, 100))

    def test_split_fraction_validation(self):
        with pytest.raises(ValueError):
            train_test_split(np.arange(100), test_fraction=0.0)
        with pytest.raises(ValueError):
            train_test_split(np.arange(4), test_fraction=0.1)

    def test_sample_batch_targets_shifted(self):
        ids = np.arange(50)
        x, y = sample_batch(ids, batch_size=4, seq_len=8,
                            rng=np.random.default_rng(0))
        assert x.shape == y.shape == (4, 8)
        assert np.array_equal(y, x + 1)  # arange stream: next = current + 1

    def test_sample_batch_too_short_raises(self):
        with pytest.raises(ValueError):
            sample_batch(np.arange(5), 1, 10, np.random.default_rng(0))

    def test_iterate_batches_count(self):
        batches = list(iterate_batches(np.arange(100), 2, 5, 7,
                                       np.random.default_rng(0)))
        assert len(batches) == 7

    def test_sequential_batches_cover_stream(self):
        ids = np.arange(33)
        seen = []
        for x, y in sequential_batches(ids, batch_size=2, seq_len=8):
            assert np.array_equal(y, x + 1)
            seen.extend(x.reshape(-1).tolist())
        assert seen == list(range(32))  # 4 windows of 8

    def test_corpus_from_ids(self):
        c = Corpus.from_ids(list(range(100)), vocab_size=100, test_fraction=0.1)
        assert c.num_train_tokens == 90
        sub = c.subset(10)
        assert sub.num_train_tokens == 10
        assert np.array_equal(sub.test_ids, c.test_ids)

    def test_corpus_subset_validation(self):
        c = Corpus.from_ids(list(range(100)), vocab_size=100)
        with pytest.raises(ValueError):
            c.subset(1)


class TestAttributeWorld:
    def test_contains_all_target_words(self):
        rng = np.random.default_rng(0)
        text = attribute_world_corpus(rng, num_sentences=3000)
        for _, male, female in GENDER_TRIPLES:
            assert f" {male} " in text
            assert f" {female} " in text
        for _, country, capital in CAPITAL_TRIPLES:
            assert country in text and capital in text

    def test_question_sets_are_well_formed(self):
        gq = gender_analogy_questions()
        assert len(gq) == len(GENDER_TRIPLES) * (len(GENDER_TRIPLES) - 1)
        assert ("king", "man", "woman", "queen") in gq
        cq = capital_analogy_questions()
        assert ("paris", "france", "italy", "rome") in cq
        for a, b, c, d in gq + cq:
            assert len({a, b, c, d}) == 4


class TestWordProblems:
    def test_solver_left_to_right(self):
        # 3 + 4 = 7; 7 * 2 = 14 -> 4 (mod 10)
        assert solve_left_to_right([3, 4, 2], ["+", "*"]) == [7, 4]

    def test_solver_validates(self):
        with pytest.raises(ValueError):
            solve_left_to_right([1, 2], ["+", "*"])
        with pytest.raises(ValueError):
            solve_left_to_right([1, 2], ["/"])

    def test_direct_rendering(self):
        p = render_problem([3, 4, 2], ["+", "*"], chain_of_thought=False)
        assert p.prompt == "Q3+4*2="
        assert p.completion == "4\n"
        assert p.answer == 4

    def test_cot_rendering_contains_intermediates(self):
        p = render_problem([3, 4, 2], ["+", "*"], chain_of_thought=True)
        assert p.prompt == "Q3+4*2:"
        assert p.completion == "7:=4\n"
        assert p.text == "Q3+4*2:7:=4\n"

    def test_single_op_cot_has_no_chain(self):
        p = render_problem([3, 4], ["+"], chain_of_thought=True)
        assert p.completion == "=7\n"

    def test_generated_answers_match_solver(self):
        rng = np.random.default_rng(1)
        for p in math_word_problems(rng, 50, num_ops=3, chain_of_thought=True):
            expr = p.prompt[1:-1]
            operands = [int(c) for c in expr[::2]]
            ops = list(expr[1::2])
            assert p.answer == solve_left_to_right(operands, ops)[-1]


class TestDiversityCorpus:
    def test_distinct_sentence_budget_respected(self):
        rng = np.random.default_rng(0)
        text = diversity_corpus(rng, num_sentences=200, num_distinct=5)
        sentences = {s.strip(" .") for s in text.split(" . ") if s.strip(" .")}
        assert len(sentences) <= 5

    def test_same_length_regardless_of_diversity(self):
        rng1, rng2 = np.random.default_rng(0), np.random.default_rng(0)
        low = diversity_corpus(rng1, 100, num_distinct=2)
        high = diversity_corpus(rng2, 100, num_distinct=100)
        # token counts should be comparable (same sentence templates)
        assert abs(len(low.split()) - len(high.split())) < len(high.split()) * 0.5

    def test_validation(self):
        with pytest.raises(ValueError):
            diversity_corpus(np.random.default_rng(0), 10, num_distinct=0)
