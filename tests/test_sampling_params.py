"""Per-request SamplingParams: validation, engine equivalence, mixing.

PR 9's API redesign: sampling knobs move from engine-wide constructor
arguments to a per-request :class:`~repro.infer.SamplingParams` value
object.  The contracts tested here:

- construction validates fields and raises the structured
  :class:`~repro.infer.SamplingParamsError` the serving layer turns
  into an HTTP 400;
- an engine defaulted via ``params=`` decodes bit-identically to the
  old engine-wide arguments (which now warn but keep working);
- a batch mixing different per-request params gives each request the
  same tokens it would get decoding alone — per-request ``seed`` makes
  that reproducible regardless of batch composition;
- ``submit(..., params=...)`` overrides the engine default and the
  resolved params ride on the result.
"""

import warnings

import numpy as np
import pytest

from repro.core import TransformerConfig, TransformerLM
from repro.infer import GenerationEngine, SamplingParams, SamplingParamsError


def tiny_model(**kwargs):
    cfg = TransformerConfig(vocab_size=11, max_seq_len=48, d_model=16,
                            num_heads=2, num_layers=2, **kwargs)
    return TransformerLM(cfg, rng=0)


class TestValidation:
    @pytest.mark.parametrize("kwargs", [
        {"temperature": -0.5},
        {"temperature": "hot"},
        {"top_k": 0},
        {"top_k": -3},
        {"top_k": 2.5},
        {"top_k": True},
        {"top_p": 0.0},
        {"top_p": 1.5},
        {"top_p": -0.1},
        {"stop_token": 1.5},
        {"seed": -1},
        {"seed": 3.7},
    ])
    def test_invalid_fields_raise_structured_error(self, kwargs):
        with pytest.raises(SamplingParamsError) as excinfo:
            SamplingParams(**kwargs)
        payload = excinfo.value.params
        assert payload["field"] == next(iter(kwargs))
        assert payload["value"] == kwargs[payload["field"]]
        assert "constraint" in payload

    def test_error_is_a_value_error(self):
        # the engine's submit path catches ValueError for rejection
        with pytest.raises(ValueError):
            SamplingParams(top_p=2.0)

    def test_temperature_zero_normalises_to_greedy(self):
        params = SamplingParams(temperature=0)
        assert params.greedy is True
        assert params.temperature == 1.0
        assert params.sampling_key == SamplingParams(greedy=True).sampling_key

    def test_sampling_key_groups_equivalent_configs(self):
        a = SamplingParams(temperature=1.2, top_k=5)
        b = SamplingParams(temperature=1.2, top_k=5, stop_token=3, seed=9)
        assert a.sampling_key == b.sampling_key   # stop/seed don't split
        assert a.sampling_key != SamplingParams(temperature=1.3).sampling_key

    def test_round_trip_through_dict(self):
        params = SamplingParams(temperature=0.8, top_k=7, top_p=0.9,
                                stop_token=5, seed=11)
        assert SamplingParams.from_dict(params.to_dict()) == params

    def test_from_dict_rejects_unknown_keys(self):
        with pytest.raises(SamplingParamsError) as excinfo:
            SamplingParams.from_dict({"temprature": 1.0})
        assert excinfo.value.params["field"] == "temprature"

    def test_from_dict_rejects_non_dict(self):
        with pytest.raises(SamplingParamsError):
            SamplingParams.from_dict([1.0])


class TestEngineDefaultEquivalence:
    @pytest.mark.parametrize("sampling", [
        {"greedy": True},
        {"temperature": 1.2, "top_k": 7},
        {"temperature": 0.8, "top_p": 0.9},
    ], ids=["greedy", "topk", "topp"])
    def test_params_default_matches_legacy_arguments(self, sampling):
        model = tiny_model()
        with pytest.warns(DeprecationWarning):
            legacy = GenerationEngine(model, batch_size=2,
                                      rng=np.random.default_rng(5),
                                      **sampling)
        modern = GenerationEngine(model, batch_size=2,
                                  rng=np.random.default_rng(5),
                                  params=SamplingParams(**sampling))
        prompts = [[1, 2, 3], [4, 5], [6, 7, 8, 9]]
        assert legacy.generate(prompts, 10) == modern.generate(prompts, 10)

    def test_legacy_arguments_warn(self):
        with pytest.warns(DeprecationWarning, match="deprecated"):
            GenerationEngine(tiny_model(), batch_size=1, temperature=0.9)

    def test_legacy_and_params_together_rejected(self):
        with pytest.raises(ValueError, match="not both"), \
                warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            GenerationEngine(tiny_model(), batch_size=1, greedy=True,
                             params=SamplingParams(greedy=True))

    def test_compat_properties_reflect_default(self):
        engine = GenerationEngine(
            tiny_model(), batch_size=1,
            params=SamplingParams(temperature=0.7, top_k=4, stop_token=2))
        assert engine.temperature == 0.7
        assert engine.top_k == 4
        assert engine.stop_token == 2
        assert engine.greedy is False


class TestPerRequestParams:
    def test_submit_params_override_engine_default(self):
        model = tiny_model()
        engine = GenerationEngine(model, batch_size=1,
                                  rng=np.random.default_rng(3),
                                  params=SamplingParams(temperature=1.3))
        engine.submit([1, 2, 3], 8, params=SamplingParams(greedy=True))
        (result,) = engine.run()
        assert result.tokens == model.generate_fast([1, 2, 3], 8, greedy=True)
        assert result.params.greedy is True

    def test_result_carries_resolved_params(self):
        engine = GenerationEngine(tiny_model(), batch_size=1,
                                  params=SamplingParams(greedy=True))
        engine.submit([1], 3)
        (result,) = engine.run()
        assert result.params == SamplingParams(greedy=True)

    def test_stop_token_kwarg_overrides_params_field(self):
        model = tiny_model()
        engine = GenerationEngine(model, batch_size=1,
                                  params=SamplingParams(greedy=True))
        engine.submit([1], 12, stop_token=5,
                      params=SamplingParams(greedy=True, stop_token=7))
        (result,) = engine.run()
        assert result.params.stop_token == 5
        assert result.tokens == model.generate_fast([1], 12, greedy=True,
                                                    stop_token=5)

    def test_per_request_stop_tokens_in_one_batch(self):
        model = tiny_model()
        engine = GenerationEngine(model, batch_size=3,
                                  params=SamplingParams(greedy=True))
        greedy = SamplingParams(greedy=True)
        engine.submit([1], 12, params=SamplingParams(greedy=True,
                                                     stop_token=5))
        engine.submit([2], 12, params=greedy)
        engine.submit([3], 12, params=SamplingParams(greedy=True,
                                                     stop_token=8))
        results = engine.run()
        assert results[0].tokens == model.generate_fast(
            [1], 12, greedy=True, stop_token=5)
        assert results[1].tokens == model.generate_fast([2], 12, greedy=True)
        assert results[2].tokens == model.generate_fast(
            [3], 12, greedy=True, stop_token=8)

    def test_seeded_request_independent_of_batch_composition(self):
        """A seeded request samples from its private RNG, so its tokens
        must not change when unrelated requests share the batch."""
        model = tiny_model()
        seeded = SamplingParams(temperature=1.1, seed=99)

        alone = GenerationEngine(model, batch_size=1,
                                 rng=np.random.default_rng(0))
        alone.submit([1, 2], 10, params=seeded)
        (solo,) = alone.run()

        crowded = GenerationEngine(model, batch_size=3,
                                   rng=np.random.default_rng(1234))
        other = crowded.submit([3, 4, 5], 10,
                               params=SamplingParams(temperature=0.8))
        mine = crowded.submit([1, 2], 10, params=seeded)
        crowded.submit([6], 10, params=SamplingParams(greedy=True))
        results = {r.request_id: r for r in crowded.run()}
        assert results[mine].tokens == solo.tokens
        assert results[other].finish_reason == "length"

    def test_mixed_params_batch_matches_each_alone(self):
        """Greedy rows are RNG-free, so a mixed batch must give every
        greedy request exactly its solo trajectory while stochastic
        rows draw from their own seeds."""
        model = tiny_model()
        engine = GenerationEngine(model, batch_size=4)
        specs = [
            ([1, 2], SamplingParams(greedy=True)),
            ([3, 4], SamplingParams(temperature=1.2, top_k=6, seed=7)),
            ([5], SamplingParams(greedy=True, stop_token=9)),
            ([6, 7, 8], SamplingParams(temperature=0.9, top_p=0.95,
                                       seed=21)),
        ]
        ids = [engine.submit(p, 9, params=params) for p, params in specs]
        results = {r.request_id: r for r in engine.run()}
        for request_id, (prompt, params) in zip(ids, specs):
            ref_engine = GenerationEngine(model, batch_size=1,
                                          rng=np.random.default_rng(0))
            ref_engine.submit(prompt, 9, params=params)
            (ref,) = ref_engine.run()
            if params.greedy or params.seed is not None:
                assert results[request_id].tokens == ref.tokens, params
            assert results[request_id].params == params

    def test_grouped_sampling_batches_identical_params(self):
        """Rows sharing a sampling_key must produce the same tokens as
        the old engine-wide path — one vectorized draw in slot order."""
        model = tiny_model()
        uniform = GenerationEngine(model, batch_size=3,
                                   rng=np.random.default_rng(8),
                                   params=SamplingParams(temperature=1.1))
        ref = uniform.generate([[1], [2], [3]], 8)

        per_request = GenerationEngine(model, batch_size=3,
                                       rng=np.random.default_rng(8))
        ids = [per_request.submit(p, 8,
                                  params=SamplingParams(temperature=1.1))
               for p in ([1], [2], [3])]
        results = {r.request_id: r for r in per_request.run()}
        assert [results[i].tokens for i in ids] == ref
