"""Unit + property tests for the Othello rules engine and dataset."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.othello import (
    BLACK,
    EMPTY,
    WHITE,
    MoveVocab,
    OthelloBoard,
    generate_dataset,
    legal_move_rate,
    random_game,
    replay,
)


class TestBoard:
    def test_initial_position(self):
        b = OthelloBoard(8)
        assert b.score() == (2, 2)
        assert b.to_move == BLACK
        assert len(b.legal_moves()) == 4

    def test_size_validation(self):
        for bad in (3, 5, 2, 7):
            with pytest.raises(ValueError):
                OthelloBoard(bad)

    def test_opening_move_flips(self):
        b = OthelloBoard(8)
        row, col = b.legal_moves()[0]
        b.play(row, col)
        black, white = b.score()
        assert black == 4 and white == 1  # one disc flipped

    def test_illegal_move_raises(self):
        b = OthelloBoard(8)
        with pytest.raises(ValueError):
            b.play(0, 0)

    def test_occupied_square_illegal(self):
        b = OthelloBoard(8)
        assert not b.is_legal(3, 3)

    def test_turn_alternates(self):
        b = OthelloBoard(8)
        b.play(*b.legal_moves()[0])
        assert b.to_move == WHITE

    def test_copy_is_independent(self):
        b = OthelloBoard(6)
        clone = b.copy()
        clone.play(*clone.legal_moves()[0])
        assert b.score() == (2, 2)

    def test_relative_state_encoding(self):
        b = OthelloBoard(6)
        rel = b.relative_state(BLACK)
        assert (rel == 1).sum() == 2  # black's stones are "mine"
        assert (rel == 2).sum() == 2
        flipped = b.relative_state(WHITE)
        assert np.array_equal((rel == 1), (flipped == 2))

    def test_render(self):
        text = OthelloBoard(6).render()
        assert text.count("X") == 2 and text.count("O") == 2


class TestGameInvariants:
    @settings(max_examples=15, deadline=None)
    @given(st.integers(min_value=0, max_value=10_000))
    def test_random_game_properties(self, seed):
        rng = np.random.default_rng(seed)
        record = random_game(rng, size=6)
        # games fill most of a 6x6 board (32 playable squares)
        assert 10 <= len(record.moves) <= 32
        assert len(record.states) == len(record.moves)
        assert len(record.legal_next) == len(record.moves)
        # stone count grows by exactly one per move
        final = replay(record.moves, size=6)
        assert sum(final.score()) == 4 + len(record.moves)
        assert final.game_over
        # every recorded legal set is non-empty except the last
        for legal in record.legal_next[:-1]:
            assert legal
        assert record.legal_next[-1] == set()

    @settings(max_examples=10, deadline=None)
    @given(st.integers(min_value=0, max_value=10_000))
    def test_recorded_states_match_replay(self, seed):
        rng = np.random.default_rng(seed)
        vocab = MoveVocab(6)
        record = random_game(rng, size=6, vocab=vocab)
        board = OthelloBoard(6)
        for t, token in enumerate(record.moves):
            last_player = board.to_move
            board.play(*vocab.id_to_move(token))
            perspective = board.to_move if not board.game_over else -last_player
            assert np.array_equal(board.relative_state(perspective),
                                  record.states[t])


class TestMoveVocab:
    def test_excludes_centre(self):
        v = MoveVocab(8)
        assert len(v) == 61  # 64 - 4 + BOS
        assert (3, 3) not in v.cells

    def test_roundtrip(self):
        v = MoveVocab(6)
        for token in range(len(v) - 1):
            r, c = v.id_to_move(token)
            assert v.move_to_id(r, c) == token

    def test_bos_not_a_move(self):
        v = MoveVocab(6)
        with pytest.raises(ValueError):
            v.id_to_move(v.bos_id)

    def test_notation(self):
        v = MoveVocab(8)
        token = v.move_to_id(2, 4)
        assert v.notation(token) == "E3"


class TestDataset:
    @pytest.fixture(scope="class")
    def dataset(self):
        return generate_dataset(np.random.default_rng(0), num_games=12, size=6)

    def test_tensor_shapes(self, dataset):
        n, length = dataset.tokens.shape
        assert n == 12
        assert dataset.board_states.shape == (12, length - 1, 36)
        assert dataset.tokens[:, 0].tolist() == [dataset.vocab.bos_id] * 12

    def test_padding_is_bos(self, dataset):
        for i in range(12):
            length = int(dataset.lengths[i])
            padding = dataset.tokens[i, length + 1 :]
            assert (padding == dataset.vocab.bos_id).all()

    def test_lm_batch_shift(self, dataset):
        x, y = dataset.lm_batch(np.array([0, 1]))
        assert np.array_equal(x[:, 1:], y[:, :-1])

    def test_board_states_valid_classes(self, dataset):
        assert set(np.unique(dataset.board_states)) <= {0, 1, 2}

    def test_max_moves_truncation(self):
        ds = generate_dataset(np.random.default_rng(0), num_games=4, size=6,
                              max_moves=10)
        assert ds.tokens.shape[1] == 11

    def test_legal_move_rate_untrained_is_low(self, dataset):
        from repro.core import TransformerConfig, TransformerLM

        cfg = TransformerConfig(vocab_size=len(dataset.vocab),
                                max_seq_len=dataset.seq_len,
                                d_model=16, num_heads=2, num_layers=1)
        model = TransformerLM(cfg, rng=0)
        rate = legal_move_rate(model, dataset, num_games=6)
        # ~8 legal moves of 33 tokens: untrained argmax should be well below 0.8
        assert 0.0 <= rate < 0.8
