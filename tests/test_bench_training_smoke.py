"""Tier-1 wiring for the training-step throughput bench.

Runs ``benchmarks/bench_training_throughput.py --smoke`` as a subprocess
(tiny config, seconds-scale) so a perf regression on the training path —
e.g. losing the fused-attention kernel or the in-place gradient
accumulation — fails the normal test run, not just a manually-invoked
benchmark.  The bench itself also asserts the fused / composed / blocked
loss trajectories agree, so this doubles as an end-to-end equivalence
check under the real Trainer.
"""

import json
import os
import subprocess
import sys

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
BENCH_DIR = os.path.join(REPO, "benchmarks")


def test_training_throughput_smoke(tmp_path):
    out = tmp_path / "BENCH_training.json"
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(REPO, "src") + os.pathsep + \
        env.get("PYTHONPATH", "")
    proc = subprocess.run(
        [sys.executable, "bench_training_throughput.py", "--smoke",
         "--out", str(out)],
        cwd=BENCH_DIR, env=env, capture_output=True, text=True, timeout=600,
    )
    assert proc.returncode == 0, \
        f"smoke bench failed\nstdout:\n{proc.stdout}\nstderr:\n{proc.stderr}"
    # the bench's own gate: fused >= composed tokens/sec (with slack)
    assert "SMOKE OK" in proc.stdout

    record = json.loads(out.read_text())
    assert record["bench"] == "training_throughput"
    assert record["smoke"] is True
    modes = [entry["mode"] for entry in record["modes"]]
    assert modes == ["composed", "fused", "fused_blocked"]
    for entry in record["modes"]:
        assert entry["tokens_per_sec"] > 0
        assert len(entry["losses"]) == record["steps_per_mode"]
    # fused must be bit-exact vs composed — the bench asserts it too, but
    # the record is the artifact regressions get debugged from
    assert record["trajectory_identical"] is True
    assert record["modes"][1]["losses"] == record["modes"][0]["losses"]
    # provenance stamp present and well-formed
    prov = record["provenance"]
    assert {"git_sha", "numpy_version", "timestamp"} <= set(prov)
    assert record["wall_seconds"] > 0
    # the smoke gate with slack, re-checked from the record
    assert record["speedup_fused"] >= 0.9
