"""Equivalence and gradient tests for the fused attention kernel.

The contract under test (ISSUE 5): ``fused_attention`` + ``split3`` must
be *numerically indistinguishable* from the composed-op reference —
bit-identical forward and gradients in dense mode, float-round-off
agreement in blocked (streaming-softmax) mode — while the ``cache=``
weights-capture path transparently falls back to the composed graph.

ISSUE 10 extends the equivalence claims across the dtype policy: the
fused-vs-composed bit-identity must hold *within* each supported dtype
(a float32 model's fused kernel is bit-identical to its composed graph,
in float32), with blocked-mode round-off tolerances scaled to the
dtype's epsilon.  Gradcheck stays pinned to float64 — finite differences
are meaningless at single precision.
"""

import numpy as np
import pytest

from repro.autograd import Tensor, check_gradients, fused_attention, split3
from repro.core import TransformerConfig, TransformerLM
from repro.core.attention import MultiHeadSelfAttention, causal_mask
from repro.nn.optim import AdamW


def _qkv(rng, b=2, t=5, c=6):
    return [Tensor(rng.standard_normal((b, t, c)), requires_grad=True)
            for _ in range(3)]


def _model(fused, block=None, window=None, dropout=0.0, seed=0, dtype=None):
    cfg = TransformerConfig(vocab_size=16, max_seq_len=16, d_model=16,
                            num_heads=2, num_layers=2, dropout=dropout,
                            fused=fused, attention_block_size=block,
                            attention_window=window, dtype=dtype)
    return TransformerLM(cfg, rng=seed)


# Blocked-vs-dense agreement scales with the dtype's round-off; the
# float64 tolerances are the original ISSUE 5 values, unchanged.
_BLOCKED_TOL = {
    "float64": dict(loss_rtol=1e-12, grad_rtol=1e-8, grad_atol=1e-12),
    "float32": dict(loss_rtol=1e-5, grad_rtol=1e-3, grad_atol=1e-6),
}

DTYPES = ["float64", "float32"]


class TestFusedKernelGradients:
    def test_gradcheck_dense(self):
        rng = np.random.default_rng(0)
        mask = causal_mask(5)
        check_gradients(
            lambda q, k, v: fused_attention(q, k, v, 2, mask=mask),
            _qkv(rng))

    def test_gradcheck_dense_no_mask(self):
        rng = np.random.default_rng(1)
        check_gradients(
            lambda q, k, v: fused_attention(q, k, v, 3, mask=None),
            _qkv(rng, c=9))

    @pytest.mark.parametrize("block", [1, 2, 3, 5, 7])
    def test_gradcheck_blocked(self, block):
        # includes block sizes that do not divide T (uneven tail tiles)
        rng = np.random.default_rng(2)
        mask = causal_mask(5)
        check_gradients(
            lambda q, k, v: fused_attention(q, k, v, 2, mask=mask,
                                            block_size=block),
            _qkv(rng))

    def test_gradcheck_blocked_windowed_mask(self):
        rng = np.random.default_rng(3)
        mask = causal_mask(6, window=2)  # fully-masked tiles get skipped
        check_gradients(
            lambda q, k, v: fused_attention(q, k, v, 2, mask=mask,
                                            block_size=2),
            _qkv(rng, t=6))

    def test_gradcheck_split3(self):
        rng = np.random.default_rng(4)
        x = Tensor(rng.standard_normal((2, 4, 9)), requires_grad=True)

        def via_split(x):
            a, b, c = split3(x)
            return (a * a).sum() + (b * 2.0).sum() + (c * c * c).sum()

        check_gradients(via_split, [x])

    def test_split3_repeated_backward_accumulates(self):
        x = Tensor(np.random.default_rng(5).standard_normal((2, 6)),
                   requires_grad=True)
        a, b, c = split3(x)
        loss = (a * a).sum() + b.sum() + (c * 3.0).sum()
        loss.backward()
        first = x.grad.copy()
        loss.backward()
        np.testing.assert_allclose(x.grad, 2 * first)

    def test_split3_rejects_indivisible(self):
        with pytest.raises(ValueError):
            split3(Tensor(np.zeros((2, 7))))

    def test_fused_attention_validates_shapes(self):
        q = Tensor(np.zeros((1, 2, 6)))
        k = Tensor(np.zeros((1, 3, 6)))
        with pytest.raises(ValueError):
            fused_attention(q, k, q, 2)
        with pytest.raises(ValueError):
            fused_attention(q, q, q, 4)  # 6 % 4 != 0
        with pytest.raises(ValueError):
            fused_attention(q, q, q, 2, block_size=0)


@pytest.mark.parametrize("dtype", DTYPES)
class TestFusedVsComposed:
    def test_forward_bit_identical(self, dtype):
        rng = np.random.default_rng(10)
        ids = rng.integers(0, 16, size=(3, 12))
        for window in (None, 4):
            lf = _model(True, window=window, dtype=dtype).forward(ids)
            lc = _model(False, window=window, dtype=dtype).forward(ids)
            assert lf.data.dtype == np.dtype(dtype)
            assert np.array_equal(lf.data, lc.data)

    def test_gradients_bit_identical(self, dtype):
        rng = np.random.default_rng(11)
        ids = rng.integers(0, 16, size=(3, 12))
        tgt = rng.integers(0, 16, size=(3, 12))
        mf, mc = _model(True, dtype=dtype), _model(False, dtype=dtype)
        mf.loss(ids, tgt).backward()
        mc.loss(ids, tgt).backward()
        for (name, pf), (_, pc) in zip(sorted(mf.named_parameters()),
                                       sorted(mc.named_parameters())):
            assert pf.grad.dtype == np.dtype(dtype), name
            assert np.array_equal(pf.grad, pc.grad), name

    def test_blocked_matches_dense_to_roundoff(self, dtype):
        tol = _BLOCKED_TOL[dtype]
        rng = np.random.default_rng(12)
        ids = rng.integers(0, 16, size=(2, 13))
        tgt = rng.integers(0, 16, size=(2, 13))
        md = _model(True, dtype=dtype)
        mb = _model(True, block=4, dtype=dtype)
        ld, lb = md.loss(ids, tgt), mb.loss(ids, tgt)
        np.testing.assert_allclose(lb.data, ld.data, rtol=tol["loss_rtol"])
        ld.backward()
        lb.backward()
        for (name, pd), (_, pb) in zip(sorted(md.named_parameters()),
                                       sorted(mb.named_parameters())):
            np.testing.assert_allclose(pb.grad, pd.grad,
                                       rtol=tol["grad_rtol"],
                                       atol=tol["grad_atol"], err_msg=name)

    def test_40_step_trajectory_exact(self, dtype):
        """Seeded tiny-GPT training is bit-reproducible across the flag."""
        losses = {}
        for fused in (True, False):
            model = _model(fused, dtype=dtype)
            model.train()
            opt = AdamW(model.parameters(), lr=1e-3)
            rng = np.random.default_rng(7)
            trace = []
            for _ in range(40):
                x = rng.integers(0, 16, size=(4, 12))
                y = rng.integers(0, 16, size=(4, 12))
                loss = model.loss(x, y)
                loss.backward()
                opt.step()
                opt.zero_grad()
                trace.append(float(loss.data))
            losses[fused] = trace
        assert losses[True] == losses[False]


class TestFallbacks:
    def test_cache_capture_falls_back_and_records_weights(self):
        rng = np.random.default_rng(20)
        ids = rng.integers(0, 16, size=(2, 8))
        model = _model(True)
        cache = {}
        logits = model.forward(ids, cache=cache)
        weights = cache["block0.weights"]
        assert weights.shape == (2, 2, 8, 8)
        np.testing.assert_allclose(weights.sum(axis=-1), 1.0)
        # rows are causal: strictly-future columns carry ~zero weight
        assert abs(weights[0, 0, 0, 1:]).max() < 1e-12
        # and the cached forward agrees exactly with the fused one
        assert np.array_equal(logits.data, model.forward(ids).data)

    def test_attention_dropout_falls_back_during_training(self):
        """With attention dropout the fused node has no hook point, so the
        training forward must route through the composed graph and keep
        drawing the same RNG stream as fused=False."""
        rng = np.random.default_rng(21)
        ids = rng.integers(0, 16, size=(2, 8))
        tgt = rng.integers(0, 16, size=(2, 8))
        mf = _model(True, dropout=0.1)
        mc = _model(False, dropout=0.1)
        mf.train()
        mc.train()
        assert float(mf.loss(ids, tgt).data) == float(mc.loss(ids, tgt).data)

    def test_fused_causality(self):
        """Changing future tokens must not change past logits."""
        rng = np.random.default_rng(22)
        model = _model(True, block=3)
        ids = rng.integers(0, 16, size=(1, 10))
        base = model.forward(ids).data[:, :5].copy()
        ids2 = ids.copy()
        ids2[:, 5:] = (ids2[:, 5:] + 3) % 16
        np.testing.assert_array_equal(model.forward(ids2).data[:, :5], base)


class TestMaskCache:
    def test_causal_mask_cached_and_readonly(self):
        a = causal_mask(9)
        b = causal_mask(9)
        assert a is b
        assert not a.flags.writeable
        with pytest.raises(ValueError):
            a[0, 0, 0, 0] = 1.0

    def test_distinct_keys_distinct_masks(self):
        full = causal_mask(9)
        local = causal_mask(9, window=2)
        assert full is not local
        # window mask additionally blocks far-past positions
        assert local[0, 0, 8, 0] < -1e8
        assert full[0, 0, 8, 0] == 0.0

    def test_mask_values_unchanged_by_caching(self):
        m = causal_mask(4, window=2)
        expected = np.triu(np.full((4, 4), -1e9), k=1) \
            + np.tril(np.full((4, 4), -1e9), k=-2)
        np.testing.assert_array_equal(m[0, 0], expected)

    def test_window_validation_still_raised(self):
        with pytest.raises(ValueError):
            causal_mask(4, window=0)
