"""Docstring lint for the public API (pydocstyle D100/D101/D103/D104).

The same rule set is configured for ruff in ``pyproject.toml``; this
AST-based check enforces it in environments without the ruff binary so
the contract is tier-1-tested either way: every public module, class,
and module-level function under ``src/repro`` carries a docstring.
Methods (D102) and nested helper functions are deliberately out of
scope, matching the configured ruff selection.

Also lints the documentation itself: every relative markdown link in
README/EXPERIMENTS/docs must resolve to a real file.
"""

import ast
import re
from pathlib import Path

import repro

SRC_ROOT = Path(repro.__file__).resolve().parent


def iter_sources():
    return sorted(SRC_ROOT.rglob("*.py"))


def docstring_violations(path: Path) -> list[str]:
    """D100/D104 for the module, D101 for classes, D103 for functions."""
    tree = ast.parse(path.read_text())
    rel = path.relative_to(SRC_ROOT.parent)
    violations = []
    if not ast.get_docstring(tree):
        code = "D104" if path.name == "__init__.py" else "D100"
        violations.append(f"{rel}:1 {code} missing module docstring")
    for node in ast.walk(tree):
        if (isinstance(node, ast.ClassDef) and not node.name.startswith("_")
                and not ast.get_docstring(node)):
            violations.append(
                f"{rel}:{node.lineno} D101 missing docstring on "
                f"class {node.name}")
    for node in tree.body:
        if (isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
                and not node.name.startswith("_")
                and not ast.get_docstring(node)):
            violations.append(
                f"{rel}:{node.lineno} D103 missing docstring on "
                f"function {node.name}")
    return violations


def test_sources_found():
    assert len(iter_sources()) > 50  # the walk really covers the package


def test_serve_package_in_scope():
    """The serving layer (PR 6) is covered by the same docstring contract
    as the rest of the public API — guard against the package being
    skipped by a future scoping change."""
    serve = [p for p in iter_sources() if p.parent.name == "serve"]
    assert len(serve) >= 5  # __init__, admission, worker, server, client
    for path in serve:
        assert not docstring_violations(path), path


def test_obs_package_in_scope():
    """The observability plane (PR 7) — tracing, exposition, SLO, flight
    recorder — carries the same docstring contract; guard against the
    package being skipped by a future scoping change."""
    obs = [p for p in iter_sources() if p.parent.name == "obs"]
    names = {p.name for p in obs}
    assert {"__init__.py", "tracing.py", "metrics.py", "events.py",
            "exposition.py", "slo.py", "flight.py"} <= names
    for path in obs:
        assert not docstring_violations(path), path


def test_infer_package_in_scope():
    """The inference layer (PR 8: paged KV cache + prefix sharing;
    PR 9: per-request sampling params + speculative decoding) is
    covered by the same docstring contract; guard against the package
    being skipped by a future scoping change."""
    infer = [p for p in iter_sources() if p.parent.name == "infer"]
    names = {p.name for p in infer}
    assert {"__init__.py", "kv_cache.py", "paged_kv.py",
            "engine.py", "sampling_params.py", "speculative.py"} <= names
    for path in infer:
        assert not docstring_violations(path), path


def test_dtype_policy_module_in_scope():
    """The dtype policy (PR 10) is a root-level leaf module; guard that
    it is linted with everything else and documents its contract."""
    path = SRC_ROOT / "dtypes.py"
    assert path.exists()
    assert not docstring_violations(path), path
    # the module docstring must spell out the resolution order
    assert "Resolution order" in ast.get_docstring(ast.parse(path.read_text()))


def test_lm_draft_adapter_in_scope():
    """The speculative-decoding draft adapter (PR 9) lives in the lm
    package; guard that it is linted with everything else."""
    lm = [p for p in iter_sources() if p.parent.name == "lm"]
    assert "draft.py" in {p.name for p in lm}
    for path in lm:
        assert not docstring_violations(path), path


def test_public_api_is_documented():
    violations = []
    for path in iter_sources():
        violations.extend(docstring_violations(path))
    assert not violations, "\n" + "\n".join(violations)


_MD_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
_REPO_ROOT = SRC_ROOT.parent.parent


def markdown_link_violations(md_path: Path) -> list[str]:
    """Relative links in ``md_path`` that point at nothing on disk."""
    violations = []
    for target in _MD_LINK.findall(md_path.read_text()):
        if target.startswith(("http://", "https://", "mailto:", "#")):
            continue
        resolved = (md_path.parent / target.split("#", 1)[0]).resolve()
        if not resolved.exists():
            violations.append(f"{md_path.name}: broken link -> {target}")
    return violations


def test_markdown_links_resolve():
    """Every relative link in the top-level and docs/ markdown resolves
    (PR 8 satellite: KV_CACHE.md is cross-linked from README and
    ARCHITECTURE — broken doc links fail tier-1, not code review)."""
    pages = [_REPO_ROOT / "README.md", _REPO_ROOT / "EXPERIMENTS.md"]
    pages += sorted((_REPO_ROOT / "docs").glob("*.md"))
    assert any(p.name == "KV_CACHE.md" for p in pages)
    assert any(p.name == "DTYPE.md" for p in pages)  # PR 10 satellite
    violations = []
    for page in pages:
        violations.extend(markdown_link_violations(page))
    assert not violations, "\n" + "\n".join(violations)
