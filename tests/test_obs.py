"""Unit tests for repro.obs: metrics, tracing, events, profiler, bundle,
and the instrumentation hooks in the trainer and generation engine."""

import threading
import json

import numpy as np
import pytest

from repro.autograd import Tensor
from repro.core import TransformerConfig, TransformerLM
from repro.infer import GenerationEngine, SamplingParams
from repro.lm import FFNLM, make_windows
from repro.nn import Adam
from repro.obs import (
    NULL_EVENTS,
    NULL_METRICS,
    NULL_OBS,
    NULL_TRACER,
    EventLog,
    MetricsRegistry,
    Observability,
    Profiler,
    Tracer,
    parameter_bytes,
)
from repro.train import Trainer


class TestMetrics:
    def test_counter(self):
        reg = MetricsRegistry()
        c = reg.counter("steps")
        c.inc()
        c.inc(4)
        assert c.value == 5.0
        assert reg.counter("steps") is c  # get-or-create shares by name
        with pytest.raises(ValueError):
            c.inc(-1)

    def test_gauge(self):
        g = MetricsRegistry().gauge("loss")
        g.set(3.5)
        g.inc(0.5)
        g.dec(1.0)
        assert g.value == 3.0

    def test_histogram_exact_stats(self):
        h = MetricsRegistry().histogram("lat")
        for v in [1.0, 2.0, 3.0, 4.0]:
            h.observe(v)
        assert h.count == 4
        assert h.total == 10.0
        assert h.min == 1.0 and h.max == 4.0
        assert h.mean == 2.5
        assert h.percentile(0.0) == 1.0
        assert h.percentile(1.0) == 4.0
        assert h.percentile(0.5) == 2.5  # linear interpolation
        with pytest.raises(ValueError):
            h.percentile(1.5)

    def test_histogram_decimation_keeps_exact_aggregates(self):
        from repro.obs.metrics import Histogram

        h = Histogram("lat", max_samples=8)
        for v in range(100):
            h.observe(float(v))
        assert h.count == 100
        assert h.total == float(sum(range(100)))
        assert h.min == 0.0 and h.max == 99.0
        assert len(h._samples) <= 8
        # percentiles stay approximately right on the decimated sample
        assert h.percentile(0.5) == pytest.approx(50.0, abs=15.0)

    def test_kind_mismatch_raises(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(TypeError):
            reg.gauge("x")

    def test_snapshot_and_reset(self):
        reg = MetricsRegistry()
        reg.counter("a").inc(2)
        reg.histogram("b").observe(1.0)
        snap = reg.snapshot()
        assert snap["a"] == {"type": "counter", "value": 2.0}
        assert snap["b"]["type"] == "histogram" and snap["b"]["count"] == 1
        assert json.loads(json.dumps(snap)) == snap  # JSON-ready
        assert reg.names() == ["a", "b"] and "a" in reg
        reg.reset()
        assert reg.snapshot() == {}

    def test_empty_histogram_snapshot(self):
        snap = MetricsRegistry().histogram("empty").snapshot()
        assert snap == {"type": "histogram", "count": 0}

    def test_null_metrics_absorbs_everything(self):
        c = NULL_METRICS.counter("whatever")
        c.inc()
        NULL_METRICS.gauge("g").set(1.0)
        NULL_METRICS.histogram("h").observe(2.0)
        assert NULL_METRICS.snapshot() == {}
        assert "whatever" not in NULL_METRICS


class TestTracer:
    def test_span_nesting_recorded(self):
        t = Tracer()
        with t.span("outer", step=1):
            with t.span("inner"):
                pass
        assert [s["name"] for s in t.spans] == ["inner", "outer"]  # completion order
        inner, outer = t.spans
        assert inner["depth"] == outer["depth"] + 1
        assert inner["parent"] == "outer" and outer["parent"] is None
        # child interval lies within the parent interval
        assert outer["start"] <= inner["start"] <= inner["end"] <= outer["end"]
        assert outer["args"] == {"step": 1}

    def test_chrome_export_round_trips(self, tmp_path):
        t = Tracer()
        with t.span("a"):
            sum(range(1000))  # give the spans measurable (>1us) width
            with t.span("b"):
                sum(range(1000))
        t.instant("marker", note="hi")
        path = tmp_path / "trace.json"
        t.write_chrome(path)
        trace = json.loads(path.read_text())
        assert trace["displayTimeUnit"] == "ms"
        events = trace["traceEvents"]
        assert {e["name"] for e in events} == {"a", "b", "marker"}
        complete = [e for e in events if e["ph"] == "X"]
        assert len(complete) == 2
        for e in complete:
            assert isinstance(e["ts"], int) and isinstance(e["dur"], int)
            assert e["dur"] >= 1
        by_name = {e["name"]: e for e in complete}
        # nesting survives the microsecond conversion: b inside a
        a, b = by_name["a"], by_name["b"]
        assert a["ts"] <= b["ts"] and b["ts"] + b["dur"] <= a["ts"] + a["dur"]
        assert events == sorted(events, key=lambda e: e["ts"])

    def test_total_seconds_and_reset(self):
        t = Tracer(clock=iter([0.0, 1.0, 2.0, 5.0]).__next__)
        with t.span("work"):
            pass
        with t.span("work"):
            pass
        assert t.total_seconds("work") == pytest.approx(4.0)
        assert t.total_seconds("absent") == 0.0
        t.reset()
        assert t.spans == []

    def test_disabled_tracer_records_nothing(self):
        with NULL_TRACER.span("x", arg=1):
            NULL_TRACER.instant("y")
        assert NULL_TRACER.spans == [] and NULL_TRACER.instants == []
        # shared no-op span object: no per-call allocation
        assert NULL_TRACER.span("a") is NULL_TRACER.span("b")


class TestEventLog:
    def test_emit_and_filter(self):
        log = EventLog()
        log.emit("step", loss=1.0)
        log.emit("eval", acc=0.5)
        log.emit("step", loss=0.5)
        assert len(log) == 3
        assert [r["loss"] for r in log.of_type("step")] == [1.0, 0.5]
        assert all("t" in r for r in log.records)

    def test_jsonl_write(self, tmp_path):
        log = EventLog()
        log.emit("a", x=1)
        log.emit("b", y=[1, 2])
        path = tmp_path / "events.jsonl"
        log.write(path)
        lines = path.read_text().splitlines()
        assert [json.loads(line)["event"] for line in lines] == ["a", "b"]

    def test_streaming_path(self, tmp_path):
        path = tmp_path / "stream.jsonl"
        with EventLog(path=path) as log:
            log.emit("one", n=1)
            log.emit("two", n=2)
        records = [json.loads(line) for line in path.read_text().splitlines()]
        assert [r["n"] for r in records] == [1, 2]

    def test_disabled_is_noop(self):
        assert NULL_EVENTS.emit("x", a=1) is None
        assert len(NULL_EVENTS) == 0

    def test_close_releases_file_handle(self, tmp_path):
        path = tmp_path / "events.jsonl"
        log = EventLog(path=path)
        log.emit("one", n=1)
        log.close()
        assert log._fh is None
        log.emit("two", n=2)  # reopens in append mode; nothing is lost
        log.close()
        records = [json.loads(line) for line in path.read_text().splitlines()]
        assert [r["n"] for r in records] == [1, 2]

    def test_fsync_emits_are_durable_per_record(self, tmp_path):
        path = tmp_path / "events.jsonl"
        log = EventLog(path=path, fsync=True)
        log.emit("one", n=1)
        # no flush/close: the line must already be on disk
        assert json.loads(path.read_text())["n"] == 1
        log.close()

    def test_concurrent_emit_never_interleaves_lines(self, tmp_path):
        path = tmp_path / "events.jsonl"
        log = EventLog(path=path)
        payload = "x" * 256

        def spin(tag):
            for i in range(200):
                log.emit("spin", tag=tag, i=i, pad=payload)

        threads = [threading.Thread(target=spin, args=(t,))
                   for t in "abcd"]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        log.close()
        lines = path.read_text().splitlines()
        assert len(lines) == 800
        for line in lines:  # every line is one complete JSON object
            record = json.loads(line)
            assert record["pad"] == payload
        assert len(log) == 800

    def test_sinks_see_every_record(self):
        log = EventLog()
        seen = []
        log.add_sink(seen.append)
        log.emit("a", n=1)
        log.emit("b", n=2)
        assert [r["event"] for r in seen] == ["a", "b"]

    def test_reentrant_emit_from_sink(self):
        log = EventLog()

        def echo(record):
            if record["event"] != "echo":
                log.emit("echo", of=record["event"])

        log.add_sink(echo)
        log.emit("ping")
        assert [r["event"] for r in log.records] == ["ping", "echo"]


def _tiny_transformer():
    cfg = TransformerConfig(vocab_size=16, max_seq_len=16, d_model=16,
                            num_heads=2, num_layers=2)
    return TransformerLM(cfg, rng=0)


class TestProfiler:
    def _step(self, model):
        x = np.array([[1, 2, 3, 4]])
        y = np.array([[2, 3, 4, 5]])
        model.zero_grad()
        loss = model.loss(x, y)
        loss.backward()
        return float(loss.data)

    def test_per_module_stats(self):
        model = _tiny_transformer()
        prof = Profiler()
        with prof.profile(model):
            self._step(model)
        root = prof.stats["model"]
        assert root.calls >= 1
        assert root.forward_s > 0.0
        assert root.forward_s >= root.self_s >= 0.0
        assert root.param_count == model.num_parameters()
        assert root.param_bytes == parameter_bytes(model)
        # submodules were discovered and their names are dotted paths
        assert any(label.startswith("model.") for label in prof.stats)
        # arrays are charged to the innermost module that made them, so
        # the total across modules is what must be positive
        assert sum(s.activation_bytes for s in prof.stats.values()) > 0
        # backward time landed somewhere (per-module or unattributed)
        total_bwd = (sum(s.backward_s for s in prof.stats.values())
                     + prof.unattributed_backward_s)
        assert total_bwd > 0.0

    def test_patches_fully_restored(self):
        model = _tiny_transformer()
        orig_make = Tensor._make
        orig_pass_down = Tensor._pass_down
        with Profiler().profile(model):
            self._step(model)
        assert Tensor._make is orig_make
        assert Tensor._pass_down is orig_pass_down
        # no instance-level forward shadows remain
        for _, module in model.named_modules():
            assert "forward" not in vars(module)

    def test_profiled_run_bit_identical(self):
        model = _tiny_transformer()
        bare = self._step(model)
        with Profiler().profile(model):
            profiled = self._step(model)
        assert profiled == bare
        assert self._step(model) == bare  # and after detach

    def test_double_attach_rejected(self):
        a, b = _tiny_transformer(), _tiny_transformer()
        prof = Profiler()
        with prof.profile(a):
            with pytest.raises(RuntimeError):
                Profiler()._attach(b, "other")

    def test_summary_and_report(self):
        model = _tiny_transformer()
        prof = Profiler()
        with prof.profile(model):
            self._step(model)
        summary = prof.summary()
        assert json.loads(json.dumps(summary)) == summary
        assert "<unattributed backward>" in summary
        assert summary["model"]["calls"] >= 1
        report = prof.report()
        assert "model" in report and "fwd s" in report
        prof.reset()
        assert prof.stats == {} and prof.unattributed_backward_s == 0.0


class TestObservabilityBundle:
    def test_null_bundle_disabled(self):
        assert not NULL_OBS.enabled
        assert Observability().enabled is False

    def test_standard_bundle_enabled(self):
        obs = Observability.standard()
        assert obs.enabled
        assert obs.tracer is not NULL_TRACER
        assert obs.metrics.snapshot() == {}

    def test_write_artifacts(self, tmp_path):
        obs = Observability.standard()
        with obs.tracer.span("x"):
            pass
        obs.metrics.counter("n").inc()
        obs.events.emit("e", k=1)
        paths = obs.write_artifacts(tmp_path / "out")
        assert set(paths) == {"trace", "metrics", "events"}
        trace = json.loads(open(paths["trace"]).read())
        assert trace["traceEvents"][0]["name"] == "x"
        metrics = json.loads(open(paths["metrics"]).read())
        assert metrics["n"]["value"] == 1.0
        events = [json.loads(line) for line in open(paths["events"])]
        assert events[0]["event"] == "e"

    def test_write_artifacts_skips_disabled(self, tmp_path):
        obs = Observability(metrics=MetricsRegistry())  # tracer/events off
        assert obs.enabled
        paths = obs.write_artifacts(tmp_path)
        assert set(paths) == {"metrics"}


class TestTrainerInstrumentation:
    def _setup(self):
        rng = np.random.default_rng(0)
        stream = np.array([0, 1, 2, 3] * 100)
        lm = FFNLM(4, window=2, embed_dim=8, hidden_dim=16, rng=0)
        ctx, tgt = make_windows(stream, 2)

        def batch_fn(step):
            idx = rng.integers(0, len(tgt), size=16)
            return ctx[idx], tgt[idx]

        return lm, batch_fn

    def test_metrics_spans_events(self):
        lm, batch_fn = self._setup()
        obs = Observability.standard()
        trainer = Trainer(lm, Adam(lm.parameters(), lr=1e-2), batch_fn, obs=obs)
        history = trainer.run(5)

        snap = obs.metrics.snapshot()
        assert snap["train.steps"]["value"] == 5.0
        assert snap["train.tokens"]["value"] == 5 * 16
        assert snap["train.step_seconds"]["count"] == 5
        assert snap["train.loss"]["value"] == history.final_loss

        names = {s["name"] for s in obs.tracer.spans}
        assert {"train.run", "train.step", "train.forward",
                "train.backward", "train.optimizer"} <= names
        steps = [s for s in obs.tracer.spans if s["name"] == "train.step"]
        assert len(steps) == 5 and all(s["parent"] == "train.run" for s in steps)

        step_events = obs.events.of_type("train_step")
        assert len(step_events) == 5
        first = step_events[0]
        assert first["loss"] == history.losses[0]
        assert first["tokens"] == 16
        assert first["grad_norm"] is not None  # obs on -> norm computed
        assert first["flops_per_sec"] > 0
        # obs on also means grad norms land in the history
        assert len(history.grad_norms) == 5

    def test_instrumented_loss_trajectory_identical(self):
        lm_a, batch_a = self._setup()
        bare = Trainer(lm_a, Adam(lm_a.parameters(), lr=1e-2), batch_a).run(5)
        lm_b, batch_b = self._setup()
        obs = Observability.standard()
        instrumented = Trainer(lm_b, Adam(lm_b.parameters(), lr=1e-2),
                               batch_b, obs=obs).run(5)
        assert instrumented.losses == bare.losses


class TestEngineInstrumentation:
    def _model(self):
        cfg = TransformerConfig(vocab_size=32, max_seq_len=32, d_model=16,
                                num_heads=2, num_layers=1)
        return TransformerLM(cfg, rng=0)

    def test_request_timing_ordering(self):
        model = self._model()
        engine = GenerationEngine(model, batch_size=2, params=SamplingParams(greedy=True))
        for prompt in ([1, 2], [3, 4], [5, 6]):
            engine.submit(prompt, 6)
        results = engine.run()
        assert len(results) == 3
        for r in results:
            t = r.timing
            assert t.submitted <= t.admitted <= t.first_token <= t.finished
            assert t.new_tokens == 6
            assert t.queue_wait_s >= 0 and t.prefill_s > 0 and t.decode_s >= 0
            assert t.ttft_s > 0 and t.tokens_per_sec > 0
        # third request had to wait for a slot on a 2-slot engine
        assert results[2].timing.queue_wait_s > 0

    def test_zero_token_request_timing(self):
        engine = GenerationEngine(self._model(), batch_size=1)
        engine.submit([1, 2, 3], 0)
        (result,) = engine.run()
        assert result.timing.new_tokens == 0
        assert result.timing.tokens_per_sec == 0.0

    def test_stats_snapshot(self):
        model = self._model()
        engine = GenerationEngine(model, batch_size=2, params=SamplingParams(greedy=True))
        for prompt in ([1, 2], [3, 4]):
            engine.submit(prompt, 5)
        engine.run()
        stats = engine.stats()
        assert stats["batch_size"] == 2
        assert stats["active_slots"] == 0 and stats["queue_depth"] == 0
        assert stats["requests_submitted"] == 2
        assert stats["requests_completed"] == 2
        assert stats["sampled_tokens"] == 10
        assert stats["total_steps"] > 0
        assert 0.0 < stats["occupancy"] <= 1.0
        # both slots equally loaded the whole run -> full occupancy
        assert stats["occupancy"] == 1.0

    def test_obs_emits_lifecycle(self):
        model = self._model()
        obs = Observability.standard()
        engine = GenerationEngine(model, batch_size=2, params=SamplingParams(greedy=True), obs=obs)
        for prompt in ([1, 2], [3, 4], [5, 6]):
            engine.submit(prompt, 4)
        engine.run()
        assert len(obs.events.of_type("request_submitted")) == 3
        assert len(obs.events.of_type("request_admitted")) == 3
        assert len(obs.events.of_type("request_finished")) == 3
        snap = obs.metrics.snapshot()
        assert snap["engine.steps"]["value"] == engine.total_steps
        assert snap["engine.sampled_tokens"]["value"] == 12
        assert snap["engine.ttft_seconds"]["count"] == 3
        assert all(s["name"] == "engine.step" for s in obs.tracer.spans)
        assert len(obs.tracer.spans) == engine.total_steps

    def test_instrumented_engine_bit_identical(self):
        model = self._model()
        prompt = [2, 4, 6]
        ref = model.generate_fast(prompt, 10, rng=np.random.default_rng(7),
                                  temperature=0.9)
        obs = Observability.standard()
        engine = GenerationEngine(model, batch_size=1,
                                  rng=np.random.default_rng(7),
                                  params=SamplingParams(temperature=0.9),
                                  obs=obs)
        engine.submit(prompt, 10)
        (result,) = engine.run()
        assert result.tokens == ref
