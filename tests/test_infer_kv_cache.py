"""Unit tests for the preallocated KV cache and the attention step paths."""

import numpy as np
import pytest

from repro.core import TransformerConfig, TransformerLM
from repro.core.attention import MultiHeadSelfAttention
from repro.infer import KVCache


def _rand_kv(rng, n, heads, hd):
    return rng.normal(size=(n, heads, hd)), rng.normal(size=(n, heads, hd))


class TestKVCache:
    def test_buffers_allocated_once(self):
        cache = KVCache(num_layers=2, batch_size=3, num_heads=2,
                        max_seq_len=16, head_dim=4)
        k_id, v_id = id(cache._k), id(cache._v)
        rng = np.random.default_rng(0)
        for _ in range(16):
            for layer in cache.layers:
                layer.append(*_rand_kv(rng, 3, 2, 4))
            cache.advance()
        assert id(cache._k) == k_id and id(cache._v) == v_id

    def test_append_returns_written_prefix(self):
        cache = KVCache(num_layers=1, batch_size=2, num_heads=1,
                        max_seq_len=8, head_dim=3)
        rng = np.random.default_rng(0)
        written = []
        for t in range(4):
            k, v = _rand_kv(rng, 2, 1, 3)
            written.append(k)
            keys, values, mask = cache.layers[0].append(k, v)
            cache.advance()
            assert mask is None  # uniform lengths
            assert keys.shape == (2, 1, t + 1, 3)
            assert np.array_equal(keys[:, :, -1], k)
            for j, past in enumerate(written):
                assert np.array_equal(keys[:, :, j], past)

    def test_overflow_raises(self):
        cache = KVCache(num_layers=1, batch_size=1, num_heads=1,
                        max_seq_len=2, head_dim=2)
        rng = np.random.default_rng(0)
        for _ in range(2):
            cache.layers[0].append(*_rand_kv(rng, 1, 1, 2))
            cache.advance()
        with pytest.raises((ValueError, IndexError)):
            cache.layers[0].append(*_rand_kv(rng, 1, 1, 2))
            cache.advance()

    def test_ragged_lengths_masked(self):
        cache = KVCache(num_layers=1, batch_size=2, num_heads=1,
                        max_seq_len=8, head_dim=2)
        rng = np.random.default_rng(0)
        # advance slot 0 twice before slot 1 starts
        cache.set_active(np.array([0]))
        for _ in range(2):
            cache.layers[0].append(*_rand_kv(rng, 1, 1, 2))
            cache.advance()
        cache.set_active(np.array([0, 1]))
        keys, values, mask = cache.layers[0].append(*_rand_kv(rng, 2, 1, 2))
        assert keys.shape[2] == 3  # slot 0 now at length 3
        assert mask is not None and mask.shape == (2, 3)
        assert np.all(mask[0] == 0.0)                      # full history valid
        assert mask[1, 0] == 0.0                           # own new entry valid
        assert np.isneginf(mask[1, 1:]).all()              # unwritten tail masked

    def test_windowed_reads_are_bounded(self):
        cache = KVCache(num_layers=1, batch_size=1, num_heads=1,
                        max_seq_len=12, head_dim=2, window=3)
        rng = np.random.default_rng(0)
        for t in range(12):
            keys, _values, mask = cache.layers[0].append(*_rand_kv(rng, 1, 1, 2))
            cache.advance()
            assert mask is None
            assert keys.shape[2] == min(t + 1, 3)

    def test_slot_reuse_overwrites_in_place(self):
        cache = KVCache(num_layers=1, batch_size=2, num_heads=1,
                        max_seq_len=4, head_dim=2)
        rng = np.random.default_rng(0)
        for _ in range(3):
            cache.layers[0].append(*_rand_kv(rng, 2, 1, 2))
            cache.advance()
        cache.reset_slot(1)
        assert cache.lengths[1] == 0 and cache.lengths[0] == 3
        cache.set_active(np.array([1]))
        k, v = _rand_kv(rng, 1, 1, 2)
        keys, _values, mask = cache.layers[0].append(k, v)
        assert keys.shape[2] == 1
        assert np.array_equal(keys[0, :, 0], k[0])

    def test_for_model_sizes_from_config(self):
        cfg = TransformerConfig(vocab_size=7, max_seq_len=32, d_model=16,
                                num_heads=2, num_layers=3, attention_window=5)
        model = TransformerLM(cfg, rng=0)
        cache = KVCache.for_model(model, batch_size=4)
        assert len(cache.layers) == 3
        assert cache._k.shape == (3, 4, 2, 32, 8)
        assert cache.window == 5

    def test_validation(self):
        with pytest.raises(ValueError):
            KVCache(num_layers=0, batch_size=1, num_heads=1,
                    max_seq_len=4, head_dim=2)
        with pytest.raises(ValueError):
            KVCache(num_layers=1, batch_size=1, num_heads=1,
                    max_seq_len=4, head_dim=2, window=0)


class TestDictStateWindowTrim:
    """Regression: with ``window`` set, the dict KV state must not grow
    without bound (it used to keep the full history and slice a view)."""

    def test_state_stays_within_window(self):
        rng = np.random.default_rng(0)
        attn = MultiHeadSelfAttention(d_model=8, num_heads=2, rng=rng, window=4)
        state = {}
        for t in range(20):
            attn.step(rng.normal(size=(1, 1, 8)), state)
            assert state["k"].shape[2] <= 4
            assert state["v"].shape[2] <= 4

    def test_trimmed_state_matches_full_forward(self):
        """Trimming must not change outputs: the step path with a trimmed
        dict state agrees with the banded-mask forward pass."""
        from repro.autograd import Tensor, no_grad

        rng = np.random.default_rng(1)
        attn = MultiHeadSelfAttention(d_model=8, num_heads=2,
                                      rng=np.random.default_rng(2), window=3)
        attn.eval()
        x = rng.normal(size=(1, 10, 8))
        with no_grad():
            full = attn.forward(Tensor(x)).data
        state = {}
        for t in range(10):
            stepped = attn.step(x[:, t : t + 1, :], state)
            assert np.allclose(stepped[0, 0], full[0, t], atol=1e-12)
