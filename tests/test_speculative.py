"""Speculative decoding: verify rule, draft adapter, engine integration.

The load-bearing guarantee (ISSUE 9 acceptance bar): under greedy
params, a speculative engine emits *bit-identical* tokens to the plain
engine — the draft only changes how many model steps the output costs,
never the output.  Tested across architectures, ragged batches, stop
tokens, tight ``max_new_tokens`` budgets, hostile drafts, and page-pool
pressure (preemption mid-speculation).

For stochastic params the rejection-sampling rule must keep every
emitted token exactly target-distributed; that is checked statistically
on :func:`~repro.infer.verify_draft` with a deliberately skewed
proposal, plus seeded end-to-end reproducibility.
"""

import numpy as np
import pytest

from repro.core import TransformerConfig, TransformerLM
from repro.core.sampling import sampling_probs
from repro.infer import (DraftModel, GenerationEngine, SamplingParams,
                         SpeculativeConfig, verify_draft)
from repro.lm import LanguageModelDraft, NGramLM
from repro.obs import Observability
from repro.obs.metrics import MetricsRegistry

GREEDY = SamplingParams(greedy=True)


def tiny_model(**kwargs):
    cfg = TransformerConfig(vocab_size=11, max_seq_len=48, d_model=16,
                            num_heads=2, num_layers=2, **kwargs)
    return TransformerLM(cfg, rng=0)


def distilled_draft(model, prompts, max_new, order=4, add_k=0.01):
    """An n-gram draft fit on the target's own greedy outputs — the
    predictable-draft setup the speculative speedup depends on."""
    refs = [model.generate_fast(p, max_new, greedy=True) for p in prompts]
    ngram = NGramLM(vocab_size=model.config.vocab_size, order=order,
                    add_k=add_k)
    for seq in refs:
        ngram.fit(np.asarray(seq, dtype=np.int64))
    return LanguageModelDraft(ngram), refs


class ConstantDraft:
    """Hostile draft: always proposes the same token, claims certainty."""

    def __init__(self, token, vocab_size):
        self.token = token
        self.vocab_size = vocab_size

    def propose(self, tokens, k, params, rng):
        q = np.zeros((k, self.vocab_size))
        q[:, self.token] = 1.0
        return [self.token] * k, q


class TestVerifyDraft:
    def test_greedy_accepts_matching_prefix_plus_bonus(self):
        logits = np.zeros((4, 6))
        for i, top in enumerate([2, 4, 1, 5]):
            logits[i, top] = 5.0
        emitted, accepted = verify_draft(logits, [2, 4, 1], None, GREEDY,
                                         rng=None)
        assert emitted == [2, 4, 1, 5]      # all drafts + bonus from row k
        assert accepted == 3

    def test_greedy_stops_at_first_mismatch_with_correction(self):
        logits = np.zeros((4, 6))
        for i, top in enumerate([2, 3, 1, 5]):
            logits[i, top] = 5.0
        emitted, accepted = verify_draft(logits, [2, 4, 1], None, GREEDY,
                                         rng=None)
        assert emitted == [2, 3]            # draft 4 rejected, argmax emitted
        assert accepted == 1

    def test_greedy_consumes_no_rng(self):
        # rng=None would crash on any .random() call
        logits = np.zeros((2, 4))
        logits[0, 1] = 3.0
        logits[1, 2] = 3.0
        assert verify_draft(logits, [0], None, GREEDY, rng=None) == ([1], 0)

    def test_stochastic_output_is_target_distributed(self):
        """The core Leviathan identity: draw the draft from q, accept
        with min(1, p/q), resample the residual on rejection — the
        emitted token is distributed exactly as p, no matter how skewed
        q is."""
        rng = np.random.default_rng(0)
        logits = np.array([[1.0, 0.5, -0.5, 0.0]])
        params = SamplingParams(temperature=1.0)
        p = sampling_probs(logits[0])
        q = np.zeros((1, 4))
        q[0] = [0.85, 0.05, 0.05, 0.05]     # proposal loves token 0
        counts = np.zeros(4)
        trials = 20000
        two_rows = np.vstack([logits, logits])   # row 1 = unused bonus row
        for _ in range(trials):
            draft = int(rng.choice(4, p=q[0]))   # draft sampled from q
            emitted, _ = verify_draft(two_rows, [draft], q, params, rng)
            counts[emitted[0]] += 1
        empirical = counts / trials
        assert np.abs(empirical - p).max() < 0.015, (empirical, p)

    def test_all_accepted_bonus_token_is_target_distributed(self):
        rng = np.random.default_rng(1)
        logits = np.zeros((2, 4))
        logits[0, 2] = 10.0                  # row 0 all-but-forces token 2
        logits[1] = [0.2, -0.1, 0.4, 0.0]
        params = SamplingParams(temperature=1.0)
        q = np.zeros((1, 4))
        q[0, 2] = 1.0                        # draft proposes the sure thing
        p_bonus = sampling_probs(logits[1])
        counts = np.zeros(4)
        trials = 20000
        accepted_trials = 0
        for _ in range(trials):
            emitted, accepted = verify_draft(logits, [2], q, params, rng)
            if accepted == 1:   # p(2) < q(2)=1, so ~1e-4 of trials reject
                accepted_trials += 1
                counts[emitted[1]] += 1
        assert accepted_trials > trials * 0.99
        assert np.abs(counts / accepted_trials - p_bonus).max() < 0.015


class TestConfigAndProtocol:
    def test_k_must_be_positive(self):
        draft = ConstantDraft(0, 11)
        with pytest.raises(ValueError):
            SpeculativeConfig(draft=draft, k=0)

    def test_draft_must_implement_propose(self):
        with pytest.raises(TypeError):
            SpeculativeConfig(draft=object())

    def test_adapter_satisfies_protocol(self):
        draft = LanguageModelDraft(NGramLM(vocab_size=11, order=2))
        assert isinstance(draft, DraftModel)
        assert isinstance(ConstantDraft(0, 11), DraftModel)

    def test_speculative_requires_paged_backend(self):
        with pytest.raises(ValueError, match="paged"):
            GenerationEngine(tiny_model(), batch_size=1, paged=False,
                             speculative=SpeculativeConfig(
                                 draft=ConstantDraft(0, 11)))

    def test_adapter_propose_contract(self):
        ngram = NGramLM(vocab_size=11, order=3, add_k=1.0)
        ngram.fit(np.array([1, 2, 3, 1, 2, 3, 1, 2, 3], dtype=np.int64))
        draft = LanguageModelDraft(ngram)
        drafts, q = draft.propose([1, 2], 4, GREEDY, rng=None)
        assert len(drafts) == 4 and q.shape == (4, 11)
        # greedy proposals are one-hot on the proposed token
        for i, token in enumerate(drafts):
            assert q[i, token] == 1.0 and q[i].sum() == 1.0
        # stochastic proposals carry the full filtered distribution
        drafts2, q2 = draft.propose(
            [1, 2], 3, SamplingParams(temperature=1.2, top_k=5),
            rng=np.random.default_rng(0))
        assert np.allclose(q2.sum(axis=1), 1.0)
        for i, token in enumerate(drafts2):
            assert q2[i, token] > 0.0


class TestEngineGreedyBitIdentity:
    @pytest.mark.parametrize("dtype", [None, "float32"], ids=["f64", "f32"])
    @pytest.mark.parametrize("arch", [{}, {"attention_window": 4}],
                             ids=["dense", "windowed"])
    def test_matches_plain_engine_exactly(self, arch, dtype):
        model = tiny_model(dtype=dtype, **arch)
        prompts = [[1, 2, 3], [4, 5], [6, 7, 8, 9, 1, 2], [3]]
        draft, refs = distilled_draft(model, prompts, 16)
        engine = GenerationEngine(
            model, batch_size=2, params=GREEDY,
            speculative=SpeculativeConfig(draft=draft, k=4))
        assert engine.generate(prompts, 16) == refs
        assert engine.spec_accepted > 0          # actually speculated

    def test_fewer_model_steps_than_plain_engine(self):
        model = tiny_model()
        prompts = [[1, 2, 3], [4, 5]]
        draft, refs = distilled_draft(model, prompts, 20)
        plain = GenerationEngine(model, batch_size=2, params=GREEDY)
        plain.generate(prompts, 20)
        spec = GenerationEngine(
            model, batch_size=2, params=GREEDY,
            speculative=SpeculativeConfig(draft=draft, k=4))
        assert spec.generate(prompts, 20) == refs
        assert spec.total_steps * 2 <= plain.total_steps

    def test_hostile_draft_still_bit_identical(self):
        """A draft that is always wrong costs steps, never correctness."""
        model = tiny_model()
        prompts = [[1, 2], [3, 4, 5]]
        engine = GenerationEngine(
            model, batch_size=2, params=GREEDY,
            speculative=SpeculativeConfig(
                draft=ConstantDraft(0, model.config.vocab_size), k=3))
        outs = engine.generate(prompts, 12)
        assert outs == [model.generate_fast(p, 12, greedy=True)
                        for p in prompts]
        assert engine.spec_rejected > 0

    def test_stop_token_respected_mid_acceptance(self):
        model = tiny_model()
        params = SamplingParams(greedy=True, stop_token=5)
        prompts = [[1], [2], [3]]
        draft, _ = distilled_draft(model, prompts, 14)
        engine = GenerationEngine(
            model, batch_size=2, params=params,
            speculative=SpeculativeConfig(draft=draft, k=4))
        ids = [engine.submit(p, 14) for p in prompts]
        results = {r.request_id: r for r in engine.run()}
        for request_id, prompt in zip(ids, prompts):
            assert results[request_id].tokens == model.generate_fast(
                prompt, 14, greedy=True, stop_token=5)

    def test_tight_token_budget_degrades_gracefully(self):
        """max_new_tokens < k leaves no draft budget: the engine falls
        back to plain one-token steps and still matches exactly."""
        model = tiny_model()
        prompts = [[1, 2, 3], [4, 5]]
        draft, _ = distilled_draft(model, prompts, 8)
        engine = GenerationEngine(
            model, batch_size=2, params=GREEDY,
            speculative=SpeculativeConfig(draft=draft, k=6))
        for max_new in (1, 2, 3):
            assert engine.generate(prompts, max_new) == [
                model.generate_fast(p, max_new, greedy=True)
                for p in prompts]

    def test_bit_identical_under_page_pressure(self):
        """A pool too small for both requests forces preemption and
        chunked replay mid-speculation; outputs must not change."""
        model = tiny_model()
        prompts = [[1, 2, 3, 4], [5, 6, 7]]
        draft, refs = distilled_draft(model, prompts, 16)
        engine = GenerationEngine(
            model, batch_size=2, params=GREEDY, kv_num_pages=9,
            kv_page_size=4,
            speculative=SpeculativeConfig(draft=draft, k=4))
        assert engine.generate(prompts, 16) == refs
        assert engine.preemptions >= 1, \
            "pool was large enough that preemption never happened; " \
            "shrink kv_num_pages to keep this test meaningful"


class TestStochasticSpeculative:
    def test_seeded_runs_reproduce(self):
        model = tiny_model()
        prompts = [[1, 2], [3, 4, 5]]
        draft, _ = distilled_draft(model, prompts, 12)
        runs = []
        for _ in range(2):
            engine = GenerationEngine(
                model, batch_size=2, rng=np.random.default_rng(13),
                params=SamplingParams(temperature=1.1, top_k=6),
                speculative=SpeculativeConfig(draft=draft, k=3))
            runs.append(engine.generate(prompts, 12))
        assert runs[0] == runs[1]

    def test_per_request_seed_reproduces_across_batch_shapes(self):
        model = tiny_model()
        draft, _ = distilled_draft(model, [[1, 2]], 10)
        spec = SpeculativeConfig(draft=draft, k=3)
        seeded = SamplingParams(temperature=1.2, seed=77)

        solo_engine = GenerationEngine(model, batch_size=1,
                                       rng=np.random.default_rng(0),
                                       speculative=spec)
        solo_engine.submit([1, 2], 10, params=seeded)
        (solo,) = solo_engine.run()

        crowded = GenerationEngine(model, batch_size=2,
                                   rng=np.random.default_rng(555),
                                   speculative=spec)
        crowded.submit([3, 4, 5], 10, params=SamplingParams(greedy=True))
        mine = crowded.submit([1, 2], 10, params=seeded)
        results = {r.request_id: r for r in crowded.run()}
        assert results[mine].tokens == solo.tokens


class TestCountersAndStats:
    def test_counter_identity_and_stats_section(self):
        model = tiny_model()
        prompts = [[1, 2, 3], [4, 5]]
        draft, _ = distilled_draft(model, prompts, 16)
        engine = GenerationEngine(
            model, batch_size=2, params=GREEDY,
            speculative=SpeculativeConfig(draft=draft, k=4))
        engine.generate(prompts, 16)
        assert engine.spec_proposed == \
            engine.spec_accepted + engine.spec_rejected
        spec = engine.stats()["spec"]
        assert spec["k"] == 4
        assert spec["draft"] == "LanguageModelDraft"
        assert spec["proposed"] == engine.spec_proposed
        assert spec["rounds"] == engine.spec_rounds > 0
        assert spec["acceptance_rate"] == pytest.approx(
            engine.spec_accepted / engine.spec_proposed)
        assert spec["accepted_tokens_per_step"] == pytest.approx(
            engine.spec_accepted / engine.spec_rounds)

    def test_metrics_exported(self):
        model = tiny_model()
        prompts = [[1, 2, 3]]
        draft, _ = distilled_draft(model, prompts, 12)
        obs = Observability(metrics=MetricsRegistry())
        engine = GenerationEngine(
            model, batch_size=1, params=GREEDY, obs=obs,
            speculative=SpeculativeConfig(draft=draft, k=4))
        engine.generate(prompts, 12)
        snap = obs.metrics.snapshot()
        assert snap["engine.spec.proposed"]["value"] == engine.spec_proposed
        assert snap["engine.spec.accepted"]["value"] == engine.spec_accepted
        assert snap["engine.spec.rejected"]["value"] == engine.spec_rejected
        assert snap["engine.spec.accepted_tokens_per_step"]["value"] == \
            pytest.approx(engine.spec_accepted / engine.spec_rounds)

    def test_plain_engine_has_no_spec_section(self):
        engine = GenerationEngine(tiny_model(), batch_size=1, params=GREEDY)
        assert "spec" not in engine.stats()
